//! # OliVe: Outlier-Victim Pair Quantization
//!
//! A reproduction of *"OliVe: Accelerating Large Language Models via
//! Hardware-friendly Outlier-Victim Pair Quantization"* (ISCA 2023).
//!
//! This facade crate re-exports the individual workspace crates:
//!
//! * [`runtime`] — zero-dependency worker pool and data-parallel primitives
//!   (thread count via `OLIVE_THREADS`, bit-deterministic at any count).
//! * [`tensor`] — minimal dense tensor library (parallel cache-blocked
//!   matmul, statistics, RNG).
//! * [`dtypes`] — the numeric data types used by OliVe (`int4`, `flint4`,
//!   `int8`, `abfloat`) and their hardware-style decoders.
//! * [`core`] — the outlier-victim pair (OVP) encoding, the OliVe quantization
//!   framework and the bit-accurate quantized GEMM.
//! * [`baselines`] — re-implementations of the quantization baselines the paper
//!   compares against (ANT, GOBO, OLAccel, AdaptivFloat, int4/int8, Outlier
//!   Suppression).
//! * [`models`] — transformer workload definitions (BERT/BART/GPT-2/BLOOM/OPT),
//!   synthetic outlier-realistic tensors and a small runnable transformer used
//!   as an accuracy proxy.
//! * [`accel`] — cycle-level systolic-array and analytical GPU performance,
//!   energy and area models.
//!
//! ## Quickstart
//!
//! ```
//! use olive::core::{OliveQuantizer, NormalType};
//! use olive::tensor::Tensor;
//! use olive::tensor::rng::Rng;
//!
//! // A tensor with a couple of large outliers.
//! let mut rng = Rng::seed_from(42);
//! let mut data: Vec<f32> = (0..128).map(|_| rng.normal(0.0, 1.0) as f32).collect();
//! data[17] = 58.0;
//! data[90] = -44.0;
//! let t = Tensor::from_vec(vec![8, 16], data);
//!
//! let quantizer = OliveQuantizer::int4();
//! let q = quantizer.quantize(&t);
//! let back = q.dequantize();
//! // Outliers survive 4-bit quantization.
//! assert!((back[[1, 1]] - 58.0).abs() / 58.0 < 0.20);
//! assert_eq!(q.spec().normal_type, NormalType::Int4);
//! ```

pub use olive_accel as accel;
pub use olive_baselines as baselines;
pub use olive_core as core;
pub use olive_dtypes as dtypes;
pub use olive_models as models;
pub use olive_runtime as runtime;
pub use olive_tensor as tensor;
