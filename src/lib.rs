//! # OliVe: Outlier-Victim Pair Quantization
//!
//! A reproduction of *"OliVe: Accelerating Large Language Models via
//! Hardware-friendly Outlier-Victim Pair Quantization"* (ISCA 2023).
//!
//! ## Quickstart: the `olive::api` surface
//!
//! Every quantization scheme — OliVe and all the paper's baselines — is
//! addressable by a spec string through the [`api`] **scheme registry**
//! (`"olive-4bit"`, `"ant:int8-fallback"`, `"gobo"`, `"uniform:8"`,
//! `"fp32"`, …; append `@per-row` for per-row granularity), and a complete
//! accuracy comparison is one **pipeline** builder chain:
//!
//! ```
//! use olive::api::{Calibration, ModelFamily, Pipeline, Scheme};
//!
//! // Schemes parse from spec strings and build ready-to-use quantizers.
//! let scheme = Scheme::parse("olive-4bit").unwrap();
//! assert_eq!(scheme.build().name(), "OliVe-4bit");
//! assert!(Scheme::parse("olive-5bit").is_err());
//!
//! // A tiny two-scheme comparison: OliVe-4bit vs plain int4 on a
//! // BERT-class proxy teacher with planted outliers.
//! let report = Pipeline::new(ModelFamily::Bert.tiny())
//!     .task("quickstart")
//!     .schemes(["olive-4bit", "uniform:4"])
//!     .seed(7)
//!     .batches(3)
//!     .calibrate(Calibration::confident(2))
//!     .run();
//! let olive = report.result("olive-4bit").unwrap().fidelity;
//! let int4 = report.result("uniform:4").unwrap().fidelity;
//! assert!(olive > int4, "OliVe must beat plain int4: {olive} vs {int4}");
//! // Reports also render as a text table or machine-readable JSON.
//! assert!(report.to_json().contains("\"spec\": \"olive-4bit\""));
//! ```
//!
//! Lower-level entry points remain available; the tensor-level encoding, for
//! example:
//!
//! ```
//! use olive::core::{OliveQuantizer, NormalType};
//! use olive::tensor::Tensor;
//! use olive::tensor::rng::Rng;
//!
//! // A tensor with a couple of large outliers.
//! let mut rng = Rng::seed_from(42);
//! let mut data: Vec<f32> = (0..128).map(|_| rng.normal(0.0, 1.0) as f32).collect();
//! data[17] = 58.0;
//! data[90] = -44.0;
//! let t = Tensor::from_vec(vec![8, 16], data);
//!
//! let quantizer = OliveQuantizer::int4();
//! let q = quantizer.quantize(&t);
//! let back = q.dequantize();
//! // Outliers survive 4-bit quantization.
//! assert!((back[[1, 1]] - 58.0).abs() / 58.0 < 0.20);
//! assert_eq!(q.spec().normal_type, NormalType::Int4);
//! ```
//!
//! ## Crate map
//!
//! This facade crate re-exports the individual workspace crates:
//!
//! * [`api`] — the unified public surface: the scheme registry
//!   (`Scheme::parse` / `Scheme::all` / `Scheme::build`, `@per-row`
//!   granularity, `to_accel` hardware-design mapping) and the builder-style
//!   evaluation pipeline producing unified text/JSON reports.
//! * [`runtime`] — zero-dependency worker pool and data-parallel primitives
//!   (thread count via `OLIVE_THREADS`, bit-deterministic at any count).
//! * [`tensor`] — minimal dense tensor library (parallel cache-blocked
//!   matmul, statistics, RNG).
//! * [`dtypes`] — the numeric data types used by OliVe (`int4`, `flint4`,
//!   `int8`, `abfloat`) and their hardware-style decoders.
//! * [`core`] — the outlier-victim pair (OVP) encoding, the OliVe quantization
//!   framework, the bit-accurate quantized GEMM, and the [`core::Granularity`]
//!   / per-row adapter machinery behind `@per-row` specs.
//! * [`baselines`] — re-implementations of the quantization baselines the paper
//!   compares against (ANT, GOBO, OLAccel, AdaptivFloat, int4/int8, Outlier
//!   Suppression).
//! * [`models`] — transformer workload definitions (BERT/BART/GPT-2/BLOOM/OPT),
//!   synthetic outlier-realistic tensors and a small runnable transformer used
//!   as an accuracy proxy.
//! * [`accel`] — cycle-level systolic-array and analytical GPU performance,
//!   energy and area models.
//! * [`serve`] — zero-dependency HTTP inference/evaluation server with
//!   dynamic batching, back-pressure and a quantize-once-serve-many model
//!   cache over the scheme registry (the `olive-serve` binary; see the
//!   README "Serving" section).
//! * [`router`] — horizontal scale-out: a consistent-hashing front door
//!   routing requests across `olive-serve` workers by model cache key, with
//!   byte-identical proxied responses, streamed-chunk passthrough, retry
//!   and health-probing (the `olive-router` binary; see the README
//!   "Scale-out" section).
//! * [`telemetry`] — zero-dependency observability: the metrics registry
//!   behind `GET /metrics` (Prometheus text exposition) on both daemons,
//!   and the `x-olive-trace` request tracing behind `GET /debug/trace`.
//!   Strictly out of band: served bytes are identical with telemetry on or
//!   off (see the README "Observability" section and
//!   `crates/telemetry/METRICS.md`).

pub use olive_accel as accel;
pub use olive_api as api;
pub use olive_baselines as baselines;
pub use olive_core as core;
pub use olive_dtypes as dtypes;
pub use olive_models as models;
pub use olive_router as router;
pub use olive_runtime as runtime;
pub use olive_serve as serve;
pub use olive_telemetry as telemetry;
pub use olive_tensor as tensor;
