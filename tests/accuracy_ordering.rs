//! The paper's headline qualitative claims, checked end-to-end on the proxy
//! models:
//!
//! 1. Clipping outliers is catastrophic; pruning victims is benign (Fig. 3).
//! 2. OliVe 4-bit beats plain int4 and ANT 4-bit (Tbl. 6 / Tbl. 9).
//! 3. OliVe 4-bit PTQ beats Outlier Suppression 6-bit PTQ (Tbl. 6 / Tbl. 8).
//! 4. OliVe 8-bit tracks FP32 perplexity; int4 explodes (Tbl. 9).
//! 5. The OliVe accelerator/GPU designs win on both latency and energy
//!    (Fig. 9 / Fig. 10).

use olive::accel::{GpuSimulator, QuantScheme, SystolicSimulator};
use olive::baselines::{AntQuantizer, OutlierSuppressionQuantizer, UniformQuantizer};
use olive::core::pair::{clip_outliers, prune_victims};
use olive::core::OliveQuantizer;
use olive::models::{
    logit_fidelity, pseudo_perplexity, EngineConfig, EvalTask, ModelConfig, OutlierSeverity,
    TinyTransformer, Workload,
};
use olive::tensor::rng::Rng;
use olive::tensor::stats::TensorStats;

fn teacher_and_task(severity: OutlierSeverity, seed: u64) -> (TinyTransformer, EvalTask) {
    let cfg = EngineConfig::tiny();
    let mut rng = Rng::seed_from(seed);
    let teacher = TinyTransformer::generate(cfg, severity, &mut rng);
    let task = EvalTask::generate("ordering", &cfg, 8, &mut rng);
    (teacher, task)
}

#[test]
fn clipping_outliers_is_worse_than_pruning_victims() {
    let (teacher, task) = teacher_and_task(OutlierSeverity::transformer(), 21);
    let threshold = |w: &olive::tensor::Tensor| {
        let s = TensorStats::compute(w);
        (s.mean.abs() + 3.0 * s.std) as f32
    };
    let clipped = teacher.map_weights(|_, w| clip_outliers(w, threshold(w)));
    let pruned = teacher.map_weights(|_, w| prune_victims(w, threshold(w)));
    let f_clip = logit_fidelity(&teacher, &clipped, &task, None);
    let f_prune = logit_fidelity(&teacher, &pruned, &task, None);
    assert!(
        f_prune > f_clip + 0.05,
        "prune fidelity {} should clearly beat clip fidelity {}",
        f_prune,
        f_clip
    );
    assert!(
        f_prune > 0.9,
        "victim pruning should be nearly free: {}",
        f_prune
    );
}

#[test]
fn olive_4bit_beats_int4_and_ant_4bit() {
    let (teacher, task) = teacher_and_task(OutlierSeverity::transformer(), 22);
    let f = |q: &dyn olive::core::TensorQuantizer| {
        let student = teacher.quantize_weights(q);
        logit_fidelity(&teacher, &student, &task, None)
    };
    let olive = f(&OliveQuantizer::int4());
    let int4 = f(&UniformQuantizer::int4());
    let ant = f(&AntQuantizer::fixed_4bit());
    assert!(olive > int4, "OliVe {} vs int4 {}", olive, int4);
    assert!(olive > ant, "OliVe {} vs ANT {}", olive, ant);
}

#[test]
fn olive_4bit_matches_or_beats_outlier_suppression_6bit() {
    let (teacher, task) = teacher_and_task(OutlierSeverity::transformer(), 23);
    let f = |q: &dyn olive::core::TensorQuantizer| {
        let student = teacher.quantize_weights(q);
        logit_fidelity(&teacher, &student, &task, None)
    };
    let olive4 = f(&OliveQuantizer::int4());
    let os6 = f(&OutlierSuppressionQuantizer::ptq_6bit());
    assert!(
        olive4 + 1e-6 >= os6,
        "OliVe-4bit {} should not lose to OS-6bit {}",
        olive4,
        os6
    );
}

#[test]
fn llm_perplexity_shape_matches_table9() {
    let (teacher, task) = teacher_and_task(OutlierSeverity::llm(), 24);
    let fp32 = pseudo_perplexity(&teacher, &teacher, &task, None);
    let p = |q: &dyn olive::core::TensorQuantizer| {
        let student = teacher.quantize_weights(q);
        pseudo_perplexity(&teacher, &student, &task, None)
    };
    let olive8 = p(&OliveQuantizer::int8());
    let olive4 = p(&OliveQuantizer::int4());
    let int4 = p(&UniformQuantizer::int4());
    // 8-bit OliVe tracks FP32 closely; int4 is clearly worse than 4-bit OliVe.
    assert!(
        olive8 < fp32 * 2.0,
        "OliVe-8bit {} vs FP32 {}",
        olive8,
        fp32
    );
    assert!(olive4 < int4, "OliVe-4bit {} vs int4 {}", olive4, int4);
    assert!(
        fp32 <= olive4 + 1e-9,
        "FP32 {} is the floor, OliVe-4bit {}",
        fp32,
        olive4
    );
}

#[test]
fn olive_wins_performance_and_energy_on_both_platforms() {
    let gpu = GpuSimulator::rtx_2080_ti();
    let sa = SystolicSimulator::paper_default();
    for cfg in [ModelConfig::bert_base(), ModelConfig::gpt2_xl()] {
        let wl = Workload::from_config(&cfg);
        let gpu_results = gpu.compare(&wl, &QuantScheme::gpu_comparison_set());
        for r in &gpu_results[1..] {
            assert!(
                gpu_results[0].latency_s < r.latency_s,
                "{} faster on GPU",
                r.scheme
            );
            assert!(
                gpu_results[0].energy.total() < r.energy.total(),
                "{} cheaper on GPU",
                r.scheme
            );
        }
        let sa_results = sa.compare(&wl, &QuantScheme::accelerator_comparison_set());
        for r in &sa_results[1..] {
            assert!(
                sa_results[0].latency_s < r.latency_s,
                "{} faster on SA",
                r.scheme
            );
            assert!(
                sa_results[0].energy.total() < r.energy.total(),
                "{} cheaper on SA",
                r.scheme
            );
        }
    }
}

#[test]
fn gpu_speedup_factors_are_in_the_papers_range() {
    // Fig. 9a geomeans: 4.5x over GOBO, 2.7x over int8, 2.4x over ANT. We
    // accept a generous band around those factors — the substrate is an
    // analytical model, not the authors' GPGPU-Sim setup.
    let gpu = GpuSimulator::rtx_2080_ti();
    let mut over_gobo = Vec::new();
    let mut over_int8 = Vec::new();
    for cfg in ModelConfig::performance_suite() {
        let wl = Workload::from_config(&cfg);
        let olive = gpu.run(&wl, &QuantScheme::olive4()).latency_s;
        over_gobo.push(gpu.run(&wl, &QuantScheme::gobo()).latency_s / olive);
        over_int8.push(gpu.run(&wl, &QuantScheme::int8_tensor_core()).latency_s / olive);
    }
    let g_gobo = olive::accel::geomean(&over_gobo);
    let g_int8 = olive::accel::geomean(&over_int8);
    assert!(g_gobo > 2.0 && g_gobo < 9.0, "speedup over GOBO {}", g_gobo);
    assert!(g_int8 > 1.3 && g_int8 < 5.0, "speedup over int8 {}", g_int8);
    assert!(g_gobo > g_int8, "GOBO should be the slowest baseline");
}
