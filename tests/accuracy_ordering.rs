//! The paper's headline qualitative claims, checked end-to-end through the
//! `olive::api` pipeline on the proxy models:
//!
//! 1. Clipping outliers is catastrophic; pruning victims is benign (Fig. 3).
//! 2. OliVe 4-bit beats plain int4 and ANT 4-bit (Tbl. 6 / Tbl. 9).
//! 3. OliVe 4-bit PTQ beats Outlier Suppression 6-bit PTQ (Tbl. 6 / Tbl. 8).
//! 4. OliVe 8-bit tracks FP32 perplexity; int4 explodes (Tbl. 9).
//! 5. The OliVe accelerator/GPU designs win on both latency and energy
//!    (Fig. 9 / Fig. 10).

use olive::accel::{GpuSimulator, SystolicSimulator};
use olive::api::{Calibration, EvalReport, ModelFamily, Pipeline, Scheme};
use olive::core::pair::{clip_outliers, prune_victims};
use olive::models::{ModelConfig, Workload};
use olive::tensor::stats::TensorStats;

/// The shared test pipeline: tiny proxy model, 8 random inputs.
fn pipeline(family: ModelFamily, seed: u64) -> Pipeline {
    Pipeline::new(family.tiny())
        .task("ordering")
        .seed(seed)
        .batches(8)
        .calibrate(Calibration::random())
}

fn run(family: ModelFamily, seed: u64, specs: &[&str]) -> EvalReport {
    pipeline(family, seed)
        .schemes(specs.iter().copied())
        .weights_only()
        .run()
}

#[test]
fn clipping_outliers_is_worse_than_pruning_victims() {
    let prepared = pipeline(ModelFamily::Bert, 21).prepare();
    let threshold = |w: &olive::tensor::Tensor| {
        let s = TensorStats::compute(w);
        (s.mean.abs() + 3.0 * s.std) as f32
    };
    let f_clip = prepared.fidelity_of_weight_transform(|_, w| clip_outliers(w, threshold(w)));
    let f_prune = prepared.fidelity_of_weight_transform(|_, w| prune_victims(w, threshold(w)));
    assert!(
        f_prune > f_clip + 0.05,
        "prune fidelity {} should clearly beat clip fidelity {}",
        f_prune,
        f_clip
    );
    assert!(
        f_prune > 0.9,
        "victim pruning should be nearly free: {}",
        f_prune
    );
}

#[test]
fn olive_4bit_beats_int4_and_ant_4bit() {
    let report = run(
        ModelFamily::Bert,
        22,
        &["olive-4bit", "uniform:4", "ant:4bit"],
    );
    let olive = report.result("olive-4bit").unwrap().fidelity;
    let int4 = report.result("uniform:4").unwrap().fidelity;
    let ant = report.result("ant:4bit").unwrap().fidelity;
    assert!(olive > int4, "OliVe {} vs int4 {}", olive, int4);
    assert!(olive > ant, "OliVe {} vs ANT {}", olive, ant);
}

#[test]
fn olive_4bit_matches_or_beats_outlier_suppression_6bit() {
    let report = run(ModelFamily::Bert, 23, &["olive-4bit", "os:6bit"]);
    let olive4 = report.result("olive-4bit").unwrap().fidelity;
    let os6 = report.result("os:6bit").unwrap().fidelity;
    assert!(
        olive4 + 1e-6 >= os6,
        "OliVe-4bit {} should not lose to OS-6bit {}",
        olive4,
        os6
    );
}

#[test]
fn llm_perplexity_shape_matches_table9() {
    let report = run(
        ModelFamily::Gpt2,
        24,
        &["fp32", "olive-8bit", "olive-4bit", "uniform:4"],
    );
    let fp32 = report.result("fp32").unwrap().perplexity;
    let olive8 = report.result("olive-8bit").unwrap().perplexity;
    let olive4 = report.result("olive-4bit").unwrap().perplexity;
    let int4 = report.result("uniform:4").unwrap().perplexity;
    // 8-bit OliVe tracks FP32 closely; int4 is clearly worse than 4-bit OliVe.
    assert!(
        olive8 < fp32 * 2.0,
        "OliVe-8bit {} vs FP32 {}",
        olive8,
        fp32
    );
    assert!(olive4 < int4, "OliVe-4bit {} vs int4 {}", olive4, int4);
    assert!(
        fp32 <= olive4 + 1e-9,
        "FP32 {} is the floor, OliVe-4bit {}",
        fp32,
        olive4
    );
}

#[test]
fn olive_wins_performance_and_energy_on_both_platforms() {
    let gpu = GpuSimulator::rtx_2080_ti();
    let sa = SystolicSimulator::paper_default();
    let gpu_set = olive::api::accel_designs(&Scheme::gpu_comparison());
    let sa_set = olive::api::accel_designs(&Scheme::accelerator_comparison());
    for cfg in [ModelConfig::bert_base(), ModelConfig::gpt2_xl()] {
        let wl = Workload::from_config(&cfg);
        let gpu_results = gpu.compare(&wl, &gpu_set);
        for r in &gpu_results[1..] {
            assert!(
                gpu_results[0].latency_s < r.latency_s,
                "{} faster on GPU",
                r.scheme
            );
            assert!(
                gpu_results[0].energy.total() < r.energy.total(),
                "{} cheaper on GPU",
                r.scheme
            );
        }
        let sa_results = sa.compare(&wl, &sa_set);
        for r in &sa_results[1..] {
            assert!(
                sa_results[0].latency_s < r.latency_s,
                "{} faster on SA",
                r.scheme
            );
            assert!(
                sa_results[0].energy.total() < r.energy.total(),
                "{} cheaper on SA",
                r.scheme
            );
        }
    }
}

#[test]
fn gpu_speedup_factors_are_in_the_papers_range() {
    // Fig. 9a geomeans: 4.5x over GOBO, 2.7x over int8, 2.4x over ANT. We
    // accept a generous band around those factors — the substrate is an
    // analytical model, not the authors' GPGPU-Sim setup.
    let gpu = GpuSimulator::rtx_2080_ti();
    let olive_design = Scheme::parse("olive-4bit").unwrap().to_accel().unwrap();
    let gobo_design = Scheme::parse("gobo").unwrap().to_accel().unwrap();
    let int8_design = Scheme::parse("uniform:8").unwrap().to_accel().unwrap();
    let mut over_gobo = Vec::new();
    let mut over_int8 = Vec::new();
    for cfg in ModelConfig::performance_suite() {
        let wl = Workload::from_config(&cfg);
        let olive = gpu.run(&wl, &olive_design).latency_s;
        over_gobo.push(gpu.run(&wl, &gobo_design).latency_s / olive);
        over_int8.push(gpu.run(&wl, &int8_design).latency_s / olive);
    }
    let g_gobo = olive::accel::geomean(&over_gobo);
    let g_int8 = olive::accel::geomean(&over_int8);
    assert!(g_gobo > 2.0 && g_gobo < 9.0, "speedup over GOBO {}", g_gobo);
    assert!(g_int8 > 1.3 && g_int8 < 5.0, "speedup over int8 {}", g_int8);
    assert!(g_gobo > g_int8, "GOBO should be the slowest baseline");
}
