//! Cross-crate end-to-end integration tests: tensors → OVP quantization →
//! quantized GEMM → model workloads → accelerator simulators.

use olive::accel::{GpuSimulator, QuantScheme, SystolicSimulator};
use olive::baselines::UniformQuantizer;
use olive::core::{quantized_matmul, OliveQuantizer, TensorQuantizer};
use olive::models::{ModelConfig, SynthProfile, Workload};
use olive::tensor::matmul::matmul;
use olive::tensor::rng::Rng;

#[test]
fn synthetic_layer_quantize_and_multiply() {
    // A weight and an activation tensor with transformer-like outliers,
    // quantized and multiplied entirely in the packed integer domain.
    let mut rng = Rng::seed_from(0xE2E01);
    let acts = SynthProfile::transformer().generate(vec![32, 128], &mut rng);
    let weights = SynthProfile::transformer().generate_scaled(vec![128, 64], 0.05, &mut rng);

    let qa = OliveQuantizer::int4().quantize(&acts);
    let qw = OliveQuantizer::int4().quantize(&weights);
    assert_eq!(qa.storage_bytes(), 32 * 128 / 2);
    assert_eq!(qw.storage_bytes(), 128 * 64 / 2);

    let (quantized, stats) = quantized_matmul(&qa, &qw);
    let reference = matmul(&acts, &weights);
    assert_eq!(stats.macs, 32 * 64 * 128);

    let rel_err = |approx: &olive::tensor::Tensor| {
        let mut num = 0.0;
        let mut den = 0.0;
        for i in 0..reference.len() {
            num += ((approx[i] - reference[i]) as f64).powi(2);
            den += (reference[i] as f64).powi(2);
        }
        (num / den.max(1e-12)).sqrt()
    };

    // The full 4-bit OVP pipeline stays bounded even with ~300-sigma
    // activation outliers (this is the hardest case in the paper, where even
    // OliVe shows measurable perplexity loss at 4 bits)...
    let rel_olive = rel_err(&quantized);
    assert!(rel_olive < 0.8, "relative error {}", rel_olive);

    // ...and it clearly beats plain int4 on the same operands.
    let int4 = UniformQuantizer::int4();
    let int4_result = matmul(
        &int4.quantize_dequantize(&acts),
        &int4.quantize_dequantize(&weights),
    );
    let rel_int4 = rel_err(&int4_result);
    assert!(
        rel_olive < rel_int4,
        "OliVe {} should beat int4 {}",
        rel_olive,
        rel_int4
    );
}

#[test]
fn every_performance_model_runs_every_scheme_on_every_model() {
    let gpu = GpuSimulator::rtx_2080_ti();
    let sa = SystolicSimulator::paper_default();
    for cfg in ModelConfig::performance_suite() {
        let wl = Workload::from_config(&cfg);
        for scheme in QuantScheme::gpu_comparison_set() {
            let r = gpu.run(&wl, &scheme);
            assert!(r.latency_s.is_finite() && r.latency_s > 0.0);
            assert!(r.energy.total() > 0.0);
        }
        for scheme in QuantScheme::accelerator_comparison_set() {
            let r = sa.run(&wl, &scheme);
            assert!(r.cycles > 0.0);
            assert!(r.energy.total() > 0.0);
        }
    }
}

#[test]
fn ptq_framework_reports_whole_model_statistics() {
    use olive::core::{OlivePtq, PtqConfig};
    use olive::models::model_tensor_suite;

    let mut rng = Rng::seed_from(0xE2E02);
    let suite = model_tensor_suite(&ModelConfig::bert_base(), 8_192, &mut rng);
    let ptq = OlivePtq::new(PtqConfig::default());
    let pairs: Vec<(&str, &olive::tensor::Tensor)> =
        suite.iter().map(|t| (t.name.as_str(), &t.tensor)).collect();
    let (outputs, report) = ptq.quantize_all(pairs);
    assert_eq!(outputs.len(), suite.len());
    assert_eq!(report.tensors.len(), suite.len());
    // Pure 4-bit: nothing escalates, mean relative error stays small.
    assert_eq!(report.escalation_fraction(), 0.0);
    assert!(
        report.mean_rel_mse() < 0.1,
        "rel mse {}",
        report.mean_rel_mse()
    );
}

#[test]
fn facade_reexports_are_usable_together() {
    // The facade crate must expose a coherent API across all sub-crates:
    // a registry spec string builds a quantizer that runs on a synthetic
    // tensor, and the same spec resolves to a hardware design.
    let scheme = olive::api::Scheme::parse("olive-4bit").unwrap();
    let quantizer = scheme.build();
    let mut rng = Rng::seed_from(1);
    let t = SynthProfile::cnn().generate(vec![64], &mut rng);
    let d = quantizer.quantize_dequantize(&t);
    assert_eq!(d.len(), t.len());
    assert_eq!(quantizer.bits_per_element(), 4.0);
    assert_eq!(scheme.to_accel().unwrap().name, "OliVe");
}

#[test]
fn every_registry_scheme_runs_through_the_pipeline() {
    use olive::api::{Calibration, ModelFamily, Pipeline, Scheme};

    let report = Pipeline::new(ModelFamily::Bert.tiny())
        .task("registry-sweep")
        .scheme_set(Scheme::all())
        .seed(0xE2E04)
        .batches(2)
        .calibrate(Calibration::confident(2))
        .run();
    assert_eq!(report.results.len(), Scheme::all().len());
    for r in &report.results {
        assert!(
            r.fidelity.is_finite() && r.fidelity <= 1.0 + 1e-12,
            "{}: fidelity {}",
            r.spec,
            r.fidelity
        );
        assert!(r.perplexity.is_finite(), "{}: ppl {}", r.spec, r.perplexity);
        assert!(r.bits_per_element > 0.0);
    }
    // The JSON rendering covers the whole sweep.
    let json = report.to_json();
    for scheme in Scheme::all() {
        assert!(
            json.contains(&format!("\"spec\": \"{}\"", scheme)),
            "{scheme}"
        );
    }
}
