//! Run the GPU and systolic-array performance models across the paper's model
//! suite and print speedup summaries (a condensed Fig. 9 + Fig. 10), with
//! both comparison sets taken from the `olive::api` scheme registry.
//!
//! Run with: `cargo run --release --example accelerator_comparison`

use olive::accel::{geomean, GpuSimulator, QuantScheme, SystolicSimulator};
use olive::api::{accel_designs, Scheme};
use olive::models::{ModelConfig, Workload};

fn main() {
    let models = ModelConfig::performance_suite();

    println!("== GPU (RTX 2080 Ti class), speedup normalized to GOBO ==");
    let gpu = GpuSimulator::rtx_2080_ti();
    let gpu_schemes = accel_designs(&Scheme::gpu_comparison());
    print_comparison(&models, |wl, s| gpu.run(wl, s).latency_s, &gpu_schemes);

    println!("\n== Systolic-array accelerator, speedup normalized to AdaFloat ==");
    let sa = SystolicSimulator::paper_default();
    let sa_schemes = accel_designs(&Scheme::accelerator_comparison());
    print_comparison(&models, |wl, s| sa.run(wl, s).latency_s, &sa_schemes);
}

fn print_comparison<F>(models: &[ModelConfig], latency: F, schemes: &[QuantScheme])
where
    F: Fn(&Workload, &QuantScheme) -> f64,
{
    print!("{:<12}", "model");
    for s in schemes {
        print!("{:>10}", s.name);
    }
    println!();
    let mut per_scheme: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    for cfg in models {
        let wl = Workload::from_config(cfg);
        let latencies: Vec<f64> = schemes.iter().map(|s| latency(&wl, s)).collect();
        let slowest = latencies.iter().cloned().fold(f64::MIN, f64::max);
        print!("{:<12}", cfg.name);
        for (i, l) in latencies.iter().enumerate() {
            let speedup = slowest / l;
            per_scheme[i].push(speedup);
            print!("{:>9.2}x", speedup);
        }
        println!();
    }
    print!("{:<12}", "geomean");
    for s in &per_scheme {
        print!("{:>9.2}x", geomean(s));
    }
    println!();
}
