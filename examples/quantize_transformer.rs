//! Quantize a BERT-like proxy transformer with OliVe and several baselines
//! and compare the accuracy proxies — a thin driver over the `olive::api`
//! pipeline (a condensed Table 6).
//!
//! Run with: `cargo run --release --example quantize_transformer`

use olive::api::{Calibration, ModelFamily, Pipeline};

fn main() {
    let model = ModelFamily::Bert.small();
    println!(
        "building a BERT-like proxy teacher ({} layers, d_model {})",
        model.config.n_layers, model.config.d_model
    );
    let report = Pipeline::new(model)
        .task("demo")
        .schemes([
            "fp32",
            "olive-4bit",
            "olive-8bit",
            "uniform:8",
            "uniform:4",
            "ant:4bit",
            "os:6bit",
        ])
        .seed(0xBE127)
        .batches(32)
        .calibrate(Calibration::random())
        .weights_only()
        .run();

    println!(
        "\n{:<16} {:>10} {:>10} {:>8}",
        "method", "agreement", "fidelity", "bits"
    );
    println!("{}", "-".repeat(48));
    for r in &report.results {
        println!(
            "{:<16} {:>9.1}% {:>9.1}% {:>8.1}",
            r.name,
            100.0 * r.agreement,
            100.0 * r.fidelity,
            r.bits_per_element
        );
    }
    println!("\nExpected shape: OliVe-4bit stays near FP32 while int4/ANT-4bit degrade.");
}
