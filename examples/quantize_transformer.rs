//! Quantize a BERT-like proxy transformer with OliVe and several baselines and
//! compare the accuracy proxy (agreement with the FP32 teacher).
//!
//! Run with: `cargo run --release --example quantize_transformer`

use olive::baselines::{AntQuantizer, OutlierSuppressionQuantizer, UniformQuantizer};
use olive::core::{OliveQuantizer, TensorQuantizer};
use olive::models::{agreement, EngineConfig, EvalTask, OutlierSeverity, TinyTransformer};
use olive::tensor::rng::Rng;

fn main() {
    let config = EngineConfig::small();
    let mut rng = Rng::seed_from(0xBE127);
    println!(
        "building a BERT-like proxy teacher ({} layers, d_model {})",
        config.n_layers, config.d_model
    );
    let teacher = TinyTransformer::generate(config, OutlierSeverity::transformer(), &mut rng);
    let task = EvalTask::generate("demo", &config, 32, &mut rng);

    let olive4 = OliveQuantizer::int4();
    let olive8 = OliveQuantizer::int8();
    let int8 = UniformQuantizer::int8();
    let int4 = UniformQuantizer::int4();
    let ant = AntQuantizer::fixed_4bit();
    let os6 = OutlierSuppressionQuantizer::ptq_6bit();
    let methods: Vec<&dyn TensorQuantizer> = vec![&olive4, &olive8, &int8, &int4, &ant, &os6];

    println!("\n{:<16} {:>10} {:>8}", "method", "agreement", "bits");
    println!("{}", "-".repeat(38));
    println!("{:<16} {:>9.1}% {:>8}", "FP32 teacher", 100.0, 32);
    for q in methods {
        let student = teacher.quantize_weights(q);
        let acc = agreement(&teacher, &student, &task, None);
        println!(
            "{:<16} {:>9.1}% {:>8.1}",
            q.name(),
            100.0 * acc,
            q.bits_per_element()
        );
    }
    println!("\nExpected shape: OliVe-4bit stays near FP32 while int4/ANT-4bit degrade.");
}
