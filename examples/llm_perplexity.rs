//! Pseudo-perplexity of an LLM-like proxy model under different PTQ schemes —
//! a thin driver over the `olive::api` pipeline (a condensed Table 9).
//!
//! Run with: `cargo run --release --example llm_perplexity`

use olive::api::{Calibration, ModelFamily, Pipeline};

fn main() {
    println!("building an OPT-like proxy teacher with severe activation/weight outliers...");
    let report = Pipeline::new(ModelFamily::Opt.small().named("OPT-like"))
        .task("wiki-like")
        .schemes([
            "fp32",
            "uniform:8",
            "olive-8bit",
            "uniform:4",
            "ant:4bit",
            "olive-4bit",
        ])
        .seed(0x0CCB)
        .batches(16)
        .calibrate(Calibration::random())
        .run();

    println!("\n{:<14} {:>12}", "method", "pseudo-ppl");
    println!("{}", "-".repeat(28));
    for r in &report.results {
        println!("{:<14} {:>12.2}", r.name, r.perplexity);
    }
    println!("\nExpected shape (paper Tbl. 9): OliVe-8bit tracks FP32; int4 and ANT-4bit blow up;");
    println!("OliVe-4bit stays usable.");
}
