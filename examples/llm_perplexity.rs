//! Pseudo-perplexity of an LLM-like proxy model under different PTQ schemes
//! (a condensed Table 9).
//!
//! Run with: `cargo run --release --example llm_perplexity`

use olive::baselines::{AntQuantizer, UniformQuantizer};
use olive::core::{OliveQuantizer, TensorQuantizer};
use olive::models::{pseudo_perplexity, EngineConfig, EvalTask, OutlierSeverity, TinyTransformer};
use olive::tensor::rng::Rng;

fn main() {
    let config = EngineConfig::small();
    let mut rng = Rng::seed_from(0x0CCB);
    println!("building an OPT-like proxy teacher with severe activation/weight outliers...");
    let teacher = TinyTransformer::generate(config, OutlierSeverity::llm(), &mut rng);
    let task = EvalTask::generate("wiki-like", &config, 16, &mut rng);

    let fp32 = pseudo_perplexity(&teacher, &teacher, &task, None);
    println!("\n{:<14} {:>12}", "method", "pseudo-ppl");
    println!("{}", "-".repeat(28));
    println!("{:<14} {:>12.2}", "FP32", fp32);

    let int8 = UniformQuantizer::int8();
    let olive8 = OliveQuantizer::int8();
    let int4 = UniformQuantizer::int4();
    let ant4 = AntQuantizer::fixed_4bit();
    let olive4 = OliveQuantizer::int4();
    let methods: Vec<&dyn TensorQuantizer> = vec![&int8, &olive8, &int4, &ant4, &olive4];
    for q in methods {
        let student = teacher.quantize_weights(q);
        let ppl = pseudo_perplexity(&teacher, &student, &task, Some(q));
        println!("{:<14} {:>12.2}", q.name(), ppl);
    }
    println!("\nExpected shape (paper Tbl. 9): OliVe-8bit tracks FP32; int4 and ANT-4bit blow up;");
    println!("OliVe-4bit stays usable.");
}
