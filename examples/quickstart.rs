//! Quickstart: quantize a single outlier-heavy tensor with OliVe and inspect
//! what the encoding did.
//!
//! Run with: `cargo run --release --example quickstart`

use olive::core::{OliveQuantizer, TensorQuantizer};
use olive::tensor::rng::Rng;
use olive::tensor::stats::TensorStats;
use olive::tensor::Tensor;

fn main() {
    // Build a tensor that looks like a transformer activation: a Gaussian bulk
    // plus a few extreme outliers.
    let mut rng = Rng::seed_from(2023);
    let mut data = vec![0.0f32; 64 * 64];
    rng.fill_normal(&mut data, 0.0, 1.0);
    data[100] = 87.0;
    data[101] = 0.4; // will become the victim of the outlier at index 100
    data[2000] = -52.0;
    let t = Tensor::from_vec(vec![64, 64], data);

    let stats = TensorStats::compute(&t);
    println!(
        "input tensor: {} elements, sigma = {:.2}, max = {:.1} ({:.0} sigma)",
        t.len(),
        stats.std,
        stats.max_abs,
        stats.max_sigma
    );

    // Quantize with 4-bit OliVe (int4 normal values + E2M1 abfloat outliers).
    let quantizer = OliveQuantizer::int4();
    let q = quantizer.quantize(&t);
    println!(
        "quantized: {} bytes ({}x compression), scale = {:.4}, outlier pairs = {:.3}%",
        q.storage_bytes(),
        q.compression_ratio(),
        q.spec().scale,
        100.0 * q.outlier_pair_fraction()
    );

    let back = q.dequantize();
    println!("round-trip MSE = {:.5}", t.mse(&back));
    println!("outlier  87.0 -> {:+.2}", back[100]);
    println!(
        "victim    0.4 -> {:+.2}  (pruned to zero, as designed)",
        back[101]
    );
    println!("outlier -52.0 -> {:+.2}", back[2000]);
    println!("a normal value {:+.3} -> {:+.3}", t[0], back[0]);

    // Compare against plain int4, which has no outlier mechanism.
    let int4 = olive::baselines::UniformQuantizer::int4();
    let int4_back = int4.quantize_dequantize(&t);
    println!(
        "\nplain int4 round-trip MSE = {:.5} (OliVe is {:.1}x more accurate on this tensor)",
        t.mse(&int4_back),
        t.mse(&int4_back) / t.mse(&back).max(1e-12)
    );
}
