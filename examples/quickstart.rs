//! Quickstart for the `olive::api` surface: address schemes by spec string,
//! run a two-scheme comparison through the evaluation pipeline, and inspect
//! the packed encoding of a single tensor.
//!
//! Run with: `cargo run --release --example quickstart`
//! (CI runs this example on every push — it is deliberately tiny.)

use olive::api::{Calibration, ModelFamily, Pipeline, Scheme};
use olive::core::TensorQuantizer;
use olive::tensor::rng::Rng;
use olive::tensor::Tensor;

fn main() {
    // --- 1. Schemes are addressable by name. ---
    let olive4 = Scheme::parse("olive-4bit").expect("registry spec");
    println!(
        "scheme '{}' -> {} ({} bits/element)",
        olive4,
        olive4.display_name(),
        olive4.bits_per_element()
    );

    // --- 2. A whole comparison is one builder chain. ---
    let report = Pipeline::new(ModelFamily::Bert.tiny())
        .task("quickstart")
        .schemes(["fp32", "olive-4bit", "uniform:4", "olive-4bit@per-row"])
        .seed(2023)
        .batches(4)
        .calibrate(Calibration::confident(2))
        .run();
    report
        .table()
        .print_with_title("Tiny BERT-class proxy, weights + activations quantized");
    println!(
        "machine-readable: EvalReport::to_json() renders {} bytes of JSON",
        report.to_json().len()
    );

    let olive = report.result("olive-4bit").unwrap().fidelity;
    let int4 = report.result("uniform:4").unwrap().fidelity;
    assert!(olive > int4, "OliVe must beat plain int4");
    println!(
        "\nOliVe-4bit fidelity {:.2}% vs plain int4 {:.2}% — the outlier-victim pairs pay off.",
        100.0 * olive,
        100.0 * int4
    );

    // --- 3. Under the hood: the packed OVP encoding of one tensor. ---
    let mut rng = Rng::seed_from(2023);
    let mut data = vec![0.0f32; 64 * 64];
    rng.fill_normal(&mut data, 0.0, 1.0);
    data[100] = 87.0; // outlier; data[101] becomes its victim
    let t = Tensor::from_vec(vec![64, 64], data);
    let q = olive4.olive_quantizer().unwrap().quantize(&t);
    let back = q.dequantize();
    println!(
        "\npacked tensor: {} bytes ({}x compression), outlier 87.0 -> {:+.2}, victim {:+.2} -> {:+.2}",
        q.storage_bytes(),
        q.compression_ratio(),
        back[100],
        t[101],
        back[101]
    );
    let int4_mse = t.mse(
        &Scheme::parse("uniform:4")
            .unwrap()
            .build()
            .quantize_dequantize(&t),
    );
    println!(
        "round-trip MSE: OliVe {:.5} vs plain int4 {:.5}",
        t.mse(&back),
        int4_mse
    );
}
