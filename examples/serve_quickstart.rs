//! Serving quickstart: start `olive::serve` in-process, list the scheme
//! registry, run one evaluation and one raw-matrix quantization over HTTP,
//! and shut down cleanly.
//!
//! ```text
//! cargo run --release --example serve_quickstart
//! ```
//!
//! The same endpoints are curl-able when running the daemon instead
//! (`cargo run --release -p olive-serve --bin olive-serve -- --port 8080`);
//! see the README "Serving" section.

use olive::api::JsonValue;
use olive::serve::{client, ServeConfig, Server};

fn main() {
    let server = Server::start(ServeConfig::default()).expect("bind an ephemeral port");
    println!("serving on {}\n", server.url());
    let addr = server.local_addr();

    // The registry over HTTP.
    let schemes = client::get(addr, "/v1/schemes").expect("/v1/schemes");
    let parsed = JsonValue::parse(&schemes.body).expect("valid JSON");
    let count = parsed
        .get("schemes")
        .and_then(JsonValue::as_array)
        .map_or(0, <[JsonValue]>::len);
    println!("GET /v1/schemes -> {} ({count} schemes)", schemes.status);

    // A two-scheme accuracy comparison, served with dynamic batching.
    let eval = client::post_json(
        addr,
        "/v1/eval",
        r#"{"schemes": ["olive-4bit", "uniform:4"], "batches": 4, "oversample": 2, "seed": 7}"#,
    )
    .expect("/v1/eval");
    println!("POST /v1/eval   -> {}", eval.status);
    let report = JsonValue::parse(&eval.body).expect("valid JSON");
    for result in report.get("results").and_then(JsonValue::as_array).unwrap() {
        println!(
            "  {:<12} fidelity {:.4}",
            result.get("spec").and_then(JsonValue::as_str).unwrap(),
            result.get("fidelity").and_then(JsonValue::as_f64).unwrap(),
        );
    }

    // Quantize a raw matrix with a planted outlier.
    let mut data: Vec<String> = (0..32).map(|i| format!("{:.2}", 0.01 * i as f64)).collect();
    data[5] = "40.0".to_string();
    let quantize = client::post_json(
        addr,
        "/v1/quantize",
        &format!(
            r#"{{"scheme": "olive-4bit", "rows": 4, "cols": 8, "data": [{}]}}"#,
            data.join(",")
        ),
    )
    .expect("/v1/quantize");
    let parsed = JsonValue::parse(&quantize.body).expect("valid JSON");
    println!(
        "POST /v1/quantize -> {} (mse {:.6}, outlier 40.0 -> {:.2})",
        quantize.status,
        parsed.get("mse").and_then(JsonValue::as_f64).unwrap(),
        parsed.get("values").and_then(JsonValue::as_array).unwrap()[5]
            .as_f64()
            .unwrap(),
    );

    server.shutdown();
    println!("\nserver shut down cleanly");
}
