//! Incremental autoregressive decoding for the proxy Transformer.
//!
//! Generative serving means one request turns into hundreds of decode steps,
//! each a full quantized-GEMM workload — exactly the traffic shape the
//! paper's accelerator targets. This module adds that workload class to the
//! proxy model in two bit-identical flavours:
//!
//! * [`TinyTransformer::forward_causal`] — the **batch** (prefill) path: one
//!   causally-masked forward pass over a whole token sequence, the reference
//!   semantics;
//! * [`DecodeSession`] — the **incremental** path: a resumable session that
//!   caches every layer's per-position keys and values, so pushing token
//!   *t + 1* reuses all of step *t*'s prefix work instead of recomputing the
//!   full forward pass (O(len) work per step instead of O(len²)).
//!
//! ## Step-schedulable decoding (continuous batching)
//!
//! The incremental path is itself split so a serving scheduler can drive
//! many streams through shared GEMMs:
//!
//! * [`TinyTransformer::advance_batch`] advances the *current step* of K
//!   independent streams at once: one `[K, d]` embed, one batched
//!   layer-norm/quantize/GEMM pipeline per layer, with each stream's
//!   attention reading only its own externally-owned [`KvStore`]
//!   ([`StepSlot`] carries the store, token, and position per stream);
//! * [`TinyTransformer::advance_one`] is the K = 1 case, and
//!   [`DecodeSession::push`] is a thin wrapper over it holding a
//!   [`VecKv`](crate::kv::VecKv) — single-stream and batched decoding share
//!   one code path, so they cannot drift apart.
//!
//! Because every non-GEMM op in the step is per-row (layer norm, per-row
//! activation quantization, GELU, residual add) and every GEMM row is
//! accumulated in ascending-`k` order regardless of the batch's row count
//! (the `olive-tensor` kernel contract), row *i* of an `advance_batch` over
//! K streams is **bit-identical** to the lone-stream `push` of that token —
//! the property that lets `olive-serve` merge concurrent `/v1/generate`
//! streams into one forward per tick without changing a single output byte.
//!
//! ## The decode-cache determinism contract
//!
//! For any token sequence, thread count and activation quantizer, row *i* of
//! `forward_causal(&tokens[..=i])` is **bit-identical** to the logits
//! [`DecodeSession::push`] returns for token *i* — enforced by the property
//! tests below. The contract holds by construction:
//!
//! * every GEMM row is accumulated in the same ascending-`k` order whether it
//!   is computed as one row of a batch product or as a `[1, k]` product (the
//!   `olive-tensor` kernel contract), and the runtime's determinism contract
//!   makes that independent of `OLIVE_THREADS`;
//! * attention is causal, so a position's keys/values never change once
//!   computed, and the softmax over a masked batch row is bit-identical to
//!   the softmax over the unmasked prefix (masked lanes contribute exactly
//!   `exp(-inf) = 0.0`, and the GEMM kernels skip zero activations);
//! * activation quantization is **per row** (each position's activation is
//!   calibrated as its own `[1, d]` tensor — dynamic per-token scales, as
//!   decode-time quantization does in deployment), so a row's quantized
//!   values cannot depend on later rows.
//!
//! Note the *causal* forward is a different function from the bidirectional
//! [`TinyTransformer::forward`] used by the evaluation metrics: full
//! bidirectional attention lets every position read every other, which makes
//! incremental reuse impossible by definition. The evaluation path and its
//! goldens are untouched.

use crate::engine::{argmax, TinyTransformer};
use crate::kv::{KvStore, VecKv};
use olive_core::TensorQuantizer;
use olive_tensor::matmul::{gelu, layer_norm, matmul, matmul_transpose_b, softmax_rows};
use olive_tensor::Tensor;

/// Fake-quantizes each row of `t` as its own `[1, cols]` tensor (per-token
/// dynamic calibration — see the module docs for why decode requires this).
fn quantize_rows(t: &Tensor, q: Option<&dyn TensorQuantizer>) -> Tensor {
    let Some(q) = q else {
        return t.clone();
    };
    let (m, n) = (t.rows(), t.cols());
    let mut out = Tensor::zeros(vec![m, n]);
    for i in 0..m {
        let row = Tensor::from_vec(vec![1, n], t.row(i).to_vec());
        let qrow = q.quantize_dequantize(&row);
        out.row_mut(i).copy_from_slice(qrow.row(0));
    }
    out
}

/// The token-embedding row for `token` at position `pos`, including the
/// deterministic sinusoidal position signal (same formula as the batch
/// embedding in `TinyTransformer::forward`).
fn embed_row(model: &TinyTransformer, token: usize, pos: usize) -> Tensor {
    let d = model.config.d_model;
    assert!(token < model.config.vocab, "token {} out of range", token);
    let mut x = Tensor::zeros(vec![1, d]);
    for j in 0..d {
        let pe = ((pos as f32) / 64f32.powf(j as f32 / d as f32)).sin() * 0.1;
        x[[0, j]] = model.embedding[[token, j]] + pe;
    }
    x
}

impl TinyTransformer {
    /// Causally-masked forward pass: position *i* attends only to positions
    /// `0..=i`. Returns the logits of every position, `[seq_len, vocab]`.
    ///
    /// This is the batch (prefill) reference for autoregressive decoding;
    /// [`DecodeSession`] computes the same logits incrementally,
    /// bit-identically (see the module docs). Activation quantization, when
    /// requested, is applied per row.
    ///
    /// # Panics
    ///
    /// Panics if any token id is out of vocabulary range.
    pub fn forward_causal(
        &self,
        tokens: &[usize],
        act_quant: Option<&dyn TensorQuantizer>,
    ) -> Tensor {
        let d = self.config.d_model;
        let seq = tokens.len();
        let mut x = Tensor::zeros(vec![seq, d]);
        for (pos, &tok) in tokens.iter().enumerate() {
            let row = embed_row(self, tok, pos);
            x.row_mut(pos).copy_from_slice(row.row(0));
        }

        for layer in &self.layers {
            let normed = layer_norm(&x, &layer.ln1_gamma, &layer.ln1_beta, 1e-5);
            let qkv_in = quantize_rows(&normed, act_quant);
            let qkv = matmul(&qkv_in, &layer.wqkv);
            let attn = self.attention_causal(&qkv);
            let attn_in = quantize_rows(&attn, act_quant);
            let out = matmul(&attn_in, &layer.wo);
            x = x.add(&out);

            let normed = layer_norm(&x, &layer.ln2_gamma, &layer.ln2_beta, 1e-5);
            let ffn_in = quantize_rows(&normed, act_quant);
            let h = gelu(&matmul(&ffn_in, &layer.w1));
            let h_in = quantize_rows(&h, act_quant);
            let ffn = matmul(&h_in, &layer.w2);
            x = x.add(&ffn);
        }

        let normed = layer_norm(&x, &self.ln_f_gamma, &self.ln_f_beta, 1e-5);
        let head_in = quantize_rows(&normed, act_quant);
        matmul_transpose_b(&head_in, &self.embedding)
    }

    /// Multi-head self-attention over a fused `[seq, 3·d_model]` QKV tensor
    /// with a causal mask: scores above the diagonal are `-inf` before the
    /// softmax, so `exp` maps them to exactly `0.0` and they contribute
    /// nothing to the context GEMM (whose kernel skips zero activations).
    fn attention_causal(&self, qkv: &Tensor) -> Tensor {
        let d = self.config.d_model;
        let seq = qkv.rows();
        let heads = self.config.n_heads;
        let dh = self.config.head_dim();
        let mut out = Tensor::zeros(vec![seq, d]);
        for h in 0..heads {
            let mut q = Tensor::zeros(vec![seq, dh]);
            let mut k = Tensor::zeros(vec![seq, dh]);
            let mut v = Tensor::zeros(vec![seq, dh]);
            for i in 0..seq {
                for j in 0..dh {
                    q[[i, j]] = qkv[[i, h * dh + j]];
                    k[[i, j]] = qkv[[i, d + h * dh + j]];
                    v[[i, j]] = qkv[[i, 2 * d + h * dh + j]];
                }
            }
            let scale = 1.0 / (dh as f32).sqrt();
            let mut scores = matmul_transpose_b(&q, &k).scale(scale);
            for i in 0..seq {
                for j in (i + 1)..seq {
                    scores[[i, j]] = f32::NEG_INFINITY;
                }
            }
            let probs = softmax_rows(&scores);
            let ctx = matmul(&probs, &v);
            for i in 0..seq {
                for j in 0..dh {
                    out[[i, j + h * dh]] = ctx[[i, j]];
                }
            }
        }
        out
    }

    /// Advances the current step of every stream in `slots` through **one**
    /// batched forward: a `[K, d]` embed and one layer-norm → quantize →
    /// GEMM pipeline per layer, shared by all K streams. Each stream's
    /// attention reads only its own [`KvStore`] (its new key/value rows are
    /// appended first), so streams stay fully independent. Returns each
    /// stream's logits in slot order.
    ///
    /// Row *i* of the batch is bit-identical to advancing stream *i* alone
    /// (see the module docs for why), at any `OLIVE_THREADS` — the property
    /// continuous batching in `olive-serve` rests on.
    ///
    /// # Panics
    ///
    /// Panics if any slot's token id is out of vocabulary range.
    pub fn advance_batch(
        &self,
        act_quant: Option<&dyn TensorQuantizer>,
        slots: &mut [StepSlot<'_>],
    ) -> Vec<Vec<f32>> {
        let d = self.config.d_model;
        let k = slots.len();
        if k == 0 {
            return Vec::new();
        }
        let mut x = Tensor::zeros(vec![k, d]);
        for (i, slot) in slots.iter().enumerate() {
            let row = embed_row(self, slot.token, slot.pos);
            x.row_mut(i).copy_from_slice(row.row(0));
        }

        for (li, layer) in self.layers.iter().enumerate() {
            let normed = layer_norm(&x, &layer.ln1_gamma, &layer.ln1_beta, 1e-5);
            let qkv_in = quantize_rows(&normed, act_quant);
            let qkv = matmul(&qkv_in, &layer.wqkv);
            let mut attn = Tensor::zeros(vec![k, d]);
            for (i, slot) in slots.iter_mut().enumerate() {
                let row = qkv.row(i);
                slot.kv.append(li, &row[d..2 * d], &row[2 * d..3 * d]);
                let ctx = self.attention_step(&*slot.kv, li, row, slot.pos + 1);
                attn.row_mut(i).copy_from_slice(ctx.row(0));
            }
            let attn_in = quantize_rows(&attn, act_quant);
            let out = matmul(&attn_in, &layer.wo);
            x = x.add(&out);

            let normed = layer_norm(&x, &layer.ln2_gamma, &layer.ln2_beta, 1e-5);
            let ffn_in = quantize_rows(&normed, act_quant);
            let h = gelu(&matmul(&ffn_in, &layer.w1));
            let h_in = quantize_rows(&h, act_quant);
            let ffn = matmul(&h_in, &layer.w2);
            x = x.add(&ffn);
        }

        let normed = layer_norm(&x, &self.ln_f_gamma, &self.ln_f_beta, 1e-5);
        let head_in = quantize_rows(&normed, act_quant);
        let logits = matmul_transpose_b(&head_in, &self.embedding);
        (0..k).map(|i| logits.row(i).to_vec()).collect()
    }

    /// Advances one stream by one token against an externally-owned
    /// [`KvStore`]: the K = 1 case of [`advance_batch`](Self::advance_batch).
    /// `pos` is the number of positions already in `kv`.
    pub fn advance_one(
        &self,
        act_quant: Option<&dyn TensorQuantizer>,
        kv: &mut dyn KvStore,
        token: usize,
        pos: usize,
    ) -> Vec<f32> {
        let mut slots = [StepSlot { kv, token, pos }];
        self.advance_batch(act_quant, &mut slots)
            .pop()
            .expect("one slot in, one logits row out")
    }

    /// Attention for a stream's newest position: its query row against the
    /// cached keys/values of positions `0..rows` (the just-appended row
    /// included). `qkv_row` is the fused `[3·d_model]` QKV row; only its
    /// query third is read here (keys/values come from the store).
    fn attention_step(&self, kv: &dyn KvStore, li: usize, qkv_row: &[f32], rows: usize) -> Tensor {
        let d = self.config.d_model;
        let heads = self.config.n_heads;
        let dh = self.config.head_dim();
        let mut out = Tensor::zeros(vec![1, d]);
        for h in 0..heads {
            let mut q = Tensor::zeros(vec![1, dh]);
            let mut k = Tensor::zeros(vec![rows, dh]);
            let mut v = Tensor::zeros(vec![rows, dh]);
            for j in 0..dh {
                q[[0, j]] = qkv_row[h * dh + j];
            }
            for i in 0..rows {
                let kc = kv.k_row(li, i);
                let vc = kv.v_row(li, i);
                for j in 0..dh {
                    k[[i, j]] = kc[h * dh + j];
                    v[[i, j]] = vc[h * dh + j];
                }
            }
            let scale = 1.0 / (dh as f32).sqrt();
            let scores = matmul_transpose_b(&q, &k).scale(scale);
            let probs = softmax_rows(&scores);
            let ctx = matmul(&probs, &v);
            for j in 0..dh {
                out[[0, j + h * dh]] = ctx[[0, j]];
            }
        }
        out
    }
}

/// One stream's current step, as fed to
/// [`TinyTransformer::advance_batch`]: which token to decode, at which
/// position, into which externally-owned KV store.
pub struct StepSlot<'s> {
    /// The stream's KV store (exclusively borrowed for the step).
    pub kv: &'s mut dyn KvStore,
    /// The token to decode this step.
    pub token: usize,
    /// The token's position — the number of positions already in `kv`.
    pub pos: usize,
}

/// A resumable incremental decoding session over one model.
///
/// Holds per-layer key/value caches; [`push`](DecodeSession::push)ing a token
/// computes only that position's activations (reusing every earlier
/// position's cached keys/values) and returns its logits — bit-identical to
/// the corresponding row of [`TinyTransformer::forward_causal`] over the full
/// token sequence, at any `OLIVE_THREADS` (the decode-cache determinism
/// contract, see the module docs).
pub struct DecodeSession<'a> {
    model: &'a TinyTransformer,
    act_quant: Option<&'a dyn TensorQuantizer>,
    /// Per-layer key/value rows, fused head-major like QKV — the session
    /// owns its storage; schedulers that pool storage use
    /// [`TinyTransformer::advance_batch`] directly instead.
    kv: VecKv,
    tokens: Vec<usize>,
}

impl<'a> DecodeSession<'a> {
    /// An empty session over `model`, quantizing per-row activations with
    /// `act_quant` when given.
    pub fn new(model: &'a TinyTransformer, act_quant: Option<&'a dyn TensorQuantizer>) -> Self {
        DecodeSession {
            model,
            act_quant,
            kv: VecKv::new(model.config.n_layers, model.config.d_model),
            tokens: Vec::new(),
        }
    }

    /// Positions decoded so far.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True before the first [`push`](DecodeSession::push).
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// The tokens pushed so far, in order.
    pub fn tokens(&self) -> &[usize] {
        &self.tokens
    }

    /// Decodes one token at the next position and returns that position's
    /// logits (`vocab` values) — the distribution over the *next* token.
    ///
    /// # Panics
    ///
    /// Panics if the token id is out of vocabulary range.
    pub fn push(&mut self, token: usize) -> Vec<f32> {
        let pos = self.tokens.len();
        let logits = self
            .model
            .advance_one(self.act_quant, &mut self.kv, token, pos);
        self.tokens.push(token);
        logits
    }

    /// Pushes every token of `prompt` and returns the last position's logits
    /// (`None` for an empty prompt).
    pub fn prefill(&mut self, prompt: &[usize]) -> Option<Vec<f32>> {
        let mut last = None;
        for &token in prompt {
            last = Some(self.push(token));
        }
        last
    }
}

/// Greedy (argmax) continuation of `prompt` by `max_new_tokens` tokens via
/// the incremental [`DecodeSession`] path. Returns only the new tokens.
///
/// # Panics
///
/// Panics on an empty prompt (there is no distribution to continue from) or
/// out-of-vocabulary prompt tokens.
pub fn generate_greedy(
    model: &TinyTransformer,
    prompt: &[usize],
    max_new_tokens: usize,
    act_quant: Option<&dyn TensorQuantizer>,
) -> Vec<usize> {
    let mut session = DecodeSession::new(model, act_quant);
    let mut logits = session
        .prefill(prompt)
        .expect("generate_greedy requires a non-empty prompt");
    let mut generated = Vec::with_capacity(max_new_tokens);
    for _ in 0..max_new_tokens {
        let next = argmax(&logits);
        generated.push(next);
        logits = session.push(next);
    }
    generated
}

/// Reference greedy generation that recomputes the full causal forward pass
/// every step — O(len²) per token, used to pin the [`DecodeSession`] fast
/// path down in tests and benches.
///
/// # Panics
///
/// Panics on an empty prompt or out-of-vocabulary prompt tokens.
pub fn generate_greedy_recompute(
    model: &TinyTransformer,
    prompt: &[usize],
    max_new_tokens: usize,
    act_quant: Option<&dyn TensorQuantizer>,
) -> Vec<usize> {
    assert!(
        !prompt.is_empty(),
        "generate_greedy_recompute requires a non-empty prompt"
    );
    let mut tokens = prompt.to_vec();
    let mut generated = Vec::with_capacity(max_new_tokens);
    for _ in 0..max_new_tokens {
        let logits = model.forward_causal(&tokens, act_quant);
        let next = argmax(logits.row(logits.rows() - 1));
        generated.push(next);
        tokens.push(next);
    }
    generated
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, OutlierSeverity};
    use olive_core::OliveQuantizer;
    use olive_tensor::rng::Rng;

    fn teacher(seed: u64) -> TinyTransformer {
        let mut rng = Rng::seed_from(seed);
        TinyTransformer::generate(EngineConfig::tiny(), OutlierSeverity::llm(), &mut rng)
    }

    fn random_tokens(rng: &mut Rng, vocab: usize, len: usize) -> Vec<usize> {
        (0..len).map(|_| rng.below(vocab)).collect()
    }

    #[test]
    fn causal_logits_have_the_right_shape_and_are_finite() {
        let model = teacher(1);
        let logits = model.forward_causal(&[1, 2, 3], None);
        assert_eq!(logits.shape(), &[3, model.config.vocab]);
        assert!(logits.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn causal_prefix_invariance() {
        // The defining property of causality: earlier rows do not change
        // when the sequence is extended.
        let model = teacher(2);
        let long = model.forward_causal(&[5, 9, 2, 7], None);
        let short = model.forward_causal(&[5, 9, 2], None);
        for pos in 0..3 {
            assert_eq!(long.row(pos), short.row(pos), "position {pos}");
        }
    }

    /// The decode-cache determinism contract, property-tested: incremental
    /// push-by-push logits are bit-identical to the batch causal forward,
    /// with and without (per-row) activation quantization, at 1 and 8
    /// threads.
    #[test]
    fn decode_session_is_bit_identical_to_batch_causal_forward() {
        let cfg = EngineConfig::tiny();
        let config = olive_harness::check::CheckConfig {
            cases: 12,
            ..Default::default()
        };
        olive_harness::check::check_with(
            config,
            "decode_session_matches_batch",
            |rng| {
                let seed = rng.next_u64();
                let len = 1 + rng.below(2 * cfg.seq_len);
                (seed, random_tokens(rng, cfg.vocab, len))
            },
            |(seed, tokens)| {
                let model = teacher(*seed);
                let q = OliveQuantizer::int4();
                for act in [None, Some(&q as &dyn TensorQuantizer)] {
                    for threads in [1usize, 8] {
                        let diverged = olive_runtime::with_threads(threads, || {
                            let batch = model.forward_causal(tokens, act);
                            let mut session = DecodeSession::new(&model, act);
                            for (pos, &tok) in tokens.iter().enumerate() {
                                if session.push(tok).as_slice() != batch.row(pos) {
                                    return Some(pos);
                                }
                            }
                            None
                        });
                        if let Some(pos) = diverged {
                            return Err(format!(
                                "incremental logits diverged from the batch causal \
                                 forward at position {pos} (act={}, threads={threads})",
                                act.is_some(),
                            ));
                        }
                    }
                }
                Ok(())
            },
        );
    }

    /// Continuous batching's foundation: advancing K interleaved streams via
    /// one `advance_batch` per tick is bit-identical to K independent
    /// `DecodeSession::push` streams — across storage backends (pooled
    /// `PagedKv` and plain `VecKv`), activation quantization, thread counts,
    /// and streams of different lengths joining/leaving the batch.
    #[test]
    fn advance_batch_is_bit_identical_to_independent_pushes() {
        use crate::kv::{pages_needed, KvPool, KvStore, PagedKv};
        let model = teacher(11);
        let cfg = &model.config;
        let mut rng = Rng::seed_from(41);
        let lens = [9usize, 4, 7, 1];
        let streams: Vec<Vec<usize>> = lens
            .iter()
            .map(|&len| random_tokens(&mut rng, cfg.vocab, len))
            .collect();
        let q = OliveQuantizer::int4();
        for act in [None, Some(&q as &dyn TensorQuantizer)] {
            for threads in [1usize, 8] {
                olive_runtime::with_threads(threads, || {
                    // Reference: each stream pushed alone.
                    let expected: Vec<Vec<Vec<f32>>> = streams
                        .iter()
                        .map(|tokens| {
                            let mut session = DecodeSession::new(&model, act);
                            tokens.iter().map(|&t| session.push(t)).collect()
                        })
                        .collect();
                    // Batched: tiny pages force paging mid-stream; stream 1
                    // uses VecKv to prove storage-agnosticism in one batch.
                    let page_floats = 2 * cfg.d_model;
                    let mut pool = KvPool::new(page_floats, 256);
                    let tpp = page_floats / cfg.d_model;
                    let mut stores: Vec<Box<dyn KvStore>> = streams
                        .iter()
                        .enumerate()
                        .map(|(s, tokens)| -> Box<dyn KvStore> {
                            if s == 1 {
                                Box::new(VecKv::new(cfg.n_layers, cfg.d_model))
                            } else {
                                let need = pages_needed(cfg.n_layers, tokens.len(), tpp);
                                let pages = pool.try_reserve(need).expect("pool is large enough");
                                Box::new(PagedKv::new(
                                    cfg.n_layers,
                                    cfg.d_model,
                                    page_floats,
                                    pages,
                                ))
                            }
                        })
                        .collect();
                    for tick in 0..lens.iter().max().copied().unwrap() {
                        let live: Vec<usize> =
                            (0..streams.len()).filter(|&s| tick < lens[s]).collect();
                        let mut slots = Vec::new();
                        for (&s, kv) in live.iter().zip(
                            stores
                                .iter_mut()
                                .enumerate()
                                .filter(|(s, _)| tick < lens[*s])
                                .map(|(_, kv)| kv),
                        ) {
                            slots.push(StepSlot {
                                kv: kv.as_mut(),
                                token: streams[s][tick],
                                pos: tick,
                            });
                        }
                        let logits = model.advance_batch(act, &mut slots);
                        assert_eq!(logits.len(), live.len());
                        for (row, &s) in logits.iter().zip(&live) {
                            assert_eq!(
                                row,
                                &expected[s][tick],
                                "stream {s} diverged at tick {tick} \
                                 (act={}, threads={threads})",
                                act.is_some()
                            );
                        }
                    }
                });
            }
        }
    }

    #[test]
    fn decode_session_resumes_mid_stream() {
        // prefill(prompt) then push(rest) must equal pushing everything —
        // the property that makes the serve layer's streaming resumable.
        let model = teacher(3);
        let mut rng = Rng::seed_from(17);
        let tokens = random_tokens(&mut rng, model.config.vocab, 9);
        let mut whole = DecodeSession::new(&model, None);
        let mut last_whole = Vec::new();
        for &t in &tokens {
            last_whole = whole.push(t);
        }
        let mut split = DecodeSession::new(&model, None);
        split.prefill(&tokens[..4]).unwrap();
        let mut last_split = Vec::new();
        for &t in &tokens[4..] {
            last_split = split.push(t);
        }
        assert_eq!(last_whole, last_split);
        assert_eq!(whole.tokens(), split.tokens());
        assert_eq!(whole.len(), 9);
        assert!(!whole.is_empty());
    }

    #[test]
    fn incremental_greedy_generation_matches_full_recompute() {
        let q = OliveQuantizer::int4();
        for seed in [4u64, 5, 6] {
            let model = teacher(seed);
            let mut rng = Rng::seed_from(seed ^ 0xABCD);
            let prompt = random_tokens(&mut rng, model.config.vocab, 6);
            for act in [None, Some(&q as &dyn TensorQuantizer)] {
                let fast = generate_greedy(&model, &prompt, 12, act);
                let slow = generate_greedy_recompute(&model, &prompt, 12, act);
                assert_eq!(fast, slow, "seed {seed}, act={}", act.is_some());
                assert!(fast.iter().all(|&t| t < model.config.vocab));
            }
        }
    }

    #[test]
    fn generation_is_thread_count_invariant() {
        let model = teacher(7);
        let mut rng = Rng::seed_from(23);
        let prompt = random_tokens(&mut rng, model.config.vocab, 5);
        let run = || generate_greedy(&model, &prompt, 10, None);
        let seq = olive_runtime::with_threads(1, run);
        let par = olive_runtime::with_threads(8, run);
        assert_eq!(seq, par);
    }

    #[test]
    fn quantized_student_still_tracks_the_teacher_closely() {
        // A sanity anchor for the generation workload: an OliVe-4bit student
        // should agree with its teacher on a majority of greedy steps.
        let model = teacher(8);
        let student = model.quantize_weights(&OliveQuantizer::int4());
        let mut rng = Rng::seed_from(31);
        let prompt = random_tokens(&mut rng, model.config.vocab, 8);
        let teacher_tokens = generate_greedy(&model, &prompt, 16, None);
        let student_tokens = generate_greedy(&student, &prompt, 16, None);
        let agree = teacher_tokens
            .iter()
            .zip(&student_tokens)
            .filter(|(a, b)| a == b)
            .count();
        assert!(agree * 2 >= teacher_tokens.len(), "agreement {agree}/16");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn decode_session_rejects_out_of_vocab_tokens() {
        let model = teacher(9);
        let mut session = DecodeSession::new(&model, None);
        let _ = session.push(100_000);
    }
}
