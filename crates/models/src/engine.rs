//! A small, runnable Transformer used as the accuracy proxy.
//!
//! The paper measures accuracy on GLUE/SQuAD and perplexity on WikiText/C4
//! using pretrained checkpoints. Offline we cannot run those models, so the
//! reproduction uses a **teacher–student evaluation** (see DESIGN.md):
//!
//! * the *teacher* is a randomly initialised but fully runnable Transformer
//!   whose weights and LayerNorm scales contain planted outliers — the same
//!   mechanism that produces activation outliers in real LLMs;
//! * a *student* is the same model with its weights (and optionally its
//!   activations) passed through a quantizer;
//! * "accuracy" is the fraction of inputs on which the student's argmax
//!   prediction matches the teacher's, and "perplexity" is the exponential of
//!   the student's cross-entropy against the teacher's argmax labels.
//!
//! What this preserves from the original evaluation is precisely the thing the
//! paper's accuracy tables measure: *how much a quantization scheme perturbs
//! the function computed by an outlier-heavy Transformer*.

use crate::config::ModelFamily;
use olive_core::TensorQuantizer;
use olive_tensor::matmul::{gelu, layer_norm, matmul, matmul_transpose_b, softmax_rows};
use olive_tensor::rng::Rng;
use olive_tensor::Tensor;

/// Architecture of the proxy Transformer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Model (hidden) dimension.
    pub d_model: usize,
    /// Number of attention heads.
    pub n_heads: usize,
    /// Number of layers.
    pub n_layers: usize,
    /// Feed-forward inner dimension.
    pub d_ff: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Sequence length used by the evaluation helpers.
    pub seq_len: usize,
}

impl EngineConfig {
    /// A tiny configuration for unit tests (fast even in debug builds).
    pub fn tiny() -> Self {
        EngineConfig {
            d_model: 32,
            n_heads: 4,
            n_layers: 2,
            d_ff: 64,
            vocab: 64,
            seq_len: 16,
        }
    }

    /// A small configuration for the accuracy harnesses.
    pub fn small() -> Self {
        EngineConfig {
            d_model: 64,
            n_heads: 4,
            n_layers: 3,
            d_ff: 256,
            vocab: 128,
            seq_len: 32,
        }
    }

    /// Per-head dimension.
    pub fn head_dim(&self) -> usize {
        self.d_model / self.n_heads
    }
}

/// Weights of one Transformer layer.
#[derive(Debug, Clone)]
pub struct LayerWeights {
    /// Fused QKV projection `[d_model, 3·d_model]`.
    pub wqkv: Tensor,
    /// Output projection `[d_model, d_model]`.
    pub wo: Tensor,
    /// FFN up projection `[d_model, d_ff]`.
    pub w1: Tensor,
    /// FFN down projection `[d_ff, d_model]`.
    pub w2: Tensor,
    /// Pre-attention LayerNorm scale (contains planted outlier channels).
    pub ln1_gamma: Vec<f32>,
    /// Pre-attention LayerNorm shift.
    pub ln1_beta: Vec<f32>,
    /// Pre-FFN LayerNorm scale.
    pub ln2_gamma: Vec<f32>,
    /// Pre-FFN LayerNorm shift.
    pub ln2_beta: Vec<f32>,
}

/// The proxy Transformer model (teacher or student).
#[derive(Debug, Clone)]
pub struct TinyTransformer {
    /// Architecture.
    pub config: EngineConfig,
    /// Token embedding `[vocab, d_model]`; also used (transposed) as LM head.
    pub embedding: Tensor,
    /// Per-layer weights.
    pub layers: Vec<LayerWeights>,
    /// Final LayerNorm scale.
    pub ln_f_gamma: Vec<f32>,
    /// Final LayerNorm shift.
    pub ln_f_beta: Vec<f32>,
}

/// How strongly outliers are planted when generating a teacher.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutlierSeverity {
    /// Fraction of weight elements turned into outliers.
    pub weight_fraction: f64,
    /// Outlier magnitude multiplier range (relative to the weight std).
    pub weight_sigma: (f64, f64),
    /// Number of LayerNorm channels with amplified scale per layer.
    pub gamma_channels: usize,
    /// Amplified LayerNorm scale range.
    pub gamma_range: (f64, f64),
}

impl OutlierSeverity {
    /// Transformer-like severity (BERT/BART class models).
    pub fn transformer() -> Self {
        OutlierSeverity {
            weight_fraction: 0.003,
            weight_sigma: (8.0, 30.0),
            gamma_channels: 2,
            gamma_range: (3.0, 8.0),
        }
    }

    /// LLM-like severity (GPT/BLOOM/OPT class models, stronger outliers).
    pub fn llm() -> Self {
        OutlierSeverity {
            weight_fraction: 0.004,
            weight_sigma: (10.0, 60.0),
            gamma_channels: 3,
            gamma_range: (4.0, 14.0),
        }
    }

    /// Severity matching a model family.
    pub fn for_family(family: ModelFamily) -> Self {
        match family {
            ModelFamily::DecoderOnly => Self::llm(),
            _ => Self::transformer(),
        }
    }
}

impl TinyTransformer {
    /// Generates a teacher model with planted weight and LayerNorm outliers.
    pub fn generate(config: EngineConfig, severity: OutlierSeverity, rng: &mut Rng) -> Self {
        let d = config.d_model;
        let gen_weight = |rows: usize, cols: usize, rng: &mut Rng| -> Tensor {
            let std = 1.0 / (rows as f64).sqrt();
            let mut data = vec![0.0f32; rows * cols];
            rng.fill_normal(&mut data, 0.0, std);
            let n_out = ((rows * cols) as f64 * severity.weight_fraction).round() as usize;
            for _ in 0..n_out {
                let i = rng.below(rows * cols);
                let mag = rng.uniform_range(severity.weight_sigma.0, severity.weight_sigma.1) * std;
                let sign = if rng.chance(0.5) { 1.0 } else { -1.0 };
                data[i] = (sign * mag) as f32;
            }
            Tensor::from_vec(vec![rows, cols], data)
        };
        let gen_gamma = |n: usize, rng: &mut Rng| -> Vec<f32> {
            let mut g: Vec<f32> = (0..n).map(|_| 1.0 + rng.normal(0.0, 0.1) as f32).collect();
            for _ in 0..severity.gamma_channels {
                let i = rng.below(n);
                g[i] = rng.uniform_range(severity.gamma_range.0, severity.gamma_range.1) as f32;
            }
            g
        };

        let embedding = gen_weight(config.vocab, d, rng);
        let layers = (0..config.n_layers)
            .map(|_| LayerWeights {
                wqkv: gen_weight(d, 3 * d, rng),
                wo: gen_weight(d, d, rng),
                w1: gen_weight(d, config.d_ff, rng),
                w2: gen_weight(config.d_ff, d, rng),
                ln1_gamma: gen_gamma(d, rng),
                ln1_beta: vec![0.0; d],
                ln2_gamma: gen_gamma(d, rng),
                ln2_beta: vec![0.0; d],
            })
            .collect();
        TinyTransformer {
            config,
            embedding,
            layers,
            ln_f_gamma: gen_gamma(d, rng),
            ln_f_beta: vec![0.0; d],
        }
    }

    /// Returns a copy whose weight matrices have been passed through `f`.
    pub fn map_weights<F: Fn(&str, &Tensor) -> Tensor>(&self, f: F) -> Self {
        let mut out = self.clone();
        out.embedding = f("embedding", &self.embedding);
        for (i, layer) in out.layers.iter_mut().enumerate() {
            layer.wqkv = f(&format!("layer{}.wqkv", i), &self.layers[i].wqkv);
            layer.wo = f(&format!("layer{}.wo", i), &self.layers[i].wo);
            layer.w1 = f(&format!("layer{}.w1", i), &self.layers[i].w1);
            layer.w2 = f(&format!("layer{}.w2", i), &self.layers[i].w2);
        }
        out
    }

    /// Returns a student whose weights are fake-quantized with `q`.
    ///
    /// This is the expensive, fully deterministic step of preparing a
    /// student. Callers that evaluate the same scheme repeatedly — the
    /// `olive-api` prepared pipeline and the serving daemons on top of it —
    /// quantize once and reuse the student across requests, mirroring how
    /// `olive_core::OvpTensor` builds its packed integer plan once on first
    /// GEMM and caches it (`olive_core::PackedPlan`).
    pub fn quantize_weights(&self, q: &dyn TensorQuantizer) -> Self {
        self.map_weights(|_, w| q.quantize_dequantize(w))
    }

    /// Iterates over the model's weight matrices with their names.
    pub fn named_weights(&self) -> Vec<(String, &Tensor)> {
        let mut v = vec![("embedding".to_string(), &self.embedding)];
        for (i, l) in self.layers.iter().enumerate() {
            v.push((format!("layer{}.wqkv", i), &l.wqkv));
            v.push((format!("layer{}.wo", i), &l.wo));
            v.push((format!("layer{}.w1", i), &l.w1));
            v.push((format!("layer{}.w2", i), &l.w2));
        }
        v
    }

    /// Runs the model on a token sequence and returns the logits of every
    /// position, `[seq_len, vocab]`.
    ///
    /// If `act_quant` is given, the input activations of every GEMM are
    /// fake-quantized first (activation quantization, as in the paper's
    /// weight+activation setting).
    ///
    /// # Panics
    ///
    /// Panics if any token id is out of vocabulary range.
    pub fn forward(&self, tokens: &[usize], act_quant: Option<&dyn TensorQuantizer>) -> Tensor {
        let d = self.config.d_model;
        let seq = tokens.len();
        // Token embedding (plus a deterministic sinusoidal position signal).
        let mut x = Tensor::zeros(vec![seq, d]);
        for (pos, &tok) in tokens.iter().enumerate() {
            assert!(tok < self.config.vocab, "token {} out of range", tok);
            for j in 0..d {
                let pe = ((pos as f32) / 64f32.powf(j as f32 / d as f32)).sin() * 0.1;
                x[[pos, j]] = self.embedding[[tok, j]] + pe;
            }
        }

        let maybe_q = |t: &Tensor| -> Tensor {
            match act_quant {
                Some(q) => q.quantize_dequantize(t),
                None => t.clone(),
            }
        };

        for layer in &self.layers {
            // Pre-norm attention block.
            let normed = layer_norm(&x, &layer.ln1_gamma, &layer.ln1_beta, 1e-5);
            let qkv_in = maybe_q(&normed);
            let qkv = matmul(&qkv_in, &layer.wqkv);
            let attn = self.attention(&qkv);
            let attn_in = maybe_q(&attn);
            let out = matmul(&attn_in, &layer.wo);
            x = x.add(&out);

            // Pre-norm FFN block.
            let normed = layer_norm(&x, &layer.ln2_gamma, &layer.ln2_beta, 1e-5);
            let ffn_in = maybe_q(&normed);
            let h = gelu(&matmul(&ffn_in, &layer.w1));
            let h_in = maybe_q(&h);
            let ffn = matmul(&h_in, &layer.w2);
            x = x.add(&ffn);
        }

        let normed = layer_norm(&x, &self.ln_f_gamma, &self.ln_f_beta, 1e-5);
        let head_in = maybe_q(&normed);
        // Weight tying: logits = x · Eᵀ.
        matmul_transpose_b(&head_in, &self.embedding)
    }

    /// Multi-head self-attention over a fused `[seq, 3·d_model]` QKV tensor.
    fn attention(&self, qkv: &Tensor) -> Tensor {
        let d = self.config.d_model;
        let seq = qkv.rows();
        let heads = self.config.n_heads;
        let dh = self.config.head_dim();
        let mut out = Tensor::zeros(vec![seq, d]);
        for h in 0..heads {
            // Slice Q, K, V for this head.
            let mut q = Tensor::zeros(vec![seq, dh]);
            let mut k = Tensor::zeros(vec![seq, dh]);
            let mut v = Tensor::zeros(vec![seq, dh]);
            for i in 0..seq {
                for j in 0..dh {
                    q[[i, j]] = qkv[[i, h * dh + j]];
                    k[[i, j]] = qkv[[i, d + h * dh + j]];
                    v[[i, j]] = qkv[[i, 2 * d + h * dh + j]];
                }
            }
            let scale = 1.0 / (dh as f32).sqrt();
            let scores = matmul_transpose_b(&q, &k).scale(scale);
            let probs = softmax_rows(&scores);
            let ctx = matmul(&probs, &v);
            for i in 0..seq {
                for j in 0..dh {
                    out[[i, j + h * dh]] = ctx[[i, j]];
                }
            }
        }
        out
    }

    /// Next-token prediction (argmax of the last position's logits).
    pub fn predict(&self, tokens: &[usize], act_quant: Option<&dyn TensorQuantizer>) -> usize {
        let logits = self.forward(tokens, act_quant);
        argmax(logits.row(logits.rows() - 1))
    }

    /// The decision margin of the last position: the gap between the largest
    /// and second-largest logit. Inputs with a large margin correspond to the
    /// "confident" predictions a trained task model makes; they are what the
    /// confidence-filtered evaluation tasks are built from.
    pub fn decision_margin(&self, tokens: &[usize]) -> f32 {
        let logits = self.forward(tokens, None);
        let row = logits.row(logits.rows() - 1);
        let mut best = f32::NEG_INFINITY;
        let mut second = f32::NEG_INFINITY;
        for &v in row {
            if v > best {
                second = best;
                best = v;
            } else if v > second {
                second = v;
            }
        }
        best - second
    }
}

/// Index of the largest value (first winner on ties) — the greedy decoding
/// rule shared by the evaluation metrics and [`crate::decode`].
pub fn argmax(row: &[f32]) -> usize {
    let mut best = 0;
    let mut best_v = f32::NEG_INFINITY;
    for (i, &v) in row.iter().enumerate() {
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

fn softmax_vec(row: &[f32]) -> Vec<f64> {
    let max = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b)) as f64;
    let exps: Vec<f64> = row.iter().map(|&v| ((v as f64) - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.iter().map(|e| e / sum.max(1e-300)).collect()
}

/// An evaluation task: a set of random input sequences for one teacher.
#[derive(Debug, Clone)]
pub struct EvalTask {
    /// Task name (used for the GLUE-like task labels in the harnesses).
    pub name: String,
    /// Input sequences (token ids).
    pub inputs: Vec<Vec<usize>>,
}

impl EvalTask {
    /// Generates a task of `n_inputs` random sequences.
    pub fn generate(name: &str, config: &EngineConfig, n_inputs: usize, rng: &mut Rng) -> Self {
        let inputs = (0..n_inputs)
            .map(|_| {
                (0..config.seq_len)
                    .map(|_| rng.below(config.vocab))
                    .collect()
            })
            .collect();
        EvalTask {
            name: name.to_string(),
            inputs,
        }
    }

    /// Generates a *confidence-filtered* task: `oversample × n_inputs` random
    /// sequences are scored by the teacher's decision margin and only the
    /// `n_inputs` most confident ones are kept.
    ///
    /// Fine-tuned task models (the GLUE/SQuAD checkpoints of the paper) make
    /// high-margin decisions on most of their evaluation data — that margin is
    /// what lets a well-designed 4-bit quantization preserve accuracy. A
    /// randomly initialised teacher has many near-tie decisions, so without
    /// this filter *any* perturbation (even FP16 rounding) flips a large
    /// fraction of predictions and the comparison degenerates. Filtering to
    /// confident inputs restores the property the real benchmark has.
    pub fn generate_confident(
        name: &str,
        teacher: &TinyTransformer,
        n_inputs: usize,
        oversample: usize,
        rng: &mut Rng,
    ) -> Self {
        let config = &teacher.config;
        let candidates = EvalTask::generate(name, config, n_inputs * oversample.max(1), rng);
        // Margin scoring is embarrassingly parallel over candidates; par_map
        // keeps input order, and the stable sort below keeps ties
        // deterministic, so the selected task is thread-count independent.
        let margins =
            olive_runtime::par_map(&candidates.inputs, |input| teacher.decision_margin(input));
        let mut scored: Vec<(f32, Vec<usize>)> =
            margins.into_iter().zip(candidates.inputs).collect();
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
        EvalTask {
            name: name.to_string(),
            inputs: scored.into_iter().take(n_inputs).map(|(_, i)| i).collect(),
        }
    }
}

/// Fraction of task inputs on which `student` predicts the same next token as
/// `teacher` (the "accuracy" proxy).
///
/// The batch is sharded over the `olive-runtime` worker pool (one forward
/// pass per input is independent of every other); the score is identical at
/// every thread count.
pub fn agreement(
    teacher: &TinyTransformer,
    student: &TinyTransformer,
    task: &EvalTask,
    act_quant: Option<&dyn TensorQuantizer>,
) -> f64 {
    if task.inputs.is_empty() {
        return 1.0;
    }
    let hits: usize = olive_runtime::par_map(&task.inputs, |input| {
        usize::from(teacher.predict(input, None) == student.predict(input, act_quant))
    })
    .into_iter()
    .sum();
    hits as f64 / task.inputs.len() as f64
}

/// Fraction of *positions* (across all task inputs) at which `student`'s
/// argmax prediction matches `teacher`'s — the SQuAD-style exact-match proxy
/// of Tbl. 8, stricter than the last-position [`agreement`].
///
/// Sharded over the batch like the other metrics; the per-input counters are
/// integers, so the score is identical at every thread count.
pub fn position_agreement(
    teacher: &TinyTransformer,
    student: &TinyTransformer,
    task: &EvalTask,
    act_quant: Option<&dyn TensorQuantizer>,
) -> f64 {
    if task.inputs.is_empty() {
        return 1.0;
    }
    let partials = olive_runtime::par_map(&task.inputs, |input| {
        let t_logits = teacher.forward(input, None);
        let s_logits = student.forward(input, act_quant);
        let mut hits = 0usize;
        for pos in 0..t_logits.rows() {
            if argmax(t_logits.row(pos)) == argmax(s_logits.row(pos)) {
                hits += 1;
            }
        }
        (hits, t_logits.rows())
    });
    let mut hits = 0usize;
    let mut total = 0usize;
    for (h, rows) in partials {
        hits += h;
        total += rows;
    }
    hits as f64 / total.max(1) as f64
}

/// Functional-fidelity score: the mean cosine similarity between the teacher's
/// and the student's logit vectors over every position of every task input.
///
/// This is the primary accuracy proxy of the reproduction (see DESIGN.md):
/// an untrained teacher has many near-tie argmax decisions, so raw argmax
/// agreement punishes *every* perturbation by a large seed-dependent constant,
/// whereas fine-tuned checkpoints (what the paper evaluates) have wide
/// decision margins. Cosine fidelity measures the same thing the paper's
/// accuracy numbers measure — how much quantization perturbs the computed
/// function — without that artifact: FP32 scores exactly 1.0, near-lossless
/// schemes score ≈ 1.0 and outlier-destroying schemes drop sharply.
pub fn logit_fidelity(
    teacher: &TinyTransformer,
    student: &TinyTransformer,
    task: &EvalTask,
    act_quant: Option<&dyn TensorQuantizer>,
) -> f64 {
    // One (sum, count) partial per input, computed in parallel over the batch
    // and folded in input order — the f64 reduction order is therefore fixed,
    // keeping the score bit-identical at every thread count.
    let partials = olive_runtime::par_map(&task.inputs, |input| {
        let t_logits = teacher.forward(input, None);
        let s_logits = student.forward(input, act_quant);
        let mut sum = 0.0f64;
        for pos in 0..t_logits.rows() {
            sum += cosine(t_logits.row(pos), s_logits.row(pos));
        }
        (sum, t_logits.rows())
    });
    let mut total = 0.0f64;
    let mut count = 0usize;
    for (sum, rows) in partials {
        total += sum;
        count += rows;
    }
    if count == 0 {
        1.0
    } else {
        total / count as f64
    }
}

/// All four teacher–student scores of one evaluation, computed in a single
/// pass (one teacher + one student forward per input).
///
/// Each field is **bit-identical** to the corresponding standalone metric
/// function ([`logit_fidelity`], [`agreement`], [`position_agreement`],
/// [`pseudo_perplexity`]): the per-input partials and the in-input-order f64
/// folds are the same, only the forward passes are shared. This is what the
/// `olive::api` evaluation pipeline runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalScores {
    /// Mean cosine similarity of the logit vectors (the accuracy proxy).
    pub fidelity: f64,
    /// Last-position argmax agreement.
    pub agreement: f64,
    /// All-position argmax agreement (the SQuAD-style EM proxy).
    pub position_agreement: f64,
    /// Pseudo-perplexity against the teacher's argmax labels.
    pub perplexity: f64,
}

/// Computes [`EvalScores`] for a student against a teacher on a task.
pub fn eval_scores(
    teacher: &TinyTransformer,
    student: &TinyTransformer,
    task: &EvalTask,
    act_quant: Option<&dyn TensorQuantizer>,
) -> EvalScores {
    if task.inputs.is_empty() {
        return EvalScores {
            fidelity: 1.0,
            agreement: 1.0,
            position_agreement: 1.0,
            perplexity: 1.0,
        };
    }
    let partials = olive_runtime::par_map(&task.inputs, |input| {
        let t_logits = teacher.forward(input, None);
        let s_logits = student.forward(input, act_quant);
        let rows = t_logits.rows();
        let mut cos_sum = 0.0f64;
        let mut pos_hits = 0usize;
        let mut ce = 0.0f64;
        for pos in 0..rows {
            let t_row = t_logits.row(pos);
            let s_row = s_logits.row(pos);
            cos_sum += cosine(t_row, s_row);
            let label = argmax(t_row);
            if label == argmax(s_row) {
                pos_hits += 1;
            }
            let probs = softmax_vec(s_row);
            let p = probs[label].max(1e-12);
            ce += -p.ln();
        }
        let last_hit = argmax(t_logits.row(rows - 1)) == argmax(s_logits.row(rows - 1));
        (cos_sum, pos_hits, ce, usize::from(last_hit), rows)
    });
    let mut cos_total = 0.0f64;
    let mut ce_total = 0.0f64;
    let mut pos_hits = 0usize;
    let mut last_hits = 0usize;
    let mut rows_total = 0usize;
    for (cos_sum, hits, ce, last, rows) in partials {
        cos_total += cos_sum;
        ce_total += ce;
        pos_hits += hits;
        last_hits += last;
        rows_total += rows;
    }
    EvalScores {
        // The `rows_total == 0` guards mirror the standalone functions'
        // empty-count behaviour (only reachable with zero-length inputs).
        fidelity: if rows_total == 0 {
            1.0
        } else {
            cos_total / rows_total as f64
        },
        agreement: last_hits as f64 / task.inputs.len() as f64,
        position_agreement: pos_hits as f64 / rows_total.max(1) as f64,
        perplexity: if rows_total == 0 {
            1.0
        } else {
            (ce_total / rows_total as f64).exp()
        },
    }
}

fn cosine(a: &[f32], b: &[f32]) -> f64 {
    let mut dot = 0.0f64;
    let mut na = 0.0f64;
    let mut nb = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        dot += x as f64 * y as f64;
        na += (x as f64).powi(2);
        nb += (y as f64).powi(2);
    }
    if na == 0.0 || nb == 0.0 {
        return if na == nb { 1.0 } else { 0.0 };
    }
    dot / (na.sqrt() * nb.sqrt())
}

/// Pseudo-perplexity: `exp` of the student's mean cross-entropy against the
/// teacher's argmax next-token labels over all positions.
pub fn pseudo_perplexity(
    teacher: &TinyTransformer,
    student: &TinyTransformer,
    task: &EvalTask,
    act_quant: Option<&dyn TensorQuantizer>,
) -> f64 {
    // Sharded over the batch like `logit_fidelity`, with the same
    // fold-in-input-order determinism argument.
    let partials = olive_runtime::par_map(&task.inputs, |input| {
        let t_logits = teacher.forward(input, None);
        let s_logits = student.forward(input, act_quant);
        let mut ce = 0.0f64;
        for pos in 0..t_logits.rows() {
            let label = argmax(t_logits.row(pos));
            let probs = softmax_vec(s_logits.row(pos));
            let p = probs[label].max(1e-12);
            ce += -p.ln();
        }
        (ce, t_logits.rows())
    });
    let mut total_ce = 0.0f64;
    let mut count = 0usize;
    for (ce, rows) in partials {
        total_ce += ce;
        count += rows;
    }
    if count == 0 {
        1.0
    } else {
        (total_ce / count as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olive_baselines::UniformQuantizer;
    use olive_core::{Fp32Baseline, OliveQuantizer};

    fn setup() -> (TinyTransformer, EvalTask) {
        let cfg = EngineConfig::tiny();
        let mut rng = Rng::seed_from(42);
        let teacher = TinyTransformer::generate(cfg, OutlierSeverity::transformer(), &mut rng);
        let task = EvalTask::generate("unit", &cfg, 12, &mut rng);
        (teacher, task)
    }

    #[test]
    fn forward_produces_logits_of_right_shape() {
        let (teacher, task) = setup();
        let logits = teacher.forward(&task.inputs[0], None);
        assert_eq!(
            logits.shape(),
            &[teacher.config.seq_len, teacher.config.vocab]
        );
        assert!(logits.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn teacher_agrees_with_itself() {
        let (teacher, task) = setup();
        assert_eq!(agreement(&teacher, &teacher, &task, None), 1.0);
    }

    #[test]
    fn fp32_baseline_student_is_identical() {
        let (teacher, task) = setup();
        let student = teacher.quantize_weights(&Fp32Baseline);
        assert_eq!(agreement(&teacher, &student, &task, None), 1.0);
    }

    #[test]
    fn olive_4bit_weights_preserve_most_predictions() {
        let (teacher, task) = setup();
        let student = teacher.quantize_weights(&OliveQuantizer::int4());
        let acc = agreement(&teacher, &student, &task, None);
        assert!(acc >= 0.75, "agreement {}", acc);
    }

    #[test]
    fn olive_beats_uniform_int4() {
        let (teacher, task) = setup();
        let olive = teacher.quantize_weights(&OliveQuantizer::int4());
        let int4 = teacher.quantize_weights(&UniformQuantizer::int4());
        let acc_olive = agreement(&teacher, &olive, &task, None);
        let acc_int4 = agreement(&teacher, &int4, &task, None);
        assert!(
            acc_olive >= acc_int4,
            "olive {} vs int4 {}",
            acc_olive,
            acc_int4
        );
    }

    #[test]
    fn position_agreement_is_perfect_for_identity_and_bounded_otherwise() {
        let (teacher, task) = setup();
        assert_eq!(position_agreement(&teacher, &teacher, &task, None), 1.0);
        let student = teacher.quantize_weights(&UniformQuantizer::int4());
        let pos = position_agreement(&teacher, &student, &task, None);
        assert!((0.0..=1.0).contains(&pos));
        // Matching at every position is at most as easy as matching anywhere,
        // so the per-position score is bounded by 1 and thread-invariant.
        let seq =
            olive_runtime::with_threads(1, || position_agreement(&teacher, &student, &task, None));
        let par =
            olive_runtime::with_threads(8, || position_agreement(&teacher, &student, &task, None));
        assert_eq!(seq, par);
    }

    #[test]
    fn perplexity_of_identity_student_is_low() {
        let (teacher, task) = setup();
        let ppl_self = pseudo_perplexity(&teacher, &teacher, &task, None);
        let int4 = teacher.quantize_weights(&UniformQuantizer::int4());
        let ppl_int4 = pseudo_perplexity(&teacher, &int4, &task, None);
        assert!(ppl_self < ppl_int4, "{} vs {}", ppl_self, ppl_int4);
    }

    #[test]
    fn clipping_outliers_destroys_agreement_more_than_victim_pruning() {
        // The Fig. 3 motivation, reproduced end-to-end on the proxy model.
        let (teacher, task) = setup();
        let clipped = teacher.map_weights(|_, w| {
            let s = olive_tensor::stats::TensorStats::compute(w);
            let thr = (s.mean.abs() + 3.0 * s.std) as f32;
            olive_core::pair::clip_outliers(w, thr)
        });
        let pruned = teacher.map_weights(|_, w| {
            let s = olive_tensor::stats::TensorStats::compute(w);
            let thr = (s.mean.abs() + 3.0 * s.std) as f32;
            olive_core::pair::prune_victims(w, thr)
        });
        let acc_clip = agreement(&teacher, &clipped, &task, None);
        let acc_prune = agreement(&teacher, &pruned, &task, None);
        assert!(
            acc_prune >= acc_clip,
            "prune {} vs clip {}",
            acc_prune,
            acc_clip
        );
    }

    #[test]
    fn activation_quantization_is_supported() {
        let (teacher, task) = setup();
        let student = teacher.quantize_weights(&OliveQuantizer::int4());
        let q = OliveQuantizer::int4();
        let acc = agreement(&teacher, &student, &task, Some(&q));
        assert!(acc > 0.3, "agreement {}", acc);
    }

    #[test]
    fn eval_scores_is_bit_identical_to_the_standalone_metrics() {
        let (teacher, task) = setup();
        let student = teacher.quantize_weights(&OliveQuantizer::int4());
        let q = OliveQuantizer::int4();
        for act in [None, Some(&q as &dyn TensorQuantizer)] {
            let fused = eval_scores(&teacher, &student, &task, act);
            assert_eq!(
                fused.fidelity,
                logit_fidelity(&teacher, &student, &task, act)
            );
            assert_eq!(fused.agreement, agreement(&teacher, &student, &task, act));
            assert_eq!(
                fused.position_agreement,
                position_agreement(&teacher, &student, &task, act)
            );
            assert_eq!(
                fused.perplexity,
                pseudo_perplexity(&teacher, &student, &task, act)
            );
        }
    }

    #[test]
    fn eval_scores_of_empty_task_is_neutral() {
        let (teacher, _) = setup();
        let empty = EvalTask {
            name: "empty".into(),
            inputs: vec![],
        };
        let s = eval_scores(&teacher, &teacher, &empty, None);
        assert_eq!(s.fidelity, 1.0);
        assert_eq!(s.agreement, 1.0);
        assert_eq!(s.position_agreement, 1.0);
        assert_eq!(s.perplexity, 1.0);
    }

    #[test]
    fn batched_eval_is_thread_count_invariant() {
        // The full teacher/student evaluation stack — batched forward passes,
        // the parallel GEMMs under them, and the f64 score reductions — must
        // produce bit-identical scores at 1 and 8 threads.
        let (teacher, task) = setup();
        let student = teacher.quantize_weights(&OliveQuantizer::int4());
        let q = OliveQuantizer::int4();
        let run = || {
            (
                agreement(&teacher, &student, &task, Some(&q)),
                logit_fidelity(&teacher, &student, &task, Some(&q)),
                pseudo_perplexity(&teacher, &student, &task, Some(&q)),
            )
        };
        let seq = olive_runtime::with_threads(1, run);
        let par = olive_runtime::with_threads(8, run);
        assert_eq!(seq, par);
    }

    #[test]
    fn confident_task_selection_is_thread_count_invariant() {
        let cfg = EngineConfig::tiny();
        let mut rng = Rng::seed_from(7);
        let teacher = TinyTransformer::generate(cfg, OutlierSeverity::llm(), &mut rng);
        let gen = |threads: usize| {
            let mut rng = Rng::seed_from(99);
            olive_runtime::with_threads(threads, || {
                EvalTask::generate_confident("unit", &teacher, 6, 4, &mut rng)
            })
        };
        assert_eq!(gen(1).inputs, gen(8).inputs);
    }

    #[test]
    fn named_weights_cover_all_layers() {
        let (teacher, _) = setup();
        let names = teacher.named_weights();
        assert_eq!(names.len(), 1 + 4 * teacher.config.n_layers);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_vocab_token_panics() {
        let (teacher, _) = setup();
        let _ = teacher.forward(&[100_000], None);
    }
}
