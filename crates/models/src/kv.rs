//! Externally-owned key/value cache storage for incremental decoding.
//!
//! [`DecodeSession`](crate::decode::DecodeSession) originally owned its KV
//! cache as per-layer growable `Vec<f32>`s. That is fine for one session, but
//! a continuous-batching scheduler keeps *many* sessions in flight at once
//! and admits/retires them constantly — per-session growable vectors
//! fragment the allocator and make admission cost unpredictable. This module
//! splits storage out of the session behind the [`KvStore`] trait so the
//! serving layer can supply pooled memory:
//!
//! * [`VecKv`] — the simple owned store (per-layer flat vectors), used by
//!   [`DecodeSession`](crate::decode::DecodeSession) and anywhere a single
//!   self-contained session is enough;
//! * [`KvPool`] — a fixed-capacity pool of uniform pages (`Box<[f32]>`)
//!   recycled across streams: releasing a page returns it to the free list
//!   instead of the allocator, so steady-state serving performs no KV
//!   allocation at all;
//! * [`PagedKv`] — a `KvStore` over pages reserved from a [`KvPool`]. A
//!   stream reserves *all* the pages its worst case needs up front
//!   ([`pages_needed`]) and hands them back on completion, so appending
//!   mid-decode can never fail and a short pool only ever delays admission
//!   (timing), never changes bytes.
//!
//! Storage layout is identical in all stores — row-major `[pos, d]` per
//! layer, keys and values separate, fused head-major within a row (exactly
//! the layout the old in-session cache used) — so swapping stores cannot
//! change any arithmetic: the decode-cache determinism contract (see
//! [`crate::decode`]) is storage-agnostic by construction.

/// Per-layer key/value row storage for one decode stream.
///
/// Positions are append-only (causal attention never rewrites a past
/// position) and every row has the same width `d_model`. `append` is called
/// once per layer per decoded position, in position order.
pub trait KvStore {
    /// Appends one position's key and value rows for `layer`.
    fn append(&mut self, layer: usize, k_row: &[f32], v_row: &[f32]);
    /// The key row of `layer` at `pos` (`pos` must be appended already).
    fn k_row(&self, layer: usize, pos: usize) -> &[f32];
    /// The value row of `layer` at `pos`.
    fn v_row(&self, layer: usize, pos: usize) -> &[f32];
}

/// The plain owned store: one flat `Vec<f32>` of keys and one of values per
/// layer. Equivalent to the pre-pool in-session cache.
pub struct VecKv {
    d: usize,
    k: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl VecKv {
    /// An empty store for `n_layers` layers of `d`-wide rows.
    pub fn new(n_layers: usize, d: usize) -> Self {
        VecKv {
            d,
            k: vec![Vec::new(); n_layers],
            v: vec![Vec::new(); n_layers],
        }
    }
}

impl KvStore for VecKv {
    fn append(&mut self, layer: usize, k_row: &[f32], v_row: &[f32]) {
        debug_assert_eq!(k_row.len(), self.d);
        debug_assert_eq!(v_row.len(), self.d);
        self.k[layer].extend_from_slice(k_row);
        self.v[layer].extend_from_slice(v_row);
    }

    fn k_row(&self, layer: usize, pos: usize) -> &[f32] {
        &self.k[layer][pos * self.d..(pos + 1) * self.d]
    }

    fn v_row(&self, layer: usize, pos: usize) -> &[f32] {
        &self.v[layer][pos * self.d..(pos + 1) * self.d]
    }
}

/// A fixed-capacity pool of uniform KV pages.
///
/// Pages are `page_floats`-long `Box<[f32]>` buffers. The pool allocates a
/// page at most once: released pages go on a free list and are handed out
/// again verbatim (stale contents are harmless — [`PagedKv`] only ever reads
/// positions it has appended). `try_reserve` is all-or-nothing so a stream
/// is either fully admitted or not admitted at all; it can never strand
/// half-reserved pages or fail mid-decode.
pub struct KvPool {
    page_floats: usize,
    capacity: usize,
    free: Vec<Box<[f32]>>,
    /// Pages handed out and not yet released (allocated lazily on first use).
    used: usize,
    /// Pages ever allocated; `capacity - allocated` can still be minted.
    allocated: usize,
}

impl KvPool {
    /// A pool of at most `capacity_pages` pages of `page_floats` floats each.
    pub fn new(page_floats: usize, capacity_pages: usize) -> Self {
        KvPool {
            page_floats: page_floats.max(1),
            capacity: capacity_pages,
            free: Vec::new(),
            used: 0,
            allocated: 0,
        }
    }

    /// Floats per page.
    pub fn page_floats(&self) -> usize {
        self.page_floats
    }

    /// Total pages this pool may hand out.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Pages currently reserved by live streams.
    pub fn pages_used(&self) -> usize {
        self.used
    }

    /// Pages available for reservation right now.
    pub fn pages_free(&self) -> usize {
        self.capacity - self.used
    }

    /// Reserves exactly `n` pages, or `None` (reserving nothing) if fewer
    /// than `n` are free — the caller parks the stream and retries after a
    /// release.
    pub fn try_reserve(&mut self, n: usize) -> Option<Vec<Box<[f32]>>> {
        if n > self.pages_free() {
            return None;
        }
        let mut pages = Vec::with_capacity(n);
        for _ in 0..n {
            let page = self.free.pop().unwrap_or_else(|| {
                self.allocated += 1;
                vec![0.0; self.page_floats].into_boxed_slice()
            });
            pages.push(page);
        }
        self.used += n;
        Some(pages)
    }

    /// Returns pages to the free list for reuse.
    pub fn release(&mut self, pages: Vec<Box<[f32]>>) {
        self.used -= pages.len();
        self.free.extend(pages);
    }
}

/// Pages needed by one stream of `n_layers` layers decoding at most
/// `max_positions` positions, with `tokens_per_page` rows per page: keys and
/// values each need `ceil(max_positions / tokens_per_page)` pages per layer.
pub fn pages_needed(n_layers: usize, max_positions: usize, tokens_per_page: usize) -> usize {
    n_layers * 2 * max_positions.div_ceil(tokens_per_page.max(1))
}

struct LayerPages {
    k: Vec<Box<[f32]>>,
    v: Vec<Box<[f32]>>,
    len: usize,
}

/// A [`KvStore`] over pages reserved up front from a [`KvPool`].
///
/// Pages move from the spare stack into a layer's key or value run the first
/// time that layer crosses a page boundary; `into_pages` returns every page
/// (used and spare) for release. The `Default` value is an empty husk that
/// supports `std::mem::take` (the scheduler temporarily moves stores out of
/// its flight table to form `&mut dyn KvStore` slots).
#[derive(Default)]
pub struct PagedKv {
    d: usize,
    tokens_per_page: usize,
    layers: Vec<LayerPages>,
    spare: Vec<Box<[f32]>>,
}

impl PagedKv {
    /// A store for `n_layers` layers of `d`-wide rows over `pages`, each
    /// `page_floats` long. `pages` must cover the stream's worst case
    /// ([`pages_needed`]); running out mid-append is a logic error (panic),
    /// never a recoverable condition.
    ///
    /// # Panics
    ///
    /// Panics if a page holds fewer than one row (`page_floats < d`).
    pub fn new(n_layers: usize, d: usize, page_floats: usize, pages: Vec<Box<[f32]>>) -> Self {
        let tokens_per_page = page_floats / d.max(1);
        assert!(
            tokens_per_page > 0,
            "KV page of {page_floats} floats cannot hold a {d}-wide row"
        );
        PagedKv {
            d,
            tokens_per_page,
            layers: (0..n_layers)
                .map(|_| LayerPages {
                    k: Vec::new(),
                    v: Vec::new(),
                    len: 0,
                })
                .collect(),
            spare: pages,
        }
    }

    /// All pages (in use and spare), for returning to the [`KvPool`].
    pub fn into_pages(self) -> Vec<Box<[f32]>> {
        let mut pages = self.spare;
        for layer in self.layers {
            pages.extend(layer.k);
            pages.extend(layer.v);
        }
        pages
    }

    fn slot(&self, pos: usize) -> (usize, usize) {
        (
            pos / self.tokens_per_page,
            (pos % self.tokens_per_page) * self.d,
        )
    }
}

impl KvStore for PagedKv {
    fn append(&mut self, layer: usize, k_row: &[f32], v_row: &[f32]) {
        debug_assert_eq!(k_row.len(), self.d);
        debug_assert_eq!(v_row.len(), self.d);
        let pos = self.layers[layer].len;
        let (page, off) = self.slot(pos);
        if page == self.layers[layer].k.len() {
            let kp = self.spare.pop().expect("KV reservation exhausted (keys)");
            let vp = self.spare.pop().expect("KV reservation exhausted (values)");
            self.layers[layer].k.push(kp);
            self.layers[layer].v.push(vp);
        }
        let lp = &mut self.layers[layer];
        lp.k[page][off..off + self.d].copy_from_slice(k_row);
        lp.v[page][off..off + self.d].copy_from_slice(v_row);
        lp.len += 1;
    }

    fn k_row(&self, layer: usize, pos: usize) -> &[f32] {
        debug_assert!(pos < self.layers[layer].len);
        let (page, off) = self.slot(pos);
        &self.layers[layer].k[page][off..off + self.d]
    }

    fn v_row(&self, layer: usize, pos: usize) -> &[f32] {
        debug_assert!(pos < self.layers[layer].len);
        let (page, off) = self.slot(pos);
        &self.layers[layer].v[page][off..off + self.d]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(tag: f32, d: usize) -> Vec<f32> {
        (0..d).map(|j| tag + j as f32 / 100.0).collect()
    }

    #[test]
    fn vec_and_paged_stores_hold_identical_rows() {
        let (layers, d) = (2, 4);
        // 5 floats/page with d=4 -> 1 token per page: every append crosses a
        // page boundary, the harshest paging pattern.
        for page_floats in [5usize, 8, 64] {
            let mut pool = KvPool::new(page_floats, 64);
            let need = pages_needed(layers, 7, page_floats / d);
            let pages = pool.try_reserve(need).expect("pool sized for the test");
            let mut paged = PagedKv::new(layers, d, page_floats, pages);
            let mut flat = VecKv::new(layers, d);
            for pos in 0..7 {
                for layer in 0..layers {
                    let (k, v) = (row(pos as f32, d), row(-(pos as f32) - 1.0, d));
                    paged.append(layer, &k, &v);
                    flat.append(layer, &k, &v);
                }
            }
            for pos in 0..7 {
                for layer in 0..layers {
                    assert_eq!(paged.k_row(layer, pos), flat.k_row(layer, pos));
                    assert_eq!(paged.v_row(layer, pos), flat.v_row(layer, pos));
                }
            }
            pool.release(paged.into_pages());
            assert_eq!(pool.pages_used(), 0);
        }
    }

    #[test]
    fn pool_reservation_is_all_or_nothing_and_recycles_pages() {
        let mut pool = KvPool::new(16, 4);
        assert_eq!(pool.pages_free(), 4);
        let a = pool.try_reserve(3).unwrap();
        assert_eq!((pool.pages_used(), pool.pages_free()), (3, 1));
        assert!(pool.try_reserve(2).is_none(), "must not partially reserve");
        assert_eq!(pool.pages_used(), 3, "failed reserve must change nothing");
        let b = pool.try_reserve(1).unwrap();
        assert_eq!(pool.pages_free(), 0);
        pool.release(a);
        pool.release(b);
        assert_eq!((pool.pages_used(), pool.pages_free()), (0, 4));
        // Recycled pages come back dirty; PagedKv never reads unappended
        // positions, so contents are irrelevant — only the count matters.
        let again = pool.try_reserve(4).unwrap();
        assert_eq!(again.len(), 4);
        assert!(again.iter().all(|p| p.len() == 16));
    }

    #[test]
    fn pages_needed_covers_worst_case_exactly() {
        // 3 layers, up to 10 positions, 4 tokens/page: ceil(10/4)=3 pages
        // per lane, 2 lanes (k+v) per layer.
        assert_eq!(pages_needed(3, 10, 4), 18);
        assert_eq!(pages_needed(1, 1, 4), 2);
        assert_eq!(pages_needed(2, 8, 4), 8);
    }

    #[test]
    #[should_panic(expected = "KV reservation exhausted")]
    fn paged_kv_panics_on_under_reservation() {
        let mut paged = PagedKv::new(1, 2, 4, vec![vec![0.0; 4].into_boxed_slice(); 2]);
        paged.append(0, &[1.0, 2.0], &[3.0, 4.0]);
        paged.append(0, &[1.0, 2.0], &[3.0, 4.0]);
        // Third position needs a fresh page pair; the reservation is spent.
        paged.append(0, &[1.0, 2.0], &[3.0, 4.0]);
    }
}
