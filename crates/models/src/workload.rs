//! GEMM workload extraction.
//!
//! "The majority of Transformer layers are matrix multiplication operations"
//! (paper Sec. 5.1), so the performance models operate on the list of GEMMs
//! executed by one forward pass. This module turns a [`ModelConfig`] into that
//! list, distinguishing weight×activation GEMMs (whose B operand is a weight
//! tensor that can be compressed in DRAM) from activation×activation GEMMs
//! (the attention score and context products).

use crate::config::{ModelConfig, ModelFamily};

/// Which kind of operands a GEMM consumes (relevant for weight-only schemes
/// like GOBO and for DRAM-traffic accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GemmKind {
    /// Activations × weights (linear projections, FFN, LM head).
    WeightActivation,
    /// Activations × activations (QKᵀ and probability-value products).
    ActivationActivation,
}

/// One dense GEMM: `C[m, n] = A[m, k] × B[k, n]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Gemm {
    /// Descriptive name ("layer0.qkv", "layer3.ffn1", …).
    pub name: String,
    /// Rows of A / C.
    pub m: usize,
    /// Inner dimension.
    pub k: usize,
    /// Columns of B / C.
    pub n: usize,
    /// Operand kind.
    pub kind: GemmKind,
}

impl Gemm {
    /// Multiply-accumulate operations of this GEMM.
    pub fn macs(&self) -> u64 {
        self.m as u64 * self.n as u64 * self.k as u64
    }

    /// Elements of the A operand.
    pub fn a_elems(&self) -> u64 {
        self.m as u64 * self.k as u64
    }

    /// Elements of the B operand.
    pub fn b_elems(&self) -> u64 {
        self.k as u64 * self.n as u64
    }

    /// Elements of the C result.
    pub fn c_elems(&self) -> u64 {
        self.m as u64 * self.n as u64
    }
}

/// The full GEMM workload of one forward pass of a model.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Model name this workload was extracted from.
    pub model: String,
    /// GEMMs in execution order.
    pub gemms: Vec<Gemm>,
}

impl Workload {
    /// Extracts the workload of one forward pass at the model's default batch
    /// size and sequence length.
    pub fn from_config(cfg: &ModelConfig) -> Self {
        Self::with_batch_and_seq(cfg, cfg.batch, cfg.seq_len)
    }

    /// Extracts the workload for an explicit batch size and sequence length.
    pub fn with_batch_and_seq(cfg: &ModelConfig, batch: usize, seq: usize) -> Self {
        let mut gemms = Vec::new();
        if cfg.family == ModelFamily::Cnn {
            gemms.extend(crate::resnet::resnet18_gemms(batch));
            return Workload {
                model: cfg.name.clone(),
                gemms,
            };
        }
        let tokens = batch * seq;
        let h = cfg.hidden;
        let f = cfg.ffn;
        let heads = cfg.heads;
        let dh = cfg.head_dim();
        for l in 0..cfg.layers {
            let p = |suffix: &str| format!("layer{}.{}", l, suffix);
            // Fused QKV projection.
            gemms.push(Gemm {
                name: p("qkv"),
                m: tokens,
                k: h,
                n: 3 * h,
                kind: GemmKind::WeightActivation,
            });
            // Attention scores QKᵀ: per head [S, dh] × [dh, S], batched.
            gemms.push(Gemm {
                name: p("attn_scores"),
                m: batch * heads * seq,
                k: dh,
                n: seq,
                kind: GemmKind::ActivationActivation,
            });
            // Attention context P·V.
            gemms.push(Gemm {
                name: p("attn_context"),
                m: batch * heads * seq,
                k: seq,
                n: dh,
                kind: GemmKind::ActivationActivation,
            });
            // Output projection.
            gemms.push(Gemm {
                name: p("attn_out"),
                m: tokens,
                k: h,
                n: h,
                kind: GemmKind::WeightActivation,
            });
            // FFN.
            gemms.push(Gemm {
                name: p("ffn1"),
                m: tokens,
                k: h,
                n: f,
                kind: GemmKind::WeightActivation,
            });
            gemms.push(Gemm {
                name: p("ffn2"),
                m: tokens,
                k: f,
                n: h,
                kind: GemmKind::WeightActivation,
            });
        }
        // LM head / classifier projection.
        gemms.push(Gemm {
            name: "lm_head".into(),
            m: tokens,
            k: h,
            n: cfg.vocab,
            kind: GemmKind::WeightActivation,
        });
        Workload {
            model: cfg.name.clone(),
            gemms,
        }
    }

    /// Total MAC count.
    pub fn total_macs(&self) -> u64 {
        self.gemms.iter().map(Gemm::macs).sum()
    }

    /// Total weight elements (B operands of weight×activation GEMMs).
    pub fn weight_elems(&self) -> u64 {
        self.gemms
            .iter()
            .filter(|g| g.kind == GemmKind::WeightActivation)
            .map(Gemm::b_elems)
            .sum()
    }

    /// Total activation elements read (A operands plus activation-side B
    /// operands).
    pub fn activation_elems(&self) -> u64 {
        self.gemms
            .iter()
            .map(|g| {
                g.a_elems()
                    + if g.kind == GemmKind::ActivationActivation {
                        g.b_elems()
                    } else {
                        0
                    }
            })
            .sum()
    }

    /// Total output elements written.
    pub fn output_elems(&self) -> u64 {
        self.gemms.iter().map(Gemm::c_elems).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bert_base_layer_structure() {
        let wl = Workload::from_config(&ModelConfig::bert_base());
        // 6 GEMMs per layer + LM head.
        assert_eq!(wl.gemms.len(), 12 * 6 + 1);
        assert!(wl.gemms.iter().any(|g| g.name == "layer0.qkv"));
        assert!(wl.gemms.iter().any(|g| g.name == "layer11.ffn2"));
    }

    #[test]
    fn qkv_gemm_shape_matches_hidden_size() {
        let cfg = ModelConfig::bert_base();
        let wl = Workload::from_config(&cfg);
        let qkv = wl.gemms.iter().find(|g| g.name == "layer0.qkv").unwrap();
        assert_eq!(qkv.m, cfg.batch * cfg.seq_len);
        assert_eq!(qkv.k, 768);
        assert_eq!(qkv.n, 3 * 768);
        assert_eq!(qkv.kind, GemmKind::WeightActivation);
    }

    #[test]
    fn attention_gemms_are_activation_activation() {
        let wl = Workload::from_config(&ModelConfig::bert_base());
        let scores = wl
            .gemms
            .iter()
            .find(|g| g.name == "layer0.attn_scores")
            .unwrap();
        assert_eq!(scores.kind, GemmKind::ActivationActivation);
        assert_eq!(scores.k, 64); // head_dim of BERT-base
    }

    #[test]
    fn flop_count_scales_with_model_size() {
        let small = Workload::from_config(&ModelConfig::bert_base()).total_macs();
        let large = Workload::from_config(&ModelConfig::bert_large()).total_macs();
        assert!(large > 2 * small);
    }

    #[test]
    fn weight_elems_approximate_parameter_count() {
        let cfg = ModelConfig::bert_base();
        let wl = Workload::from_config(&cfg);
        let weights = wl.weight_elems();
        let params = cfg.approx_params();
        // The workload's weight GEMMs should account for most parameters
        // (embeddings are excluded except the LM head).
        assert!(weights as f64 > 0.6 * params as f64);
        assert!((weights as f64) < 1.2 * params as f64);
    }

    #[test]
    fn macs_of_single_gemm() {
        let g = Gemm {
            name: "t".into(),
            m: 2,
            k: 3,
            n: 4,
            kind: GemmKind::WeightActivation,
        };
        assert_eq!(g.macs(), 24);
        assert_eq!(g.a_elems(), 6);
        assert_eq!(g.b_elems(), 12);
        assert_eq!(g.c_elems(), 8);
    }

    #[test]
    fn gpt_uses_small_batch() {
        let wl = Workload::from_config(&ModelConfig::gpt2_xl());
        let qkv = wl.gemms.iter().find(|g| g.name == "layer0.qkv").unwrap();
        assert_eq!(qkv.m, 2 * 512);
    }

    #[test]
    fn resnet_workload_is_convolutional() {
        let wl = Workload::from_config(&ModelConfig::resnet18());
        assert!(!wl.gemms.is_empty());
        assert!(wl.total_macs() > 1_000_000_000); // ~1.8 GMACs/image * 16
    }
}
