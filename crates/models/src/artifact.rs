//! The low-level model-artifact container: a zero-dependency, versioned,
//! checksummed binary format for snapshotting prepared models to disk.
//!
//! The deployment story the paper's accelerator assumes — quantize *once*,
//! serve many — only scales horizontally if "once" can happen in a different
//! process than "serve". This module provides the byte-level half of that:
//! [`ArtifactWriter`] frames typed fields (integers, strings, f32 slices,
//! tensors) into a payload protected by a magic number, a format version, an
//! explicit length, and an FNV-1a-64 checksum; [`ArtifactReader`] validates
//! all four before handing a single field back.
//!
//! Two properties are load-bearing:
//!
//! - **Bit-exactness.** Every `f32` travels as its IEEE-754 bit pattern
//!   (`to_bits`/`from_bits`), never through a decimal round-trip, so a model
//!   loaded from disk is indistinguishable — to the last ULP, and therefore
//!   to the last output byte — from the one that was written.
//! - **Totality.** Malformed input of any kind (wrong magic, future version,
//!   truncation, bit rot, type confusion, trailing garbage) surfaces as a
//!   typed [`ArtifactError`], never a panic and never an OOM: every
//!   length-prefixed read checks the prefix against the bytes actually
//!   remaining before allocating.
//!
//! The typed layer that composes these fields into a complete prepared-model
//! snapshot (cache key, teacher, calibration, quantized students) lives in
//! `olive_api::artifact`.

use crate::engine::{EngineConfig, EvalTask, LayerWeights, TinyTransformer};
use olive_tensor::Tensor;
use std::fmt;

/// File magic: identifies an OliVe artifact regardless of version.
pub const MAGIC: [u8; 8] = *b"OLVARTIF";

/// Current format version. Readers reject anything else: the format is
/// allowed to evolve, silent misinterpretation is not.
pub const FORMAT_VERSION: u32 = 1;

/// Header size: magic (8) + version (4) + payload length (8) + checksum (8).
pub const HEADER_BYTES: usize = 28;

/// Hard ceiling on any single declared element count (strings, slices,
/// tensor dimensions). Real artifacts stay far below; a crafted length that
/// clears the remaining-bytes check can still not amplify memory.
pub const MAX_ELEMENTS: u64 = 1 << 28;

/// Why an artifact could not be decoded.
///
/// Every variant is a *rejection*, not a crash: readers return these for
/// arbitrary input bytes.
#[derive(Debug)]
pub enum ArtifactError {
    /// Underlying file I/O failed (open, read, write, rename).
    Io(std::io::Error),
    /// The first bytes are not [`MAGIC`] — not an artifact at all.
    BadMagic {
        /// What was found instead (at most 8 bytes).
        found: Vec<u8>,
    },
    /// A version this build does not understand.
    UnsupportedVersion {
        /// The version stamped in the file.
        found: u32,
        /// The single version this reader supports.
        supported: u32,
    },
    /// Fewer bytes than a declared length requires.
    Truncated {
        /// Bytes the current field needed.
        needed: usize,
        /// Bytes actually remaining.
        available: usize,
    },
    /// The payload does not hash to the checksum in the header.
    ChecksumMismatch {
        /// Checksum stored in the header.
        stored: u64,
        /// Checksum computed over the payload.
        computed: u64,
    },
    /// Structurally invalid content (wrong field tag, non-UTF-8 string,
    /// inconsistent shape, out-of-range token, trailing bytes, …).
    Malformed(String),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "artifact I/O error: {e}"),
            ArtifactError::BadMagic { found } => {
                write!(f, "not an OliVe artifact (magic bytes {found:02x?})")
            }
            ArtifactError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported artifact version {found} (this build reads version {supported})"
            ),
            ArtifactError::Truncated { needed, available } => write!(
                f,
                "artifact truncated: field needs {needed} bytes, {available} remain"
            ),
            ArtifactError::ChecksumMismatch { stored, computed } => write!(
                f,
                "artifact checksum mismatch: header says {stored:#018x}, payload hashes to \
                 {computed:#018x}"
            ),
            ArtifactError::Malformed(why) => write!(f, "malformed artifact: {why}"),
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArtifactError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ArtifactError {
    fn from(e: std::io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

/// FNV-1a 64-bit over `bytes` — the integrity hash for artifact payloads.
/// Not cryptographic; it guards against truncation and bit rot, not
/// adversaries (single-byte corruption always changes the digest: each step
/// is injective in the accumulator).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Per-field type tags. A reader expecting one type that meets another
/// reports the confusion instead of reinterpreting bytes.
const TAG_U64: u8 = 0x01;
const TAG_STR: u8 = 0x02;
const TAG_F32S: u8 = 0x03;
const TAG_USIZES: u8 = 0x04;
const TAG_TENSOR: u8 = 0x05;

fn tag_name(tag: u8) -> &'static str {
    match tag {
        TAG_U64 => "u64",
        TAG_STR => "string",
        TAG_F32S => "f32 slice",
        TAG_USIZES => "usize slice",
        TAG_TENSOR => "tensor",
        _ => "unknown",
    }
}

/// Accumulates typed fields into a payload and frames it with the header.
///
/// Writing is infallible (it only appends to memory); all validation lives
/// on the read side, where the bytes are untrusted.
#[derive(Default)]
pub struct ArtifactWriter {
    payload: Vec<u8>,
}

impl ArtifactWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an integer field.
    pub fn u64(&mut self, value: u64) {
        self.payload.push(TAG_U64);
        self.payload.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends a UTF-8 string field.
    pub fn str(&mut self, value: &str) {
        self.payload.push(TAG_STR);
        self.payload
            .extend_from_slice(&(value.len() as u64).to_le_bytes());
        self.payload.extend_from_slice(value.as_bytes());
    }

    /// Appends an `f32` slice field, element by bit pattern.
    pub fn f32s(&mut self, values: &[f32]) {
        self.payload.push(TAG_F32S);
        self.payload
            .extend_from_slice(&(values.len() as u64).to_le_bytes());
        for v in values {
            self.payload.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }

    /// Appends a `usize` slice field (stored as u64s).
    pub fn usizes(&mut self, values: &[usize]) {
        self.payload.push(TAG_USIZES);
        self.payload
            .extend_from_slice(&(values.len() as u64).to_le_bytes());
        for &v in values {
            self.payload.extend_from_slice(&(v as u64).to_le_bytes());
        }
    }

    /// Appends a tensor field: shape, then data by bit pattern.
    pub fn tensor(&mut self, tensor: &Tensor) {
        self.payload.push(TAG_TENSOR);
        let shape = tensor.shape();
        self.payload
            .extend_from_slice(&(shape.len() as u64).to_le_bytes());
        for &dim in shape {
            self.payload.extend_from_slice(&(dim as u64).to_le_bytes());
        }
        for v in tensor.data() {
            self.payload.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }

    /// Frames the accumulated payload: magic, version, length, checksum,
    /// payload.
    pub fn finish(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_BYTES + self.payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a64(&self.payload).to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }
}

/// Validates the header once, then hands back typed fields in write order.
pub struct ArtifactReader<'a> {
    payload: &'a [u8],
    pos: usize,
}

impl<'a> ArtifactReader<'a> {
    /// Checks magic, version, declared length and checksum; positions the
    /// cursor at the first field.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::BadMagic`], [`ArtifactError::UnsupportedVersion`],
    /// [`ArtifactError::Truncated`] (header or payload shorter than
    /// declared), [`ArtifactError::Malformed`] (bytes past the declared
    /// payload), or [`ArtifactError::ChecksumMismatch`].
    pub fn new(bytes: &'a [u8]) -> Result<Self, ArtifactError> {
        let header = bytes.get(..HEADER_BYTES).ok_or(ArtifactError::Truncated {
            needed: HEADER_BYTES,
            available: bytes.len(),
        })?;
        let (magic, rest) = header.split_at(8);
        if magic != MAGIC {
            return Err(ArtifactError::BadMagic {
                found: magic.to_vec(),
            });
        }
        let (version_bytes, rest) = rest.split_at(4);
        let version = u32::from_le_bytes(version_bytes.try_into().unwrap_or([0; 4]));
        if version != FORMAT_VERSION {
            return Err(ArtifactError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let (len_bytes, checksum_bytes) = rest.split_at(8);
        let declared = u64::from_le_bytes(len_bytes.try_into().unwrap_or([0; 8]));
        let stored = u64::from_le_bytes(checksum_bytes.try_into().unwrap_or([0; 8]));
        let available = bytes.len() - HEADER_BYTES;
        let declared_usize = usize::try_from(declared).map_err(|_| ArtifactError::Truncated {
            needed: usize::MAX,
            available,
        })?;
        if declared_usize > available {
            return Err(ArtifactError::Truncated {
                needed: declared_usize,
                available,
            });
        }
        if declared_usize < available {
            return Err(ArtifactError::Malformed(format!(
                "{} bytes past the declared payload",
                available - declared_usize
            )));
        }
        let payload = &bytes[HEADER_BYTES..];
        let computed = fnv1a64(payload);
        if computed != stored {
            return Err(ArtifactError::ChecksumMismatch { stored, computed });
        }
        Ok(ArtifactReader { payload, pos: 0 })
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ArtifactError> {
        let available = self.payload.len() - self.pos;
        if n > available {
            return Err(ArtifactError::Truncated {
                needed: n,
                available,
            });
        }
        let slice = &self.payload[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn expect_tag(&mut self, expected: u8) -> Result<(), ArtifactError> {
        let found = *self.take(1)?.first().ok_or(ArtifactError::Truncated {
            needed: 1,
            available: 0,
        })?;
        if found != expected {
            return Err(ArtifactError::Malformed(format!(
                "expected a {} field, found {} (tag {found:#04x})",
                tag_name(expected),
                tag_name(found)
            )));
        }
        Ok(())
    }

    /// Reads a declared element count and sanity-bounds it: it must clear
    /// [`MAX_ELEMENTS`] and the per-element byte cost must fit what remains.
    fn count(&mut self, element_bytes: usize) -> Result<usize, ArtifactError> {
        let raw = u64::from_le_bytes(self.take(8)?.try_into().unwrap_or([0; 8]));
        if raw > MAX_ELEMENTS {
            return Err(ArtifactError::Malformed(format!(
                "declared count {raw} exceeds the {MAX_ELEMENTS} element ceiling"
            )));
        }
        let n = raw as usize;
        let needed = n.saturating_mul(element_bytes);
        let available = self.payload.len() - self.pos;
        if needed > available {
            return Err(ArtifactError::Truncated { needed, available });
        }
        Ok(n)
    }

    /// Reads an integer field.
    ///
    /// # Errors
    ///
    /// Truncation or a field of a different type.
    pub fn u64(&mut self) -> Result<u64, ArtifactError> {
        self.expect_tag(TAG_U64)?;
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().unwrap_or([0; 8]),
        ))
    }

    /// Reads an integer field and converts it to `usize`.
    ///
    /// # Errors
    ///
    /// As [`ArtifactReader::u64`], plus overflow on 32-bit targets.
    pub fn usize(&mut self) -> Result<usize, ArtifactError> {
        let v = self.u64()?;
        usize::try_from(v)
            .map_err(|_| ArtifactError::Malformed(format!("integer {v} overflows usize")))
    }

    /// Reads a string field.
    ///
    /// # Errors
    ///
    /// Truncation, type confusion, or non-UTF-8 content.
    pub fn str(&mut self) -> Result<String, ArtifactError> {
        self.expect_tag(TAG_STR)?;
        let n = self.count(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ArtifactError::Malformed("string field is not UTF-8".into()))
    }

    /// Reads an `f32` slice field, bit patterns preserved.
    ///
    /// # Errors
    ///
    /// Truncation or type confusion.
    pub fn f32s(&mut self) -> Result<Vec<f32>, ArtifactError> {
        self.expect_tag(TAG_F32S)?;
        let n = self.count(4)?;
        let bytes = self.take(n * 4)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| f32::from_bits(u32::from_le_bytes(c.try_into().unwrap_or([0; 4]))))
            .collect())
    }

    /// Reads a `usize` slice field.
    ///
    /// # Errors
    ///
    /// Truncation, type confusion, or overflow on 32-bit targets.
    pub fn usizes(&mut self) -> Result<Vec<usize>, ArtifactError> {
        self.expect_tag(TAG_USIZES)?;
        let n = self.count(8)?;
        let bytes = self.take(n * 8)?;
        bytes
            .chunks_exact(8)
            .map(|c| {
                let v = u64::from_le_bytes(c.try_into().unwrap_or([0; 8]));
                usize::try_from(v)
                    .map_err(|_| ArtifactError::Malformed(format!("integer {v} overflows usize")))
            })
            .collect()
    }

    /// Reads a tensor field: shape, then row-major data.
    ///
    /// # Errors
    ///
    /// Truncation, type confusion, or a shape whose element count does not
    /// fit the remaining bytes.
    pub fn tensor(&mut self) -> Result<Tensor, ArtifactError> {
        self.expect_tag(TAG_TENSOR)?;
        let ndim = self.count(8)?;
        let shape_bytes = self.take(ndim * 8)?;
        let mut shape = Vec::with_capacity(ndim);
        let mut elements: u64 = 1;
        for c in shape_bytes.chunks_exact(8) {
            let dim = u64::from_le_bytes(c.try_into().unwrap_or([0; 8]));
            elements = elements.saturating_mul(dim.max(1));
            if dim > MAX_ELEMENTS || elements > MAX_ELEMENTS {
                return Err(ArtifactError::Malformed(format!(
                    "tensor shape exceeds the {MAX_ELEMENTS} element ceiling"
                )));
            }
            let dim = usize::try_from(dim).map_err(|_| {
                ArtifactError::Malformed(format!("tensor dimension {dim} overflows usize"))
            })?;
            shape.push(dim);
        }
        let n: usize = shape.iter().product();
        let available = self.payload.len() - self.pos;
        if n.saturating_mul(4) > available {
            return Err(ArtifactError::Truncated {
                needed: n * 4,
                available,
            });
        }
        let data_bytes = self.take(n * 4)?;
        let data: Vec<f32> = data_bytes
            .chunks_exact(4)
            .map(|c| f32::from_bits(u32::from_le_bytes(c.try_into().unwrap_or([0; 4]))))
            .collect();
        Ok(Tensor::from_vec(shape, data))
    }

    /// Asserts every payload byte was consumed — a structure/content
    /// mismatch that slipped past per-field checks surfaces here.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Malformed`] when bytes remain.
    pub fn finish(self) -> Result<(), ArtifactError> {
        let remaining = self.payload.len() - self.pos;
        if remaining != 0 {
            return Err(ArtifactError::Malformed(format!(
                "{remaining} unread bytes after the last field"
            )));
        }
        Ok(())
    }
}

/// Writes a complete [`TinyTransformer`]: config, embedding, per-layer
/// weights and norms, final norm.
pub fn write_model(w: &mut ArtifactWriter, model: &TinyTransformer) {
    let c = model.config;
    w.usizes(&[c.d_model, c.n_heads, c.n_layers, c.d_ff, c.vocab, c.seq_len]);
    w.tensor(&model.embedding);
    for layer in &model.layers {
        w.tensor(&layer.wqkv);
        w.tensor(&layer.wo);
        w.tensor(&layer.w1);
        w.tensor(&layer.w2);
        w.f32s(&layer.ln1_gamma);
        w.f32s(&layer.ln1_beta);
        w.f32s(&layer.ln2_gamma);
        w.f32s(&layer.ln2_beta);
    }
    w.f32s(&model.ln_f_gamma);
    w.f32s(&model.ln_f_beta);
}

fn expect_shape(
    what: &str,
    tensor: &Tensor,
    rows: usize,
    cols: usize,
) -> Result<(), ArtifactError> {
    if tensor.shape() != [rows, cols] {
        return Err(ArtifactError::Malformed(format!(
            "{what} has shape {:?}, config implies [{rows}, {cols}]",
            tensor.shape()
        )));
    }
    Ok(())
}

fn expect_len(what: &str, values: &[f32], len: usize) -> Result<(), ArtifactError> {
    if values.len() != len {
        return Err(ArtifactError::Malformed(format!(
            "{what} has {} elements, config implies {len}",
            values.len()
        )));
    }
    Ok(())
}

/// Reads a [`TinyTransformer`] written by [`write_model`], cross-checking
/// every tensor shape against the stored config so a corrupted-but-
/// checksummed artifact can never feed impossible shapes into the forward
/// pass.
///
/// # Errors
///
/// Any [`ArtifactError`]; notably [`ArtifactError::Malformed`] when the
/// config is internally inconsistent or a weight does not match it.
pub fn read_model(r: &mut ArtifactReader<'_>) -> Result<TinyTransformer, ArtifactError> {
    let dims = r.usizes()?;
    let [d_model, n_heads, n_layers, d_ff, vocab, seq_len] = dims.as_slice() else {
        return Err(ArtifactError::Malformed(format!(
            "model config has {} fields, expected 6",
            dims.len()
        )));
    };
    let config = EngineConfig {
        d_model: *d_model,
        n_heads: *n_heads,
        n_layers: *n_layers,
        d_ff: *d_ff,
        vocab: *vocab,
        seq_len: *seq_len,
    };
    if config.d_model == 0
        || config.n_heads == 0
        || config.d_ff == 0
        || config.vocab == 0
        || config.seq_len == 0
    {
        return Err(ArtifactError::Malformed(
            "model config has a zero dimension".into(),
        ));
    }
    if config.d_model % config.n_heads != 0 {
        return Err(ArtifactError::Malformed(format!(
            "n_heads {} does not divide d_model {}",
            config.n_heads, config.d_model
        )));
    }
    let d = config.d_model;
    let embedding = r.tensor()?;
    expect_shape("embedding", &embedding, config.vocab, d)?;
    let mut layers = Vec::with_capacity(config.n_layers);
    for i in 0..config.n_layers {
        let wqkv = r.tensor()?;
        expect_shape(&format!("layer {i} wqkv"), &wqkv, d, 3 * d)?;
        let wo = r.tensor()?;
        expect_shape(&format!("layer {i} wo"), &wo, d, d)?;
        let w1 = r.tensor()?;
        expect_shape(&format!("layer {i} w1"), &w1, d, config.d_ff)?;
        let w2 = r.tensor()?;
        expect_shape(&format!("layer {i} w2"), &w2, config.d_ff, d)?;
        let ln1_gamma = r.f32s()?;
        expect_len(&format!("layer {i} ln1_gamma"), &ln1_gamma, d)?;
        let ln1_beta = r.f32s()?;
        expect_len(&format!("layer {i} ln1_beta"), &ln1_beta, d)?;
        let ln2_gamma = r.f32s()?;
        expect_len(&format!("layer {i} ln2_gamma"), &ln2_gamma, d)?;
        let ln2_beta = r.f32s()?;
        expect_len(&format!("layer {i} ln2_beta"), &ln2_beta, d)?;
        layers.push(LayerWeights {
            wqkv,
            wo,
            w1,
            w2,
            ln1_gamma,
            ln1_beta,
            ln2_gamma,
            ln2_beta,
        });
    }
    let ln_f_gamma = r.f32s()?;
    expect_len("ln_f_gamma", &ln_f_gamma, d)?;
    let ln_f_beta = r.f32s()?;
    expect_len("ln_f_beta", &ln_f_beta, d)?;
    Ok(TinyTransformer {
        config,
        embedding,
        layers,
        ln_f_gamma,
        ln_f_beta,
    })
}

/// Writes an [`EvalTask`]: name, then each input token sequence.
pub fn write_task(w: &mut ArtifactWriter, task: &EvalTask) {
    w.str(&task.name);
    w.u64(task.inputs.len() as u64);
    for input in &task.inputs {
        w.usizes(input);
    }
}

/// Reads an [`EvalTask`] written by [`write_task`], validating every token
/// id against `config` so loaded calibration data can never index out of the
/// embedding table.
///
/// # Errors
///
/// Any [`ArtifactError`]; notably [`ArtifactError::Malformed`] for an
/// out-of-vocabulary token or an over-long sequence.
pub fn read_task(
    r: &mut ArtifactReader<'_>,
    config: &EngineConfig,
) -> Result<EvalTask, ArtifactError> {
    let name = r.str()?;
    let n = r.usize()?;
    if n as u64 > MAX_ELEMENTS {
        return Err(ArtifactError::Malformed(format!(
            "task declares {n} inputs, exceeding the {MAX_ELEMENTS} ceiling"
        )));
    }
    let mut inputs = Vec::with_capacity(n.min(1024));
    for i in 0..n {
        let tokens = r.usizes()?;
        validate_tokens(&format!("task input {i}"), &tokens, config)?;
        inputs.push(tokens);
    }
    Ok(EvalTask { name, inputs })
}

/// Validates a token sequence against the model config: non-empty, no longer
/// than the context window, every id inside the vocabulary.
///
/// # Errors
///
/// [`ArtifactError::Malformed`] describing the offending token or length.
pub fn validate_tokens(
    what: &str,
    tokens: &[usize],
    config: &EngineConfig,
) -> Result<(), ArtifactError> {
    if tokens.is_empty() {
        return Err(ArtifactError::Malformed(format!("{what} is empty")));
    }
    if tokens.len() > config.seq_len {
        return Err(ArtifactError::Malformed(format!(
            "{what} has {} tokens, context window is {}",
            tokens.len(),
            config.seq_len
        )));
    }
    if let Some(&bad) = tokens.iter().find(|&&t| t >= config.vocab) {
        return Err(ArtifactError::Malformed(format!(
            "{what} contains token {bad}, vocabulary size is {}",
            config.vocab
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use olive_tensor::rng::Rng;

    #[test]
    fn primitives_round_trip_bit_exactly() {
        let mut w = ArtifactWriter::new();
        w.u64(u64::MAX);
        w.str("olive — ünïcode");
        let weird = vec![0.0f32, -0.0, f32::MIN_POSITIVE, f32::NAN, 1.5e-42];
        w.f32s(&weird);
        w.usizes(&[0, 7, usize::from(u16::MAX)]);
        w.tensor(&Tensor::from_vec(
            vec![2, 3],
            vec![1.0, -2.0, 3.5, 0.25, -0.0, 9.0],
        ));
        let bytes = w.finish();

        let mut r = ArtifactReader::new(&bytes).expect("valid artifact");
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.str().unwrap(), "olive — ünïcode");
        let back = r.f32s().unwrap();
        let bits: Vec<u32> = back.iter().map(|v| v.to_bits()).collect();
        let want: Vec<u32> = weird.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits, want, "f32 bit patterns must survive, NaN included");
        assert_eq!(r.usizes().unwrap(), vec![0, 7, usize::from(u16::MAX)]);
        let t = r.tensor().unwrap();
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.data(), &[1.0, -2.0, 3.5, 0.25, -0.0, 9.0]);
        r.finish().expect("fully consumed");
    }

    #[test]
    fn header_failures_are_typed() {
        let bytes = {
            let mut w = ArtifactWriter::new();
            w.u64(42);
            w.finish()
        };
        assert!(matches!(
            ArtifactReader::new(&bytes[..10]),
            Err(ArtifactError::Truncated { .. })
        ));
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert!(matches!(
            ArtifactReader::new(&wrong_magic),
            Err(ArtifactError::BadMagic { .. })
        ));
        let mut future = bytes.clone();
        future[8] = 99;
        assert!(matches!(
            ArtifactReader::new(&future),
            Err(ArtifactError::UnsupportedVersion { found: 99, .. })
        ));
        let mut flipped = bytes.clone();
        *flipped.last_mut().unwrap() ^= 0x40;
        assert!(matches!(
            ArtifactReader::new(&flipped),
            Err(ArtifactError::ChecksumMismatch { .. })
        ));
        assert!(matches!(
            ArtifactReader::new(&bytes[..bytes.len() - 1]),
            Err(ArtifactError::Truncated { .. })
        ));
    }

    #[test]
    fn type_confusion_and_trailing_bytes_are_malformed() {
        let mut w = ArtifactWriter::new();
        w.str("not a number");
        let bytes = w.finish();
        let mut r = ArtifactReader::new(&bytes).unwrap();
        assert!(matches!(r.u64(), Err(ArtifactError::Malformed(_))));

        let mut w = ArtifactWriter::new();
        w.u64(1);
        w.u64(2);
        let bytes = w.finish();
        let mut r = ArtifactReader::new(&bytes).unwrap();
        let _ = r.u64().unwrap();
        assert!(matches!(r.finish(), Err(ArtifactError::Malformed(_))));
    }

    #[test]
    fn oversized_declared_counts_cannot_allocate() {
        // A string field claiming 2^40 bytes inside a tiny payload must be
        // rejected by the remaining-bytes check, not attempted.
        let mut payload = vec![0x02u8];
        payload.extend_from_slice(&(1u64 << 40).to_le_bytes());
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        let mut r = ArtifactReader::new(&bytes).unwrap();
        assert!(matches!(
            r.str(),
            Err(ArtifactError::Truncated { .. } | ArtifactError::Malformed(_))
        ));
    }

    #[test]
    fn model_and_task_round_trip_bit_exactly() {
        let config = EngineConfig::tiny();
        let mut rng = Rng::seed_from(11);
        let model =
            TinyTransformer::generate(config, crate::OutlierSeverity::transformer(), &mut rng);
        let task = EvalTask::generate("roundtrip", &config, 3, &mut rng);

        let mut w = ArtifactWriter::new();
        write_model(&mut w, &model);
        write_task(&mut w, &task);
        let bytes = w.finish();

        let mut r = ArtifactReader::new(&bytes).unwrap();
        let model_back = read_model(&mut r).unwrap();
        let task_back = read_task(&mut r, &model_back.config).unwrap();
        r.finish().unwrap();

        assert_eq!(model_back.config, config);
        assert_eq!(model_back.embedding.data(), model.embedding.data());
        for (a, b) in model_back.layers.iter().zip(&model.layers) {
            assert_eq!(a.wqkv.data(), b.wqkv.data());
            assert_eq!(a.wo.data(), b.wo.data());
            assert_eq!(a.w1.data(), b.w1.data());
            assert_eq!(a.w2.data(), b.w2.data());
            assert_eq!(a.ln1_gamma, b.ln1_gamma);
            assert_eq!(a.ln2_gamma, b.ln2_gamma);
        }
        assert_eq!(model_back.ln_f_gamma, model.ln_f_gamma);
        assert_eq!(task_back.name, task.name);
        assert_eq!(task_back.inputs, task.inputs);
    }

    #[test]
    fn out_of_vocab_tokens_are_rejected() {
        let config = EngineConfig::tiny();
        let mut w = ArtifactWriter::new();
        w.str("bad");
        w.u64(1);
        w.usizes(&[0, config.vocab]); // one past the end
        let bytes = w.finish();
        let mut r = ArtifactReader::new(&bytes).unwrap();
        assert!(matches!(
            read_task(&mut r, &config),
            Err(ArtifactError::Malformed(_))
        ));
    }
}
