//! Synthetic tensor generation with realistic outlier statistics.
//!
//! The paper's analysis (Fig. 2, Tbl. 2) characterises transformer tensors as
//! a dense Gaussian bulk plus a tiny (< 0.5%) population of outliers whose
//! magnitude reaches tens to hundreds of standard deviations, while CNN
//! tensors rarely exceed ~30σ. Since pretrained checkpoints are not available
//! offline, this module generates tensors that reproduce those statistics —
//! which is all the OVP analysis and the accuracy/performance models consume.

use crate::config::{ModelConfig, ModelFamily};
use olive_tensor::rng::Rng;
use olive_tensor::Tensor;

/// Distributional profile of a tensor family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthProfile {
    /// Standard deviation of the Gaussian bulk.
    pub base_std: f64,
    /// Fraction of elements replaced by outliers.
    pub outlier_fraction: f64,
    /// Minimum outlier magnitude, in units of `base_std`.
    pub outlier_min_sigma: f64,
    /// Maximum outlier magnitude, in units of `base_std` (log-uniform between
    /// min and max).
    pub outlier_max_sigma: f64,
}

impl SynthProfile {
    /// Transformer-like tensors: sparse but extreme outliers (paper Fig. 2b
    /// reports max σ up to ~325 for BERT on MNLI).
    pub fn transformer() -> Self {
        SynthProfile {
            base_std: 1.0,
            outlier_fraction: 0.004,
            outlier_min_sigma: 4.0,
            outlier_max_sigma: 300.0,
        }
    }

    /// Large-LLM tensors (GPT/BLOOM/OPT): slightly more frequent and even more
    /// extreme outliers, matching the Tbl. 2 pair statistics.
    pub fn llm() -> Self {
        SynthProfile {
            base_std: 1.0,
            outlier_fraction: 0.006,
            outlier_min_sigma: 5.0,
            outlier_max_sigma: 325.0,
        }
    }

    /// CNN-like tensors: mild, nearly-Gaussian tails (paper Fig. 2a: max σ
    /// around 28 for ResNet-18).
    pub fn cnn() -> Self {
        SynthProfile {
            base_std: 1.0,
            outlier_fraction: 0.002,
            outlier_min_sigma: 4.0,
            outlier_max_sigma: 25.0,
        }
    }

    /// The profile matching a model family.
    pub fn for_family(family: ModelFamily) -> Self {
        match family {
            ModelFamily::Cnn => Self::cnn(),
            ModelFamily::DecoderOnly => Self::llm(),
            _ => Self::transformer(),
        }
    }

    /// Generates a tensor of the given shape following this profile.
    pub fn generate(&self, shape: Vec<usize>, rng: &mut Rng) -> Tensor {
        let n: usize = shape.iter().product();
        let mut data = vec![0.0f32; n];
        rng.fill_normal(&mut data, 0.0, self.base_std);
        let n_outliers = ((n as f64) * self.outlier_fraction).round() as usize;
        let log_lo = self.outlier_min_sigma.ln();
        let log_hi = self.outlier_max_sigma.ln();
        for _ in 0..n_outliers {
            let idx = rng.below(n);
            // Cube the uniform draw so most outliers sit near the minimum and
            // only a handful reach the extreme end — matching Fig. 2, where the
            // >3σ population is ~0.5% but the maximum reaches hundreds of σ
            // without inflating the tensor's overall standard deviation.
            let u = rng.uniform();
            let mag = (log_lo + (log_hi - log_lo) * u * u * u).exp() * self.base_std;
            let sign = if rng.chance(0.5) { 1.0 } else { -1.0 };
            data[idx] = (sign * mag) as f32;
        }
        Tensor::from_vec(shape, data)
    }

    /// Generates a tensor scaled to a weight-like magnitude (std ≈ `scale`).
    pub fn generate_scaled(&self, shape: Vec<usize>, scale: f64, rng: &mut Rng) -> Tensor {
        let t = self.generate(shape, rng);
        t.scale(scale as f32)
    }
}

/// A named synthetic tensor representing one layer tensor of a model.
#[derive(Debug, Clone)]
pub struct NamedTensor {
    /// Tensor name ("layer3.ffn1.weight", "layer0.attn.input", …).
    pub name: String,
    /// The tensor values.
    pub tensor: Tensor,
}

/// Generates a representative suite of per-layer tensors for a model.
///
/// Tensor sizes are capped at `max_elems` elements so that whole-model
/// analyses (pair statistics, PTQ sweeps) stay tractable; the statistics are
/// size-independent, so this does not change any distributional conclusion.
pub fn model_tensor_suite(cfg: &ModelConfig, max_elems: usize, rng: &mut Rng) -> Vec<NamedTensor> {
    let profile = SynthProfile::for_family(cfg.family);
    let mut out = Vec::new();
    let layers = cfg.layers.min(8);
    for l in 0..layers {
        for (suffix, rows, cols) in [
            ("qkv.weight", cfg.hidden, 3 * cfg.hidden),
            ("attn_out.weight", cfg.hidden, cfg.hidden),
            ("ffn1.weight", cfg.hidden, cfg.ffn),
            ("ffn2.weight", cfg.ffn, cfg.hidden),
            ("attn.input", cfg.seq_len * cfg.batch, cfg.hidden),
        ] {
            let (r, c) = cap_shape(rows, cols, max_elems);
            let mut t = profile.generate(vec![r, c], rng);
            if suffix.ends_with("weight") {
                t = t.scale(0.05);
            }
            out.push(NamedTensor {
                name: format!("layer{}.{}", l, suffix),
                tensor: t,
            });
        }
    }
    out
}

fn cap_shape(rows: usize, cols: usize, max_elems: usize) -> (usize, usize) {
    let total = rows * cols;
    if total <= max_elems {
        return (rows, cols);
    }
    let shrink = (total as f64 / max_elems as f64).sqrt();
    (
        ((rows as f64 / shrink).floor() as usize).max(1),
        ((cols as f64 / shrink).floor() as usize).max(1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use olive_tensor::stats::TensorStats;

    #[test]
    fn transformer_profile_has_extreme_max_sigma() {
        let mut rng = Rng::seed_from(1);
        let t = SynthProfile::transformer().generate(vec![256, 512], &mut rng);
        let s = TensorStats::compute(&t);
        assert!(s.max_sigma > 20.0, "max sigma {}", s.max_sigma);
        assert!(
            s.frac_gt_3sigma < 0.02,
            "3 sigma fraction {}",
            s.frac_gt_3sigma
        );
    }

    #[test]
    fn cnn_profile_is_much_milder_than_transformer() {
        let mut rng = Rng::seed_from(2);
        let cnn = SynthProfile::cnn().generate(vec![256, 512], &mut rng);
        let tr = SynthProfile::transformer().generate(vec![256, 512], &mut rng);
        let s_cnn = TensorStats::compute(&cnn);
        let s_tr = TensorStats::compute(&tr);
        assert!(
            s_tr.max_sigma > 3.0 * s_cnn.max_sigma,
            "cnn {} vs transformer {}",
            s_cnn.max_sigma,
            s_tr.max_sigma
        );
    }

    #[test]
    fn outlier_fraction_is_respected() {
        let mut rng = Rng::seed_from(3);
        let p = SynthProfile::transformer();
        let t = p.generate(vec![1000, 100], &mut rng);
        let extreme = t.data().iter().filter(|x| x.abs() > 6.0).count();
        let frac = extreme as f64 / t.len() as f64;
        assert!(frac < 0.01, "fraction {}", frac);
        assert!(frac > 0.0005, "fraction {}", frac);
    }

    #[test]
    fn pair_statistics_match_table2_shape() {
        // Tbl. 2: ~99% normal-normal, ~1% outlier-normal, <0.1% outlier-outlier.
        let mut rng = Rng::seed_from(4);
        let t = SynthProfile::llm().generate(vec![512, 512], &mut rng);
        let stats = olive_core::pair::pair_stats(t.data(), 3.0);
        assert!(stats.frac_normal_normal() > 0.95);
        assert!(stats.frac_outlier_outlier() < 0.002);
    }

    #[test]
    fn model_suite_has_expected_tensor_names() {
        let mut rng = Rng::seed_from(5);
        let suite = model_tensor_suite(&ModelConfig::bert_base(), 32_768, &mut rng);
        assert_eq!(suite.len(), 8 * 5);
        assert!(suite.iter().any(|t| t.name == "layer0.qkv.weight"));
        assert!(suite.iter().all(|t| t.tensor.len() <= 33_000));
    }

    #[test]
    fn generate_scaled_changes_magnitude() {
        let mut rng = Rng::seed_from(6);
        let p = SynthProfile::cnn();
        let t = p.generate_scaled(vec![1024], 0.01, &mut rng);
        let s = TensorStats::compute(&t);
        assert!(s.std < 0.05);
    }

    #[test]
    fn cap_shape_respects_budget() {
        let (r, c) = cap_shape(4096, 16384, 65536);
        assert!(r * c <= 65_536);
        assert!(r >= 1 && c >= 1);
    }
}
