//! # olive-models
//!
//! Workload and model substrate for the OliVe reproduction:
//!
//! * [`config`] — architecture descriptions (layer counts, hidden sizes,
//!   batch sizes) of the models the paper evaluates: BERT-base/large,
//!   BART-base, GPT2-XL, BLOOM-7B1, OPT-6.7B and a ResNet-18 stand-in.
//! * [`workload`] — the GEMM list of one forward pass of each model, which the
//!   accelerator and GPU performance models consume.
//! * [`resnet`] — ResNet-18 layer shapes (the CNN contrast of Fig. 2).
//! * [`synth`] — synthetic tensors reproducing the outlier statistics of
//!   Fig. 2 / Tbl. 2 (Gaussian bulk + sparse extreme outliers).
//! * [`engine`] — a small runnable Transformer with planted outliers used as a
//!   teacher–student accuracy proxy for the GLUE/SQuAD/perplexity tables.
//! * [`decode`] — causal (autoregressive) forward pass plus the KV-cached
//!   incremental [`DecodeSession`], bit-identical to the batch path — the
//!   generative workload class behind `olive-serve`'s `/v1/generate` — and
//!   the step-schedulable [`StepSlot`]/`advance_batch` API that lets a
//!   scheduler merge many streams' current steps into one batched forward.
//! * [`kv`] — externally-owned KV-cache storage: the [`KvStore`] trait,
//!   plain [`VecKv`], and the paged [`KvPool`]/[`PagedKv`] pair the serving
//!   layer uses for continuous batching.
//! * [`artifact`] — the versioned, checksummed, zero-dependency binary
//!   container ([`ArtifactWriter`]/[`ArtifactReader`]) that snapshots models
//!   and calibration tasks to disk bit-exactly, so serving processes can
//!   cold-start from a file instead of re-preparing.

pub mod artifact;
pub mod config;
pub mod decode;
pub mod engine;
pub mod kv;
pub mod resnet;
pub mod synth;
pub mod workload;

pub use artifact::{ArtifactError, ArtifactReader, ArtifactWriter};
pub use config::{ModelConfig, ModelFamily};
pub use decode::{generate_greedy, generate_greedy_recompute, DecodeSession, StepSlot};
pub use engine::{
    agreement, argmax, eval_scores, logit_fidelity, position_agreement, pseudo_perplexity,
    EngineConfig, EvalScores, EvalTask, OutlierSeverity, TinyTransformer,
};
pub use kv::{pages_needed, KvPool, KvStore, PagedKv, VecKv};
pub use synth::{model_tensor_suite, NamedTensor, SynthProfile};
pub use workload::{Gemm, GemmKind, Workload};
