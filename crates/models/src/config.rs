//! Model architecture definitions for the workloads the paper evaluates.
//!
//! Only the *shapes* matter for this reproduction: layer counts, hidden sizes,
//! attention heads and FFN widths determine every GEMM the accelerator models
//! execute and the tensor sizes the synthetic generator produces. The numbers
//! below follow the public architecture descriptions of each model.

/// Broad architecture family, used to pick batch sizes (paper Sec. 5.3) and
/// synthetic tensor statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelFamily {
    /// Encoder-only Transformer (BERT-style); evaluated at batch 16.
    EncoderOnly,
    /// Encoder-decoder Transformer (BART-style); evaluated at batch 16.
    EncoderDecoder,
    /// Decoder-only Transformer (GPT-style LLM); evaluated at batch 2.
    DecoderOnly,
    /// Convolutional network (ResNet-style), used only for the Fig. 2 contrast.
    Cnn,
}

/// Architecture description of one evaluated model.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelConfig {
    /// Human-readable name as used in the paper's tables.
    pub name: String,
    /// Architecture family.
    pub family: ModelFamily,
    /// Number of Transformer layers (encoder + decoder for BART).
    pub layers: usize,
    /// Hidden (model) dimension.
    pub hidden: usize,
    /// Number of attention heads.
    pub heads: usize,
    /// Feed-forward inner dimension.
    pub ffn: usize,
    /// Vocabulary size (rounded; only affects embedding/LM-head GEMMs).
    pub vocab: usize,
    /// Default sequence length used in the evaluation.
    pub seq_len: usize,
    /// Default batch size used in the evaluation (paper Sec. 5.3: 16 for
    /// BERT-like, 2 for GPT-like models).
    pub batch: usize,
}

impl ModelConfig {
    /// BERT-base: 12 layers, hidden 768, 12 heads.
    pub fn bert_base() -> Self {
        ModelConfig {
            name: "BERT-base".into(),
            family: ModelFamily::EncoderOnly,
            layers: 12,
            hidden: 768,
            heads: 12,
            ffn: 3072,
            vocab: 30_522,
            seq_len: 128,
            batch: 16,
        }
    }

    /// BERT-large: 24 layers, hidden 1024, 16 heads.
    pub fn bert_large() -> Self {
        ModelConfig {
            name: "BERT-large".into(),
            family: ModelFamily::EncoderOnly,
            layers: 24,
            hidden: 1024,
            heads: 16,
            ffn: 4096,
            vocab: 30_522,
            seq_len: 128,
            batch: 16,
        }
    }

    /// BART-base: 6 encoder + 6 decoder layers, hidden 768.
    pub fn bart_base() -> Self {
        ModelConfig {
            name: "BART-base".into(),
            family: ModelFamily::EncoderDecoder,
            layers: 12,
            hidden: 768,
            heads: 12,
            ffn: 3072,
            vocab: 50_265,
            seq_len: 128,
            batch: 16,
        }
    }

    /// GPT2-XL: 48 layers, hidden 1600, 25 heads.
    pub fn gpt2_xl() -> Self {
        ModelConfig {
            name: "GPT2-XL".into(),
            family: ModelFamily::DecoderOnly,
            layers: 48,
            hidden: 1600,
            heads: 25,
            ffn: 6400,
            vocab: 50_257,
            seq_len: 512,
            batch: 2,
        }
    }

    /// BLOOM-7B1: 30 layers, hidden 4096, 32 heads.
    pub fn bloom_7b1() -> Self {
        ModelConfig {
            name: "BLOOM-7B1".into(),
            family: ModelFamily::DecoderOnly,
            layers: 30,
            hidden: 4096,
            heads: 32,
            ffn: 16_384,
            vocab: 250_880,
            seq_len: 512,
            batch: 2,
        }
    }

    /// OPT-6.7B: 32 layers, hidden 4096, 32 heads.
    pub fn opt_6_7b() -> Self {
        ModelConfig {
            name: "OPT-6.7B".into(),
            family: ModelFamily::DecoderOnly,
            layers: 32,
            hidden: 4096,
            heads: 32,
            ffn: 16_384,
            vocab: 50_272,
            seq_len: 512,
            batch: 2,
        }
    }

    /// ResNet-18 stand-in (used for the Fig. 2 CNN-vs-Transformer contrast).
    pub fn resnet18() -> Self {
        ModelConfig {
            name: "ResNet-18".into(),
            family: ModelFamily::Cnn,
            layers: 20,
            hidden: 512,
            heads: 1,
            ffn: 512,
            vocab: 1000,
            seq_len: 49,
            batch: 16,
        }
    }

    /// The five Transformer models used in the GPU/accelerator performance
    /// figures (Fig. 9, Fig. 10), in the paper's order.
    pub fn performance_suite() -> Vec<ModelConfig> {
        vec![
            Self::bert_base(),
            Self::bert_large(),
            Self::bart_base(),
            Self::gpt2_xl(),
            Self::bloom_7b1(),
        ]
    }

    /// The large language models of Tbl. 9.
    pub fn llm_suite() -> Vec<ModelConfig> {
        vec![Self::gpt2_xl(), Self::bloom_7b1(), Self::opt_6_7b()]
    }

    /// Per-head dimension.
    pub fn head_dim(&self) -> usize {
        self.hidden / self.heads
    }

    /// Approximate Transformer parameter count (attention + FFN + embeddings).
    pub fn approx_params(&self) -> u64 {
        let h = self.hidden as u64;
        let f = self.ffn as u64;
        let l = self.layers as u64;
        let v = self.vocab as u64;
        // Per layer: QKV (3 h²) + output (h²) + FFN (2 h f) + norms (small).
        l * (4 * h * h + 2 * h * f) + v * h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_counts_are_in_the_right_ballpark() {
        // Known published sizes: BERT-base ≈ 110M, BERT-large ≈ 340M,
        // GPT2-XL ≈ 1.5B, OPT-6.7B ≈ 6.7B, BLOOM-7B1 ≈ 7.1B.
        let close = |cfg: ModelConfig, expected_m: f64, tol: f64| {
            let p = cfg.approx_params() as f64 / 1e6;
            assert!(
                (p - expected_m).abs() / expected_m < tol,
                "{}: {} M params vs expected {} M",
                cfg.name,
                p,
                expected_m
            );
        };
        close(ModelConfig::bert_base(), 110.0, 0.25);
        close(ModelConfig::bert_large(), 340.0, 0.25);
        close(ModelConfig::gpt2_xl(), 1_500.0, 0.25);
        close(ModelConfig::opt_6_7b(), 6_700.0, 0.25);
        close(ModelConfig::bloom_7b1(), 7_100.0, 0.30);
    }

    #[test]
    fn batch_sizes_follow_section_5_3() {
        assert_eq!(ModelConfig::bert_base().batch, 16);
        assert_eq!(ModelConfig::gpt2_xl().batch, 2);
        assert_eq!(ModelConfig::bloom_7b1().batch, 2);
    }

    #[test]
    fn head_dim_divides_hidden() {
        for cfg in ModelConfig::performance_suite() {
            assert_eq!(cfg.hidden % cfg.heads, 0, "{}", cfg.name);
        }
    }

    #[test]
    fn suites_have_expected_members() {
        let perf = ModelConfig::performance_suite();
        assert_eq!(perf.len(), 5);
        assert_eq!(perf[0].name, "BERT-base");
        let llm = ModelConfig::llm_suite();
        assert_eq!(llm.len(), 3);
        assert_eq!(llm[2].name, "OPT-6.7B");
    }

    #[test]
    fn larger_models_have_more_parameters() {
        assert!(
            ModelConfig::bert_large().approx_params() > ModelConfig::bert_base().approx_params()
        );
        assert!(ModelConfig::bloom_7b1().approx_params() > ModelConfig::gpt2_xl().approx_params());
    }
}
