//! ResNet-18 layer shapes (the CNN contrast of Fig. 2).
//!
//! Convolutions are expressed as im2col GEMMs: for a convolution with `C_in`
//! input channels, `C_out` output channels, kernel `K×K` and output spatial
//! size `H×W`, the GEMM is `[batch·H·W, C_in·K²] × [C_in·K², C_out]`.

use crate::workload::{Gemm, GemmKind};

/// One convolutional layer of ResNet-18.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvLayer {
    /// Layer name index.
    pub index: usize,
    /// Input channels.
    pub c_in: usize,
    /// Output channels.
    pub c_out: usize,
    /// Kernel size (square).
    pub kernel: usize,
    /// Output spatial size (square, for 224×224 inputs).
    pub out_hw: usize,
}

/// The convolutional layers of ResNet-18 (224×224 input), basic blocks only;
/// 1×1 downsample shortcuts are included.
pub fn resnet18_layers() -> Vec<ConvLayer> {
    let mut layers = Vec::new();
    let mut idx = 0;
    let mut push = |c_in, c_out, kernel, out_hw: usize| {
        layers.push(ConvLayer {
            index: idx,
            c_in,
            c_out,
            kernel,
            out_hw,
        });
        idx += 1;
    };
    // Stem.
    push(3, 64, 7, 112);
    // Stage 1: two basic blocks at 56×56, 64 channels.
    for _ in 0..4 {
        push(64, 64, 3, 56);
    }
    // Stage 2: 128 channels at 28×28 (first conv downsamples) + shortcut.
    push(64, 128, 3, 28);
    push(128, 128, 3, 28);
    push(64, 128, 1, 28);
    push(128, 128, 3, 28);
    push(128, 128, 3, 28);
    // Stage 3: 256 channels at 14×14.
    push(128, 256, 3, 14);
    push(256, 256, 3, 14);
    push(128, 256, 1, 14);
    push(256, 256, 3, 14);
    push(256, 256, 3, 14);
    // Stage 4: 512 channels at 7×7.
    push(256, 512, 3, 7);
    push(512, 512, 3, 7);
    push(256, 512, 1, 7);
    push(512, 512, 3, 7);
    push(512, 512, 3, 7);
    layers
}

/// The im2col GEMM list of ResNet-18 plus the final classifier.
pub fn resnet18_gemms(batch: usize) -> Vec<Gemm> {
    let mut gemms: Vec<Gemm> = resnet18_layers()
        .iter()
        .map(|l| Gemm {
            name: format!("conv{}", l.index),
            m: batch * l.out_hw * l.out_hw,
            k: l.c_in * l.kernel * l.kernel,
            n: l.c_out,
            kind: GemmKind::WeightActivation,
        })
        .collect();
    gemms.push(Gemm {
        name: "fc".into(),
        m: batch,
        k: 512,
        n: 1000,
        kind: GemmKind::WeightActivation,
    });
    gemms
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet18_has_expected_conv_count() {
        // 17 weight convs of the standard ResNet-18 plus 3 downsample 1×1s.
        assert_eq!(resnet18_layers().len(), 20);
    }

    #[test]
    fn total_macs_per_image_are_about_1_8_g() {
        let macs: u64 = resnet18_gemms(1).iter().map(|g| g.macs()).sum();
        let gmacs = macs as f64 / 1e9;
        assert!(gmacs > 1.3 && gmacs < 2.5, "gmacs = {}", gmacs);
    }

    #[test]
    fn parameter_count_is_about_11m() {
        let params: u64 = resnet18_gemms(1).iter().map(|g| g.b_elems()).sum();
        let m = params as f64 / 1e6;
        assert!(m > 9.0 && m < 14.0, "params = {} M", m);
    }

    #[test]
    fn gemm_batch_scales_rows() {
        let g1 = resnet18_gemms(1);
        let g4 = resnet18_gemms(4);
        assert_eq!(g4[0].m, 4 * g1[0].m);
        assert_eq!(g4[0].k, g1[0].k);
    }
}
