//! # olive-runtime
//!
//! Zero-dependency data-parallel runtime for the OliVe reproduction: a
//! persistent [`Pool`] of `std::thread` workers plus the row-range primitives
//! ([`par_rows`], [`par_rows_mut`], [`par_map`]) the tensor, core and model
//! layers build their hot loops on, and a bounded micro-batching
//! [`queue::BoundedQueue`] that `olive-serve` turns into its dynamic batcher.
//!
//! ## Thread-count selection
//!
//! Every primitive resolves its parallelism with [`effective_threads`], in
//! priority order:
//!
//! 1. a scoped [`with_threads`] override on the current thread (used by tests
//!    and benches to compare sequential vs parallel execution in-process);
//! 2. the `OLIVE_THREADS` environment variable (re-read on every call, so a
//!    harness can change it between phases);
//! 3. [`std::thread::available_parallelism`].
//!
//! `OLIVE_THREADS=1` forces fully sequential, inline execution everywhere.
//!
//! A **set but invalid** `OLIVE_THREADS` (`0`, non-numeric) clamps to 1 with
//! a one-time stderr warning instead of silently falling back to
//! [`std::thread::available_parallelism`]: a typo'd environment must never
//! be able to change which thread count a determinism test actually ran at.
//! Daemons should additionally call [`validate_thread_env`] at startup to
//! turn the typo into a hard error before serving anything.
//!
//! ## Determinism contract
//!
//! Parallel execution is **bit-identical** to sequential execution, for every
//! thread count, by construction rather than by luck:
//!
//! * [`par_rows`] partitions `0..m` into *disjoint, contiguous* row ranges.
//!   Workers steal which *range* they execute next, but never how a range is
//!   computed: each range is processed by the same kernel code, in the same
//!   row order, with the same floating-point accumulation order, as the
//!   sequential path (which is literally `f(0..m)`).
//! * Kernels built on [`par_rows_mut`] write only to the rows of the output
//!   they own, so no result ever depends on scheduling.
//! * Reductions (e.g. GEMM statistics) are merged from per-range partials
//!   using commutative-and-associative integer arithmetic only; callers that
//!   need floating-point reductions must merge partials in range order, which
//!   [`par_map`]'s index-ordered result vector makes trivial.
//! * Nested parallelism runs inline on the already-parallel worker, so the
//!   work decomposition — and therefore the arithmetic — of an inner kernel
//!   does not change when an outer loop is parallelised.
//!
//! Anything that would break this contract (atomic float accumulation,
//! scheduling-dependent chunk sizes, time-based adaptation) is out of scope
//! for this crate by design. The property tests in `crates/core/tests`
//! enforce the contract for the GEMM kernels at `OLIVE_THREADS=1` vs `8`.
//!
//! ## Example
//!
//! ```
//! // Square 1000 numbers in parallel row blocks, writing disjoint outputs.
//! let input: Vec<f32> = (0..1000).map(|i| i as f32).collect();
//! let mut out = vec![0.0f32; 1000];
//! olive_runtime::par_rows_mut(1000, 1, &mut out, |rows, block| {
//!     for (slot, i) in block.iter_mut().zip(rows) {
//!         *slot = input[i] * input[i];
//!     }
//! });
//! assert_eq!(out[31], 961.0);
//! ```

pub mod pool;
pub mod queue;
pub mod sync;

pub use pool::{Pool, MAX_THREADS};
pub use queue::{BoundedQueue, PushError};
pub use sync::{lock_or_recover, wait_or_recover, wait_timeout_or_recover};

use std::cell::Cell;
use std::ops::Range;
use std::sync::Mutex;

thread_local! {
    /// Scoped thread-count override installed by [`with_threads`].
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    /// True while this thread is executing pool chunks (workers and
    /// participating callers); nested primitives then run inline.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Minimum per-call work (in fused multiply-add-equivalents) below which
/// [`should_parallelize`] recommends staying sequential: dispatching to the
/// pool costs a few microseconds, so tiny kernels are faster inline.
pub const MIN_PARALLEL_WORK: u64 = 32_768;

/// How many chunks each thread lane gets on average; >1 lets fast lanes
/// steal work from slow ones without making chunks too fine.
const CHUNKS_PER_THREAD: usize = 4;

/// Parses an `OLIVE_THREADS` value: a positive integer, surrounding
/// whitespace tolerated.
///
/// # Errors
///
/// Returns a message naming the offending value for `0` (a thread count of
/// zero is always a typo) and anything non-numeric.
pub fn parse_thread_env(raw: &str) -> Result<usize, String> {
    match raw.trim().parse::<usize>() {
        Ok(0) => Err("OLIVE_THREADS=0 is invalid: the thread count must be at least 1".into()),
        Ok(n) => Ok(n),
        Err(_) => Err(format!(
            "OLIVE_THREADS='{raw}' is not a positive integer thread count"
        )),
    }
}

/// Checks the `OLIVE_THREADS` environment variable: `Ok` when unset or a
/// positive integer. Daemons call this at startup so a typo'd environment is
/// an explicit error instead of a silently different thread count (see the
/// [module docs](self)).
///
/// # Errors
///
/// Propagates the [`parse_thread_env`] message for a set-but-invalid value.
pub fn validate_thread_env() -> Result<(), String> {
    match std::env::var("OLIVE_THREADS") {
        Err(_) => Ok(()),
        Ok(value) => parse_thread_env(&value).map(|_| ()),
    }
}

/// Warns about an invalid `OLIVE_THREADS` once per process (the value is
/// re-read on every primitive call; a warning per GEMM would be noise).
fn warn_invalid_thread_env_once(message: &str) {
    static WARNED: std::sync::Once = std::sync::Once::new();
    WARNED.call_once(|| {
        eprintln!("olive-runtime: {message}; clamping to OLIVE_THREADS=1 (fully sequential)");
    });
}

/// The parallelism the current thread's primitives will use.
///
/// Resolution order: [`with_threads`] override, then `OLIVE_THREADS`
/// (re-read on every call; an invalid value clamps to 1 with a one-time
/// warning — see the [module docs](self)), then
/// [`std::thread::available_parallelism`]. Always at least 1, clamped to
/// [`MAX_THREADS`].
pub fn effective_threads() -> usize {
    let raw = THREAD_OVERRIDE
        .with(Cell::get)
        .or_else(|| {
            let value = std::env::var("OLIVE_THREADS").ok()?;
            Some(match parse_thread_env(&value) {
                Ok(n) => n,
                Err(message) => {
                    warn_invalid_thread_env_once(&message);
                    1
                }
            })
        })
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
    raw.clamp(1, MAX_THREADS)
}

/// Runs `f` with [`effective_threads`] pinned to `threads` on this thread.
///
/// The override is scoped (restored even if `f` panics) and thread-local, so
/// concurrent tests comparing thread counts do not race each other.
///
/// ```
/// olive_runtime::with_threads(1, || {
///     assert_eq!(olive_runtime::effective_threads(), 1);
/// });
/// ```
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|cell| cell.set(self.0));
        }
    }
    let _restore = Restore(THREAD_OVERRIDE.with(|cell| cell.replace(Some(threads.max(1)))));
    f()
}

/// True while the current thread is executing chunks of a pool job.
pub fn in_worker() -> bool {
    IN_WORKER.with(Cell::get)
}

/// Marks the current thread as a pool lane for the duration of `f`
/// (crate-internal; used by [`Pool`]).
pub(crate) fn enter_worker<R>(f: impl FnOnce() -> R) -> R {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            IN_WORKER.with(|cell| cell.set(self.0));
        }
    }
    let _restore = Restore(IN_WORKER.with(|cell| cell.replace(true)));
    f()
}

/// Whether a kernel over `rows` rows doing `work` fused multiply-adds (or an
/// equivalent cost measure) is worth dispatching to the pool.
///
/// Deterministic: depends only on the arguments, the thread-count
/// configuration and whether the caller is already inside a pool job — never
/// on timing.
pub fn should_parallelize(rows: usize, work: u64) -> bool {
    rows >= 2 && work >= MIN_PARALLEL_WORK && !in_worker() && effective_threads() > 1
}

/// The chunk geometry both row primitives share: rows per chunk and chunk
/// count for an `m`-row kernel at `threads` lanes. Depends only on its
/// arguments, so the decomposition — and therefore the arithmetic — is
/// identical wherever it is computed.
fn chunk_geometry(m: usize, threads: usize) -> (usize, usize) {
    let chunk_rows = m.div_ceil((threads * CHUNKS_PER_THREAD).min(m));
    (chunk_rows, m.div_ceil(chunk_rows))
}

/// Runs `f` over disjoint contiguous sub-ranges of `0..m` that exactly cover
/// `0..m`, in parallel on the [global pool](Pool::global).
///
/// With one effective thread (or inside a pool job, or `m <= 1`) this is
/// exactly `f(0..m)` — one call, on the current thread.
///
/// # Panics
///
/// Re-throws the first panic raised by any range on the calling thread.
pub fn par_rows<F: Fn(Range<usize>) + Sync>(m: usize, f: F) {
    if m == 0 {
        return;
    }
    let threads = effective_threads();
    if threads <= 1 || m == 1 || in_worker() {
        f(0..m);
        return;
    }
    let (chunk_rows, n_chunks) = chunk_geometry(m, threads);
    Pool::global().scoped(threads, n_chunks, |chunk| {
        let start = chunk * chunk_rows;
        let end = (start + chunk_rows).min(m);
        f(start..end);
    });
}

/// Like [`par_rows`], additionally handing each range the mutable slice of
/// `out` holding its rows (`cols` values per row).
///
/// This is the safe core the GEMM kernels build on: the exclusive borrow of
/// `out` is pre-split with `split_at_mut` into one disjoint block per chunk,
/// each chunk takes its block exactly once (an uncontended per-chunk `Mutex`
/// slot), and [`Pool::scoped`] joins every chunk before returning, so no
/// borrow outlives the call. No `unsafe` is involved — the workspace-wide
/// `no-unsafe-outside-simd` lint rule counts on that.
///
/// # Panics
///
/// Panics if `out.len() != m * cols`; re-throws panics raised by `f`.
pub fn par_rows_mut<T: Send, F: Fn(Range<usize>, &mut [T]) + Sync>(
    m: usize,
    cols: usize,
    out: &mut [T],
    f: F,
) {
    assert_eq!(
        out.len(),
        m * cols,
        "par_rows_mut: output length {} != {m} rows x {cols} cols",
        out.len()
    );
    if m == 0 {
        return;
    }
    let threads = effective_threads();
    if threads <= 1 || m == 1 || in_worker() {
        f(0..m, out);
        return;
    }
    let (chunk_rows, n_chunks) = chunk_geometry(m, threads);
    let mut blocks: Vec<Mutex<Option<&mut [T]>>> = Vec::with_capacity(n_chunks);
    let mut rest = out;
    for _ in 0..n_chunks {
        let take = (chunk_rows * cols).min(rest.len());
        let (head, tail) = rest.split_at_mut(take);
        blocks.push(Mutex::new(Some(head)));
        rest = tail;
    }
    Pool::global().scoped(threads, n_chunks, |chunk| {
        let start = chunk * chunk_rows;
        let end = (start + chunk_rows).min(m);
        let block = lock_or_recover(&blocks[chunk])
            .take()
            .expect("par_rows_mut: chunk block taken twice");
        f(start..end, block);
    });
}

/// Applies `f` to every item in parallel and returns the results **in input
/// order**, regardless of which thread computed what.
///
/// ```
/// let squares = olive_runtime::par_map(&[1u64, 2, 3, 4], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn par_map<T: Sync, R: Send, F: Fn(&T) -> R + Sync>(items: &[T], f: F) -> Vec<R> {
    let parts: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::new());
    par_rows(items.len(), |rows| {
        let local: Vec<R> = items[rows.clone()].iter().map(&f).collect();
        lock_or_recover(&parts).push((rows.start, local));
    });
    // A panicked range already re-threw above; completed partials are intact.
    let mut parts = parts
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    parts.sort_unstable_by_key(|(start, _)| *start);
    parts.into_iter().flat_map(|(_, local)| local).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn effective_threads_is_at_least_one() {
        assert!(effective_threads() >= 1);
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let outer = effective_threads();
        with_threads(7, || {
            assert_eq!(effective_threads(), 7);
            with_threads(2, || assert_eq!(effective_threads(), 2));
            assert_eq!(effective_threads(), 7);
        });
        assert_eq!(effective_threads(), outer);
    }

    #[test]
    fn with_threads_clamps_zero_to_one() {
        with_threads(0, || assert_eq!(effective_threads(), 1));
    }

    #[test]
    fn par_rows_covers_exactly_once() {
        for threads in [1usize, 2, 8] {
            for m in [0usize, 1, 2, 7, 64, 129] {
                let hits: Vec<AtomicUsize> = (0..m).map(|_| AtomicUsize::new(0)).collect();
                with_threads(threads, || {
                    par_rows(m, |rows| {
                        for i in rows {
                            hits[i].fetch_add(1, Ordering::Relaxed);
                        }
                    });
                });
                assert!(
                    hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                    "threads={threads} m={m}"
                );
            }
        }
    }

    #[test]
    fn par_rows_ranges_are_contiguous_and_ordered_within_chunks() {
        with_threads(4, || {
            let seen: Mutex<Vec<Range<usize>>> = Mutex::new(Vec::new());
            par_rows(100, |rows| seen.lock().unwrap().push(rows));
            let mut ranges = seen.lock().unwrap().clone();
            ranges.sort_unstable_by_key(|r| r.start);
            let mut next = 0;
            for r in ranges {
                assert_eq!(r.start, next);
                assert!(r.end > r.start);
                next = r.end;
            }
            assert_eq!(next, 100);
        });
    }

    #[test]
    fn par_rows_mut_writes_disjoint_blocks() {
        for threads in [1usize, 8] {
            let mut out = vec![0u64; 33 * 5];
            with_threads(threads, || {
                par_rows_mut(33, 5, &mut out, |rows, block| {
                    for (value, i) in block.iter_mut().zip(rows.start * 5..rows.end * 5) {
                        *value = i as u64;
                    }
                });
            });
            assert!(out.iter().enumerate().all(|(i, &v)| v == i as u64));
        }
    }

    #[test]
    #[should_panic(expected = "output length")]
    fn par_rows_mut_rejects_bad_length() {
        let mut out = vec![0u8; 7];
        par_rows_mut(2, 4, &mut out, |_, _| {});
    }

    #[test]
    fn par_map_preserves_input_order() {
        for threads in [1usize, 3, 8] {
            let items: Vec<usize> = (0..101).collect();
            let result = with_threads(threads, || par_map(&items, |&x| x * 2));
            assert_eq!(result, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_on_empty_slice() {
        let result: Vec<u32> = par_map(&[] as &[u32], |_| unreachable!());
        assert!(result.is_empty());
    }

    #[test]
    fn should_parallelize_respects_work_threshold() {
        with_threads(8, || {
            assert!(should_parallelize(1024, MIN_PARALLEL_WORK));
            assert!(!should_parallelize(1024, MIN_PARALLEL_WORK - 1));
            assert!(!should_parallelize(1, u64::MAX));
        });
        with_threads(1, || {
            assert!(!should_parallelize(1024, u64::MAX));
        });
    }

    #[test]
    fn nested_par_rows_runs_inline() {
        with_threads(4, || {
            let count = AtomicUsize::new(0);
            par_rows(8, |outer| {
                par_rows(4, |inner| {
                    count.fetch_add(
                        (outer.end - outer.start) * (inner.end - inner.start),
                        Ordering::Relaxed,
                    );
                });
            });
            assert_eq!(count.load(Ordering::Relaxed), 8 * 4);
        });
    }

    #[test]
    fn olive_threads_env_is_read_per_call() {
        // Serial within one test to avoid env races; other tests in this
        // binary tolerate any thread count by contract.
        std::env::set_var("OLIVE_THREADS", "5");
        assert_eq!(effective_threads(), 5);
        std::env::set_var("OLIVE_THREADS", "2");
        assert_eq!(effective_threads(), 2);
        // Invalid values clamp to exactly 1 (never available_parallelism),
        // so a typo cannot silently change a determinism test's setting.
        std::env::set_var("OLIVE_THREADS", "0");
        assert_eq!(effective_threads(), 1, "0 must clamp to exactly 1");
        std::env::set_var("OLIVE_THREADS", "eight");
        assert_eq!(effective_threads(), 1, "garbage must clamp to exactly 1");
        std::env::remove_var("OLIVE_THREADS");
        // Override beats the env var.
        std::env::set_var("OLIVE_THREADS", "3");
        with_threads(6, || assert_eq!(effective_threads(), 6));
        std::env::remove_var("OLIVE_THREADS");
    }
}
