//! The persistent worker pool behind the [`par_rows`](crate::par_rows)-family
//! primitives.
//!
//! One [`Pool`] owns a set of `std::thread` workers that live for the life of
//! the pool (the [global pool](Pool::global) lives for the process). A call to
//! [`Pool::scoped`] publishes one *job* — a closure plus a number of chunks —
//! and returns once every chunk has executed. Idle workers (and the calling
//! thread, which always participates) *steal* chunk indices from a shared
//! atomic counter, so a slow chunk never leaves the rest of the pool idle.
//!
//! The closure is borrowed for the duration of the call only; `scoped`
//! lifetime-erases it internally and guarantees — by waiting for every chunk
//! to finish before returning — that no worker touches it afterwards.

use crate::sync::{lock_or_recover, wait_or_recover};
use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Hard upper bound on pool threads, guarding against absurd `OLIVE_THREADS`.
pub const MAX_THREADS: usize = 256;

/// One published job: a lifetime-erased chunk closure plus progress counters.
struct Job {
    /// Erased `&(dyn Fn(usize) + Sync)` valid until `completed == total`.
    task: *const (dyn Fn(usize) + Sync),
    /// Next chunk index to claim (workers `fetch_add` to steal work).
    next: AtomicUsize,
    /// Total chunks in the job.
    total: usize,
    /// Chunks whose closure invocation has returned (or panicked).
    completed: AtomicUsize,
    /// Worker lanes still unclaimed: the job was published at some
    /// `threads`-way budget, the caller takes one lane, and only
    /// `threads - 1` workers may join — surplus pool workers skip the job so
    /// a small `OLIVE_THREADS`/`with_threads` request on a big pool really
    /// caps CPU use.
    worker_lanes: AtomicUsize,
    /// First panic payload raised by a chunk, re-thrown by the caller.
    panic_payload: Mutex<Option<Box<dyn Any + Send>>>,
}

// SAFETY: the raw closure pointer is only dereferenced while the owning
// `Pool::scoped` frame is alive (it blocks until `completed == total`, and no
// chunk index beyond `total` is ever executed), and the closure is `Sync`.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Claims one of the job's worker lanes; returns false when the thread
    /// budget is already fully subscribed.
    fn try_claim_lane(&self) -> bool {
        self.worker_lanes
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |lanes| {
                lanes.checked_sub(1)
            })
            .is_ok()
    }

    /// Claims and runs chunks until the shared counter is exhausted.
    fn run_chunks(&self, shared: &Shared) {
        loop {
            let chunk = self.next.fetch_add(1, Ordering::Relaxed);
            if chunk >= self.total {
                return;
            }
            // SAFETY: `completed < total` here, so the `scoped` frame that
            // owns the closure is still blocked waiting on this job.
            let task = unsafe { &*self.task };
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| task(chunk))) {
                let mut slot = lock_or_recover(&self.panic_payload);
                slot.get_or_insert(payload);
            }
            let done = self.completed.fetch_add(1, Ordering::AcqRel) + 1;
            if done == self.total {
                // Last chunk: retire the job and wake the waiting caller (and
                // any thread queued to publish the next job).
                let mut state = lock_or_recover(&shared.state);
                state.job = None;
                drop(state);
                shared.done_cv.notify_all();
            }
        }
    }
}

/// State every worker and caller shares.
struct Shared {
    state: Mutex<State>,
    /// Signalled when a new job is published (or on shutdown).
    work_cv: Condvar,
    /// Signalled when the current job retires.
    done_cv: Condvar,
}

struct State {
    /// Bumped per published job so sleeping workers can tell jobs apart.
    epoch: u64,
    /// The in-flight job, if any. At most one job runs at a time.
    job: Option<Arc<Job>>,
    shutdown: bool,
}

/// A persistent `std::thread` worker pool executing scoped, chunked jobs.
///
/// Most code should not construct pools directly but go through the
/// [`par_rows`](crate::par_rows)-family free functions, which share the
/// process-wide [`Pool::global`] instance.
pub struct Pool {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Pool {
    /// Creates a pool that can serve jobs at `threads`-way parallelism.
    ///
    /// Since the calling thread always participates in its own jobs, this
    /// spawns `threads - 1` workers (zero workers is a valid, purely inline
    /// pool). Thread counts are clamped to [`MAX_THREADS`].
    pub fn new(threads: usize) -> Self {
        let pool = Pool {
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    epoch: 0,
                    job: None,
                    shutdown: false,
                }),
                work_cv: Condvar::new(),
                done_cv: Condvar::new(),
            }),
            workers: Mutex::new(Vec::new()),
        };
        pool.ensure_workers(threads.min(MAX_THREADS).saturating_sub(1));
        pool
    }

    /// The process-wide pool used by the free-function primitives.
    ///
    /// Created on first use, sized from [`crate::effective_threads`] at that
    /// moment; later calls that request more parallelism (e.g. a larger
    /// `OLIVE_THREADS`) grow it on demand.
    pub fn global() -> &'static Pool {
        static GLOBAL: OnceLock<Pool> = OnceLock::new();
        GLOBAL.get_or_init(|| Pool::new(crate::effective_threads()))
    }

    /// Grows the worker set to at least `want` threads (clamped, best-effort:
    /// spawn failures leave the pool smaller but functional).
    fn ensure_workers(&self, want: usize) {
        let want = want.min(MAX_THREADS.saturating_sub(1));
        let mut workers = lock_or_recover(&self.workers);
        while workers.len() < want {
            let shared = Arc::clone(&self.shared);
            let name = format!("olive-runtime-{}", workers.len());
            match std::thread::Builder::new()
                .name(name)
                .spawn(move || worker_loop(&shared))
            {
                Ok(handle) => workers.push(handle),
                Err(_) => break,
            }
        }
    }

    /// Current worker-thread count (excludes the participating caller).
    pub fn workers(&self) -> usize {
        lock_or_recover(&self.workers).len()
    }

    /// Runs `f(chunk)` for every `chunk in 0..n_chunks` at up-to-`threads`-way
    /// parallelism and returns when all chunks have finished.
    ///
    /// The budget is enforced, not advisory: at most `threads - 1` pool
    /// workers join the calling thread, even when the pool has more workers
    /// from earlier, wider jobs.
    ///
    /// Chunk indices are claimed dynamically, so the assignment of chunks to
    /// threads is nondeterministic — callers must make `f` write only to
    /// chunk-private (disjoint) state for deterministic results; see the
    /// crate-level determinism contract.
    ///
    /// Runs entirely inline (no cross-thread dispatch) when `threads <= 1`,
    /// `n_chunks <= 1`, or the calling thread is itself a pool worker.
    ///
    /// # Panics
    ///
    /// If any chunk panics, the first panic payload is re-thrown on the
    /// calling thread after all remaining chunks have run to completion.
    pub fn scoped<F: Fn(usize) + Sync>(&self, threads: usize, n_chunks: usize, f: F) {
        if n_chunks == 0 {
            return;
        }
        if threads <= 1 || n_chunks == 1 || crate::in_worker() {
            for chunk in 0..n_chunks {
                f(chunk);
            }
            return;
        }
        self.ensure_workers(threads.min(MAX_THREADS) - 1);

        // Erase the closure's lifetime. SAFETY: this function does not return
        // until `completed == total`, after which no worker dereferences the
        // pointer again (the claim counter is already exhausted).
        let local: &(dyn Fn(usize) + Sync) = &f;
        let erased: &'static (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(local) };
        let job = Arc::new(Job {
            task: erased as *const (dyn Fn(usize) + Sync),
            next: AtomicUsize::new(0),
            total: n_chunks,
            completed: AtomicUsize::new(0),
            worker_lanes: AtomicUsize::new(threads.min(MAX_THREADS) - 1),
            panic_payload: Mutex::new(None),
        });

        {
            let mut state = lock_or_recover(&self.shared.state);
            // One job at a time: queue behind any in-flight job.
            while state.job.is_some() {
                state = wait_or_recover(&self.shared.done_cv, state);
            }
            state.epoch += 1;
            state.job = Some(Arc::clone(&job));
        }
        self.shared.work_cv.notify_all();

        // Participate: the caller is one of the `threads` lanes. Mark it as a
        // worker so nested parallel calls inside `f` run inline instead of
        // queueing behind this (unfinished) job.
        crate::enter_worker(|| job.run_chunks(&self.shared));

        let mut state = lock_or_recover(&self.shared.state);
        while job.completed.load(Ordering::Acquire) < job.total {
            state = wait_or_recover(&self.shared.done_cv, state);
        }
        drop(state);

        let payload = lock_or_recover(&job.panic_payload).take();
        if let Some(payload) = payload {
            std::panic::resume_unwind(payload);
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut state = lock_or_recover(&self.shared.state);
            state.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for handle in lock_or_recover(&self.workers).drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut state = lock_or_recover(&shared.state);
            loop {
                if state.shutdown {
                    return;
                }
                if state.epoch != seen_epoch {
                    seen_epoch = state.epoch;
                    if let Some(job) = state.job.clone() {
                        break job;
                    }
                    // Epoch advanced but the job already retired; keep waiting.
                }
                state = wait_or_recover(&shared.work_cv, state);
            }
        };
        if job.try_claim_lane() {
            crate::enter_worker(|| job.run_chunks(shared));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn scoped_runs_every_chunk_exactly_once() {
        let pool = Pool::new(4);
        let hits: Vec<AtomicU64> = (0..37).map(|_| AtomicU64::new(0)).collect();
        pool.scoped(4, hits.len(), |c| {
            hits[c].fetch_add(1, Ordering::Relaxed);
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn zero_chunks_is_a_no_op() {
        let pool = Pool::new(2);
        pool.scoped(2, 0, |_| panic!("must not run"));
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = Pool::new(1);
        assert_eq!(pool.workers(), 0);
        let sum = AtomicU64::new(0);
        pool.scoped(1, 10, |c| {
            sum.fetch_add(c as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 45);
    }

    #[test]
    fn pool_is_reusable_across_jobs() {
        let pool = Pool::new(3);
        for round in 0..50u64 {
            let sum = AtomicU64::new(0);
            pool.scoped(3, 16, |c| {
                sum.fetch_add(round + c as u64, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), 16 * round + 120);
        }
    }

    #[test]
    fn oversubscribed_pool_still_completes() {
        // More threads than cores (this box may have a single core).
        let pool = Pool::new(8);
        let sum = AtomicU64::new(0);
        pool.scoped(8, 64, |c| {
            sum.fetch_add(c as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), (0..64).sum::<u64>());
    }

    #[test]
    fn thread_budget_is_enforced_on_a_wider_pool() {
        // A pool that has 7 workers from an earlier 8-way job must still run
        // a threads=2 job on at most 2 threads (caller + one worker).
        let pool = Pool::new(8);
        pool.scoped(8, 16, |_| std::thread::yield_now());
        for _ in 0..20 {
            let ids = Mutex::new(std::collections::HashSet::new());
            pool.scoped(2, 32, |_| {
                ids.lock().unwrap().insert(std::thread::current().id());
                std::thread::yield_now();
            });
            let participants = ids.lock().unwrap().len();
            assert!(
                participants <= 2,
                "{participants} threads joined a 2-way job"
            );
        }
    }

    #[test]
    fn panicking_chunk_propagates_to_caller() {
        let pool = Pool::new(4);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scoped(4, 8, |c| {
                if c == 3 {
                    panic!("chunk three failed");
                }
            });
        }));
        let payload = result.expect_err("scoped must re-throw the chunk panic");
        let message = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(message, "chunk three failed");
        // The pool survives a panicked job.
        let sum = AtomicU64::new(0);
        pool.scoped(4, 4, |c| {
            sum.fetch_add(c as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn nested_scoped_runs_inline_without_deadlock() {
        let pool = Pool::new(4);
        let sum = AtomicU64::new(0);
        pool.scoped(4, 4, |_outer| {
            // Nested use of the *same* pool must not wait for the outer job.
            pool.scoped(4, 4, |inner| {
                sum.fetch_add(inner as u64, Ordering::Relaxed);
            });
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4 * 6);
    }

    #[test]
    fn global_pool_is_a_singleton() {
        let a = Pool::global() as *const Pool;
        let b = Pool::global() as *const Pool;
        assert_eq!(a, b);
    }
}
