//! A bounded multi-producer/single-consumer queue — the batching primitive
//! behind `olive-serve`'s dynamic batcher.
//!
//! Producers [`try_push`](BoundedQueue::try_push) items; when the queue is at
//! capacity the push fails *immediately* instead of blocking, which is what
//! lets a server turn overload into back-pressure (HTTP 503) rather than
//! unbounded memory growth. A consumer drains items with
//! [`pop_batch`](BoundedQueue::pop_batch): it blocks until at least one item
//! is available, then keeps collecting until either `max_batch` items are in
//! hand or `max_wait` has elapsed since the first item arrived — the classic
//! micro-batching policy (batch as much as shows up quickly, never stall a
//! lone request for long).
//!
//! Items come out in exactly the order they went in (FIFO), so a consumer
//! that processes batches with order-preserving primitives such as
//! [`par_map`](crate::par_map) observes global FIFO order end to end; the
//! tests in `crates/runtime/tests/queue_pool.rs` pin this down together with
//! panic propagation through [`Pool`](crate::Pool)-backed batch execution.

use crate::sync::{lock_or_recover, wait_or_recover, wait_timeout_or_recover};
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue already holds `capacity` items — shed load and retry later.
    Full,
    /// The queue was [`close`](BoundedQueue::close)d; no more items are
    /// accepted.
    Closed,
}

impl std::fmt::Display for PushError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PushError::Full => write!(f, "queue is full"),
            PushError::Closed => write!(f, "queue is closed"),
        }
    }
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded FIFO queue with non-blocking producers and a micro-batching
/// consumer. See the [module docs](self) for the protocol.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    /// Signalled whenever an item arrives or the queue closes.
    available: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (at least 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued (racy by nature; for stats/back-pressure
    /// reporting only).
    pub fn len(&self) -> usize {
        lock_or_recover(&self.inner).items.len()
    }

    /// True when no items are queued right now.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues `item` unless the queue is full or closed; never blocks.
    ///
    /// # Errors
    ///
    /// Returns the item back along with the reason so the caller can shed
    /// load (e.g. answer 503) without losing the request it was holding.
    pub fn try_push(&self, item: T) -> Result<(), (PushError, T)> {
        let mut inner = lock_or_recover(&self.inner);
        if inner.closed {
            return Err((PushError::Closed, item));
        }
        if inner.items.len() >= self.capacity {
            return Err((PushError::Full, item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until at least one item is available (or the queue closes),
    /// then collects up to `max_batch` items, waiting at most `max_wait`
    /// after the first item for stragglers.
    ///
    /// Returns the batch in FIFO order; an empty vector means the queue is
    /// closed *and* drained — the consumer should exit.
    pub fn pop_batch(&self, max_batch: usize, max_wait: Duration) -> Vec<T> {
        let max_batch = max_batch.max(1);
        let mut inner = lock_or_recover(&self.inner);
        // Phase 1: wait (indefinitely) for the first item or close+drain.
        while inner.items.is_empty() {
            if inner.closed {
                return Vec::new();
            }
            inner = wait_or_recover(&self.available, inner);
        }
        let mut batch = Vec::with_capacity(max_batch.min(inner.items.len()));
        // Phase 2: batch whatever is already queued, then linger up to
        // `max_wait` (measured from the first item) for more. The loop is
        // purely deadline-driven: the remaining wait is recomputed from the
        // wall clock on *every* iteration and the `WaitTimeoutResult` is
        // deliberately ignored, so a spurious condvar wakeup (or a wakeup
        // for an item another effect consumed) can neither extend the
        // linger past `max_wait` nor cut it short.
        let deadline = Instant::now() + max_wait;
        loop {
            while batch.len() < max_batch {
                match inner.items.pop_front() {
                    Some(item) => batch.push(item),
                    None => break,
                }
            }
            if batch.len() >= max_batch || inner.closed {
                return batch;
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return batch;
            }
            (inner, _) = wait_timeout_or_recover(&self.available, inner, remaining);
        }
    }

    /// Collects up to `max_batch` items that are already queued, without
    /// blocking or lingering. Returns an empty vector when nothing is
    /// queued *or* the queue is closed-and-drained — a non-blocking
    /// consumer distinguishes the two via [`is_closed`](Self::is_closed).
    ///
    /// This is the polling counterpart of [`pop_batch`] for consumers that
    /// have other work to do between drains (e.g. a decode scheduler
    /// admitting new streams between ticks).
    pub fn try_pop_batch(&self, max_batch: usize) -> Vec<T> {
        let max_batch = max_batch.max(1);
        let mut inner = lock_or_recover(&self.inner);
        let take = max_batch.min(inner.items.len());
        inner.items.drain(..take).collect()
    }

    /// Wakes every blocked consumer without delivering an item or closing —
    /// indistinguishable, on the consumer side, from a spurious condvar
    /// wakeup. Exists so tests can exercise the [`pop_batch`] deadline
    /// logic deterministically; it is never useful in production code.
    #[doc(hidden)]
    pub fn spurious_wake_for_test(&self) {
        // Take the lock so the wake cannot race past a consumer that is
        // between checking state and parking.
        drop(lock_or_recover(&self.inner));
        self.available.notify_all();
    }

    /// Closes the queue: pending items remain poppable, new pushes fail with
    /// [`PushError::Closed`], and blocked consumers wake up.
    pub fn close(&self) {
        lock_or_recover(&self.inner).closed = true;
        self.available.notify_all();
    }

    /// True once [`close`](BoundedQueue::close) has been called.
    pub fn is_closed(&self) -> bool {
        lock_or_recover(&self.inner).closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_preserves_fifo_order() {
        let q = BoundedQueue::new(16);
        for i in 0..10 {
            q.try_push(i).unwrap();
        }
        let batch = q.pop_batch(10, Duration::ZERO);
        assert_eq!(batch, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn try_push_refuses_when_full_and_returns_the_item() {
        let q = BoundedQueue::new(2);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        let (err, item) = q.try_push("c").unwrap_err();
        assert_eq!(err, PushError::Full);
        assert_eq!(item, "c");
        // Draining frees capacity again.
        assert_eq!(q.pop_batch(1, Duration::ZERO), vec!["a"]);
        q.try_push("c").unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_rejects_pushes_but_drains_pending_items() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert!(q.is_closed());
        let (err, _) = q.try_push(2).unwrap_err();
        assert_eq!(err, PushError::Closed);
        assert_eq!(q.pop_batch(8, Duration::ZERO), vec![1]);
        // Closed and drained: the consumer-exit signal.
        assert!(q.pop_batch(8, Duration::ZERO).is_empty());
    }

    #[test]
    fn pop_batch_caps_at_max_batch() {
        let q = BoundedQueue::new(16);
        for i in 0..9 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.pop_batch(4, Duration::ZERO), vec![0, 1, 2, 3]);
        assert_eq!(q.pop_batch(4, Duration::ZERO), vec![4, 5, 6, 7]);
        assert_eq!(q.pop_batch(4, Duration::ZERO), vec![8]);
    }

    #[test]
    fn try_pop_batch_never_blocks_and_preserves_fifo() {
        let q = BoundedQueue::new(8);
        assert!(q.try_pop_batch(4).is_empty(), "empty queue drains to empty");
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.try_pop_batch(3), vec![0, 1, 2]);
        assert_eq!(q.try_pop_batch(3), vec![3, 4]);
        assert!(q.try_pop_batch(3).is_empty());
        // Closed queues keep draining pending items non-blockingly too.
        q.try_push(9).unwrap();
        q.close();
        assert_eq!(q.try_pop_batch(3), vec![9]);
        assert!(q.try_pop_batch(3).is_empty() && q.is_closed());
    }

    #[test]
    fn pop_batch_wakes_on_late_push() {
        let q = Arc::new(BoundedQueue::new(4));
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                q.try_push(7u32).unwrap();
            })
        };
        // Blocks in phase 1 until the producer delivers.
        let batch = q.pop_batch(4, Duration::ZERO);
        assert_eq!(batch, vec![7]);
        producer.join().unwrap();
    }

    #[test]
    fn pop_batch_lingers_for_stragglers_within_max_wait() {
        let q = Arc::new(BoundedQueue::new(8));
        q.try_push(1u32).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(15));
                q.try_push(2).unwrap();
            })
        };
        let batch = q.pop_batch(2, Duration::from_secs(5));
        assert_eq!(batch, vec![1, 2], "straggler must join the batch");
        producer.join().unwrap();
    }

    #[test]
    fn spurious_wakeups_do_not_extend_the_pop_deadline() {
        // A consumer holding one item and lingering for stragglers is
        // bombarded with wakeups that never deliver an item. The linger
        // must still end at (about) `max_wait` — a wakeup-driven
        // implementation that restarts its timeout on every wake would hang
        // here for the full 10 seconds of bombardment.
        let q = Arc::new(BoundedQueue::<u32>::new(8));
        q.try_push(1).unwrap();
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let waker = {
            let q = Arc::clone(&q);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let end = Instant::now() + Duration::from_secs(10);
                while !stop.load(std::sync::atomic::Ordering::Relaxed) && Instant::now() < end {
                    q.spurious_wake_for_test();
                    std::thread::sleep(Duration::from_millis(1));
                }
            })
        };
        let start = Instant::now();
        let batch = q.pop_batch(4, Duration::from_millis(100));
        let elapsed = start.elapsed();
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        waker.join().unwrap();
        assert_eq!(batch, vec![1]);
        assert!(
            elapsed < Duration::from_secs(5),
            "woken-but-empty linger overshot the 100ms deadline: {elapsed:?}"
        );
    }

    #[test]
    fn close_wakes_a_blocked_consumer() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop_batch(4, Duration::from_secs(30)))
        };
        std::thread::sleep(Duration::from_millis(10));
        q.close();
        assert!(consumer.join().unwrap().is_empty());
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.try_push(1).unwrap();
        assert_eq!(q.try_push(2).unwrap_err().0, PushError::Full);
    }
}
