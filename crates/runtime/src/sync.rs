//! Poison-recovering lock primitives.
//!
//! Every mutex in the runtime and serving layers guards state that stays
//! structurally valid across a panic: counters, FIFO queues, caches whose
//! entries are pure functions of their keys. For such state, the standard
//! `.lock().unwrap()` idiom converts one panicked worker into a *cascade* —
//! every thread that later touches the same mutex panics on the poison flag,
//! which in a server means the drain thread dies and every queued request
//! hangs until its client gives up.
//!
//! [`lock_or_recover`] (and the [`Condvar`] companions [`wait_or_recover`]
//! and [`wait_timeout_or_recover`]) encode the intended policy instead:
//! recover the guard, clear the poison flag, and keep serving. The original
//! panic still propagates on the thread that raised it — recovery never
//! swallows a bug, it only stops the bug from taking hostages.
//!
//! The `no-bare-lock-unwrap` rule of `olive-lint` (see `crates/lint`)
//! enforces, at the source level, that `crates/runtime`, `crates/serve` and
//! `crates/core` acquire locks through these helpers only.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError, WaitTimeoutResult};
use std::time::Duration;

/// Locks `mutex`, recovering (and clearing) a poisoned lock instead of
/// panicking.
///
/// Use wherever the guarded state is valid regardless of panics in other
/// critical sections — which is a design requirement for every mutex in this
/// workspace's concurrent layers (see the [module docs](self)).
pub fn lock_or_recover<T: ?Sized>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => {
            // Clear the flag so unrelated later lockers (and std APIs that
            // still check it) observe a healthy mutex again.
            mutex.clear_poison();
            poisoned.into_inner()
        }
    }
}

/// [`Condvar::wait`] that recovers the guard from a poisoned lock instead of
/// panicking — the blocking-side twin of [`lock_or_recover`].
pub fn wait_or_recover<'a, T>(condvar: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    condvar.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait_timeout`] that recovers the guard from a poisoned lock
/// instead of panicking.
pub fn wait_timeout_or_recover<'a, T>(
    condvar: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: Duration,
) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
    condvar
        .wait_timeout(guard, timeout)
        .unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// Panics while holding the lock so the mutex is genuinely poisoned.
    fn poison<T: Send + 'static>(mutex: &Arc<Mutex<T>>) {
        let m = Arc::clone(mutex);
        let _ = std::thread::spawn(move || {
            let _guard = m.lock().unwrap();
            panic!("poison the mutex");
        })
        .join();
        assert!(mutex.is_poisoned(), "setup: the mutex must be poisoned");
    }

    #[test]
    fn poisoned_lock_recovers_instead_of_cascading() {
        let mutex = Arc::new(Mutex::new(7u32));
        poison(&mutex);
        // A bare .lock().unwrap() here would panic — the cascade this module
        // exists to stop. Recovery hands back the guard with the state
        // intact and clears the flag for everyone else.
        let mut guard = lock_or_recover(&mutex);
        assert_eq!(*guard, 7);
        *guard += 1;
        drop(guard);
        assert!(!mutex.is_poisoned(), "recovery must clear the poison flag");
        assert_eq!(*mutex.lock().unwrap(), 8, "state survives the recovery");
    }

    #[test]
    fn healthy_lock_behaves_like_plain_lock() {
        let mutex = Mutex::new(vec![1, 2, 3]);
        lock_or_recover(&mutex).push(4);
        assert_eq!(*lock_or_recover(&mutex), vec![1, 2, 3, 4]);
    }

    #[test]
    fn poisoned_wait_recovers_and_still_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        {
            let pair = Arc::clone(&pair);
            let _ = std::thread::spawn(move || {
                let _guard = pair.0.lock().unwrap();
                panic!("poison under the condvar's mutex");
            })
            .join();
        }
        let waker = {
            let pair = Arc::clone(&pair);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                *lock_or_recover(&pair.0) = true;
                pair.1.notify_all();
            })
        };
        let mut ready = lock_or_recover(&pair.0);
        while !*ready {
            ready = wait_or_recover(&pair.1, ready);
        }
        drop(ready);
        waker.join().unwrap();
    }

    #[test]
    fn wait_timeout_recovers_and_reports_the_timeout() {
        let pair = (Mutex::new(()), Condvar::new());
        let guard = lock_or_recover(&pair.0);
        let (_guard, result) = wait_timeout_or_recover(&pair.1, guard, Duration::from_millis(5));
        assert!(result.timed_out());
    }
}
