//! The batcher composition contract: a bounded producer/consumer queue
//! ([`BoundedQueue`]) drained in micro-batches that execute on the
//! [`Pool`]-backed [`par_map`] primitive — exactly the shape `olive-serve`'s
//! dynamic batcher uses. Pins down FIFO-order preservation end to end and
//! panic propagation out of batch execution, at 1 and 8 threads.

use olive_runtime::{par_map, with_threads, BoundedQueue};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

/// Pushes `n` sequenced jobs from several producer threads (in a globally
/// agreed order via a handoff token), drains them in batches executed with
/// `par_map` at `threads`-way parallelism, and asserts the results come out
/// in exactly the order the jobs went in.
fn fifo_roundtrip(threads: usize, n: usize, max_batch: usize) {
    let queue: Arc<BoundedQueue<u64>> = Arc::new(BoundedQueue::new(n));
    // Producers enqueue strictly in sequence (the queue itself is the only
    // ordering authority once items are inside).
    for i in 0..n as u64 {
        queue.try_push(i).unwrap();
    }
    queue.close();

    let mut results: Vec<u64> = Vec::with_capacity(n);
    loop {
        let batch = queue.pop_batch(max_batch, Duration::ZERO);
        if batch.is_empty() {
            break;
        }
        assert!(batch.len() <= max_batch);
        // par_map returns results in input order regardless of which worker
        // computed what, so batch-level FIFO extends to result-level FIFO.
        let processed = with_threads(threads, || par_map(&batch, |&job| job * 10 + 1));
        results.extend(processed);
    }
    let expected: Vec<u64> = (0..n as u64).map(|i| i * 10 + 1).collect();
    assert_eq!(results, expected, "threads={threads} max_batch={max_batch}");
}

#[test]
fn fifo_order_is_preserved_at_one_thread() {
    fifo_roundtrip(1, 97, 8);
}

#[test]
fn fifo_order_is_preserved_at_eight_threads() {
    fifo_roundtrip(8, 97, 8);
}

#[test]
fn fifo_order_survives_batch_size_one_and_huge_batches() {
    fifo_roundtrip(8, 33, 1);
    fifo_roundtrip(8, 33, 1000);
}

/// Concurrent producers + a live consumer: every job is answered exactly
/// once, responses flow back over per-job channels (the serve pattern), and
/// each producer observes its own jobs answered correctly.
#[test]
fn concurrent_producers_all_get_answers() {
    for threads in [1usize, 8] {
        let queue: Arc<BoundedQueue<(u64, mpsc::Sender<u64>)>> = Arc::new(BoundedQueue::new(64));
        let consumer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || {
                let mut served = 0usize;
                loop {
                    let batch = queue.pop_batch(8, Duration::from_millis(1));
                    if batch.is_empty() {
                        return served;
                    }
                    let (jobs, senders): (Vec<u64>, Vec<mpsc::Sender<u64>>) =
                        batch.into_iter().unzip();
                    let answers = with_threads(threads, || par_map(&jobs, |&x| x * x));
                    for (tx, answer) in senders.into_iter().zip(answers) {
                        tx.send(answer).unwrap();
                        served += 1;
                    }
                }
            })
        };
        let producers: Vec<_> = (0..4u64)
            .map(|p| {
                let queue = Arc::clone(&queue);
                std::thread::spawn(move || {
                    for k in 0..25u64 {
                        let job = p * 1000 + k;
                        let (tx, rx) = mpsc::channel();
                        // Spin on back-pressure: bounded queue, small test.
                        let mut item = (job, tx);
                        loop {
                            match queue.try_push(item) {
                                Ok(()) => break,
                                Err((_, back)) => {
                                    item = back;
                                    std::thread::yield_now();
                                }
                            }
                        }
                        assert_eq!(rx.recv().unwrap(), job * job);
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        queue.close();
        assert_eq!(consumer.join().unwrap(), 100);
    }
}

/// A set-but-invalid `OLIVE_THREADS` must be loud: `validate_thread_env`
/// (the daemon startup check) errors, and `effective_threads` clamps to
/// exactly 1 rather than silently falling through to
/// `available_parallelism` — a typo'd env cannot invalidate a serve
/// determinism test. One test owns every env mutation in this binary; the
/// other tests pin their thread counts via `with_threads`, which beats the
/// env by contract.
#[test]
fn invalid_olive_threads_is_an_explicit_error_not_a_silent_fallback() {
    for bad in ["0", "eight", "-2", "1.5", ""] {
        std::env::set_var("OLIVE_THREADS", bad);
        let err = olive_runtime::validate_thread_env()
            .expect_err(&format!("OLIVE_THREADS={bad:?} must fail validation"));
        assert!(err.contains("OLIVE_THREADS"), "{bad:?}: {err}");
        assert_eq!(
            olive_runtime::effective_threads(),
            1,
            "OLIVE_THREADS={bad:?} must clamp to exactly 1"
        );
    }
    for good in ["1", "8", "  4  "] {
        std::env::set_var("OLIVE_THREADS", good);
        assert!(olive_runtime::validate_thread_env().is_ok(), "{good:?}");
    }
    assert_eq!(
        olive_runtime::parse_thread_env(" 12 "),
        Ok(12),
        "surrounding whitespace is tolerated"
    );
    std::env::remove_var("OLIVE_THREADS");
    assert!(
        olive_runtime::validate_thread_env().is_ok(),
        "unset is fine"
    );
}

/// A panicking job inside a pool-executed batch must propagate to the thread
/// draining the queue — not vanish into a worker — and must not poison the
/// queue or the pool for subsequent batches.
#[test]
fn batch_panic_propagates_to_the_draining_thread() {
    for threads in [1usize, 8] {
        let queue: BoundedQueue<u64> = BoundedQueue::new(16);
        for i in 0..8u64 {
            queue.try_push(i).unwrap();
        }
        let batch = queue.pop_batch(8, Duration::ZERO);
        let result = catch_unwind(AssertUnwindSafe(|| {
            with_threads(threads, || {
                par_map(&batch, |&job| {
                    assert!(job != 5, "poison job {job}");
                    job
                })
            })
        }));
        assert!(
            result.is_err(),
            "panic must reach the drain loop at threads={threads}"
        );
        // The queue and the global pool both survive: the next batch works.
        queue.try_push(42).unwrap();
        let next = queue.pop_batch(8, Duration::ZERO);
        let answers = with_threads(threads, || par_map(&next, |&x| x + 1));
        assert_eq!(answers, vec![43]);
    }
}
