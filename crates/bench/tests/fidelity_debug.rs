//! Diagnostic: fidelity of several schemes on the tiny proxy teacher.

use olive_baselines::{OutlierSuppressionQuantizer, UniformQuantizer};
use olive_bench::accuracy::Experiment;
use olive_core::{OliveQuantizer, TensorQuantizer};
use olive_models::{EngineConfig, OutlierSeverity};

#[test]
fn print_fidelity_ladder() {
    let e = Experiment::build_sized(
        "debug",
        OutlierSeverity::transformer(),
        11,
        EngineConfig::tiny(),
        6,
    );
    let olive4 = OliveQuantizer::int4();
    let olive8 = OliveQuantizer::int8();
    let int8 = UniformQuantizer::int8();
    let int4 = UniformQuantizer::int4();
    let os6 = OutlierSuppressionQuantizer::ptq_6bit();
    let methods: Vec<&dyn TensorQuantizer> = vec![&olive8, &int8, &os6, &olive4, &int4];
    for m in methods {
        println!("{:<14} fidelity {:.4}", m.name(), e.accuracy(m, false));
    }
    // The ladder must at least order OliVe-4bit above plain int4.
    assert!(e.accuracy(&olive4, false) > e.accuracy(&int4, false));
}
