//! Diagnostic: fidelity of several registry schemes on the tiny proxy
//! teacher, through the `olive::api` pipeline.

use olive_api::{ModelFamily, Pipeline};

#[test]
fn print_fidelity_ladder() {
    let report = Pipeline::new(ModelFamily::Bert.tiny())
        .task("debug")
        .schemes([
            "olive-8bit",
            "uniform:8",
            "os:6bit",
            "olive-4bit",
            "uniform:4",
        ])
        .seed(11)
        .batches(6)
        .weights_only()
        .run();
    for r in &report.results {
        println!("{:<14} fidelity {:.4}", r.name, r.fidelity);
    }
    // The ladder must at least order OliVe-4bit above plain int4.
    assert!(
        report.result("olive-4bit").unwrap().fidelity
            > report.result("uniform:4").unwrap().fidelity
    );
}
