//! Criterion benchmarks of the performance simulators themselves (how long it
//! takes to evaluate one model under one scheme — useful when sweeping).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use olive_accel::{GpuSimulator, QuantScheme, SystolicSimulator};
use olive_models::{ModelConfig, Workload};

fn bench_simulators(c: &mut Criterion) {
    let wl = Workload::from_config(&ModelConfig::bert_base());
    let gpu = GpuSimulator::rtx_2080_ti();
    let sa = SystolicSimulator::paper_default();
    let scheme = QuantScheme::olive4();

    c.bench_function("gpu_model_bert_base", |b| {
        b.iter(|| black_box(gpu.run(black_box(&wl), black_box(&scheme))))
    });
    c.bench_function("systolic_model_bert_base", |b| {
        b.iter(|| black_box(sa.run(black_box(&wl), black_box(&scheme))))
    });
    c.bench_function("workload_extraction_bloom", |b| {
        let cfg = ModelConfig::bloom_7b1();
        b.iter(|| black_box(Workload::from_config(black_box(&cfg))))
    });
}

criterion_group!(benches, bench_simulators);
criterion_main!(benches);
