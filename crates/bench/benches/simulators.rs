//! Micro-benchmarks of the performance simulators themselves (how long it
//! takes to evaluate one model under one scheme — useful when sweeping), on
//! the in-repo olive-harness runner — this workspace builds offline, so no
//! criterion. Supports `--quick` (CI smoke/gate iteration counts) and
//! `--json <path>` (median recording for `scripts/bench_gate.sh`).

use olive_accel::{GpuSimulator, QuantScheme, SystolicSimulator};
use olive_bench::cli::BenchCli;
use olive_harness::bench::black_box;
use olive_models::{ModelConfig, Workload};

fn main() {
    let wl = Workload::from_config(&ModelConfig::bert_base());
    let gpu = GpuSimulator::rtx_2080_ti();
    let sa = SystolicSimulator::paper_default();
    let scheme = QuantScheme::olive4();

    let cli = BenchCli::parse();
    let mut suite = cli.suite("simulators");
    suite.bench("gpu_model_bert_base", || {
        black_box(gpu.run(black_box(&wl), black_box(&scheme)))
    });
    suite.bench("systolic_model_bert_base", || {
        black_box(sa.run(black_box(&wl), black_box(&scheme)))
    });
    let bloom = ModelConfig::bloom_7b1();
    suite.bench("workload_extraction_bloom", || {
        black_box(Workload::from_config(black_box(&bloom)))
    });
    cli.finish(&[&suite]);
}
