//! Micro-benchmarks of the OVP encode/decode path and the abfloat encoder
//! (the per-value software cost of the scheme), on the in-repo olive-harness
//! runner — this workspace builds offline, so no criterion. Supports
//! `--quick` (CI smoke/gate iteration counts) and `--json <path>` (median
//! recording for `scripts/bench_gate.sh`).

use olive_bench::cli::BenchCli;
use olive_core::OliveQuantizer;
use olive_dtypes::abfloat::{AbfloatCode, AbfloatFormat};
use olive_harness::bench::{black_box, BenchSuite};
use olive_models::SynthProfile;
use olive_tensor::rng::Rng;

fn bench_tensor_quantize(suite: &mut BenchSuite) {
    let mut rng = Rng::seed_from(0xBE);
    let t = SynthProfile::transformer().generate(vec![256, 1024], &mut rng);
    let elements = t.len() as u64;
    let q4 = OliveQuantizer::int4();
    suite.bench_with_elements("ovp_quantize/int4_full_search", elements, || {
        black_box(q4.quantize(black_box(&t)))
    });
    let scale4 = q4.select_scale(&t);
    suite.bench_with_elements("ovp_quantize/int4_fixed_scale", elements, || {
        black_box(q4.quantize_with_scale(black_box(&t), scale4))
    });
    let q8 = OliveQuantizer::int8();
    let scale8 = q8.select_scale(&t);
    suite.bench_with_elements("ovp_quantize/int8_fixed_scale", elements, || {
        black_box(q8.quantize_with_scale(black_box(&t), scale8))
    });
}

fn bench_dequantize(suite: &mut BenchSuite) {
    let mut rng = Rng::seed_from(0xDE);
    let t = SynthProfile::transformer().generate(vec![256, 1024], &mut rng);
    let q = OliveQuantizer::int4().quantize(&t);
    let elements = t.len() as u64;
    suite.bench_with_elements("ovp_decode/dequantize", elements, || {
        black_box(q.dequantize())
    });
    suite.bench_with_elements("ovp_decode/decode_expints", elements, || {
        black_box(q.decode_expints())
    });
}

fn bench_abfloat(suite: &mut BenchSuite) {
    let mut rng = Rng::seed_from(0xAB);
    let values: Vec<f32> = (0..4096)
        .map(|_| rng.uniform_range(8.0, 300.0) as f32)
        .collect();
    suite.bench_with_elements("abfloat_encode_e2m1", values.len() as u64, || {
        let mut acc = 0u32;
        for &v in &values {
            acc = acc.wrapping_add(
                AbfloatCode::encode(black_box(v), 2, AbfloatFormat::E2M1).bits() as u32,
            );
        }
        black_box(acc)
    });
}

fn main() {
    let cli = BenchCli::parse();
    let mut suite = cli.suite("encoding");
    bench_tensor_quantize(&mut suite);
    bench_dequantize(&mut suite);
    bench_abfloat(&mut suite);
    cli.finish(&[&suite]);
}
