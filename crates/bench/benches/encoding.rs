//! Criterion micro-benchmarks of the OVP encode/decode path and the abfloat
//! encoder (the per-value software cost of the scheme).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use olive_core::OliveQuantizer;
use olive_dtypes::abfloat::{AbfloatCode, AbfloatFormat};
use olive_models::SynthProfile;
use olive_tensor::rng::Rng;

fn bench_tensor_quantize(c: &mut Criterion) {
    let mut rng = Rng::seed_from(0xBE);
    let t = SynthProfile::transformer().generate(vec![256, 1024], &mut rng);
    let mut group = c.benchmark_group("ovp_quantize");
    group.throughput(Throughput::Elements(t.len() as u64));
    group.bench_function("int4_full_search", |b| {
        let q = OliveQuantizer::int4();
        b.iter(|| black_box(q.quantize(black_box(&t))))
    });
    group.bench_function("int4_fixed_scale", |b| {
        let q = OliveQuantizer::int4();
        let scale = q.select_scale(&t);
        b.iter(|| black_box(q.quantize_with_scale(black_box(&t), scale)))
    });
    group.bench_function("int8_fixed_scale", |b| {
        let q = OliveQuantizer::int8();
        let scale = q.select_scale(&t);
        b.iter(|| black_box(q.quantize_with_scale(black_box(&t), scale)))
    });
    group.finish();
}

fn bench_dequantize(c: &mut Criterion) {
    let mut rng = Rng::seed_from(0xDE);
    let t = SynthProfile::transformer().generate(vec![256, 1024], &mut rng);
    let q = OliveQuantizer::int4().quantize(&t);
    let mut group = c.benchmark_group("ovp_decode");
    group.throughput(Throughput::Elements(t.len() as u64));
    group.bench_function("dequantize", |b| b.iter(|| black_box(q.dequantize())));
    group.bench_function("decode_expints", |b| b.iter(|| black_box(q.decode_expints())));
    group.finish();
}

fn bench_abfloat(c: &mut Criterion) {
    let mut rng = Rng::seed_from(0xAB);
    let values: Vec<f32> = (0..4096)
        .map(|_| rng.uniform_range(8.0, 300.0) as f32)
        .collect();
    c.bench_function("abfloat_encode_e2m1", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &v in &values {
                acc = acc.wrapping_add(
                    AbfloatCode::encode(black_box(v), 2, AbfloatFormat::E2M1).bits() as u32,
                );
            }
            black_box(acc)
        })
    });
}

criterion_group!(benches, bench_tensor_quantize, bench_dequantize, bench_abfloat);
criterion_main!(benches);
