//! Criterion benchmarks of the bit-accurate quantized GEMM versus the FP32
//! reference GEMM.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use olive_core::{quantized_matmul, OliveQuantizer};
use olive_models::SynthProfile;
use olive_tensor::matmul::matmul;
use olive_tensor::rng::Rng;

fn bench_gemm(c: &mut Criterion) {
    let mut rng = Rng::seed_from(0x6E);
    let a = SynthProfile::transformer().generate(vec![64, 256], &mut rng);
    let b = SynthProfile::transformer().generate(vec![256, 64], &mut rng);
    let qa = OliveQuantizer::int4().quantize(&a);
    let qb = OliveQuantizer::int4().quantize(&b);

    let macs = (a.rows() * a.cols() * b.cols()) as u64;
    let mut group = c.benchmark_group("gemm_64x256x64");
    group.throughput(Throughput::Elements(macs));
    group.bench_function("fp32_reference", |bch| {
        bch.iter(|| black_box(matmul(black_box(&a), black_box(&b))))
    });
    group.bench_function("ovp_int4_bit_accurate", |bch| {
        bch.iter(|| black_box(quantized_matmul(black_box(&qa), black_box(&qb))))
    });
    group.finish();
}

criterion_group!(benches, bench_gemm);
criterion_main!(benches);
