//! Micro-benchmarks of the bit-accurate quantized GEMM versus the FP32
//! reference GEMM, on the in-repo olive-harness runner — this workspace
//! builds offline, so no criterion.
//!
//! Every kernel is measured twice: pinned to one thread (`*_seq`) and at the
//! runtime's effective thread count (`*_par`, see `OLIVE_THREADS`), so the
//! report shows the sequential-vs-parallel throughput side by side. `--quick`
//! (CI smoke/gate mode) trims iteration counts and skips the 1024-sized
//! kernels; `--json <path>` records medians for `scripts/bench_gate.sh`.
//!
//! `--scheme <spec>` (repeatable, see `--list-schemes`) switches the bench to
//! the registry: each selected scheme's 256³ GEMM is measured instead of the
//! default kernel set — OliVe schemes run the packed OVP integer GEMM, every
//! other scheme runs fake-quantization + FP32 GEMM. The default set (no
//! `--scheme`) is what `BENCH_baseline.json` gates, so its kernel names are
//! stable.

use olive_api::Scheme;
use olive_bench::cli::BenchCli;
use olive_core::{quantized_matmul, reference_quantized_matmul, OliveQuantizer};
use olive_harness::bench::{black_box, BenchConfig, BenchSuite};
use olive_models::SynthProfile;
use olive_tensor::matmul::matmul;
use olive_tensor::rng::Rng;
use olive_tensor::Tensor;

fn square(n: usize, seed: u64) -> Tensor {
    let mut rng = Rng::seed_from(seed);
    SynthProfile::transformer().generate(vec![n, n], &mut rng)
}

/// Benchmarks one shape's float and quantized GEMMs, sequential and parallel.
fn bench_shape(suite: &mut BenchSuite, n: usize, seed: u64) {
    let a = square(n, seed);
    let b = square(n, seed + 1);
    let qa = OliveQuantizer::int4().quantize(&a);
    let qb = OliveQuantizer::int4().quantize(&b);
    let macs = (n * n * n) as u64;
    let threads = olive_runtime::effective_threads();

    suite.bench_with_elements(&format!("gemm_{n}x{n}x{n}/fp32_seq"), macs, || {
        olive_runtime::with_threads(1, || black_box(matmul(black_box(&a), black_box(&b))))
    });
    suite.bench_with_elements(&format!("gemm_{n}x{n}x{n}/fp32_par"), macs, || {
        olive_runtime::with_threads(threads, || black_box(matmul(black_box(&a), black_box(&b))))
    });
    suite.bench_with_elements(&format!("gemm_{n}x{n}x{n}/ovp_int4_seq"), macs, || {
        olive_runtime::with_threads(1, || {
            black_box(quantized_matmul(black_box(&qa), black_box(&qb)))
        })
    });
    suite.bench_with_elements(&format!("gemm_{n}x{n}x{n}/ovp_int4_par"), macs, || {
        olive_runtime::with_threads(threads, || {
            black_box(quantized_matmul(black_box(&qa), black_box(&qb)))
        })
    });

    // Decode-once vs decode-per-call, side by side: the packed row measures
    // steady state with the integer plans explicitly pre-built (what a
    // prepared model serves), the legacy row runs the pre-refactor kernel
    // that re-decodes both operands on every call (kept in-tree as the
    // bit-identity oracle).
    qa.prepare_packed();
    qb.prepare_packed();
    suite.bench_with_elements(
        &format!("gemm_{n}x{n}x{n}/ovp_int4_packed_seq"),
        macs,
        || {
            olive_runtime::with_threads(1, || {
                black_box(quantized_matmul(black_box(&qa), black_box(&qb)))
            })
        },
    );
    suite.bench_with_elements(
        &format!("gemm_{n}x{n}x{n}/ovp_int4_legacy_seq"),
        macs,
        || {
            olive_runtime::with_threads(1, || {
                black_box(reference_quantized_matmul(black_box(&qa), black_box(&qb)))
            })
        },
    );
}

/// Benchmarks one registry scheme's 256³ GEMM (seq + par): OliVe schemes
/// execute the packed integer-domain GEMM, everything else fake-quantizes
/// both operands and runs the FP32 GEMM (how the accuracy harness executes
/// those schemes).
fn bench_scheme(suite: &mut BenchSuite, scheme: &Scheme, n: usize, seed: u64) {
    let a = square(n, seed);
    let b = square(n, seed + 1);
    let macs = (n * n * n) as u64;
    let threads = olive_runtime::effective_threads();
    let spec = scheme.to_string();

    if let Some(oq) = scheme.olive_quantizer() {
        let qa = oq.quantize(&a);
        let qb = oq.quantize(&b);
        suite.bench_with_elements(&format!("gemm_{n}x{n}x{n}/{spec}_seq"), macs, || {
            olive_runtime::with_threads(1, || {
                black_box(quantized_matmul(black_box(&qa), black_box(&qb)))
            })
        });
        suite.bench_with_elements(&format!("gemm_{n}x{n}x{n}/{spec}_par"), macs, || {
            olive_runtime::with_threads(threads, || {
                black_box(quantized_matmul(black_box(&qa), black_box(&qb)))
            })
        });
    } else {
        let q = scheme.build();
        let qa = q.quantize_dequantize(&a);
        let qb = q.quantize_dequantize(&b);
        suite.bench_with_elements(&format!("gemm_{n}x{n}x{n}/{spec}_seq"), macs, || {
            olive_runtime::with_threads(1, || black_box(matmul(black_box(&qa), black_box(&qb))))
        });
        suite.bench_with_elements(&format!("gemm_{n}x{n}x{n}/{spec}_par"), macs, || {
            olive_runtime::with_threads(threads, || {
                black_box(matmul(black_box(&qa), black_box(&qb)))
            })
        });
    }
}

/// Records which SIMD path the quantized kernels dispatched to in the
/// `--json` results, so a gate run's numbers carry their provenance. The
/// codes order slower paths higher (avx2 = 1, sse2 = 2, scalar = 4), so a
/// machine silently downgrading to a slower path fails the gate like any
/// other regression.
fn record_dispatch(cli: &BenchCli) {
    if let Some(path) = &cli.json {
        let mut medians = olive_bench::gate::Medians::new();
        medians.insert(
            "quantized_gemm/simd_dispatch".to_string(),
            olive_core::simd::resolve_path().provenance_code(),
        );
        olive_bench::gate::merge_into_file(path, &medians)
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    }
}

fn main() {
    let cli = BenchCli::parse();
    let mut suite = cli.suite("quantized_gemm");

    if !cli.schemes.is_empty() {
        // Registry mode: measure exactly the requested schemes.
        for scheme in &cli.schemes {
            bench_scheme(&mut suite, scheme, 256, 0x6E);
        }
        cli.finish(&[&suite]);
        return;
    }

    // The gate's stable kernel set: shapes measured in both modes.
    bench_shape(&mut suite, 256, 0x6E);

    if cli.quick {
        cli.finish(&[&suite]);
        record_dispatch(&cli);
        return;
    }
    // The paper-scale 1024-cubed kernels: heavyweight, so they run with a
    // trimmed sample count and only outside --quick.
    let mut heavy = BenchSuite::with_config("quantized_gemm", BenchConfig::from_env_or(1, 5));
    bench_shape(&mut heavy, 1024, 0x6F);
    cli.finish(&[&suite, &heavy]);
    record_dispatch(&cli);
}
