//! Micro-benchmarks of the bit-accurate quantized GEMM versus the FP32
//! reference GEMM, on the in-repo olive-harness runner — this workspace
//! builds offline, so no criterion.

use olive_core::{quantized_matmul, OliveQuantizer};
use olive_harness::bench::{black_box, BenchSuite};
use olive_models::SynthProfile;
use olive_tensor::matmul::matmul;
use olive_tensor::rng::Rng;

fn main() {
    let mut rng = Rng::seed_from(0x6E);
    let a = SynthProfile::transformer().generate(vec![64, 256], &mut rng);
    let b = SynthProfile::transformer().generate(vec![256, 64], &mut rng);
    let qa = OliveQuantizer::int4().quantize(&a);
    let qb = OliveQuantizer::int4().quantize(&b);

    let macs = (a.rows() * a.cols() * b.cols()) as u64;
    let mut suite = BenchSuite::new("quantized_gemm");
    suite.bench_with_elements("gemm_64x256x64/fp32_reference", macs, || {
        black_box(matmul(black_box(&a), black_box(&b)))
    });
    suite.bench_with_elements("gemm_64x256x64/ovp_int4_bit_accurate", macs, || {
        black_box(quantized_matmul(black_box(&qa), black_box(&qb)))
    });
    suite.report();
}
