//! Shared helpers for the accuracy-proxy harnesses (Fig. 3, Tbl. 6–9).
//!
//! All accuracy experiments follow the same teacher–student recipe (see
//! DESIGN.md): a runnable Transformer with planted outliers is the teacher,
//! each quantization method produces a student, and we report agreement
//! (accuracy proxy) or pseudo-perplexity.

use olive_core::TensorQuantizer;
use olive_models::{
    logit_fidelity, pseudo_perplexity, EngineConfig, EvalTask, OutlierSeverity, TinyTransformer,
};
use olive_tensor::rng::Rng;

/// Number of evaluation sequences per task used by the harnesses.
pub const TASK_INPUTS: usize = 24;

/// A prepared accuracy experiment: one teacher and one input set.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// The FP32 teacher model.
    pub teacher: TinyTransformer,
    /// The evaluation inputs.
    pub task: EvalTask,
}

impl Experiment {
    /// Builds a teacher + task pair for a named task with the harness-default
    /// model size and input count.
    pub fn build(task_name: &str, severity: OutlierSeverity, seed: u64) -> Self {
        Self::build_sized(
            task_name,
            severity,
            seed,
            EngineConfig::small(),
            TASK_INPUTS,
        )
    }

    /// Builds a teacher + task pair with an explicit model size and input
    /// count (small configurations keep unit tests fast).
    pub fn build_sized(
        task_name: &str,
        severity: OutlierSeverity,
        seed: u64,
        config: EngineConfig,
        n_inputs: usize,
    ) -> Self {
        let mut rng = Rng::seed_from(seed);
        let teacher = TinyTransformer::generate(config, severity, &mut rng);
        // Confidence-filtered inputs: mirrors the high-margin decisions a
        // fine-tuned GLUE/SQuAD model makes on its evaluation set.
        let task = EvalTask::generate_confident(task_name, &teacher, n_inputs, 6, &mut rng);
        Experiment { teacher, task }
    }

    /// Accuracy proxy (functional fidelity against the teacher) for a weight
    /// (+ optional activation) quantizer.
    pub fn accuracy(&self, weight_q: &dyn TensorQuantizer, quantize_acts: bool) -> f64 {
        let student = self.teacher.quantize_weights(weight_q);
        let act_q: Option<&dyn TensorQuantizer> =
            if quantize_acts && weight_q.quantizes_activations() {
                Some(weight_q)
            } else {
                None
            };
        logit_fidelity(&self.teacher, &student, &self.task, act_q)
    }

    /// Pseudo-perplexity for a weight (+ optional activation) quantizer.
    pub fn perplexity(&self, weight_q: &dyn TensorQuantizer, quantize_acts: bool) -> f64 {
        let student = self.teacher.quantize_weights(weight_q);
        let act_q: Option<&dyn TensorQuantizer> =
            if quantize_acts && weight_q.quantizes_activations() {
                Some(weight_q)
            } else {
                None
            };
        pseudo_perplexity(&self.teacher, &student, &self.task, act_q)
    }

    /// Accuracy proxy for an arbitrary transformation of the weights (used by
    /// the Fig. 3 clipping/pruning study).
    pub fn accuracy_of_weight_transform<F>(&self, f: F) -> f64
    where
        F: Fn(&str, &olive_tensor::Tensor) -> olive_tensor::Tensor,
    {
        let student = self.teacher.map_weights(f);
        logit_fidelity(&self.teacher, &student, &self.task, None)
    }

    /// Baseline pseudo-perplexity of the unquantized teacher on this task.
    pub fn fp32_perplexity(&self) -> f64 {
        pseudo_perplexity(&self.teacher, &self.teacher, &self.task, None)
    }
}

/// The GLUE task labels used by the Fig. 3 / Tbl. 6 harnesses.
pub fn glue_tasks() -> Vec<&'static str> {
    vec![
        "CoLA", "SST-2", "MNLI", "QQP", "QNLI", "RTE", "STSB", "MRPC",
    ]
}

/// Formats an accuracy fraction as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.2}", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use olive_core::{Fp32Baseline, OliveQuantizer};

    fn tiny(seed: u64) -> Experiment {
        Experiment::build_sized(
            "t",
            OutlierSeverity::transformer(),
            seed,
            EngineConfig::tiny(),
            6,
        )
    }

    #[test]
    fn experiment_reproducibility() {
        let a = tiny(7);
        let b = tiny(7);
        assert_eq!(a.task.inputs, b.task.inputs);
        assert_eq!(a.accuracy(&Fp32Baseline, false), 1.0);
        assert_eq!(b.accuracy(&Fp32Baseline, false), 1.0);
    }

    #[test]
    fn olive_accuracy_is_reasonable() {
        let e = tiny(11);
        let acc = e.accuracy(&OliveQuantizer::int4(), false);
        assert!(acc > 0.6, "fidelity {}", acc);
    }

    #[test]
    fn fidelity_preserves_the_paper_ordering() {
        use olive_baselines::UniformQuantizer;
        let e = tiny(17);
        let olive = e.accuracy(&OliveQuantizer::int4(), false);
        let int4 = e.accuracy(&UniformQuantizer::int4(), false);
        assert!(olive > int4, "olive {} vs int4 {}", olive, int4);
    }

    #[test]
    fn fp32_perplexity_is_low() {
        let e = tiny(13);
        assert!(e.fp32_perplexity() < 10.0);
    }

    #[test]
    fn glue_task_list_has_eight_entries() {
        assert_eq!(glue_tasks().len(), 8);
    }
}
