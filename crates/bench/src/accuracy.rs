//! Shared formatting helpers for the accuracy-proxy harnesses (Fig. 3,
//! Tbl. 6–9).
//!
//! The teacher/student experiment construction that used to live here is now
//! the `olive::api` evaluation pipeline
//! ([`olive_api::Pipeline`]); the table binaries are thin drivers over it and
//! this module only keeps the presentation helpers they share.

/// The GLUE task labels used by the Fig. 3 / Tbl. 6 harnesses.
pub fn glue_tasks() -> Vec<&'static str> {
    vec![
        "CoLA", "SST-2", "MNLI", "QQP", "QNLI", "RTE", "STSB", "MRPC",
    ]
}

/// Formats an accuracy fraction as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.2}", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glue_task_list_has_eight_entries() {
        assert_eq!(glue_tasks().len(), 8);
    }

    #[test]
    fn pct_formats_two_decimals() {
        assert_eq!(pct(1.0), "100.00");
        assert_eq!(pct(0.12345), "12.35");
    }
}
