//! Shared closed-loop load-generation harness for the serving benchmarks
//! (`serve_loadgen`, `gen_loadgen`): one warmup request, then N client
//! threads × M keep-alive requests each against an in-process server, with
//! the nearest-rank quantiles the gate and the human tables report.
//!
//! Keeping this in one place means a fix to the latency-collection loop or
//! the quantile math reaches every loadgen binary at once — the ROADMAP
//! promises more scenario families, and each should be a thin `main` over
//! this module.

use olive_serve::client::{Connection, HttpResponse};
use std::net::SocketAddr;
use std::sync::{Arc, Barrier};
use std::time::Instant;

// The nearest-rank quantile estimator now lives in `olive_telemetry` (with
// the servers' histogram machinery, so loadgen printouts and `/metrics`
// scrapes bucket latencies identically); re-exported here so every loadgen
// binary keeps a single import point. [`LatencySummary`] bundles the
// p50/p95/p99/max plus the bucketed distribution rows the tables print.
pub use olive_telemetry::summary::{quantile, LatencySummary};

/// Issues one warmup request (populating the server-side caches) and
/// returns the response plus its wall time in nanoseconds.
///
/// # Panics
///
/// Panics if the connection fails or the response is not a 200 — a loadgen
/// cannot measure a server that is not answering.
pub fn warmup(addr: SocketAddr, path: &str, body: &str) -> (HttpResponse, u64) {
    let start = Instant::now();
    let mut connection = Connection::open(addr).expect("warmup connect");
    let response = connection
        .request("POST", path, Some(body))
        .expect("warmup request");
    assert_eq!(response.status, 200, "warmup failed: {}", response.body);
    (response, start.elapsed().as_nanos() as u64)
}

/// Drives `clients` closed-loop client threads, each issuing `requests`
/// keep-alive `POST path` requests with `body`, and returns every observed
/// per-request latency **sorted ascending**, plus the phase's wall time in
/// seconds.
///
/// # Panics
///
/// Panics on connection failures or non-200 responses.
pub fn drive(
    addr: SocketAddr,
    path: &'static str,
    body: &str,
    clients: usize,
    requests: usize,
) -> (Vec<u64>, f64) {
    let run_start = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|_| {
            let body = body.to_string();
            // olive-lint: allow(no-spawn-outside-runtime): load-generator clients must be real concurrent connections, not pool jobs in the process under test
            std::thread::spawn(move || {
                let mut connection = Connection::open(addr).expect("client connect");
                let mut latencies_ns = Vec::with_capacity(requests);
                for _ in 0..requests {
                    let start = Instant::now();
                    let response = connection
                        .request("POST", path, Some(&body))
                        .expect("loadgen request");
                    assert_eq!(response.status, 200, "{}", response.body);
                    latencies_ns.push(start.elapsed().as_nanos() as u64);
                }
                latencies_ns
            })
        })
        .collect();
    let mut latencies: Vec<u64> = Vec::with_capacity(clients * requests);
    for worker in workers {
        latencies.extend(worker.join().expect("client thread"));
    }
    let wall_s = run_start.elapsed().as_secs_f64();
    latencies.sort_unstable();
    (latencies, wall_s)
}

/// Drives `streams` persistent client threads through `rounds` barrier-
/// synchronized bursts: every round, all streams issue one keep-alive
/// `POST path` request **simultaneously**, and the round's wall time is the
/// barrier-to-barrier duration — the time the server took to decode all
/// concurrent streams to completion. Returns the per-round wall times
/// **sorted ascending**.
///
/// This is the continuous-batching throughput shape: unlike [`drive`],
/// where closed-loop clients drift apart and the server may see any
/// concurrency from 1 to N, a burst pins the concurrency at exactly
/// `streams`, so the measured number is the aggregate decode rate of a full
/// merged batch.
///
/// # Panics
///
/// Panics on connection failures or non-200 responses.
pub fn burst(
    addr: SocketAddr,
    path: &'static str,
    body: &str,
    streams: usize,
    rounds: usize,
) -> Vec<u64> {
    // streams workers + this thread, which only keeps time.
    let start_line = Arc::new(Barrier::new(streams + 1));
    let finish_line = Arc::new(Barrier::new(streams + 1));
    let workers: Vec<_> = (0..streams)
        .map(|_| {
            let body = body.to_string();
            let start_line = Arc::clone(&start_line);
            let finish_line = Arc::clone(&finish_line);
            // olive-lint: allow(no-spawn-outside-runtime): load-generator clients must be real concurrent connections, not pool jobs in the process under test
            std::thread::spawn(move || {
                let mut connection = Connection::open(addr).expect("client connect");
                for _ in 0..rounds {
                    start_line.wait();
                    let response = connection
                        .request("POST", path, Some(&body))
                        .expect("burst request");
                    assert_eq!(response.status, 200, "{}", response.body);
                    finish_line.wait();
                }
            })
        })
        .collect();
    let mut round_ns = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        start_line.wait();
        let start = Instant::now();
        finish_line.wait();
        round_ns.push(start.elapsed().as_nanos() as u64);
    }
    for worker in workers {
        worker.join().expect("burst client thread");
    }
    round_ns.sort_unstable();
    round_ns
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_is_nearest_rank() {
        let sorted = [10u64, 20, 30, 40];
        assert_eq!(quantile(&sorted, 0.0), 10);
        assert_eq!(quantile(&sorted, 0.25), 10);
        assert_eq!(quantile(&sorted, 0.5), 20);
        assert_eq!(quantile(&sorted, 0.75), 30);
        assert_eq!(quantile(&sorted, 0.99), 40);
        assert_eq!(quantile(&sorted, 1.0), 40);
        assert_eq!(quantile(&[7], 0.5), 7);
    }
}
