//! Ablation: systolic-array size sweep.
//!
//! The paper fixes a 64×64 array of 4-bit PEs (Tbl. 11). This sweep shows how
//! OliVe's advantage over the 8-bit AdaptivFloat design varies with the PE
//! area budget (compute-bound small arrays vs memory-bound large arrays).
//!
//! Run with: `cargo run --release -p olive-bench --bin abl_array_size`

use olive_accel::{QuantScheme, SystolicConfig, SystolicSimulator};
use olive_api::Scheme;
use olive_bench::report::{fmt_x, Table};
use olive_models::{ModelConfig, Workload};

/// Registry spec → hardware design (the ablation's comparison axis).
fn design(spec: &str) -> QuantScheme {
    Scheme::parse(spec)
        .expect("ablation specs parse")
        .to_accel()
        .expect("ablation specs have hardware designs")
}

fn main() {
    println!("Ablation: PE-array area budget sweep (BERT-base workload)");
    let wl = Workload::from_config(&ModelConfig::bert_base());
    let mut table = Table::new(vec![
        "PE budget (4-bit equiv.)".into(),
        "OliVe array".into(),
        "OliVe vs AdaFloat".into(),
        "OliVe vs OLAccel".into(),
        "OliVe vs ANT".into(),
    ]);
    for budget in [1024usize, 4096, 16_384, 65_536] {
        let cfg = SystolicConfig {
            pe_area_budget: budget,
            ..SystolicConfig::paper_64x64()
        };
        let sim = SystolicSimulator::new(cfg);
        let olive = sim.run(&wl, &design("olive-4bit"));
        let ada = sim.run(&wl, &design("adafloat"));
        let ol = sim.run(&wl, &design("olaccel"));
        let ant = sim.run(&wl, &design("ant:int8-fallback"));
        table.row(vec![
            format!("{}", budget),
            format!("{0}x{0}", olive.array_dim),
            fmt_x(ada.latency_s / olive.latency_s),
            fmt_x(ol.latency_s / olive.latency_s),
            fmt_x(ant.latency_s / olive.latency_s),
        ]);
    }
    table.print_with_title("Speedup of OliVe over each baseline at iso-area, per area budget");
    println!("The paper's configuration corresponds to the 4096 row (64x64 4-bit PEs).");
}
