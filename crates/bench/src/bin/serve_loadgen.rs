//! `serve_loadgen`: closed-loop load generator for `olive-serve`, and the
//! serving-throughput kernel of the bench-regression gate.
//!
//! ```text
//! serve_loadgen [--quick] [--json <results.json>] [--clients N] [--requests M]
//! ```
//!
//! Starts an in-process server (dynamic batching on, ephemeral port), warms
//! the model cache with one request, then drives it with N client threads ×
//! M keep-alive `/v1/eval` requests each and reports the latency
//! distribution (p50/p95/p99) and sustained req/s. With `--json`, the p50 is
//! merged into the shared flat results file under the kernel name
//! `serve/eval_tiny_cached`, which `scripts/bench_gate.sh` diffs against
//! `BENCH_baseline.json` — serving throughput is regression-gated exactly
//! like the GEMM kernels.
//!
//! The measured path is the serving hot path of the quantize-once,
//! serve-many deployment model: HTTP parse → queue → micro-batch →
//! cache hit → response write.

use olive_bench::gate;
use olive_bench::loadgen::{drive, warmup, LatencySummary};
use olive_bench::report::Table;
use olive_harness::bench::fmt_ns;
use olive_serve::{ServeConfig, Server};
use std::path::PathBuf;

/// The request every client issues — tiny model, two schemes, small batch
/// count, all cached after warmup.
const EVAL_BODY: &str =
    r#"{"schemes": ["olive-4bit", "uniform:4"], "batches": 2, "oversample": 2, "seed": 13}"#;

struct Args {
    quick: bool,
    json: Option<PathBuf>,
    clients: Option<usize>,
    requests: Option<usize>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        quick: false,
        json: None,
        clients: None,
        requests: None,
    };
    let mut args = std::env::args().skip(1);
    let usage = "usage: serve_loadgen [--quick] [--json <path>] [--clients N] [--requests M]";
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} requires a value\n{usage}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--quick" => parsed.quick = true,
            "--json" => parsed.json = Some(PathBuf::from(value("--json"))),
            "--clients" => match value("--clients").parse() {
                Ok(n) if n >= 1 => parsed.clients = Some(n),
                _ => {
                    eprintln!("--clients must be a positive integer");
                    std::process::exit(2);
                }
            },
            "--requests" => match value("--requests").parse() {
                Ok(n) if n >= 1 => parsed.requests = Some(n),
                _ => {
                    eprintln!("--requests must be a positive integer");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown argument '{other}'\n{usage}");
                std::process::exit(2);
            }
        }
    }
    parsed
}

fn main() {
    let args = parse_args();
    let clients = args.clients.unwrap_or(if args.quick { 4 } else { 8 });
    let requests = args.requests.unwrap_or(if args.quick { 25 } else { 100 });

    let server = Server::start(ServeConfig::default()).unwrap_or_else(|e| {
        eprintln!("serve_loadgen: failed to start the server: {e}");
        std::process::exit(1);
    });
    let addr = server.local_addr();

    // Warmup: populate the model + response caches so the timed phase
    // measures the serve-many steady state, not the one-off quantization.
    let (_, uncached_ns) = warmup(addr, "/v1/eval", EVAL_BODY);

    // Timed phase: closed-loop clients over kept-alive connections.
    let (latencies, wall_s) = drive(addr, "/v1/eval", EVAL_BODY, clients, requests);
    server.shutdown();

    let total = latencies.len();
    let summary = LatencySummary::from_sorted_ns(&latencies);
    let p50 = summary.p50_ns;
    let req_per_s = total as f64 / wall_s;

    let mut table = Table::new(vec!["metric".into(), "value".into()]);
    table.row(vec!["clients".into(), clients.to_string()]);
    table.row(vec!["requests/client".into(), requests.to_string()]);
    table.row(vec!["total requests".into(), total.to_string()]);
    table.row(vec!["uncached first eval".into(), fmt_ns(uncached_ns)]);
    table.row(vec!["latency p50".into(), fmt_ns(summary.p50_ns)]);
    table.row(vec!["latency p95".into(), fmt_ns(summary.p95_ns)]);
    table.row(vec!["latency p99".into(), fmt_ns(summary.p99_ns)]);
    table.row(vec!["latency max".into(), fmt_ns(summary.max_ns)]);
    table.row(vec!["throughput".into(), format!("{req_per_s:.0} req/s")]);
    println!("== serve_loadgen: {total} cached /v1/eval requests ==");
    println!("{}", table.render());

    // The bucketed distribution, in the same microsecond buckets the
    // server's /metrics histograms use.
    let mut buckets = Table::new(vec!["latency bucket".into(), "cumulative".into()]);
    for (bound, cumulative) in summary.bucket_rows() {
        buckets.row(vec![bound, cumulative.to_string()]);
    }
    println!("{}", buckets.render());

    if let Some(path) = &args.json {
        // Gate only the p50: tail percentiles on shared hardware are too
        // noisy to gate, and req/s is the p50's reciprocal under a closed
        // loop. (Printed above for humans either way.)
        let mut medians = gate::Medians::new();
        medians.insert("serve/eval_tiny_cached".to_string(), p50);
        gate::merge_into_file(path, &medians)
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        println!("wrote medians to {}", path.display());
    }
}
