//! Table 7: weight-only quantization comparison with GOBO (BERT-base,
//! MNLI- and STSB-like tasks).
//!
//! GOBO only quantizes weights, so OliVe is evaluated in the same weight-only
//! setting for a fair comparison (paper Tbl. 7). Thin driver over the
//! `olive::api` pipeline in `weights_only` mode.
//!
//! Run with: `cargo run --release -p olive-bench --bin tbl07_gobo_weight_only`

use olive_api::{ModelFamily, Pipeline};
use olive_bench::accuracy::pct;
use olive_bench::report::Table;

const METHODS: [(&str, &str); 2] = [
    ("Ours (weights only, 4-bit)", "olive-4bit"),
    ("GOBO (weights only, 3-bit)", "gobo"),
];

fn main() {
    println!("Table 7 reproduction: weight-only comparison against GOBO");
    let tasks = [("MNLI", 0x7B0701u64), ("STSB", 0x7B0702)];

    let reports: Vec<_> = tasks
        .iter()
        .map(|(task, seed)| {
            Pipeline::new(ModelFamily::Bert.small().named("BERT-base"))
                .task(*task)
                .schemes(METHODS.iter().map(|(_, spec)| *spec))
                .seed(*seed)
                .weights_only()
                .run()
        })
        .collect();

    let mut table = Table::new(vec!["Method".into(), "MNLI".into(), "STSB".into()]);
    table.row(vec!["BERT-base FP32".into(), pct(1.0), pct(1.0)]);
    for (label, spec) in &METHODS {
        let mut row = vec![label.to_string()];
        for report in &reports {
            row.push(pct(report.result(spec).expect(spec).fidelity));
        }
        table.row(row);
    }
    table.print_with_title("Weight-only accuracy proxy (%) — paper: OliVe edges out GOBO");
}
