//! Table 7: weight-only quantization comparison with GOBO (BERT-base,
//! MNLI- and STSB-like tasks).
//!
//! GOBO only quantizes weights, so OliVe is evaluated in the same weight-only
//! setting for a fair comparison (paper Tbl. 7).
//!
//! Run with: `cargo run --release -p olive-bench --bin tbl07_gobo_weight_only`

use olive_baselines::GoboQuantizer;
use olive_bench::accuracy::{pct, Experiment};
use olive_bench::report::Table;
use olive_core::{OliveQuantizer, TensorQuantizer};
use olive_models::OutlierSeverity;

fn main() {
    println!("Table 7 reproduction: weight-only comparison against GOBO");
    let tasks = [("MNLI", 0x7B0701u64), ("STSB", 0x7B0702)];
    let olive = OliveQuantizer::int4();
    let gobo = GoboQuantizer::paper_3bit();
    let methods: Vec<(&str, &dyn TensorQuantizer)> = vec![
        ("Ours (weights only, 4-bit)", &olive),
        ("GOBO (weights only, 3-bit)", &gobo),
    ];

    let mut table = Table::new(vec!["Method".into(), "MNLI".into(), "STSB".into()]);
    table.row(vec!["BERT-base FP32".into(), pct(1.0), pct(1.0)]);
    for (name, q) in methods {
        let mut row = vec![name.to_string()];
        for (task, seed) in &tasks {
            let exp = Experiment::build(task, OutlierSeverity::transformer(), *seed);
            // Weight-only: activations stay FP32.
            row.push(pct(exp.accuracy(q, false)));
        }
        table.row(row);
    }
    table.print_with_title("Weight-only accuracy proxy (%) — paper: OliVe edges out GOBO");
}
