//! Figure 2: outlier comparison of a CNN model vs a Transformer model.
//!
//! For each model, generates the per-layer synthetic tensor suite, computes
//! the per-tensor Max σ and the >3σ / >6σ fractions, and prints the series
//! sorted by Max σ (the same presentation as the paper's Fig. 2).
//!
//! Run with: `cargo run --release -p olive-bench --bin fig02_outlier_stats`

use olive_bench::report::{fmt_f, fmt_pct, Table};
use olive_models::{model_tensor_suite, ModelConfig};
use olive_tensor::rng::Rng;
use olive_tensor::stats::TensorStats;

fn tensor_series(cfg: &ModelConfig, seed: u64) -> Vec<TensorStats> {
    let mut rng = Rng::seed_from(seed);
    let suite = model_tensor_suite(cfg, 65_536, &mut rng);
    let mut stats: Vec<TensorStats> = suite
        .iter()
        .map(|t| TensorStats::compute(&t.tensor))
        .collect();
    stats.sort_by(|a, b| a.max_sigma.partial_cmp(&b.max_sigma).unwrap());
    stats
}

fn print_series(title: &str, stats: &[TensorStats]) {
    let mut table = Table::new(vec![
        "tensor#".into(),
        "max_sigma".into(),
        ">3sigma".into(),
        ">6sigma".into(),
    ]);
    for (i, s) in stats.iter().enumerate() {
        table.row(vec![
            format!("{}", i + 1),
            fmt_f(s.max_sigma, 1),
            fmt_pct(s.frac_gt_3sigma),
            fmt_pct(s.frac_gt_6sigma),
        ]);
    }
    table.print_with_title(title);
    let max = stats.last().map(|s| s.max_sigma).unwrap_or(0.0);
    println!("maximum Max-sigma across tensors: {:.1}", max);
}

fn main() {
    println!("Figure 2 reproduction: outlier statistics, CNN vs Transformer");
    let cnn = tensor_series(&ModelConfig::resnet18(), 0xF160201);
    let bert = tensor_series(&ModelConfig::bert_base(), 0xF160202);
    print_series("Fig. 2a — ResNet-18 (synthetic CNN tensors)", &cnn);
    print_series("Fig. 2b — BERT-base (synthetic Transformer tensors)", &bert);

    let max_cnn = cnn.last().map(|s| s.max_sigma).unwrap_or(0.0);
    let max_bert = bert.last().map(|s| s.max_sigma).unwrap_or(0.0);
    println!(
        "\nTransformer / CNN max-sigma ratio: {:.1}x (paper: ~325 sigma vs ~28 sigma, about an order of magnitude)",
        max_bert / max_cnn.max(1e-9)
    );
}
