//! Table 11: area breakdown of the OliVe systolic-array accelerator (22 nm).
//!
//! Run with: `cargo run --release -p olive-bench --bin tbl11_accel_area`

use olive_accel::area::systolic_area_table;
use olive_bench::report::{fmt_f, fmt_pct, Table};

fn main() {
    println!("Table 11 reproduction: OliVe systolic-array area breakdown (64x64 PEs, 22 nm)");
    let mut table = Table::new(vec![
        "Component".into(),
        "Unit area (um^2)".into(),
        "Number".into(),
        "Area (mm^2)".into(),
        "Area ratio".into(),
    ]);
    for r in systolic_area_table(64) {
        table.row(vec![
            r.component.clone(),
            fmt_f(r.unit_area_um2, 2),
            format!("{}", r.count),
            fmt_f(r.total_mm2, 5),
            fmt_pct(r.ratio),
        ]);
    }
    table.print_with_title("Accelerator area breakdown (paper: 2.2% / 1.5% / 96.3%)");
}
