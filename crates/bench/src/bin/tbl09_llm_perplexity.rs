//! Table 9: PTQ perplexity on large language models (GPT2-XL, BLOOM-7B1,
//! OPT-6.7B) for FP32, int8, 8-bit OliVe, int4, 4-bit ANT and 4-bit OliVe.
//!
//! Pseudo-perplexity is the exponential of the student's cross-entropy against
//! the FP32 teacher's argmax labels (lower is better, FP32 gives the floor).
//! The paper's shape to reproduce: 8-bit OliVe ≈ FP32, int8 degrades on
//! OPT-class outliers, int4 and 4-bit ANT blow up, 4-bit OliVe stays usable.
//! Thin driver over the `olive::api` pipeline; `fp32` is just another
//! registry scheme, so the FP32 floor row needs no special casing.
//!
//! Run with: `cargo run --release -p olive-bench --bin tbl09_llm_perplexity`

use olive_api::{ModelFamily, Pipeline};
use olive_bench::report::{fmt_f, Table};

const METHODS: [(&str, &str); 6] = [
    ("FP32", "fp32"),
    ("int8", "uniform:8"),
    ("8-bit OliVe", "olive-8bit"),
    ("int4", "uniform:4"),
    ("4-bit ANT", "ant:4bit"),
    ("4-bit OliVe", "olive-4bit"),
];

fn main() {
    println!("Table 9 reproduction: LLM pseudo-perplexity under PTQ (lower is better)");
    let models = [
        ("GPT2-XL", ModelFamily::Gpt2, 0x7B0901u64),
        ("BLOOM-7B1", ModelFamily::Bloom, 0x7B0902),
        ("OPT-6.7B", ModelFamily::Opt, 0x7B0903),
    ];
    let datasets = [("Wiki", 11u64), ("C4", 23)];

    // One pipeline run per (model, dataset) cell, historical seed formula.
    let reports: Vec<_> = models
        .iter()
        .flat_map(|(model, family, mseed)| {
            datasets.iter().map(move |(ds, dseed)| {
                Pipeline::new(family.small().named(*model))
                    .task(*ds)
                    .schemes(METHODS.iter().map(|(_, spec)| *spec))
                    .seed(mseed * 131 + dseed)
                    .run()
            })
        })
        .collect();

    let mut table = Table::new(
        std::iter::once("Method".to_string())
            .chain(
                models
                    .iter()
                    .flat_map(|(m, _, _)| datasets.iter().map(move |(d, _)| format!("{m} {d}"))),
            )
            .collect(),
    );
    for (label, spec) in &METHODS {
        let mut row = vec![label.to_string()];
        for report in &reports {
            row.push(fmt_f(report.result(spec).expect(spec).perplexity, 2));
        }
        table.row(row);
    }
    table.print_with_title(
        "Pseudo-perplexity (paper shape: OliVe-8bit tracks FP32, int4/ANT-4bit explode, OliVe-4bit stays close)",
    );
}
