//! Table 9: PTQ perplexity on large language models (GPT2-XL, BLOOM-7B1,
//! OPT-6.7B) for FP32, int8, 8-bit OliVe, int4, 4-bit ANT and 4-bit OliVe.
//!
//! Pseudo-perplexity is the exponential of the student's cross-entropy against
//! the FP32 teacher's argmax labels (lower is better, FP32 gives the floor).
//! The paper's shape to reproduce: 8-bit OliVe ≈ FP32, int8 degrades on
//! OPT-class outliers, int4 and 4-bit ANT blow up, 4-bit OliVe stays usable.
//!
//! Run with: `cargo run --release -p olive-bench --bin tbl09_llm_perplexity`

use olive_baselines::{AntQuantizer, UniformQuantizer};
use olive_bench::accuracy::Experiment;
use olive_bench::report::{fmt_f, Table};
use olive_core::{OliveQuantizer, TensorQuantizer};
use olive_models::OutlierSeverity;

fn main() {
    println!("Table 9 reproduction: LLM pseudo-perplexity under PTQ (lower is better)");
    let models = [
        ("GPT2-XL", 0x7B0901u64),
        ("BLOOM-7B1", 0x7B0902),
        ("OPT-6.7B", 0x7B0903),
    ];
    let datasets = [("Wiki", 11u64), ("C4", 23)];

    let int8 = UniformQuantizer::int8();
    let olive8 = OliveQuantizer::int8();
    let int4 = UniformQuantizer::int4();
    let ant4 = AntQuantizer::fixed_4bit();
    let olive4 = OliveQuantizer::int4();
    let methods: Vec<(&str, Option<&dyn TensorQuantizer>)> = vec![
        ("FP32", None),
        ("int8", Some(&int8)),
        ("8-bit OliVe", Some(&olive8)),
        ("int4", Some(&int4)),
        ("4-bit ANT", Some(&ant4)),
        ("4-bit OliVe", Some(&olive4)),
    ];

    let mut table = Table::new(vec![
        "Method".into(),
        "GPT2-XL Wiki".into(),
        "GPT2-XL C4".into(),
        "BLOOM-7B1 Wiki".into(),
        "BLOOM-7B1 C4".into(),
        "OPT-6.7B Wiki".into(),
        "OPT-6.7B C4".into(),
    ]);

    for (name, q) in &methods {
        let mut row = vec![name.to_string()];
        for (model, mseed) in &models {
            for (_ds, dseed) in &datasets {
                let exp = Experiment::build(model, OutlierSeverity::llm(), mseed * 131 + dseed);
                let ppl = match q {
                    None => exp.fp32_perplexity(),
                    Some(q) => exp.perplexity(*q, true),
                };
                row.push(fmt_f(ppl, 2));
            }
        }
        table.row(row);
    }
    table.print_with_title(
        "Pseudo-perplexity (paper shape: OliVe-8bit tracks FP32, int4/ANT-4bit explode, OliVe-4bit stays close)",
    );
}
