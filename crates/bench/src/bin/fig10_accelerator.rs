//! Figure 10: systolic-array accelerator speedup (a) and normalized energy
//! breakdown (b) of OliVe vs ANT, OLAccel and AdaptivFloat at similar area.
//!
//! The comparison set comes from the `olive::api` scheme registry
//! (`Scheme::accelerator_comparison()` → hardware designs via `to_accel`).
//!
//! Run with: `cargo run --release -p olive-bench --bin fig10_accelerator`

use olive_accel::{geomean, SystolicSimulator};
use olive_api::{accel_designs, Scheme};
use olive_bench::report::{fmt_f, fmt_x, Table};
use olive_models::{ModelConfig, Workload};

fn main() {
    println!("Figure 10 reproduction: systolic-array accelerator performance and energy");
    let sim = SystolicSimulator::paper_default();
    let schemes = accel_designs(&Scheme::accelerator_comparison());
    let models = ModelConfig::performance_suite();

    // --- Fig. 10a: speedup normalized to the slowest design (AdaFloat). ---
    let mut speedup_table = Table::new(
        std::iter::once("Model".to_string())
            .chain(schemes.iter().map(|s| s.name.clone()))
            .collect(),
    );
    let mut per_scheme: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    let mut olive_vs: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    for cfg in &models {
        let wl = Workload::from_config(cfg);
        let results = sim.compare(&wl, &schemes);
        let baseline = results.iter().map(|r| r.latency_s).fold(f64::MIN, f64::max);
        let olive_latency = results[0].latency_s;
        let mut row = vec![cfg.name.clone()];
        for (i, r) in results.iter().enumerate() {
            per_scheme[i].push(baseline / r.latency_s);
            olive_vs[i].push(r.latency_s / olive_latency);
            row.push(fmt_x(baseline / r.latency_s));
        }
        speedup_table.row(row);
    }
    let mut geo = vec!["Geomean".to_string()];
    for s in &per_scheme {
        geo.push(fmt_x(geomean(s)));
    }
    speedup_table.row(geo);
    speedup_table.print_with_title("Fig. 10a — speedup (normalized to AdaFloat)");

    println!(
        "OliVe geomean speedup over each design (paper: 4.8x AdaFloat, 3.8x OLAccel, 3.7x ANT):"
    );
    for (i, s) in schemes.iter().enumerate() {
        if i == 0 {
            continue;
        }
        println!("  vs {:<9} {:>6}", s.name, fmt_x(geomean(&olive_vs[i])));
    }

    // --- Fig. 10b: normalized energy breakdown. ---
    let mut energy_table = Table::new(vec![
        "Model".into(),
        "Scheme".into(),
        "Static".into(),
        "DRAM".into(),
        "Buffer".into(),
        "Core".into(),
        "Total (norm.)".into(),
    ]);
    let mut olive_energy: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    for cfg in &models {
        let wl = Workload::from_config(cfg);
        let results = sim.compare(&wl, &schemes);
        let norm = results
            .iter()
            .map(|r| r.energy.total())
            .fold(f64::MIN, f64::max);
        let olive_total = results[0].energy.total();
        for (i, r) in results.iter().enumerate() {
            let e = r.energy.scaled(1.0 / norm);
            olive_energy[i].push(r.energy.total() / olive_total);
            energy_table.row(vec![
                cfg.name.clone(),
                r.scheme.clone(),
                fmt_f(e.constant + e.static_, 3),
                fmt_f(e.dram_l2, 3),
                fmt_f(e.l1_reg, 3),
                fmt_f(e.core, 3),
                fmt_f(e.total(), 3),
            ]);
        }
    }
    energy_table
        .print_with_title("Fig. 10b — normalized energy breakdown (normalized to AdaFloat)");

    println!(
        "OliVe geomean energy reduction vs each design (paper: 3.7x AdaFloat, 2.1x OLAccel, 3.3x ANT):"
    );
    for (i, s) in schemes.iter().enumerate() {
        if i == 0 {
            continue;
        }
        println!("  vs {:<9} {:>6}", s.name, fmt_x(geomean(&olive_energy[i])));
    }
}
