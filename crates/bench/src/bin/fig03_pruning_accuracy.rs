//! Figure 3: accuracy impact of clipping outliers vs pruning victims vs
//! pruning random normal values, across eight GLUE-like tasks.
//!
//! All values stay FP32 except for the studied transformation, exactly as in
//! the paper's motivation study. The expected shape: clipping the ~1% of
//! outliers is catastrophic, pruning the same number of victims (or random
//! normal values) is almost free. Thin driver over `olive::api`'s prepared
//! evaluation (`Pipeline::prepare` + weight transforms).
//!
//! Run with: `cargo run --release -p olive-bench --bin fig03_pruning_accuracy`

use olive_api::{ModelFamily, Pipeline};
use olive_bench::accuracy::{glue_tasks, pct};
use olive_bench::report::Table;
use olive_core::pair::{clip_outliers, prune_random_normals, prune_victims, victim_count};
use olive_tensor::rng::Rng;
use olive_tensor::stats::TensorStats;

fn main() {
    println!("Figure 3 reproduction: clipping outliers vs pruning victims vs pruning normals");
    let mut table = Table::new(vec![
        "Task".into(),
        "Source".into(),
        "Clip outliers".into(),
        "Prune victims".into(),
        "Prune normals".into(),
    ]);

    for (i, task) in glue_tasks().iter().enumerate() {
        let prepared = Pipeline::new(ModelFamily::Bert.small().named("BERT-base"))
            .task(*task)
            .seed(0xF1603 + i as u64)
            .prepare();
        let threshold_of = |w: &olive_tensor::Tensor| -> f32 {
            let s = TensorStats::compute(w);
            (s.mean.abs() + 3.0 * s.std) as f32
        };

        let clip = prepared.fidelity_of_weight_transform(|_, w| clip_outliers(w, threshold_of(w)));
        let victims =
            prepared.fidelity_of_weight_transform(|_, w| prune_victims(w, threshold_of(w)));
        let normals = prepared.fidelity_of_weight_transform(|name, w| {
            // Prune the same number of *random normal* values as there are
            // victims, with a per-tensor deterministic seed.
            let thr = threshold_of(w);
            let count = victim_count(w.data(), thr);
            let mut rng = Rng::seed_from(0x5EED ^ name.len() as u64 ^ w.len() as u64);
            prune_random_normals(w, thr, count, &mut rng)
        });

        table.row(vec![
            task.to_string(),
            pct(1.0),
            pct(clip),
            pct(victims),
            pct(normals),
        ]);
    }
    table.print_with_title(
        "Accuracy proxy (% agreement with the FP32 teacher; paper: clipping collapses, pruning is benign)",
    );
}
