//! `gen_loadgen`: closed-loop load generator for the streamed `/v1/generate`
//! endpoint, and the decode-throughput kernel of the bench-regression gate.
//!
//! ```text
//! gen_loadgen [--quick] [--json <results.json>] [--clients N] [--requests M]
//!             [--max-new-tokens T]
//! ```
//!
//! Starts an in-process server (dynamic batching on, ephemeral port), warms
//! the generation-preparation cache with one request, then drives it with N
//! client threads × M keep-alive streamed `/v1/generate` requests each and
//! reports the per-request latency distribution (p50/p95/p99), the
//! **tokens/sec p50** (the paper-relevant decode-throughput number) and
//! sustained req/s. With `--json`, the per-request p50 is merged into the
//! shared flat results file under the kernel name `serve/gen_stream_tiny`,
//! which `scripts/bench_gate.sh` diffs against `BENCH_baseline.json` —
//! decode throughput is regression-gated exactly like the GEMM kernels
//! (tokens/sec p50 is the gated p50's reciprocal times the token count).
//!
//! A second, continuous-batching phase then fires 8 concurrent streams at
//! once (barrier-synchronized bursts, so the decode scheduler's merged
//! ticks really carry 8 flights) and gates the per-burst wall-time p50
//! under the kernel name `serve/gen_continuous_tiny`; the human table
//! reports the corresponding **aggregate tokens/sec** across all streams.
//!
//! The measured path is the latency-shaped serving hot path this repo's
//! generative workload introduces: HTTP parse → queue → decode-scheduler
//! admission → paged-KV batched incremental decode → one chunked write per
//! token, demuxed per stream.

use olive_bench::gate;
use olive_bench::loadgen::{burst, drive, quantile, warmup, LatencySummary};
use olive_bench::report::Table;
use olive_harness::bench::fmt_ns;
use olive_serve::{ServeConfig, Server};
use std::path::PathBuf;

struct Args {
    quick: bool,
    json: Option<PathBuf>,
    clients: Option<usize>,
    requests: Option<usize>,
    max_new_tokens: usize,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        quick: false,
        json: None,
        clients: None,
        requests: None,
        max_new_tokens: 16,
    };
    let mut args = std::env::args().skip(1);
    let usage = "usage: gen_loadgen [--quick] [--json <path>] [--clients N] [--requests M] \
                 [--max-new-tokens T]";
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} requires a value\n{usage}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--quick" => parsed.quick = true,
            "--json" => parsed.json = Some(PathBuf::from(value("--json"))),
            "--clients" => match value("--clients").parse() {
                Ok(n) if n >= 1 => parsed.clients = Some(n),
                _ => {
                    eprintln!("--clients must be a positive integer");
                    std::process::exit(2);
                }
            },
            "--requests" => match value("--requests").parse() {
                Ok(n) if n >= 1 => parsed.requests = Some(n),
                _ => {
                    eprintln!("--requests must be a positive integer");
                    std::process::exit(2);
                }
            },
            "--max-new-tokens" => match value("--max-new-tokens").parse() {
                Ok(n) if (1..=256).contains(&n) => parsed.max_new_tokens = n,
                _ => {
                    eprintln!("--max-new-tokens must be in 1..=256");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown argument '{other}'\n{usage}");
                std::process::exit(2);
            }
        }
    }
    parsed
}

fn main() {
    let args = parse_args();
    let clients = args.clients.unwrap_or(if args.quick { 2 } else { 4 });
    let requests = args.requests.unwrap_or(if args.quick { 8 } else { 25 });
    let max_new_tokens = args.max_new_tokens;
    let body = format!(
        r#"{{"scheme": "olive-4bit", "prompt_tokens": 8, "max_new_tokens": {max_new_tokens}, "seed": 13}}"#,
    );

    let server = Server::start(ServeConfig::default()).unwrap_or_else(|e| {
        eprintln!("gen_loadgen: failed to start the server: {e}");
        std::process::exit(1);
    });
    let addr = server.local_addr();

    // Warmup: populate the generation-preparation cache (teacher + prompt)
    // so the timed phase measures the steady-state decode path.
    let (response, uncached_ns) = warmup(addr, "/v1/generate", &body);
    assert!(response.chunks.is_some(), "generate must stream");

    // Timed phase: closed-loop clients over kept-alive connections, one
    // streamed generation per request.
    let (latencies, wall_s) = drive(addr, "/v1/generate", &body, clients, requests);

    // Continuous-batching phase: 8 streams fired simultaneously per round,
    // so every decode tick batches a full house of flights; the round wall
    // time is how long the merged batch takes to decode to completion.
    let streams = 8;
    let rounds = if args.quick { 6 } else { 20 };
    let round_ns = burst(addr, "/v1/generate", &body, streams, rounds);
    server.shutdown();

    let total = latencies.len();
    let summary = LatencySummary::from_sorted_ns(&latencies);
    let p50 = summary.p50_ns;
    let tokens_per_s_p50 = max_new_tokens as f64 / (p50 as f64 / 1e9);
    let req_per_s = total as f64 / wall_s;
    let burst_p50 = quantile(&round_ns, 0.50);
    let aggregate_tok_per_s = (streams * max_new_tokens) as f64 / (burst_p50 as f64 / 1e9);

    let mut table = Table::new(vec!["metric".into(), "value".into()]);
    table.row(vec!["clients".into(), clients.to_string()]);
    table.row(vec!["requests/client".into(), requests.to_string()]);
    table.row(vec!["tokens/request".into(), max_new_tokens.to_string()]);
    table.row(vec!["total requests".into(), total.to_string()]);
    table.row(vec!["uncached first stream".into(), fmt_ns(uncached_ns)]);
    table.row(vec!["latency p50".into(), fmt_ns(summary.p50_ns)]);
    table.row(vec!["latency p95".into(), fmt_ns(summary.p95_ns)]);
    table.row(vec!["latency p99".into(), fmt_ns(summary.p99_ns)]);
    table.row(vec!["latency max".into(), fmt_ns(summary.max_ns)]);
    table.row(vec![
        "tokens/sec p50".into(),
        format!("{tokens_per_s_p50:.0} tok/s"),
    ]);
    table.row(vec!["throughput".into(), format!("{req_per_s:.1} req/s")]);
    table.row(vec![
        "continuous burst p50".into(),
        format!("{} ({streams} streams)", fmt_ns(burst_p50)),
    ]);
    table.row(vec![
        "aggregate tokens/sec".into(),
        format!("{aggregate_tok_per_s:.0} tok/s"),
    ]);
    println!("== gen_loadgen: {total} streamed /v1/generate requests ==");
    println!("{}", table.render());

    // The bucketed distribution, in the same microsecond buckets the
    // server's /metrics histograms use.
    let mut buckets = Table::new(vec!["latency bucket".into(), "cumulative".into()]);
    for (bound, cumulative) in summary.bucket_rows() {
        buckets.row(vec![bound, cumulative.to_string()]);
    }
    println!("{}", buckets.render());

    if let Some(path) = &args.json {
        // Gate the per-request p50 (tokens/sec p50 is its reciprocal scaled
        // by the fixed token count, so one number gates both; tails are too
        // noisy on shared hardware) and the continuous-batching burst p50
        // (aggregate tokens/sec is likewise its scaled reciprocal).
        let mut medians = gate::Medians::new();
        medians.insert("serve/gen_stream_tiny".to_string(), p50);
        medians.insert("serve/gen_continuous_tiny".to_string(), burst_p50);
        gate::merge_into_file(path, &medians)
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        println!("wrote medians to {}", path.display());
    }
}
