//! Ablation: scale-factor calibration policies (Sec. 3.4 design choice).
//!
//! Compares the paper's MSE-minimizing search against max-abs, percentile and
//! plain 3σ calibration on synthetic transformer tensors.
//!
//! Run with: `cargo run --release -p olive-bench --bin abl_scale_policy`

use olive_bench::report::{fmt_f, fmt_pct, Table};
use olive_core::{ablate_scale_policies, OliveQuantizer};
use olive_models::{ModelConfig, SynthProfile};
use olive_tensor::rng::Rng;

fn main() {
    println!("Ablation: scale-factor calibration policy (OliVe int4)");
    let mut rng = Rng::seed_from(0xAB1);
    let quantizer = OliveQuantizer::int4();

    for (label, profile) in [
        ("BERT-class tensor", SynthProfile::transformer()),
        ("LLM-class tensor (OPT/BLOOM)", SynthProfile::llm()),
        ("CNN-class tensor (ResNet-18)", SynthProfile::cnn()),
    ] {
        let t = profile.generate(vec![512, 512], &mut rng);
        let mut table = Table::new(vec![
            "Policy".into(),
            "MSE".into(),
            "Scale".into(),
            "Outlier pairs".into(),
        ]);
        for row in ablate_scale_policies(&quantizer, &t) {
            table.row(vec![
                row.policy,
                format!("{:.5}", row.mse),
                fmt_f(row.scale as f64, 4),
                fmt_pct(row.outlier_pair_fraction),
            ]);
        }
        table.print_with_title(label);
    }
    let _ = ModelConfig::bert_base(); // keep the workload crate linked for future sweeps
    println!("Expected: mse-search (the paper's Sec. 3.4 choice) gives the lowest MSE everywhere.");
}
