//! Table 2: the percentage of normal-normal, outlier-normal and
//! outlier-outlier adjacent value pairs for four Transformer models.
//!
//! Run with: `cargo run --release -p olive-bench --bin tbl02_pair_types`

use olive_bench::report::{fmt_pct, Table};
use olive_core::pair::{pair_stats_tensor, PairStats};
use olive_models::{model_tensor_suite, ModelConfig};
use olive_tensor::rng::Rng;

fn model_pair_stats(cfg: &ModelConfig, seed: u64) -> PairStats {
    let mut rng = Rng::seed_from(seed);
    let suite = model_tensor_suite(cfg, 65_536, &mut rng);
    let mut total = PairStats::default();
    for t in &suite {
        total.merge(&pair_stats_tensor(&t.tensor));
    }
    total
}

fn main() {
    println!("Table 2 reproduction: pair-type percentages under the 3-sigma rule");
    let models = [
        (ModelConfig::bert_base(), 0x7B0201u64),
        (ModelConfig::bert_large(), 0x7B0202),
        (ModelConfig::gpt2_xl(), 0x7B0203),
        (ModelConfig::opt_6_7b(), 0x7B0204),
    ];
    let mut table = Table::new(vec![
        "Model".into(),
        "Normal-Normal".into(),
        "Outlier-Normal".into(),
        "Outlier-Outlier".into(),
    ]);
    for (cfg, seed) in models {
        let s = model_pair_stats(&cfg, seed);
        table.row(vec![
            cfg.name.clone(),
            fmt_pct(s.frac_normal_normal()),
            fmt_pct(s.frac_outlier_normal()),
            fmt_pct(s.frac_outlier_outlier()),
        ]);
    }
    table.print_with_title("Pair-type distribution (paper Tbl. 2: ~99% / ~1% / <0.06%)");
    println!("{}", table.render_csv());
}
