//! Figure 5: rounding error of the largest outliers under the four 4-bit
//! abfloat configurations (E0M3, E1M2, E2M1, E3M0).
//!
//! For each model we collect the largest outliers of its synthetic tensor
//! suite, quantize them with each abfloat configuration (adaptive bias chosen
//! for the int4 pairing), and report the mean relative error normalised to the
//! best configuration — E2M1 should win, which is why the paper selects it.
//!
//! Run with: `cargo run --release -p olive-bench --bin fig05_abfloat_error`

use olive_bench::report::{fmt_f, Table};
use olive_dtypes::abfloat::{AbfloatCode, AbfloatFormat};
use olive_models::{model_tensor_suite, ModelConfig};
use olive_tensor::rng::Rng;
use olive_tensor::stats::TensorStats;

/// Mean relative rounding error of quantizing `values` (grid-normalised
/// outlier magnitudes) with `format`.
fn mean_error(values: &[f32], format: AbfloatFormat, bias: i32) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values
        .iter()
        .map(|&v| AbfloatCode::rounding_error(v, bias, format) / (v.abs() as f64).max(1e-9))
        .sum::<f64>()
        / values.len() as f64
}

/// The adaptive bias of a format when paired with int4 normal values: the
/// smallest bias whose representable range starts just above the normal-value
/// maximum (7), mirroring how Sec. 3.3 derives bias = 2 for E2M1.
fn complementary_bias(format: AbfloatFormat) -> i32 {
    for bias in 0..8 {
        if format.min_nonzero_value(bias) >= 8 {
            return bias;
        }
    }
    0
}

fn largest_outliers(cfg: &ModelConfig, seed: u64) -> Vec<f32> {
    let mut rng = Rng::seed_from(seed);
    let suite = model_tensor_suite(cfg, 65_536, &mut rng);
    let mut out = Vec::new();
    for t in &suite {
        let s = TensorStats::compute(&t.tensor);
        if s.std == 0.0 {
            continue;
        }
        // Normalise onto the OVP integer grid: threshold (3 sigma) maps to the
        // int4 maximum of 7, exactly as the quantizer does.
        let scale = (3.0 * s.std) as f32 / 7.0;
        for &x in t.tensor.data() {
            let g = x / scale;
            if g.abs() > 7.0 {
                out.push(g);
            }
        }
    }
    out
}

fn main() {
    println!("Figure 5 reproduction: abfloat configuration rounding error on outliers");
    let models = [
        (ModelConfig::bert_base(), 0xF501u64),
        (ModelConfig::bert_large(), 0xF502),
        (ModelConfig::bart_base(), 0xF503),
        (ModelConfig::gpt2_xl(), 0xF504),
    ];
    let formats = AbfloatFormat::four_bit_formats();
    let mut table = Table::new(
        std::iter::once("Model".to_string())
            .chain(formats.iter().map(|f| f.to_string()))
            .collect(),
    );
    for (cfg, seed) in models {
        let outliers = largest_outliers(&cfg, seed);
        let errors: Vec<f64> = formats
            .iter()
            .map(|&f| mean_error(&outliers, f, complementary_bias(f)))
            .collect();
        let best = errors
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min)
            .max(1e-12);
        let mut row = vec![cfg.name.clone()];
        row.extend(errors.iter().map(|e| fmt_f(e / best, 2)));
        table.row(row);
    }
    table.print_with_title(
        "Normalized mean rounding error of the largest outliers (lower is better; paper: E2M1 wins)",
    );
}
