//! Bench-regression gate: diffs a `BENCH_results.json` run against the
//! checked-in `BENCH_baseline.json` and exits non-zero if any kernel median
//! regressed beyond the tolerance (default 25%) or disappeared.
//!
//! ```text
//! bench_gate <baseline.json> <results.json> [--tolerance-pct N] [--inject-slowdown F]
//! ```
//!
//! `--inject-slowdown F` multiplies every result median by `F` before
//! comparing — the self-test `scripts/bench_gate.sh --self-test` uses it to
//! demonstrate that a synthetic 2x slowdown actually fails the gate.

use olive_bench::gate;
use olive_bench::report::Table;
use olive_harness::bench::fmt_ns;
use std::path::PathBuf;

struct Args {
    baseline: PathBuf,
    results: PathBuf,
    tolerance_pct: f64,
    inject_slowdown: Option<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut positional: Vec<String> = Vec::new();
    let mut tolerance_pct = 25.0;
    let mut inject_slowdown = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tolerance-pct" => {
                tolerance_pct = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--tolerance-pct requires a number")?;
            }
            "--inject-slowdown" => {
                let f: f64 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--inject-slowdown requires a factor")?;
                inject_slowdown = Some(f);
            }
            other if !other.starts_with("--") => positional.push(other.to_string()),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if positional.len() != 2 {
        return Err("usage: bench_gate <baseline.json> <results.json> \
             [--tolerance-pct N] [--inject-slowdown F]"
            .into());
    }
    Ok(Args {
        baseline: PathBuf::from(&positional[0]),
        results: PathBuf::from(&positional[1]),
        tolerance_pct,
        inject_slowdown,
    })
}

/// The exact command that regenerates one `"<suite>/<kernel>"` entry of a
/// results file — printed whenever a file or kernel is missing, so the fix
/// is always one copy-paste away.
fn regen_command(kernel: &str, results: &std::path::Path) -> String {
    let suite = kernel.split('/').next().unwrap_or(kernel);
    // The "serve" suite is written by two binaries, one kernel each.
    let loadgen_bin = match kernel {
        "serve/gen_stream_tiny" => Some("gen_loadgen"),
        _ if suite == "serve" => Some("serve_loadgen"),
        _ => None,
    };
    match loadgen_bin {
        Some(bin) => format!(
            "cargo run --release -p olive-bench --bin {bin} -- --quick --json {}",
            results.display()
        ),
        None => format!(
            "cargo bench -p olive-bench --bench {suite} -- --quick --json {}",
            results.display()
        ),
    }
}

fn load(path: &PathBuf) -> gate::Medians {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        exit_err(&format!(
            "reading {path}: {e}\n  regenerate the full results file with: scripts/bench_gate.sh\n  \
             (or rewrite the baseline after intentional changes: scripts/bench_gate.sh --rebaseline)",
            path = path.display()
        ))
    });
    gate::parse_flat_json(&text).unwrap_or_else(|e| {
        exit_err(&format!(
            "parsing {path}: {e}\n  regenerate it with: scripts/bench_gate.sh",
            path = path.display()
        ))
    })
}

fn exit_err(message: &str) -> ! {
    eprintln!("bench_gate: {message}");
    std::process::exit(2);
}

fn main() {
    let args = parse_args().unwrap_or_else(|e| exit_err(&e));
    let baseline = load(&args.baseline);
    let mut results = load(&args.results);
    if let Some(factor) = args.inject_slowdown {
        println!("injecting a synthetic {factor}x slowdown into every result median");
        results = gate::scale_medians(&results, factor);
    }

    let outcome = gate::compare(&baseline, &results, args.tolerance_pct);

    let mut table = Table::new(vec![
        "kernel".into(),
        "baseline".into(),
        "result".into(),
        "ratio".into(),
        "verdict".into(),
    ]);
    for kernel in &outcome.passed {
        let (b, r) = (baseline[kernel], results[kernel]);
        table.row(vec![
            kernel.clone(),
            fmt_ns(b),
            fmt_ns(r),
            format!("{:.2}x", r as f64 / b.max(1) as f64),
            "ok".into(),
        ]);
    }
    for reg in &outcome.regressions {
        table.row(vec![
            reg.kernel.clone(),
            fmt_ns(reg.baseline_ns),
            fmt_ns(reg.result_ns),
            format!("{:.2}x", reg.ratio()),
            "REGRESSED".into(),
        ]);
    }
    for kernel in &outcome.missing {
        table.row(vec![
            kernel.clone(),
            fmt_ns(baseline[kernel]),
            "-".into(),
            "-".into(),
            "MISSING".into(),
        ]);
    }
    for kernel in &outcome.unbaselined {
        table.row(vec![
            kernel.clone(),
            "-".into(),
            fmt_ns(results[kernel]),
            "-".into(),
            "new (re-baseline to track)".into(),
        ]);
    }
    println!(
        "== bench gate: {} vs {} (tolerance {:.0}%) ==",
        args.results.display(),
        args.baseline.display(),
        args.tolerance_pct
    );
    println!("{}", table.render());

    if outcome.ok() {
        println!(
            "bench gate: OK ({} kernels within tolerance)",
            outcome.passed.len()
        );
    } else {
        if !outcome.missing.is_empty() {
            println!(
                "{} kernel(s) in {} are missing from {} — re-measure them:",
                outcome.missing.len(),
                args.baseline.display(),
                args.results.display(),
            );
            let mut commands: Vec<String> = outcome
                .missing
                .iter()
                .map(|kernel| regen_command(kernel, &args.results))
                .collect();
            commands.dedup();
            for command in commands {
                println!("  {command}");
            }
        }
        println!(
            "bench gate: FAILED ({} regressed, {} missing) — if intentional, re-baseline \
             with scripts/bench_gate.sh --rebaseline",
            outcome.regressions.len(),
            outcome.missing.len()
        );
        std::process::exit(1);
    }
}
