//! Figure 9: GPU speedup (a) and normalized energy breakdown (b) of OliVe vs
//! ANT, the native int8 tensor core and GOBO across five Transformer models.
//!
//! Speedups are normalised to GOBO (the slowest design), energies to GOBO's
//! total, matching the paper's presentation.
//!
//! The comparison set comes from the `olive::api` scheme registry
//! (`Scheme::gpu_comparison()` → hardware designs via `to_accel`).
//!
//! Run with: `cargo run --release -p olive-bench --bin fig09_gpu`

use olive_accel::{geomean, GpuSimulator};
use olive_api::{accel_designs, Scheme};
use olive_bench::report::{fmt_f, fmt_x, Table};
use olive_models::{ModelConfig, Workload};

fn main() {
    println!("Figure 9 reproduction: GPU (RTX 2080 Ti class) performance and energy");
    let sim = GpuSimulator::rtx_2080_ti();
    let schemes = accel_designs(&Scheme::gpu_comparison());
    let models = ModelConfig::performance_suite();

    // --- Fig. 9a: speedup over the slowest design (GOBO). ---
    let mut speedup_table = Table::new(
        std::iter::once("Model".to_string())
            .chain(schemes.iter().map(|s| s.name.clone()))
            .collect(),
    );
    let mut per_scheme_speedups: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    let mut olive_vs: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];

    for cfg in &models {
        let wl = Workload::from_config(cfg);
        let results = sim.compare(&wl, &schemes);
        let baseline = results.iter().map(|r| r.latency_s).fold(f64::MIN, f64::max);
        let olive_latency = results[0].latency_s;
        let mut row = vec![cfg.name.clone()];
        for (i, r) in results.iter().enumerate() {
            let speedup = baseline / r.latency_s;
            per_scheme_speedups[i].push(speedup);
            olive_vs[i].push(r.latency_s / olive_latency);
            row.push(fmt_x(speedup));
        }
        speedup_table.row(row);
    }
    let mut geo_row = vec!["Geomean".to_string()];
    for s in &per_scheme_speedups {
        geo_row.push(fmt_x(geomean(s)));
    }
    speedup_table.row(geo_row);
    speedup_table.print_with_title("Fig. 9a — speedup (normalized to GOBO)");

    println!("OliVe geomean speedup over each design (paper: 4.5x GOBO, 2.7x INT8, 2.4x ANT):");
    for (i, s) in schemes.iter().enumerate() {
        if i == 0 {
            continue;
        }
        println!("  vs {:<8} {:>6}", s.name, fmt_x(geomean(&olive_vs[i])));
    }

    // --- Fig. 9b: normalized energy breakdown. ---
    let mut energy_table = Table::new(vec![
        "Model".into(),
        "Scheme".into(),
        "Const".into(),
        "Static".into(),
        "DRAM+L2".into(),
        "L1+Reg".into(),
        "Core".into(),
        "Total (norm.)".into(),
    ]);
    let mut olive_energy_ratio: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    for cfg in &models {
        let wl = Workload::from_config(cfg);
        let results = sim.compare(&wl, &schemes);
        let norm = results
            .iter()
            .map(|r| r.energy.total())
            .fold(f64::MIN, f64::max);
        let olive_total = results[0].energy.total();
        for (i, r) in results.iter().enumerate() {
            let e = r.energy.scaled(1.0 / norm);
            olive_energy_ratio[i].push(r.energy.total() / olive_total);
            energy_table.row(vec![
                cfg.name.clone(),
                r.scheme.clone(),
                fmt_f(e.constant, 3),
                fmt_f(e.static_, 3),
                fmt_f(e.dram_l2, 3),
                fmt_f(e.l1_reg, 3),
                fmt_f(e.core, 3),
                fmt_f(e.total(), 3),
            ]);
        }
    }
    energy_table.print_with_title("Fig. 9b — normalized energy breakdown (normalized to GOBO)");

    println!(
        "OliVe geomean energy reduction vs each design (paper: 4.0x GOBO, 2.3x INT8, 2.0x ANT):"
    );
    for (i, s) in schemes.iter().enumerate() {
        if i == 0 {
            continue;
        }
        println!(
            "  vs {:<8} {:>6}",
            s.name,
            fmt_x(geomean(&olive_energy_ratio[i]))
        );
    }
}
