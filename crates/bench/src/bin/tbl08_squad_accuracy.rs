//! Table 8: SQuAD-style results (a harder task than GLUE) for BERT-base and
//! BART-base against Outlier Suppression 6-bit PTQ.
//!
//! The proxy for "harder": the pipeline's per-position agreement (exact-match
//! style, every position's argmax must match) next to the logit-fidelity F1
//! proxy. Thin driver over the `olive::api` pipeline, which reports both
//! metrics from one run.
//!
//! Run with: `cargo run --release -p olive-bench --bin tbl08_squad_accuracy`

use olive_api::{ModelFamily, Pipeline};
use olive_bench::accuracy::pct;
use olive_bench::report::Table;

const METHODS: [(&str, &str); 2] = [
    ("Ours 4-bit", "olive-4bit"),
    ("Outlier Suppression 6-bit", "os:6bit"),
];

fn main() {
    println!("Table 8 reproduction: SQuAD-style (per-position) accuracy proxies");
    let datasets = [("SQuAD v1.1", 0x7B0801u64), ("SQuAD v2.0", 0x7B0802)];
    let models = [
        ("BERT-base", ModelFamily::Bert),
        ("BART-base", ModelFamily::Bart),
    ];

    for (mi, (model, family)) in models.iter().enumerate() {
        let reports: Vec<_> = datasets
            .iter()
            .map(|(ds, seed)| {
                Pipeline::new(family.small().named(*model))
                    .task(*ds)
                    .schemes(METHODS.iter().map(|(_, spec)| *spec))
                    .seed(seed + mi as u64 * 97)
                    .weights_only()
                    .run()
            })
            .collect();

        let mut table = Table::new(vec![
            "Method".into(),
            "SQuAD v1.1 (F1/EM)".into(),
            "SQuAD v2.0 (F1/EM)".into(),
        ]);
        table.row(vec![
            format!("{} FP32", model),
            "100.00/100.00".into(),
            "100.00/100.00".into(),
        ]);
        for (label, spec) in &METHODS {
            let mut row = vec![label.to_string()];
            for report in &reports {
                let r = report.result(spec).expect(spec);
                row.push(format!("{}/{}", pct(r.fidelity), pct(r.position_agreement)));
            }
            table.row(row);
        }
        table.print_with_title(&format!(
            "{} — per-position agreement (F1 proxy) / all-position exact match (EM proxy)",
            model
        ));
    }
    println!("Paper shape: OliVe 4-bit stays ahead of Outlier Suppression 6-bit on both datasets.");
}
