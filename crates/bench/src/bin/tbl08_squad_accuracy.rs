//! Table 8: SQuAD-style results (a harder task than GLUE) for BERT-base and
//! BART-base against Outlier Suppression 6-bit PTQ.
//!
//! The proxy for "harder": predictions must agree at *every* position of the
//! sequence (exact-match style) and we also report the average per-position
//! agreement (F1 style). Both metrics stress the student more than the single
//! next-token agreement used for GLUE.
//!
//! Run with: `cargo run --release -p olive-bench --bin tbl08_squad_accuracy`

use olive_baselines::OutlierSuppressionQuantizer;
use olive_bench::accuracy::{pct, Experiment};
use olive_bench::report::Table;
use olive_core::{OliveQuantizer, TensorQuantizer};
use olive_models::{OutlierSeverity, TinyTransformer};

/// (per-position exact-match proxy, fidelity-based F1 proxy) of a student
/// against the teacher. The EM proxy requires the argmax to match at every
/// position (strict); the F1 proxy is the per-position logit fidelity.
fn span_metrics(
    teacher: &TinyTransformer,
    student: &TinyTransformer,
    task: &olive_models::EvalTask,
) -> (f64, f64) {
    let mut pos_hits = 0usize;
    let mut pos_total = 0usize;
    for input in &task.inputs {
        let t = teacher.forward(input, None);
        let s = student.forward(input, None);
        for p in 0..t.rows() {
            if argmax(t.row(p)) == argmax(s.row(p)) {
                pos_hits += 1;
            }
            pos_total += 1;
        }
    }
    let em = pos_hits as f64 / pos_total.max(1) as f64;
    let f1 = olive_models::logit_fidelity(teacher, student, task, None);
    (em, f1)
}

fn argmax(row: &[f32]) -> usize {
    row.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .unwrap_or(0)
}

fn main() {
    println!("Table 8 reproduction: SQuAD-style (per-position) accuracy proxies");
    let datasets = [("SQuAD v1.1", 0x7B0801u64), ("SQuAD v2.0", 0x7B0802)];
    let models = ["BERT-base", "BART-base"];
    let olive = OliveQuantizer::int4();
    let os6 = OutlierSuppressionQuantizer::ptq_6bit();
    let methods: Vec<(&str, &dyn TensorQuantizer)> =
        vec![("Ours 4-bit", &olive), ("Outlier Suppression 6-bit", &os6)];

    for (mi, model) in models.iter().enumerate() {
        let mut table = Table::new(vec![
            "Method".into(),
            "SQuAD v1.1 (F1/EM)".into(),
            "SQuAD v2.0 (F1/EM)".into(),
        ]);
        table.row(vec![
            format!("{} FP32", model),
            "100.00/100.00".into(),
            "100.00/100.00".into(),
        ]);
        for (name, q) in &methods {
            let mut row = vec![name.to_string()];
            for (ds, seed) in &datasets {
                let exp =
                    Experiment::build(ds, OutlierSeverity::transformer(), seed + mi as u64 * 97);
                let student = exp.teacher.quantize_weights(*q);
                let (em, f1) = span_metrics(&exp.teacher, &student, &exp.task);
                row.push(format!("{}/{}", pct(f1), pct(em)));
            }
            table.row(row);
        }
        table.print_with_title(&format!(
            "{} — per-position agreement (F1 proxy) / all-position exact match (EM proxy)",
            model
        ));
    }
    println!("Paper shape: OliVe 4-bit stays ahead of Outlier Suppression 6-bit on both datasets.");
}
