//! Table 6: GLUE accuracy of OliVe 4-bit PTQ against ANT, Outlier Suppression
//! and Q8BERT on BERT-base, BERT-large and BART-base.
//!
//! Accuracy is the teacher–student agreement proxy (FP32 teacher = 100%); the
//! reproduced *shape* is the ordering: OliVe 4-bit ≈ FP32, ahead of OS-6bit,
//! OS-4bit, ANT-4bit and int4.
//!
//! Run with: `cargo run --release -p olive-bench --bin tbl06_glue_accuracy`

use olive_baselines::{AntQuantizer, OutlierSuppressionQuantizer, UniformQuantizer};
use olive_bench::accuracy::{pct, Experiment};
use olive_bench::report::Table;
use olive_core::{OliveQuantizer, TensorQuantizer};
use olive_models::OutlierSeverity;

fn main() {
    println!("Table 6 reproduction: GLUE accuracy proxies (weights + activations quantized)");
    let tasks = ["CoLA", "SST-2", "MNLI", "QQP", "MRPC"];
    let models = ["BERT-base", "BERT-large", "BART-base"];

    let olive4 = OliveQuantizer::int4();
    let ant4 = AntQuantizer::fixed_4bit();
    let os4 = OutlierSuppressionQuantizer::bits4();
    let os6 = OutlierSuppressionQuantizer::ptq_6bit();
    let q8 = UniformQuantizer::int8();
    let int4 = UniformQuantizer::int4();
    let methods: Vec<(&str, &dyn TensorQuantizer, bool)> = vec![
        ("Ours 4-bit PTQ", &olive4, true),
        ("ANT 4-bit PTQ", &ant4, true),
        ("OS 4-bit PTQ", &os4, true),
        ("OS 6-bit PTQ", &os6, true),
        ("Q8 8-bit", &q8, true),
        ("int4", &int4, true),
    ];

    for (mi, model) in models.iter().enumerate() {
        let mut table = Table::new(
            std::iter::once("Method".to_string())
                .chain(tasks.iter().map(|t| t.to_string()))
                .collect(),
        );
        // FP32 reference row (by construction 100%).
        table.row(
            std::iter::once(format!("{} FP32", model))
                .chain(tasks.iter().map(|_| pct(1.0)))
                .collect(),
        );
        for (name, q, acts) in &methods {
            let mut row = vec![name.to_string()];
            for (ti, task) in tasks.iter().enumerate() {
                let seed = 0x7B06_0000 + (mi as u64) * 101 + ti as u64;
                let exp = Experiment::build(task, OutlierSeverity::transformer(), seed);
                row.push(pct(exp.accuracy(*q, *acts)));
            }
            table.row(row);
        }
        table.print_with_title(&format!("{} — agreement with the FP32 teacher (%)", model));
    }
    println!(
        "Paper shape: OliVe 4-bit PTQ stays within ~1% of FP32 and beats OS 6-bit PTQ and ANT 4-bit PTQ."
    );
}
