//! Table 6: GLUE accuracy of OliVe 4-bit PTQ against ANT, Outlier Suppression
//! and Q8BERT on BERT-base, BERT-large and BART-base.
//!
//! Accuracy is the teacher–student agreement proxy (FP32 teacher = 100%); the
//! reproduced *shape* is the ordering: OliVe 4-bit ≈ FP32, ahead of OS-6bit,
//! OS-4bit, ANT-4bit and int4. Thin driver over the `olive::api` pipeline —
//! one pipeline per (model, task) cell, schemes addressed by registry spec.
//!
//! Run with: `cargo run --release -p olive-bench --bin tbl06_glue_accuracy`

use olive_api::{ModelFamily, Pipeline};
use olive_bench::accuracy::pct;
use olive_bench::report::Table;

const METHODS: [(&str, &str); 6] = [
    ("Ours 4-bit PTQ", "olive-4bit"),
    ("ANT 4-bit PTQ", "ant:4bit"),
    ("OS 4-bit PTQ", "os:4bit"),
    ("OS 6-bit PTQ", "os:6bit"),
    ("Q8 8-bit", "uniform:8"),
    ("int4", "uniform:4"),
];

fn main() {
    println!("Table 6 reproduction: GLUE accuracy proxies (weights + activations quantized)");
    let tasks = ["CoLA", "SST-2", "MNLI", "QQP", "MRPC"];
    let models = [
        ("BERT-base", ModelFamily::Bert),
        ("BERT-large", ModelFamily::Bert),
        ("BART-base", ModelFamily::Bart),
    ];

    for (mi, (model, family)) in models.iter().enumerate() {
        // One pipeline run per task cell; the seed formula is the harness's
        // historical one, so numbers are unchanged by the API migration.
        let reports: Vec<_> = tasks
            .iter()
            .enumerate()
            .map(|(ti, task)| {
                Pipeline::new(family.small().named(*model))
                    .task(*task)
                    .schemes(METHODS.iter().map(|(_, spec)| *spec))
                    .seed(0x7B06_0000 + (mi as u64) * 101 + ti as u64)
                    .run()
            })
            .collect();

        let mut table = Table::new(
            std::iter::once("Method".to_string())
                .chain(tasks.iter().map(|t| t.to_string()))
                .collect(),
        );
        // FP32 reference row (by construction 100%).
        table.row(
            std::iter::once(format!("{} FP32", model))
                .chain(tasks.iter().map(|_| pct(1.0)))
                .collect(),
        );
        for (label, spec) in &METHODS {
            let mut row = vec![label.to_string()];
            for report in &reports {
                row.push(pct(report.result(spec).expect(spec).fidelity));
            }
            table.row(row);
        }
        table.print_with_title(&format!("{} — agreement with the FP32 teacher (%)", model));
    }
    println!(
        "Paper shape: OliVe 4-bit PTQ stays within ~1% of FP32 and beats OS 6-bit PTQ and ANT 4-bit PTQ."
    );
}
