//! Table 10: area of the OliVe OVP decoders added to an RTX 2080 Ti (12 nm).
//!
//! Run with: `cargo run --release -p olive-bench --bin tbl10_gpu_area`

use olive_accel::area::{gpu_decoder_area_table, RTX_2080TI_DIE_MM2};
use olive_bench::report::{fmt_f, fmt_pct, Table};

fn main() {
    println!(
        "Table 10 reproduction: OliVe decoder area on an RTX 2080 Ti ({} mm^2 die, 12 nm)",
        RTX_2080TI_DIE_MM2
    );
    let mut table = Table::new(vec![
        "Component".into(),
        "Unit area (um^2)".into(),
        "Number".into(),
        "Area (mm^2)".into(),
        "Area ratio".into(),
    ]);
    for r in gpu_decoder_area_table() {
        table.row(vec![
            r.component.clone(),
            fmt_f(r.unit_area_um2, 2),
            format!("{}", r.count),
            fmt_f(r.total_mm2, 2),
            fmt_pct(r.ratio),
        ]);
    }
    table.print_with_title("GPU decoder area (paper: 1.88 mm^2 / 0.250% and 1.25 mm^2 / 0.166%)");
}
