//! Shared command-line handling for the micro-benchmark binaries
//! (`benches/*.rs`, built with `harness = false`).
//!
//! Every bench accepts:
//!
//! * `--quick` — smoke mode for CI: fewer warmup/sample iterations (1/5
//!   instead of 3/20, still overridable via `OLIVE_BENCH_WARMUP` /
//!   `OLIVE_BENCH_SAMPLES`) and heavyweight kernels are skipped;
//! * `--json <path>` — append this run's `suite/kernel → median ns` entries
//!   to a flat JSON file (created if missing, existing keys overwritten).
//!   `scripts/bench_gate.sh` aggregates all three benches into one
//!   `BENCH_results.json` this way and diffs it against the checked-in
//!   `BENCH_baseline.json`;
//! * `--list-schemes` — print every spec in the `olive::api` scheme registry
//!   (bits per element + activation-quantization flag) and exit;
//! * `--scheme <spec>` (repeatable) — restrict scheme-aware benches (the
//!   quantized GEMM bench) to the named registry schemes.

use crate::gate;
use olive_api::Scheme;
use olive_harness::bench::{BenchConfig, BenchSuite};
use olive_harness::report::Table;
use std::path::PathBuf;

/// Parsed benchmark command line.
#[derive(Debug, Clone, Default)]
pub struct BenchCli {
    /// CI smoke mode: fewer iterations, heavy kernels skipped.
    pub quick: bool,
    /// Where to merge this run's medians as flat JSON, if anywhere.
    pub json: Option<PathBuf>,
    /// Registry schemes selected with `--scheme` (empty = the bench's
    /// default kernel set, which is what the regression gate baselines).
    pub schemes: Vec<Scheme>,
}

impl BenchCli {
    /// Parses `std::env::args`, exiting with a usage message on unknown flags
    /// (unknown args would otherwise silently change what a gate run
    /// measures). `--list-schemes` prints the registry and exits.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (testable core of [`parse`]).
    ///
    /// # Errors
    ///
    /// Returns a usage string on unknown flags, a missing `--json`/`--scheme`
    /// value, or a malformed scheme spec. `Ok(None)` means `--list-schemes`
    /// was requested (print [`render_scheme_list`] and exit).
    pub fn try_parse_from<I: IntoIterator<Item = String>>(args: I) -> Result<Option<Self>, String> {
        let mut cli = BenchCli::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => cli.quick = true,
                "--json" => {
                    let path = args
                        .next()
                        .ok_or_else(|| "--json requires a file path".to_string())?;
                    cli.json = Some(PathBuf::from(path));
                }
                "--list-schemes" => return Ok(None),
                "--scheme" => {
                    let spec = args.next().ok_or_else(|| {
                        "--scheme requires a spec (see --list-schemes)".to_string()
                    })?;
                    cli.schemes
                        .push(Scheme::parse(&spec).map_err(|e| e.to_string())?);
                }
                // `cargo bench` passes --bench to harness=false targets.
                "--bench" => {}
                other => {
                    return Err(format!(
                        "unknown argument '{other}' (expected --quick, --json <path>, \
                         --scheme <spec> and/or --list-schemes)"
                    ))
                }
            }
        }
        Ok(Some(cli))
    }

    fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Self {
        match Self::try_parse_from(args) {
            Ok(Some(cli)) => cli,
            Ok(None) => {
                println!("{}", render_scheme_list());
                std::process::exit(0);
            }
            Err(message) => {
                eprintln!("{message}");
                std::process::exit(2);
            }
        }
    }

    /// Iteration counts for this run: quick mode falls back to 1 warmup / 5
    /// samples, normal mode to the defaults; the `OLIVE_BENCH_*` env
    /// variables override either.
    pub fn bench_config(&self) -> BenchConfig {
        if self.quick {
            BenchConfig::from_env_or(1, 5)
        } else {
            BenchConfig::default()
        }
    }

    /// Creates a suite wired to this run's iteration counts.
    pub fn suite(&self, title: &str) -> BenchSuite {
        BenchSuite::with_config(title, self.bench_config())
    }

    /// Prints each suite's table and, with `--json`, merges their medians
    /// (keyed `"<suite>/<benchmark>"`) into the JSON results file.
    ///
    /// # Panics
    ///
    /// Panics if the JSON file cannot be read, parsed or written — a bench
    /// run that cannot record its results must not look green.
    pub fn finish(&self, suites: &[&BenchSuite]) {
        for suite in suites {
            suite.report();
        }
        if let Some(path) = &self.json {
            gate::merge_medians_into_file(path, suites)
                .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
            println!("\nwrote medians to {}", path.display());
        }
    }
}

/// Renders the scheme registry as a table: one row per canonical spec with
/// its display name, storage bits per element and whether it quantizes
/// activations (what `--list-schemes` prints).
pub fn render_scheme_list() -> String {
    let mut table = Table::new(vec![
        "Spec".into(),
        "Name".into(),
        "Bits/elem".into(),
        "Quantizes acts".into(),
    ]);
    for scheme in Scheme::all() {
        let q = scheme.build();
        table.row(vec![
            scheme.to_string(),
            q.name().to_string(),
            format!("{:.2}", q.bits_per_element()),
            if q.quantizes_activations() {
                "yes"
            } else {
                "no"
            }
            .into(),
        ]);
    }
    format!(
        "Registry schemes (append '@per-row' to any spec for per-row granularity):\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_quick_and_json() {
        let cli = BenchCli::try_parse_from(strings(&["--quick", "--json", "out.json"]))
            .unwrap()
            .unwrap();
        assert!(cli.quick);
        assert_eq!(cli.json.as_deref(), Some(std::path::Path::new("out.json")));
    }

    #[test]
    fn defaults_to_full_mode() {
        let cli = BenchCli::try_parse_from(strings(&[])).unwrap().unwrap();
        assert!(!cli.quick);
        assert!(cli.json.is_none());
        assert!(cli.schemes.is_empty());
    }

    #[test]
    fn ignores_cargo_bench_flag() {
        let cli = BenchCli::try_parse_from(strings(&["--bench"]))
            .unwrap()
            .unwrap();
        assert!(!cli.quick);
    }

    #[test]
    fn rejects_unknown_flags() {
        assert!(BenchCli::try_parse_from(strings(&["--frobnicate"])).is_err());
    }

    #[test]
    fn rejects_dangling_json() {
        assert!(BenchCli::try_parse_from(strings(&["--json"])).is_err());
    }

    #[test]
    fn parses_scheme_filters() {
        let cli = BenchCli::try_parse_from(strings(&[
            "--scheme",
            "olive-4bit",
            "--scheme",
            "uniform:8@per-row",
        ]))
        .unwrap()
        .unwrap();
        assert_eq!(cli.schemes.len(), 2);
        assert_eq!(cli.schemes[0].to_string(), "olive-4bit");
        assert_eq!(cli.schemes[1].to_string(), "uniform:8@per-row");
    }

    #[test]
    fn rejects_malformed_scheme_specs() {
        let err = BenchCli::try_parse_from(strings(&["--scheme", "olive-5bit"])).unwrap_err();
        assert!(err.contains("unknown scheme"), "{err}");
        assert!(BenchCli::try_parse_from(strings(&["--scheme"])).is_err());
    }

    #[test]
    fn list_schemes_short_circuits_parsing() {
        assert!(BenchCli::try_parse_from(strings(&["--list-schemes"]))
            .unwrap()
            .is_none());
    }

    #[test]
    fn scheme_list_covers_the_registry() {
        let listing = render_scheme_list();
        for scheme in Scheme::all() {
            assert!(listing.contains(&scheme.to_string()), "{listing}");
        }
        assert!(listing.contains("Bits/elem"), "{listing}");
        // GOBO is the weights-only scheme; the flag column must show it.
        assert!(listing.contains("no"), "{listing}");
    }

    #[test]
    fn quick_mode_shrinks_iteration_counts() {
        // Only meaningful when the env overrides are unset (they win).
        if std::env::var("OLIVE_BENCH_SAMPLES").is_err()
            && std::env::var("OLIVE_BENCH_WARMUP").is_err()
        {
            let quick = BenchCli {
                quick: true,
                ..BenchCli::default()
            };
            assert!(quick.bench_config().sample_iters < BenchConfig::default().sample_iters);
        }
    }
}
