//! # olive-bench
//!
//! Shared helpers for the benchmark harness binaries (`src/bin/*`) that
//! regenerate the tables and figures of the OliVe paper, plus the
//! olive-harness micro-benchmarks in `benches/`.

pub mod accuracy;
pub mod cli;
pub mod gate;
pub mod loadgen;
pub mod report;
