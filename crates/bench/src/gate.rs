//! The bench-regression gate: flat-JSON median recording and comparison.
//!
//! `scripts/bench_gate.sh` runs the three micro-benchmarks with
//! `--json BENCH_results.json`, producing one flat object mapping
//! `"<suite>/<kernel>"` to its median wall time in nanoseconds, then invokes
//! the `bench_gate` binary to diff it against the checked-in
//! `BENCH_baseline.json`: any kernel slower than `baseline × (1 + tolerance)`
//! fails the gate, as does a kernel that disappeared from the results.
//! Kernels present only in the results (e.g. heavyweight ones skipped by
//! `--quick` baselines) are reported but never fatal.
//!
//! The JSON dialect is deliberately tiny — one object, string keys, unsigned
//! integer values — so the workspace stays free of serde while the artifacts
//! remain readable by standard tooling.

use olive_harness::bench::BenchSuite;
use std::collections::BTreeMap;
use std::path::Path;

/// Median nanoseconds per kernel, keyed `"<suite>/<benchmark>"`.
pub type Medians = BTreeMap<String, u64>;

/// Parses the flat `{"kernel": median_ns, ...}` object produced by
/// [`render_flat_json`].
///
/// # Errors
///
/// Returns a description of the first malformed token. Only the flat dialect
/// is accepted: nested objects, arrays, floats and other JSON values are
/// errors.
pub fn parse_flat_json(text: &str) -> Result<Medians, String> {
    let mut medians = Medians::new();
    let rest = text.trim();
    let rest = rest
        .strip_prefix('{')
        .ok_or("expected '{' at start of results object")?;
    let rest = rest
        .strip_suffix('}')
        .ok_or("expected '}' at end of results object")?;
    let body = rest.trim();
    if body.is_empty() {
        return Ok(medians);
    }
    for (i, entry) in body.split(',').enumerate() {
        let entry = entry.trim();
        let (key, value) = entry
            .split_once(':')
            .ok_or_else(|| format!("entry {i}: expected '\"key\": value', got '{entry}'"))?;
        let key = key.trim();
        let key = key
            .strip_prefix('"')
            .and_then(|k| k.strip_suffix('"'))
            .ok_or_else(|| format!("entry {i}: key must be a JSON string, got {key}"))?;
        if key.contains(['"', '\\']) {
            return Err(format!("entry {i}: unsupported escape in key '{key}'"));
        }
        let value: u64 = value
            .trim()
            .parse()
            .map_err(|_| format!("entry {i} ('{key}'): value must be an unsigned integer"))?;
        medians.insert(key.to_string(), value);
    }
    Ok(medians)
}

/// Renders medians as a stable, diff-friendly flat JSON object (sorted keys,
/// one entry per line).
pub fn render_flat_json(medians: &Medians) -> String {
    let mut out = String::from("{\n");
    for (i, (kernel, ns)) in medians.iter().enumerate() {
        let comma = if i + 1 < medians.len() { "," } else { "" };
        out.push_str(&format!("  \"{kernel}\": {ns}{comma}\n"));
    }
    out.push('}');
    out.push('\n');
    out
}

/// Extracts `"<suite>/<benchmark>" → median_ns` entries from rendered suites.
pub fn suite_medians(suites: &[&BenchSuite]) -> Medians {
    let mut medians = Medians::new();
    for suite in suites {
        for m in suite.measurements() {
            medians.insert(format!("{}/{}", suite.title(), m.name), m.median_ns());
        }
    }
    medians
}

/// Merges the suites' medians into the flat JSON file at `path`, creating it
/// when absent and overwriting re-measured keys while keeping the rest (the
/// bench binaries append to one shared results file).
///
/// # Errors
///
/// Returns a description of any I/O or parse failure.
pub fn merge_medians_into_file(path: &Path, suites: &[&BenchSuite]) -> Result<(), String> {
    merge_into_file(path, &suite_medians(suites))
}

/// Merges pre-computed medians into the flat JSON file at `path` — the entry
/// point for measurements that do not come from a [`BenchSuite`] (the
/// `serve_loadgen` latency percentiles).
///
/// # Errors
///
/// Returns a description of any I/O or parse failure.
pub fn merge_into_file(path: &Path, medians: &Medians) -> Result<(), String> {
    let mut merged = match std::fs::read_to_string(path) {
        Ok(text) => parse_flat_json(&text).map_err(|e| format!("existing file: {e}"))?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Medians::new(),
        Err(e) => return Err(e.to_string()),
    };
    merged.extend(medians.iter().map(|(k, &v)| (k.clone(), v)));
    std::fs::write(path, render_flat_json(&merged)).map_err(|e| e.to_string())
}

/// One kernel that got slower than the gate allows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Regression {
    /// `"<suite>/<benchmark>"` key.
    pub kernel: String,
    /// Median in the checked-in baseline.
    pub baseline_ns: u64,
    /// Median in this run.
    pub result_ns: u64,
}

impl Regression {
    /// Slowdown factor versus the baseline (e.g. `2.0` for twice as slow).
    pub fn ratio(&self) -> f64 {
        self.result_ns as f64 / self.baseline_ns.max(1) as f64
    }
}

/// The verdict of one baseline-vs-results comparison.
#[derive(Debug, Clone, Default)]
pub struct GateOutcome {
    /// Kernels present in both files and within tolerance.
    pub passed: Vec<String>,
    /// Kernels slower than `baseline × (1 + tolerance_pct / 100)`.
    pub regressions: Vec<Regression>,
    /// Kernels in the baseline but absent from the results (a silently
    /// deleted bench must fail the gate, not shrink it).
    pub missing: Vec<String>,
    /// Kernels in the results but not yet baselined (informational).
    pub unbaselined: Vec<String>,
}

impl GateOutcome {
    /// True when no kernel regressed and none disappeared.
    pub fn ok(&self) -> bool {
        self.regressions.is_empty() && self.missing.is_empty()
    }
}

/// Compares per-kernel medians against a baseline with a percentage
/// tolerance: a kernel fails when `result > baseline * (1 + pct / 100)`.
/// Speedups never fail the gate (re-baseline to lock them in).
pub fn compare(baseline: &Medians, results: &Medians, tolerance_pct: f64) -> GateOutcome {
    let mut outcome = GateOutcome::default();
    let factor = 1.0 + tolerance_pct / 100.0;
    for (kernel, &baseline_ns) in baseline {
        match results.get(kernel) {
            None => outcome.missing.push(kernel.clone()),
            Some(&result_ns) => {
                if (result_ns as f64) > (baseline_ns as f64) * factor {
                    outcome.regressions.push(Regression {
                        kernel: kernel.clone(),
                        baseline_ns,
                        result_ns,
                    });
                } else {
                    outcome.passed.push(kernel.clone());
                }
            }
        }
    }
    for kernel in results.keys() {
        if !baseline.contains_key(kernel) {
            outcome.unbaselined.push(kernel.clone());
        }
    }
    outcome
}

/// Multiplies every median by `factor` — the synthetic-slowdown injector used
/// to prove the gate actually fails (see `bench_gate --inject-slowdown`).
pub fn scale_medians(medians: &Medians, factor: f64) -> Medians {
    medians
        .iter()
        .map(|(k, &ns)| (k.clone(), (ns as f64 * factor).round() as u64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn medians(entries: &[(&str, u64)]) -> Medians {
        entries.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn json_round_trips() {
        let m = medians(&[("suite/kernel_a", 1200), ("suite/kernel_b", 88)]);
        let parsed = parse_flat_json(&render_flat_json(&m)).unwrap();
        assert_eq!(parsed, m);
    }

    #[test]
    fn empty_object_round_trips() {
        assert_eq!(parse_flat_json("{}").unwrap(), Medians::new());
        assert_eq!(
            parse_flat_json(&render_flat_json(&Medians::new())).unwrap(),
            Medians::new()
        );
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_flat_json("not json").is_err());
        assert!(parse_flat_json("{\"k\": 1.5}").is_err());
        assert!(parse_flat_json("{\"k\" 1}").is_err());
        assert!(parse_flat_json("{k: 1}").is_err());
    }

    #[test]
    fn within_tolerance_passes() {
        let baseline = medians(&[("s/a", 1000)]);
        let results = medians(&[("s/a", 1200)]);
        let outcome = compare(&baseline, &results, 25.0);
        assert!(outcome.ok());
        assert_eq!(outcome.passed, vec!["s/a".to_string()]);
    }

    #[test]
    fn synthetic_two_x_slowdown_fails_the_gate() {
        // The acceptance demo: a 2x slowdown must trip a 25% gate.
        let baseline = medians(&[("s/a", 1000), ("s/b", 500)]);
        let slowed = scale_medians(&baseline, 2.0);
        let outcome = compare(&baseline, &slowed, 25.0);
        assert!(!outcome.ok());
        assert_eq!(outcome.regressions.len(), 2);
        assert!((outcome.regressions[0].ratio() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn speedups_never_fail() {
        let baseline = medians(&[("s/a", 1000)]);
        let results = medians(&[("s/a", 10)]);
        assert!(compare(&baseline, &results, 25.0).ok());
    }

    #[test]
    fn missing_kernel_fails_but_new_kernel_does_not() {
        let baseline = medians(&[("s/gone", 100)]);
        let results = medians(&[("s/new", 100)]);
        let outcome = compare(&baseline, &results, 25.0);
        assert!(!outcome.ok());
        assert_eq!(outcome.missing, vec!["s/gone".to_string()]);
        assert_eq!(outcome.unbaselined, vec!["s/new".to_string()]);

        let only_new = compare(&Medians::new(), &results, 25.0);
        assert!(only_new.ok());
    }

    #[test]
    fn boundary_is_inclusive() {
        // Exactly baseline * 1.25 is allowed; one ns more is not.
        let baseline = medians(&[("s/a", 1000)]);
        assert!(compare(&baseline, &medians(&[("s/a", 1250)]), 25.0).ok());
        assert!(!compare(&baseline, &medians(&[("s/a", 1251)]), 25.0).ok());
    }

    #[test]
    fn merge_overwrites_and_keeps() {
        let dir = std::env::temp_dir().join("olive_gate_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("results.json");
        std::fs::write(
            &path,
            render_flat_json(&medians(&[("old/kernel", 7), ("shared/kernel", 1)])),
        )
        .unwrap();
        let mut suite = BenchSuite::with_config(
            "shared",
            olive_harness::bench::BenchConfig {
                warmup_iters: 0,
                sample_iters: 1,
            },
        );
        suite.bench("kernel", || 42u32);
        merge_medians_into_file(&path, &[&suite]).unwrap();
        let merged = parse_flat_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(merged.get("old/kernel"), Some(&7));
        assert!(merged.contains_key("shared/kernel"));
        std::fs::remove_file(&path).unwrap();
    }
}
