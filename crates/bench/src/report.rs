//! Plain-text table reporting, re-exported from `olive-harness` so the
//! figure/table binaries keep their historical `olive_bench::report::Table`
//! path.

pub use olive_harness::report::*;
