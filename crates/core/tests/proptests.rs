//! Property-based tests of the OVP encoding and the OliVe quantizer, run on
//! the in-repo deterministic property harness (`olive-harness`) — this
//! workspace builds offline, so no proptest.

use olive_core::encode::{decode_pair_values, encode_pair};
use olive_core::{OliveQuantizer, PairClass};
use olive_dtypes::NormalDataType;
use olive_harness::{check, gen, prop_assert, prop_assert_eq, Rng};
use olive_tensor::Tensor;

/// Algorithm 1 invariants: at most one slot per pair is an outlier, the
/// victim always decodes to zero, and normal pairs decode within half a
/// step of their inputs.
#[test]
fn ovp_pair_encoding_invariants() {
    let input = |rng: &mut Rng| {
        (
            gen::f32_in(-200.0, 200.0)(rng),
            gen::f32_in(-200.0, 200.0)(rng),
        )
    };
    check::check("ovp_pair_encoding_invariants", input, |&(v1, v2)| {
        let t = 7.0f32;
        let pair = encode_pair(v1, v2, t, NormalDataType::Int4, 2);
        let (a, b) = decode_pair_values(pair.code0, pair.code1, NormalDataType::Int4, 2);
        match pair.class {
            PairClass::NormalNormal => {
                prop_assert!(v1.abs() <= t && v2.abs() <= t);
                prop_assert!((a as f32 - v1).abs() <= 0.5 + 1e-4);
                prop_assert!((b as f32 - v2).abs() <= 0.5 + 1e-4);
            }
            PairClass::OutlierLeft => {
                prop_assert!(v1.abs() > t);
                prop_assert_eq!(b, 0);
                // The surviving outlier is the larger of the two.
                prop_assert!(v1.abs() >= v2.abs() || v2.abs() <= t);
                // Decoded outlier keeps the sign and a bounded relative error.
                prop_assert_eq!((a as f32).signum(), v1.signum());
            }
            PairClass::OutlierRight => {
                prop_assert!(v2.abs() > t);
                prop_assert_eq!(a, 0);
                prop_assert_eq!((b as f32).signum(), v2.signum());
            }
        }
        Ok(())
    });
}

/// The packed tensor round trip preserves shape and length and bounds the
/// per-element error of in-range normal values by one quantization step.
#[test]
fn quantize_round_trip_error_bound() {
    let input = gen::vec_of(gen::f32_in(-4.0, 4.0), 16, 199);
    check::check("quantize_round_trip_error_bound", input, |values| {
        let n = values.len();
        let t = Tensor::from_vec(vec![n], values.clone());
        let q = OliveQuantizer::int4().quantize(&t);
        let back = q.dequantize();
        prop_assert_eq!(back.len(), n);
        prop_assert_eq!(back.shape(), t.shape());
        let scale = q.spec().scale;
        let max_rep = q.spec().max_representable();
        for i in 0..n {
            let x = t[i];
            if x.abs() <= max_rep {
                // A value may be pruned (victim) only if its pair partner is an
                // outlier; with inputs bounded by 4 and at least 16 elements the
                // 3-sigma threshold keeps most values normal. Allow either the
                // quantization bound or an exact zero (victim).
                let err = (back[i] - x).abs();
                prop_assert!(
                    err <= 0.75 * scale + 1e-5
                        || back[i] == 0.0
                        || x.abs() > q.spec().outlier_threshold(),
                    "i = {}, x = {}, back = {}, scale = {}",
                    i,
                    x,
                    back[i],
                    scale
                );
            }
        }
        Ok(())
    });
}

/// Storage size is exactly one byte per pair for 4-bit OliVe, independent
/// of the data.
#[test]
fn packed_size_is_deterministic() {
    let input = gen::vec_of(gen::f32_in(-50.0, 50.0), 1, 299);
    check::check("packed_size_is_deterministic", input, |values| {
        let n = values.len();
        let t = Tensor::from_vec(vec![n], values.clone());
        let q = OliveQuantizer::int4().quantize(&t);
        prop_assert_eq!(q.storage_bytes(), n.div_ceil(2));
        let q8 = OliveQuantizer::int8().quantize(&t);
        prop_assert_eq!(q8.storage_bytes(), n.div_ceil(2) * 2);
        Ok(())
    });
}

/// 8-bit OliVe never has a larger round-trip MSE than 4-bit OliVe on the
/// same tensor (more precision can only help, both use the same search).
#[test]
fn eight_bit_dominates_four_bit() {
    let input = gen::vec_of(gen::f32_in(-30.0, 30.0), 32, 199);
    check::check("eight_bit_dominates_four_bit", input, |values| {
        let n = values.len();
        let t = Tensor::from_vec(vec![n], values.clone());
        let e4 = t.mse(&OliveQuantizer::int4().quantize_dequantize(&t));
        let e8 = t.mse(&OliveQuantizer::int8().quantize_dequantize(&t));
        prop_assert!(e8 <= e4 + 1e-9, "e8 = {}, e4 = {}", e8, e4);
        Ok(())
    });
}

/// Quantized GEMM equals the float GEMM over the dequantized operands
/// (bit-accuracy of the integer MAC path), up to f32 rounding.
#[test]
fn quantized_gemm_is_bit_accurate() {
    check::check(
        "quantized_gemm_is_bit_accurate",
        gen::u64_below(500),
        |&seed| {
            let mut rng = Rng::seed_from(seed);
            let mut a = vec![0.0f32; 8 * 16];
            let mut b = vec![0.0f32; 16 * 8];
            rng.fill_normal(&mut a, 0.0, 1.0);
            rng.fill_normal(&mut b, 0.0, 1.0);
            a[3] = 25.0;
            b[10] = -31.0;
            let a = Tensor::from_vec(vec![8, 16], a);
            let b = Tensor::from_vec(vec![16, 8], b);
            let qa = OliveQuantizer::int4().quantize(&a);
            let qb = OliveQuantizer::int4().quantize(&b);
            let (c, stats) = olive_core::quantized_matmul(&qa, &qb);
            let reference = olive_tensor::matmul::matmul(&qa.dequantize(), &qb.dequantize());
            prop_assert_eq!(stats.i32_overflows, 0);
            for i in 0..c.len() {
                let tol = 1e-3f32 * reference[i].abs().max(1.0);
                prop_assert!((c[i] - reference[i]).abs() <= tol);
            }
            Ok(())
        },
    );
}
