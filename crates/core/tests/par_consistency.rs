//! Property tests for the `olive-runtime` determinism contract: the parallel
//! GEMM paths must produce **bit-identical** outputs — tensors *and*
//! [`QuantGemmStats`] — at every thread count, across odd shapes (`m = 1`,
//! `k = 1`, sizes that are not multiples of the kernel tiles) and zero-sized
//! edge cases.

use olive_core::{quantized_matmul, OliveQuantizer, QuantGemmStats};
use olive_harness::check::{check_with, CheckConfig};
use olive_harness::prop_assert_eq;
use olive_tensor::matmul::{matmul, matmul_transpose_b};
use olive_tensor::rng::Rng;
use olive_tensor::Tensor;

/// Shape pools biased toward rank/tile edges: unit dims, primes, one-off-tile
/// sizes (the matmul tiles are 128/512) and a couple of larger blocks.
const DIM_POOL: [usize; 10] = [1, 2, 3, 7, 16, 33, 67, 127, 129, 160];

fn pick_dim(rng: &mut Rng) -> usize {
    DIM_POOL[rng.below(DIM_POOL.len())]
}

fn random_tensor(shape: Vec<usize>, rng: &mut Rng, outliers: usize) -> Tensor {
    let n: usize = shape.iter().product();
    let mut data = vec![0.0f32; n];
    rng.fill_normal(&mut data, 0.0, 1.0);
    for _ in 0..outliers.min(n) {
        let i = rng.below(n.max(1));
        data[i] = rng.uniform_range(15.0, 40.0) as f32 * if rng.chance(0.5) { 1.0 } else { -1.0 };
    }
    Tensor::from_vec(shape, data)
}

fn cfg() -> CheckConfig {
    CheckConfig {
        cases: 24,
        ..CheckConfig::default()
    }
}

#[test]
fn matmul_is_bit_identical_across_thread_counts() {
    check_with(
        cfg(),
        "matmul_thread_invariance",
        |rng| {
            let (m, k, n) = (pick_dim(rng), pick_dim(rng), pick_dim(rng));
            let a = random_tensor(vec![m, k], rng, 2);
            let b = random_tensor(vec![k, n], rng, 2);
            (a, b)
        },
        |(a, b)| {
            let seq = olive_runtime::with_threads(1, || matmul(a, b));
            let par = olive_runtime::with_threads(8, || matmul(a, b));
            prop_assert_eq!(
                seq.data(),
                par.data(),
                "matmul {:?}x{:?} differs between 1 and 8 threads",
                a.shape(),
                b.shape()
            );
            Ok(())
        },
    );
}

#[test]
fn matmul_transpose_b_is_bit_identical_across_thread_counts() {
    check_with(
        cfg(),
        "matmul_tb_thread_invariance",
        |rng| {
            let (m, k, n) = (pick_dim(rng), pick_dim(rng), pick_dim(rng));
            let a = random_tensor(vec![m, k], rng, 2);
            let b = random_tensor(vec![n, k], rng, 2);
            (a, b)
        },
        |(a, b)| {
            let seq = olive_runtime::with_threads(1, || matmul_transpose_b(a, b));
            let par = olive_runtime::with_threads(8, || matmul_transpose_b(a, b));
            prop_assert_eq!(seq.data(), par.data());
            Ok(())
        },
    );
}

#[test]
fn quantized_matmul_outputs_and_stats_are_bit_identical_across_thread_counts() {
    check_with(
        cfg(),
        "quantized_matmul_thread_invariance",
        |rng| {
            let (m, k, n) = (pick_dim(rng), pick_dim(rng), pick_dim(rng));
            let a = random_tensor(vec![m, k], rng, 3);
            let b = random_tensor(vec![k, n], rng, 3);
            let q = if rng.chance(0.5) {
                OliveQuantizer::int4()
            } else {
                OliveQuantizer::int8()
            };
            (q.quantize(&a), q.quantize(&b))
        },
        |(qa, qb)| {
            let (seq, seq_stats) = olive_runtime::with_threads(1, || quantized_matmul(qa, qb));
            let (par, par_stats) = olive_runtime::with_threads(8, || quantized_matmul(qa, qb));
            prop_assert_eq!(
                seq.data(),
                par.data(),
                "quantized_matmul {:?}x{:?} output differs",
                qa.shape(),
                qb.shape()
            );
            prop_assert_eq!(
                seq_stats,
                par_stats,
                "quantized_matmul {:?}x{:?} stats differ",
                qa.shape(),
                qb.shape()
            );
            let (m, k) = (qa.shape()[0], qa.shape()[1]);
            let n = qb.shape()[1];
            prop_assert_eq!(seq_stats.macs, (m * n * k) as u64);
            Ok(())
        },
    );
}

#[test]
fn olive_threads_env_variable_controls_both_paths() {
    // The env-var path (as opposed to the with_threads override used above):
    // OLIVE_THREADS is re-read per call, so one process can compare both
    // settings. Runs serially inside this one test to avoid env races; the
    // sibling tests pin their counts via with_threads, which takes priority.
    let mut rng = Rng::seed_from(0x0111);
    let a = random_tensor(vec![67, 129], &mut rng, 2);
    let b = random_tensor(vec![129, 33], &mut rng, 2);
    let qa = OliveQuantizer::int4().quantize(&a);
    let qb = OliveQuantizer::int4().quantize(&b);

    std::env::set_var("OLIVE_THREADS", "1");
    let seq = matmul(&a, &b);
    let (qseq, sseq) = quantized_matmul(&qa, &qb);
    std::env::set_var("OLIVE_THREADS", "8");
    let par = matmul(&a, &b);
    let (qpar, spar) = quantized_matmul(&qa, &qb);
    std::env::remove_var("OLIVE_THREADS");

    assert_eq!(seq, par);
    assert_eq!(qseq, qpar);
    assert_eq!(sseq, spar);
}

#[test]
fn zero_sized_quantized_gemm() {
    let q = OliveQuantizer::int4();
    let quant = |shape: Vec<usize>, seed: u64| {
        let mut rng = Rng::seed_from(seed);
        q.quantize(&random_tensor(shape, &mut rng, 0))
    };
    for threads in [1usize, 8] {
        olive_runtime::with_threads(threads, || {
            // m = 0: empty result, zero stats.
            let (c, stats) = quantized_matmul(&quant(vec![0, 4], 1), &quant(vec![4, 3], 2));
            assert_eq!(c.shape(), &[0, 3]);
            assert_eq!(stats, QuantGemmStats::default());
            // k = 0: the all-zero [m, n] matrix, zero MACs.
            let (c, stats) = quantized_matmul(&quant(vec![2, 0], 3), &quant(vec![0, 3], 4));
            assert_eq!(c.shape(), &[2, 3]);
            assert!(c.data().iter().all(|&v| v == 0.0));
            assert_eq!(stats.macs, 0);
            // n = 0: rows exist but hold nothing.
            let (c, stats) = quantized_matmul(&quant(vec![2, 4], 5), &quant(vec![4, 0], 6));
            assert_eq!(c.shape(), &[2, 0]);
            assert!(c.is_empty());
            assert_eq!(stats.macs, 0);
        });
    }
}
