//! Seeded, replayable property suite for the decode-once packed GEMM: the
//! packed+SIMD kernel must be **bit-identical** to the pre-refactor
//! reference scalar kernel ([`reference_quantized_matmul`], kept in-tree as
//! the oracle) — outputs *and* [`QuantGemmStats`] — across odd shapes
//! (`m = 1`, `k = 1`, non-tile multiples, zero-sized dims), every scheme
//! with a GEMM path (`int4`, `flint4`, `int8`, mixed pairs), and the full
//! `OLIVE_THREADS` ∈ {1, 8} × `OLIVE_SIMD` ∈ {scalar, auto} grid.

use olive_core::{
    quantized_matmul, reference_quantized_matmul, weight_only_matmul, with_simd, OliveQuantizer,
    OvpTensor, SimdPath,
};
use olive_harness::check::{check_with, CheckConfig};
use olive_harness::prop_assert_eq;
use olive_tensor::matmul::matmul;
use olive_tensor::rng::Rng;
use olive_tensor::Tensor;

/// Shape pool biased toward edges: zero-sized dims, unit dims, primes,
/// one-off-tile sizes. Zero appears so the suite keeps covering empty
/// operands alongside the explicit test below.
const DIM_POOL: [usize; 11] = [0, 1, 2, 3, 7, 16, 33, 67, 127, 129, 160];

fn pick_dim(rng: &mut Rng) -> usize {
    DIM_POOL[rng.below(DIM_POOL.len())]
}

fn random_tensor(shape: Vec<usize>, rng: &mut Rng, outliers: usize) -> Tensor {
    let n: usize = shape.iter().product();
    let mut data = vec![0.0f32; n];
    rng.fill_normal(&mut data, 0.0, 1.0);
    for _ in 0..outliers.min(n) {
        let i = rng.below(n.max(1));
        data[i] = rng.uniform_range(15.0, 40.0) as f32 * if rng.chance(0.5) { 1.0 } else { -1.0 };
    }
    Tensor::from_vec(shape, data)
}

fn pick_quantizer(rng: &mut Rng) -> OliveQuantizer {
    match rng.below(3) {
        0 => OliveQuantizer::int4(),
        1 => OliveQuantizer::flint4(),
        _ => OliveQuantizer::int8(),
    }
}

/// The dispatch grid the acceptance criteria name: both thread counts by
/// both SIMD settings (`None` = auto-detect, i.e. the widest supported
/// path on this CPU).
const DISPATCH_GRID: [(usize, Option<SimdPath>); 4] = [
    (1, Some(SimdPath::Scalar)),
    (1, None),
    (8, Some(SimdPath::Scalar)),
    (8, None),
];

/// Asserts that `quantized_matmul` reproduces the oracle bit-for-bit on
/// every (threads, simd) combination: output bits and statistics.
fn assert_bit_identical(qa: &OvpTensor, qb: &OvpTensor) -> Result<(), String> {
    let (want, want_stats) = reference_quantized_matmul(qa, qb);
    for (threads, path) in DISPATCH_GRID {
        let (got, got_stats) =
            olive_runtime::with_threads(threads, || with_simd(path, || quantized_matmul(qa, qb)));
        let label = path.map_or("auto", SimdPath::name);
        prop_assert_eq!(
            got_stats,
            want_stats,
            "stats diverge from reference at threads={} simd={} for {:?}x{:?}",
            threads,
            label,
            qa.shape(),
            qb.shape()
        );
        prop_assert_eq!(got.shape(), want.shape());
        let want_bits: Vec<u32> = want.data().iter().map(|v| v.to_bits()).collect();
        let got_bits: Vec<u32> = got.data().iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(
            got_bits,
            want_bits,
            "output bits diverge from reference at threads={} simd={} for {:?}x{:?}",
            threads,
            label,
            qa.shape(),
            qb.shape()
        );
    }
    Ok(())
}

#[test]
fn packed_kernel_is_bit_identical_to_reference_across_dispatch_grid() {
    check_with(
        CheckConfig {
            cases: 32,
            ..CheckConfig::default()
        },
        "packed_vs_reference",
        |rng| {
            let (m, k, n) = (pick_dim(rng), pick_dim(rng), pick_dim(rng));
            let a = random_tensor(vec![m, k], rng, 3);
            let b = random_tensor(vec![k, n], rng, 3);
            // Operands may use *different* schemes: mixed grids (i16 × i32)
            // take distinct kernel paths and must stay exact too.
            (
                pick_quantizer(rng).quantize(&a),
                pick_quantizer(rng).quantize(&b),
            )
        },
        |(qa, qb)| assert_bit_identical(qa, qb),
    );
}

#[test]
fn unit_dims_are_bit_identical() {
    // m = 1 and k = 1 deserve deterministic (non-sampled) coverage: they are
    // the degenerate loops most refactors break first.
    let mut rng = Rng::seed_from(0xDEC0DE);
    for (m, k, n) in [(1, 67, 33), (16, 1, 33), (67, 129, 1), (1, 1, 1)] {
        let a = random_tensor(vec![m, k], &mut rng, 2);
        let b = random_tensor(vec![k, n], &mut rng, 2);
        for quant in [
            OliveQuantizer::int4(),
            OliveQuantizer::flint4(),
            OliveQuantizer::int8(),
        ] {
            assert_bit_identical(&quant.quantize(&a), &quant.quantize(&b))
                .unwrap_or_else(|e| panic!("({m},{k},{n}): {e:?}"));
        }
    }
}

#[test]
fn zero_sized_dims_are_bit_identical() {
    let mut rng = Rng::seed_from(0xE0);
    for (m, k, n) in [(0, 4, 3), (2, 0, 3), (2, 4, 0), (0, 0, 0)] {
        let a = random_tensor(vec![m, k], &mut rng, 0);
        let b = random_tensor(vec![k, n], &mut rng, 0);
        let qa = OliveQuantizer::int4().quantize(&a);
        let qb = OliveQuantizer::int4().quantize(&b);
        assert_bit_identical(&qa, &qb).unwrap_or_else(|e| panic!("({m},{k},{n}): {e:?}"));
    }
}

#[test]
fn overflow_fallback_rows_are_bit_identical() {
    // Saturate the int8 grid (E4M3 ceiling ≈ 7.86e6) so single MACs exceed
    // i32: the pre-bound must route those rows to the exact fallback, whose
    // prefix-checked stats have to match the oracle everywhere on the grid.
    let quant = OliveQuantizer::int8();
    let qa = quant.quantize_with_scale(&Tensor::full(vec![3, 9], 2000.0), 1e-4);
    let qb = quant.quantize_with_scale(&Tensor::full(vec![9, 5], 2000.0), 1e-4);
    let (_, stats) = reference_quantized_matmul(&qa, &qb);
    assert!(stats.i32_overflows > 0, "setup failed to overflow");
    assert_bit_identical(&qa, &qb).unwrap_or_else(|e| panic!("{e:?}"));
}

#[test]
fn olive_simd_env_variable_controls_dispatch() {
    // The env-var path (as opposed to the with_simd override used above):
    // OLIVE_SIMD is re-read per kernel entry, so one process can compare
    // settings. Runs serially inside this one test to avoid env races.
    let mut rng = Rng::seed_from(0x51D);
    let a = random_tensor(vec![33, 67], &mut rng, 2);
    let b = random_tensor(vec![67, 16], &mut rng, 2);
    let qa = OliveQuantizer::int4().quantize(&a);
    let qb = OliveQuantizer::int4().quantize(&b);
    let (want, want_stats) = reference_quantized_matmul(&qa, &qb);

    for value in ["scalar", "0", "auto", "sse2"] {
        if value == "sse2" && !SimdPath::Sse2.supported() {
            continue;
        }
        std::env::set_var("OLIVE_SIMD", value);
        let (got, got_stats) = quantized_matmul(&qa, &qb);
        std::env::remove_var("OLIVE_SIMD");
        assert_eq!(got_stats, want_stats, "OLIVE_SIMD={value}");
        for i in 0..want.len() {
            assert_eq!(got[i].to_bits(), want[i].to_bits(), "OLIVE_SIMD={value}");
        }
    }
}

#[test]
fn weight_only_matmul_cached_path_is_bit_identical() {
    let mut rng = Rng::seed_from(0xCAFE);
    let a = random_tensor(vec![16, 67], &mut rng, 1);
    let b = random_tensor(vec![67, 33], &mut rng, 2);
    let qb = OliveQuantizer::int4().quantize(&b);
    let want = matmul(&a, &qb.dequantize());
    for _ in 0..2 {
        let got = weight_only_matmul(&a, &qb);
        assert_eq!(got, want);
    }
}
