//! Integration checks of the MSE-minimizing scale search.

use olive_core::quantizer::OliveQuantizer;
use olive_tensor::rng::Rng;
use olive_tensor::stats::TensorStats;
use olive_tensor::Tensor;

fn outlier_tensor(n: usize, seed: u64) -> Tensor {
    let mut rng = Rng::seed_from(seed);
    let mut data = vec![0.0f32; n];
    rng.fill_normal(&mut data, 0.0, 1.0);
    for _ in 0..(n / 200).max(1) {
        let i = rng.below(n);
        let sign = if rng.chance(0.5) { 1.0 } else { -1.0 };
        data[i] = sign * rng.uniform_range(10.0, 80.0) as f32;
    }
    Tensor::from_vec(vec![n / 8, 8], data)
}

#[test]
fn chosen_scale_is_at_least_as_good_as_any_grid_candidate() {
    let t = outlier_tensor(4096, 2);
    let q = OliveQuantizer::int4();
    let s = TensorStats::compute(&t);
    let chosen = q.select_scale(&t);
    let chosen_mse = q.round_trip_mse(t.data(), chosen);
    println!(
        "sigma = {:.3}, chosen scale = {:.4}, mse = {:.4}",
        s.std, chosen, chosen_mse
    );
    for f in [0.3f32, 0.5, 0.7, 0.9, 1.1, 1.4, 1.8, 2.2, 2.6, 3.0] {
        let thr = 3.0 * s.std as f32 * f;
        let scale = thr / 7.0;
        let mse = q.round_trip_mse(t.data(), scale);
        println!("  f = {:.1}  scale = {:.4}  mse = {:.4}", f, scale, mse);
        assert!(
            chosen_mse <= mse + 1e-9,
            "candidate f = {} beats the search: {} < {}",
            f,
            mse,
            chosen_mse
        );
    }
}
