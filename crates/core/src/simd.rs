//! SIMD dispatch for the packed quantized GEMM kernel.
//!
//! This module is the **only** place in the workspace where `unsafe` code is
//! permitted (enforced by the `no-unsafe-outside-simd` olive-lint rule; the
//! runtime pool's lifetime-erasure internals carry the one grandfathered
//! exemption in `lint.toml`). Everything here reduces to the same exact
//! integer arithmetic: an *axpy* step `acc[j] += a * x[j]` over `i32`
//! accumulators. The caller (`gemm.rs`) only enters these kernels for rows
//! whose magnitude pre-bound proves the `i32` accumulation cannot overflow,
//! so every path — scalar, SSE2, AVX2 — produces bit-identical accumulators
//! regardless of lane count or add order (integer addition is associative
//! when it cannot wrap).
//!
//! Dispatch order is `AVX2 > SSE2 > scalar`, resolved at runtime with
//! [`std::arch::is_x86_feature_detected!`] and overridable per process with
//! the `OLIVE_SIMD` environment variable (`0`/`scalar`, `sse2`, `avx2`, or
//! `auto`). Invalid or unsupported values are reported loudly once and fall
//! back to the scalar kernel, mirroring the `OLIVE_THREADS` contract in
//! olive-runtime: a typo must never silently change behaviour — and since
//! every path is bit-identical, falling back can only cost speed, never
//! correctness.

use std::cell::Cell;
use std::sync::Once;

/// Environment variable selecting the SIMD kernel: `auto` (default),
/// `0`/`scalar`, `sse2`, or `avx2`.
pub const SIMD_ENV: &str = "OLIVE_SIMD";

/// The instruction-set path the packed GEMM kernel dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdPath {
    /// Plain Rust loops; always available, the oracle all others must match.
    Scalar,
    /// 128-bit SSE2 (baseline on `x86_64`); `i16` grids only — `i32` grids
    /// and broadcasts wider than `i16` drop to scalar element-wise code.
    Sse2,
    /// 256-bit AVX2, the widest path this workspace targets.
    Avx2,
}

impl SimdPath {
    /// Stable lowercase name (`scalar` / `sse2` / `avx2`) for logs and docs.
    pub fn name(self) -> &'static str {
        match self {
            SimdPath::Scalar => "scalar",
            SimdPath::Sse2 => "sse2",
            SimdPath::Avx2 => "avx2",
        }
    }

    /// Numeric dispatch-provenance code recorded in bench `--json` output
    /// (`quantized_gemm/simd_dispatch`). Codes grow as capability *shrinks*
    /// (avx2=1, sse2=2, scalar=4) so a regression gate comparing
    /// `result > baseline * tolerance` flags a downgrade to a slower path
    /// while allowing upgrades.
    pub fn provenance_code(self) -> u64 {
        match self {
            SimdPath::Avx2 => 1,
            SimdPath::Sse2 => 2,
            SimdPath::Scalar => 4,
        }
    }

    /// Whether the current CPU can execute this path.
    pub fn supported(self) -> bool {
        match self {
            SimdPath::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            SimdPath::Sse2 => is_x86_feature_detected!("sse2"),
            #[cfg(target_arch = "x86_64")]
            SimdPath::Avx2 => is_x86_feature_detected!("avx2"),
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }
}

impl std::fmt::Display for SimdPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Widest path the current CPU supports (`AVX2 > SSE2 > scalar`).
fn detect() -> SimdPath {
    if SimdPath::Avx2.supported() {
        SimdPath::Avx2
    } else if SimdPath::Sse2.supported() {
        SimdPath::Sse2
    } else {
        SimdPath::Scalar
    }
}

/// Parses an `OLIVE_SIMD` value. `Ok(None)` means auto-detect.
pub fn parse_simd_env(raw: &str) -> Result<Option<SimdPath>, String> {
    match raw.trim().to_ascii_lowercase().as_str() {
        "" | "auto" => Ok(None),
        "0" | "scalar" => Ok(Some(SimdPath::Scalar)),
        "sse2" => Ok(Some(SimdPath::Sse2)),
        "avx2" => Ok(Some(SimdPath::Avx2)),
        _ => Err(format!(
            "invalid {SIMD_ENV}={raw:?} (expected auto, 0, scalar, sse2, or avx2)"
        )),
    }
}

/// Validates `OLIVE_SIMD` for long-running daemons: `Err` on an unparseable
/// value or a path the CPU cannot execute, `Ok` when unset/usable. Library
/// paths never fail on a bad value (they warn once and run scalar); a daemon
/// should refuse to start instead, mirroring `validate_thread_env`.
pub fn validate_simd_env() -> Result<(), String> {
    match std::env::var(SIMD_ENV) {
        Err(_) => Ok(()),
        Ok(raw) => match parse_simd_env(&raw)? {
            None => Ok(()),
            Some(path) if path.supported() => Ok(()),
            Some(path) => Err(format!(
                "{SIMD_ENV}={} requested but this CPU does not support it",
                path.name()
            )),
        },
    }
}

/// Reports an invalid/unsupported `OLIVE_SIMD` exactly once per process.
fn warn_simd_env_once(message: &str) {
    static WARN_ONCE: Once = Once::new();
    WARN_ONCE.call_once(|| {
        eprintln!("olive-core: {message}; falling back to the scalar kernel (bit-identical)");
    });
}

thread_local! {
    /// Scoped override installed by [`with_simd`]; like olive-runtime's
    /// `with_threads`, it is read once per kernel entry on the calling
    /// thread and then passed down by value, so pool workers inherit it.
    static SIMD_OVERRIDE: Cell<Option<SimdPath>> = const { Cell::new(None) };
}

/// Runs `f` with the kernel dispatch pinned to `path` on this thread
/// (restored on exit, even on panic). `None` restores auto/env resolution.
/// Unsupported pins degrade to scalar at resolve time, keeping results
/// bit-identical. Intended for tests; processes should use `OLIVE_SIMD`.
pub fn with_simd<R>(path: Option<SimdPath>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<SimdPath>);
    impl Drop for Restore {
        fn drop(&mut self) {
            SIMD_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = SIMD_OVERRIDE.with(|c| Restore(c.replace(path)));
    f()
}

/// Resolves the dispatch path for one kernel invocation: thread-local
/// [`with_simd`] override, then `OLIVE_SIMD`, then CPU auto-detection.
/// Invalid or unsupported requests warn once and resolve to scalar.
pub fn resolve_path() -> SimdPath {
    let requested = match SIMD_OVERRIDE.with(|c| c.get()) {
        Some(path) => Some(path),
        None => match std::env::var(SIMD_ENV) {
            Err(_) => None,
            Ok(raw) => match parse_simd_env(&raw) {
                Ok(choice) => choice,
                Err(message) => {
                    warn_simd_env_once(&message);
                    return SimdPath::Scalar;
                }
            },
        },
    };
    match requested {
        None => detect(),
        Some(path) if path.supported() => path,
        Some(path) => {
            warn_simd_env_once(&format!(
                "{SIMD_ENV}={} requested but this CPU does not support it",
                path.name()
            ));
            SimdPath::Scalar
        }
    }
}

/// `acc[j] += a * x[j]` over an `i16` grid row, on the given path.
///
/// The caller guarantees (via the GEMM magnitude pre-bound) that no
/// intermediate or final accumulator can leave the `i32` range, which is
/// what makes every path exact and bit-identical.
///
/// # Panics
///
/// Panics if `acc.len() != x.len()`.
pub fn axpy_i16(acc: &mut [i32], a: i32, x: &[i16], path: SimdPath) {
    assert_eq!(acc.len(), x.len(), "axpy_i16: length mismatch");
    match path {
        SimdPath::Scalar => axpy_i16_scalar(acc, a, x),
        #[cfg(target_arch = "x86_64")]
        // SSE2 has no 32-bit multiply; the 16×16→32 widening trick needs the
        // broadcast itself to fit i16 (mixed int8×int4 operands may not).
        SimdPath::Sse2 => {
            if let Ok(a16) = i16::try_from(a) {
                // SAFETY: `supported()`/`resolve_path` guaranteed SSE2 is
                // available before this path was selected.
                unsafe { x86::axpy_i16_sse2(acc, a16, x) }
            } else {
                axpy_i16_scalar(acc, a, x)
            }
        }
        #[cfg(target_arch = "x86_64")]
        // SAFETY: AVX2 availability was established at dispatch time.
        SimdPath::Avx2 => unsafe { x86::axpy_i16_avx2(acc, a, x) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => axpy_i16_scalar(acc, a, x),
    }
}

/// `acc[j] += a * x[j]` over an `i32` grid row, on the given path.
///
/// SSE2 lacks a packed 32-bit multiply (`_mm_mullo_epi32` is SSE4.1), so the
/// `Sse2` path runs the scalar loop — still exact, still bit-identical.
///
/// # Panics
///
/// Panics if `acc.len() != x.len()`.
pub fn axpy_i32(acc: &mut [i32], a: i32, x: &[i32], path: SimdPath) {
    assert_eq!(acc.len(), x.len(), "axpy_i32: length mismatch");
    match path {
        SimdPath::Scalar | SimdPath::Sse2 => axpy_i32_scalar(acc, a, x),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: AVX2 availability was established at dispatch time.
        SimdPath::Avx2 => unsafe { x86::axpy_i32_avx2(acc, a, x) },
        #[cfg(not(target_arch = "x86_64"))]
        SimdPath::Avx2 => axpy_i32_scalar(acc, a, x),
    }
}

fn axpy_i16_scalar(acc: &mut [i32], a: i32, x: &[i16]) {
    for (o, &v) in acc.iter_mut().zip(x) {
        *o += a * i32::from(v);
    }
}

fn axpy_i32_scalar(acc: &mut [i32], a: i32, x: &[i32]) {
    for (o, &v) in acc.iter_mut().zip(x) {
        *o += a * v;
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! The intrinsic kernels. `#[target_feature]` makes each function compile
    //! for its ISA regardless of build flags; callers must (and do) prove the
    //! feature is present at runtime before invoking them.
    use std::arch::x86_64::*;

    /// # Safety
    /// Caller must have verified AVX2 via `is_x86_feature_detected!`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy_i16_avx2(acc: &mut [i32], a: i32, x: &[i16]) {
        let n = acc.len();
        let va = _mm256_set1_epi32(a);
        let mut j = 0;
        while j + 8 <= n {
            let xv = _mm_loadu_si128(x.as_ptr().add(j) as *const __m128i);
            let prod = _mm256_mullo_epi32(_mm256_cvtepi16_epi32(xv), va);
            let cur = _mm256_loadu_si256(acc.as_ptr().add(j) as *const __m256i);
            _mm256_storeu_si256(
                acc.as_mut_ptr().add(j) as *mut __m256i,
                _mm256_add_epi32(cur, prod),
            );
            j += 8;
        }
        for jj in j..n {
            acc[jj] += a * i32::from(x[jj]);
        }
    }

    /// # Safety
    /// Caller must have verified AVX2 via `is_x86_feature_detected!`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy_i32_avx2(acc: &mut [i32], a: i32, x: &[i32]) {
        let n = acc.len();
        let va = _mm256_set1_epi32(a);
        let mut j = 0;
        while j + 8 <= n {
            let xv = _mm256_loadu_si256(x.as_ptr().add(j) as *const __m256i);
            let prod = _mm256_mullo_epi32(xv, va);
            let cur = _mm256_loadu_si256(acc.as_ptr().add(j) as *const __m256i);
            _mm256_storeu_si256(
                acc.as_mut_ptr().add(j) as *mut __m256i,
                _mm256_add_epi32(cur, prod),
            );
            j += 8;
        }
        for jj in j..n {
            acc[jj] += a * x[jj];
        }
    }

    /// 16×16→32 widening multiply-accumulate: `mullo`/`mulhi` give the low
    /// and high halves of each 32-bit product, and the unpack interleave
    /// reassembles them in lane order.
    ///
    /// # Safety
    /// Caller must have verified SSE2 via `is_x86_feature_detected!`.
    #[target_feature(enable = "sse2")]
    pub unsafe fn axpy_i16_sse2(acc: &mut [i32], a: i16, x: &[i16]) {
        let n = acc.len();
        let va = _mm_set1_epi16(a);
        let mut j = 0;
        while j + 8 <= n {
            let xv = _mm_loadu_si128(x.as_ptr().add(j) as *const __m128i);
            let lo = _mm_mullo_epi16(xv, va);
            let hi = _mm_mulhi_epi16(xv, va);
            let p0 = _mm_unpacklo_epi16(lo, hi);
            let p1 = _mm_unpackhi_epi16(lo, hi);
            let c0 = _mm_loadu_si128(acc.as_ptr().add(j) as *const __m128i);
            let c1 = _mm_loadu_si128(acc.as_ptr().add(j + 4) as *const __m128i);
            _mm_storeu_si128(
                acc.as_mut_ptr().add(j) as *mut __m128i,
                _mm_add_epi32(c0, p0),
            );
            _mm_storeu_si128(
                acc.as_mut_ptr().add(j + 4) as *mut __m128i,
                _mm_add_epi32(c1, p1),
            );
            j += 8;
        }
        for jj in j..n {
            acc[jj] += i32::from(a) * i32::from(x[jj]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_paths() -> Vec<SimdPath> {
        [SimdPath::Scalar, SimdPath::Sse2, SimdPath::Avx2]
            .into_iter()
            .filter(|p| p.supported())
            .collect()
    }

    /// Deterministic pseudo-random i32 in [-bound, bound].
    fn splitmix_vals(seed: u64, len: usize, bound: i32) -> Vec<i32> {
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                let span = 2 * i64::from(bound) + 1;
                ((z >> 33) as i64).rem_euclid(span) as i32 - bound
            })
            .collect()
    }

    #[test]
    fn axpy_i16_matches_scalar_on_every_path() {
        for len in [0, 1, 5, 7, 8, 9, 16, 31, 64, 100] {
            let x: Vec<i16> = splitmix_vals(0xA11CE ^ len as u64, len, 7_864)
                .into_iter()
                .map(|v| v as i16)
                .collect();
            for a in [-32_768i32, -96, -1, 0, 1, 3, 192, 32_768] {
                let mut want = splitmix_vals(7 * len as u64, len, 1_000_000);
                let seed = want.clone();
                axpy_i16_scalar(&mut want, a, &x);
                for path in all_paths() {
                    let mut acc = seed.clone();
                    axpy_i16(&mut acc, a, &x, path);
                    assert_eq!(acc, want, "path={path} a={a} len={len}");
                }
            }
        }
    }

    #[test]
    fn axpy_i32_matches_scalar_on_every_path() {
        for len in [0, 1, 7, 8, 9, 33, 64] {
            let x = splitmix_vals(0xB0B ^ len as u64, len, 7_864_320);
            for a in [-96i32, -1, 0, 2, 15] {
                let mut want = splitmix_vals(11 * len as u64, len, 1_000_000);
                let seed = want.clone();
                axpy_i32_scalar(&mut want, a, &x);
                for path in all_paths() {
                    let mut acc = seed.clone();
                    axpy_i32(&mut acc, a, &x, path);
                    assert_eq!(acc, want, "path={path} a={a} len={len}");
                }
            }
        }
    }

    #[test]
    fn parse_accepts_the_documented_values() {
        assert_eq!(parse_simd_env("auto"), Ok(None));
        assert_eq!(parse_simd_env(""), Ok(None));
        assert_eq!(parse_simd_env("0"), Ok(Some(SimdPath::Scalar)));
        assert_eq!(parse_simd_env("scalar"), Ok(Some(SimdPath::Scalar)));
        assert_eq!(parse_simd_env(" SSE2 "), Ok(Some(SimdPath::Sse2)));
        assert_eq!(parse_simd_env("Avx2"), Ok(Some(SimdPath::Avx2)));
        assert!(parse_simd_env("fast").is_err());
        assert!(parse_simd_env("avx512").is_err());
    }

    #[test]
    fn with_simd_pins_and_restores() {
        let ambient = resolve_path();
        with_simd(Some(SimdPath::Scalar), || {
            assert_eq!(resolve_path(), SimdPath::Scalar);
            with_simd(None, || assert_eq!(resolve_path(), ambient));
            assert_eq!(resolve_path(), SimdPath::Scalar);
        });
        assert_eq!(resolve_path(), ambient);
    }

    #[test]
    fn provenance_codes_order_by_capability() {
        // Slower paths get *larger* codes so the bench gate's
        // `result > baseline * tolerance` check fires on a downgrade.
        assert!(SimdPath::Avx2.provenance_code() < SimdPath::Sse2.provenance_code());
        assert!(SimdPath::Sse2.provenance_code() < SimdPath::Scalar.provenance_code());
    }

    #[test]
    fn scalar_is_always_supported() {
        assert!(SimdPath::Scalar.supported());
        // detect() must never resolve to something the CPU cannot run.
        assert!(detect().supported());
    }
}
