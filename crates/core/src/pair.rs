//! Pair-wise tensor analysis (paper Sec. 2.3).
//!
//! OliVe's key observation is obtained by pairing every two adjacent values of
//! a tensor (no overlap) and classifying each pair by how many outliers it
//! contains. Table 2 of the paper shows that ~99% of pairs are normal-normal,
//! ~1% contain exactly one outlier and fewer than 0.06% contain two — which is
//! why sacrificing the partner of an outlier (the *victim*) costs almost
//! nothing.
//!
//! This module also provides the three tensor transformations compared in
//! Fig. 3: clipping outliers to the threshold, pruning victims to zero and
//! pruning randomly chosen normal values to zero.

use olive_tensor::rng::Rng;
use olive_tensor::stats::TensorStats;
use olive_tensor::Tensor;

/// Classification of an adjacent, non-overlapping value pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PairKind {
    /// Both values are normal (below the outlier threshold).
    NormalNormal,
    /// Exactly one value is an outlier.
    OutlierNormal,
    /// Both values are outliers (the smaller one will be pruned).
    OutlierOutlier,
}

/// Pair-type statistics of a tensor (the rows of Tbl. 2).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PairStats {
    /// Number of normal-normal pairs.
    pub normal_normal: usize,
    /// Number of outlier-normal pairs.
    pub outlier_normal: usize,
    /// Number of outlier-outlier pairs.
    pub outlier_outlier: usize,
}

impl PairStats {
    /// Total number of pairs.
    pub fn total(&self) -> usize {
        self.normal_normal + self.outlier_normal + self.outlier_outlier
    }

    /// Fraction of normal-normal pairs.
    pub fn frac_normal_normal(&self) -> f64 {
        ratio(self.normal_normal, self.total())
    }

    /// Fraction of outlier-normal pairs.
    pub fn frac_outlier_normal(&self) -> f64 {
        ratio(self.outlier_normal, self.total())
    }

    /// Fraction of outlier-outlier pairs.
    pub fn frac_outlier_outlier(&self) -> f64 {
        ratio(self.outlier_outlier, self.total())
    }

    /// Merges statistics from another tensor (used to aggregate whole models).
    pub fn merge(&mut self, other: &PairStats) {
        self.normal_normal += other.normal_normal;
        self.outlier_normal += other.outlier_normal;
        self.outlier_outlier += other.outlier_outlier;
    }
}

fn ratio(n: usize, d: usize) -> f64 {
    if d == 0 {
        0.0
    } else {
        n as f64 / d as f64
    }
}

/// Classifies one pair given an absolute outlier threshold.
pub fn classify_pair(a: f32, b: f32, threshold: f32) -> PairKind {
    match (a.abs() > threshold, b.abs() > threshold) {
        (false, false) => PairKind::NormalNormal,
        (true, true) => PairKind::OutlierOutlier,
        _ => PairKind::OutlierNormal,
    }
}

/// Computes pair statistics for a slice under the `k`·σ rule.
///
/// Values are paired as `(x[0], x[1]), (x[2], x[3]), …`; a trailing unpaired
/// element (odd length) is counted as half of a normal-normal pair only if it
/// is normal, otherwise as an outlier-normal pair, mirroring the zero padding
/// used by the packed encoder.
pub fn pair_stats(data: &[f32], sigma_k: f64) -> PairStats {
    let stats = TensorStats::from_slice(data);
    let threshold = (sigma_k * stats.std) as f32;
    pair_stats_with_threshold(data, threshold)
}

/// Computes pair statistics for a slice with an explicit absolute threshold.
pub fn pair_stats_with_threshold(data: &[f32], threshold: f32) -> PairStats {
    let mut s = PairStats::default();
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        match classify_pair(c[0], c[1], threshold) {
            PairKind::NormalNormal => s.normal_normal += 1,
            PairKind::OutlierNormal => s.outlier_normal += 1,
            PairKind::OutlierOutlier => s.outlier_outlier += 1,
        }
    }
    if let [last] = chunks.remainder() {
        match classify_pair(*last, 0.0, threshold) {
            PairKind::OutlierNormal => s.outlier_normal += 1,
            _ => s.normal_normal += 1,
        }
    }
    s
}

/// Computes pair statistics for a tensor under the 3σ rule (the setting of
/// Tbl. 2).
pub fn pair_stats_tensor(t: &Tensor) -> PairStats {
    pair_stats(t.data(), 3.0)
}

/// Clips every outlier (|x| > threshold) to ±threshold, the baseline behaviour
/// of outlier-unaware quantization ("Clipping Outlier" in Fig. 3).
pub fn clip_outliers(t: &Tensor, threshold: f32) -> Tensor {
    t.map(|x| x.clamp(-threshold, threshold))
}

/// Prunes (sets to zero) the *victims*: for every outlier-normal pair the
/// normal partner, and for every outlier-outlier pair the smaller outlier
/// ("Pruning Victim" in Fig. 3). Outliers themselves are kept at full
/// precision.
pub fn prune_victims(t: &Tensor, threshold: f32) -> Tensor {
    let mut out = t.clone();
    let data = out.data_mut();
    let n = data.len();
    let mut i = 0;
    while i + 1 < n {
        let (a, b) = (data[i], data[i + 1]);
        match classify_pair(a, b, threshold) {
            PairKind::NormalNormal => {}
            PairKind::OutlierNormal => {
                if a.abs() > threshold {
                    data[i + 1] = 0.0;
                } else {
                    data[i] = 0.0;
                }
            }
            PairKind::OutlierOutlier => {
                // Keep the larger outlier, prune the smaller one.
                if a.abs() >= b.abs() {
                    data[i + 1] = 0.0;
                } else {
                    data[i] = 0.0;
                }
            }
        }
        i += 2;
    }
    out
}

/// Prunes `count` randomly selected *normal* values to zero ("Pruning Normal
/// Value" in Fig. 3). Outliers are never selected.
pub fn prune_random_normals(t: &Tensor, threshold: f32, count: usize, rng: &mut Rng) -> Tensor {
    let mut out = t.clone();
    let normal_idx: Vec<usize> = out
        .data()
        .iter()
        .enumerate()
        .filter(|(_, &x)| x.abs() <= threshold)
        .map(|(i, _)| i)
        .collect();
    if normal_idx.is_empty() {
        return out;
    }
    let count = count.min(normal_idx.len());
    // Partial Fisher–Yates over the candidate index list.
    let mut idx = normal_idx;
    for i in 0..count {
        let j = i + rng.below(idx.len() - i);
        idx.swap(i, j);
        out.data_mut()[idx[i]] = 0.0;
    }
    out
}

/// Number of victims that [`prune_victims`] would create (one per
/// outlier-containing pair).
pub fn victim_count(data: &[f32], threshold: f32) -> usize {
    let s = pair_stats_with_threshold(data, threshold);
    s.outlier_normal + s.outlier_outlier
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planted_tensor() -> Tensor {
        // 16 values, outliers at positions 3 (pairs with 2) and 8/9 (an
        // outlier-outlier pair).
        let mut v = vec![0.1f32; 16];
        v[3] = 50.0;
        v[8] = -40.0;
        v[9] = 45.0;
        Tensor::from_vec(vec![4, 4], v)
    }

    #[test]
    fn classify_pair_covers_all_kinds() {
        assert_eq!(classify_pair(0.1, 0.2, 1.0), PairKind::NormalNormal);
        assert_eq!(classify_pair(5.0, 0.2, 1.0), PairKind::OutlierNormal);
        assert_eq!(classify_pair(0.2, -5.0, 1.0), PairKind::OutlierNormal);
        assert_eq!(classify_pair(5.0, -5.0, 1.0), PairKind::OutlierOutlier);
    }

    #[test]
    fn pair_stats_counts_planted_outliers() {
        let t = planted_tensor();
        let s = pair_stats_with_threshold(t.data(), 10.0);
        assert_eq!(s.total(), 8);
        assert_eq!(s.outlier_normal, 1);
        assert_eq!(s.outlier_outlier, 1);
        assert_eq!(s.normal_normal, 6);
    }

    #[test]
    fn pair_fractions_sum_to_one() {
        let t = planted_tensor();
        let s = pair_stats_with_threshold(t.data(), 10.0);
        let sum = s.frac_normal_normal() + s.frac_outlier_normal() + s.frac_outlier_outlier();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn odd_length_counts_trailing_element() {
        let s = pair_stats_with_threshold(&[0.0, 0.0, 9.0], 1.0);
        assert_eq!(s.total(), 2);
        assert_eq!(s.outlier_normal, 1);
    }

    #[test]
    fn clip_outliers_bounds_magnitudes() {
        let t = planted_tensor();
        let c = clip_outliers(&t, 10.0);
        assert!(c.max_abs() <= 10.0);
        // Normal values unchanged.
        assert_eq!(c[0], 0.1);
    }

    #[test]
    fn prune_victims_keeps_outliers_intact() {
        let t = planted_tensor();
        let p = prune_victims(&t, 10.0);
        assert_eq!(p[3], 50.0);
        // Its pair partner (index 2) became a victim.
        assert_eq!(p[2], 0.0);
        // Outlier-outlier pair keeps the larger magnitude.
        assert_eq!(p[9], 45.0);
        assert_eq!(p[8], 0.0);
    }

    #[test]
    fn prune_random_normals_never_touches_outliers() {
        let t = planted_tensor();
        let mut rng = Rng::seed_from(3);
        let p = prune_random_normals(&t, 10.0, 5, &mut rng);
        assert_eq!(p[3], 50.0);
        assert_eq!(p[8], -40.0);
        assert_eq!(p[9], 45.0);
        let zeros = p.data().iter().filter(|&&x| x == 0.0).count();
        assert_eq!(zeros, 5);
    }

    #[test]
    fn victim_count_matches_outlier_pairs() {
        let t = planted_tensor();
        assert_eq!(victim_count(t.data(), 10.0), 2);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = PairStats {
            normal_normal: 1,
            outlier_normal: 2,
            outlier_outlier: 3,
        };
        a.merge(&PairStats {
            normal_normal: 10,
            outlier_normal: 20,
            outlier_outlier: 30,
        });
        assert_eq!(a.normal_normal, 11);
        assert_eq!(a.outlier_normal, 22);
        assert_eq!(a.outlier_outlier, 33);
    }

    #[test]
    fn gaussian_tensor_matches_table2_shape() {
        // A Gaussian-with-outliers tensor should be dominated by normal-normal
        // pairs with a tiny outlier-outlier fraction, as in Tbl. 2.
        let mut rng = Rng::seed_from(7);
        let mut data = vec![0.0f32; 40_000];
        rng.fill_normal(&mut data, 0.0, 1.0);
        // Plant sparse outliers (~0.5%).
        for _ in 0..200 {
            let i = rng.below(data.len());
            data[i] = (rng.normal(0.0, 1.0) as f32).signum() * rng.uniform_range(6.0, 60.0) as f32;
        }
        let s = pair_stats(&data, 3.0);
        assert!(s.frac_normal_normal() > 0.97);
        assert!(s.frac_outlier_outlier() < 0.005);
    }
}
