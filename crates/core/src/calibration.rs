//! Scale-factor calibration policies and their ablation.
//!
//! Section 3.4 of the paper chooses the outlier threshold (equivalently the
//! scale factor) by minimizing the tensor MSE around a 3σ seed. This module
//! makes that choice explicit and comparable against the simpler policies used
//! by other quantization frameworks, so the design decision can be ablated
//! (see the `abl_scale_policy` harness in `olive-bench`).

use crate::quantizer::{OliveQuantizer, OvpTensor};
use olive_tensor::stats::TensorStats;
use olive_tensor::Tensor;

/// A policy for picking the per-tensor scale factor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScalePolicy {
    /// Cover the maximum absolute value with the *outlier* range (nothing is
    /// ever clipped; normal-value resolution suffers).
    MaxAbs,
    /// Map the `p`-th percentile of the absolute values onto the largest
    /// normal code (a common activation-calibration heuristic).
    Percentile(f64),
    /// Map `k`·σ onto the largest normal code (the paper's 3σ rule seed,
    /// without any search).
    SigmaRule(f64),
    /// The full MSE-minimizing grid search around the 3σ seed (the paper's
    /// choice, Sec. 3.4).
    MseSearch,
}

impl ScalePolicy {
    /// The policies compared by the ablation harness, in presentation order.
    pub fn ablation_set() -> Vec<ScalePolicy> {
        vec![
            ScalePolicy::MaxAbs,
            ScalePolicy::Percentile(99.9),
            ScalePolicy::SigmaRule(3.0),
            ScalePolicy::MseSearch,
        ]
    }

    /// A short label for reports.
    pub fn label(&self) -> String {
        match self {
            ScalePolicy::MaxAbs => "max-abs".to_string(),
            ScalePolicy::Percentile(p) => format!("p{:.1}", p),
            ScalePolicy::SigmaRule(k) => format!("{}-sigma", k),
            ScalePolicy::MseSearch => "mse-search".to_string(),
        }
    }

    /// Computes the scale this policy selects for a tensor under the given
    /// quantizer's normal data type.
    pub fn select_scale(&self, quantizer: &OliveQuantizer, t: &Tensor) -> f32 {
        let max_mag = quantizer.normal_type().max_magnitude() as f32;
        let stats = TensorStats::compute(t);
        match self {
            ScalePolicy::MaxAbs => {
                // The maximum must be representable by the outlier format, so
                // divide by the largest abfloat magnitude instead of max_mag.
                let spec_max = quantizer
                    .normal_type()
                    .outlier_format()
                    .max_value(quantizer.normal_type().complementary_abfloat_bias())
                    as f32;
                (stats.max_abs as f32 / spec_max).max(f32::MIN_POSITIVE)
            }
            ScalePolicy::Percentile(p) => {
                let mut mags: Vec<f32> = t.data().iter().map(|x| x.abs()).collect();
                mags.sort_by(|a, b| a.partial_cmp(b).unwrap());
                let idx = (((p / 100.0) * (mags.len().saturating_sub(1)) as f64).round() as usize)
                    .min(mags.len().saturating_sub(1));
                (mags.get(idx).copied().unwrap_or(1.0) / max_mag).max(f32::MIN_POSITIVE)
            }
            ScalePolicy::SigmaRule(k) => {
                (((k * stats.std) as f32) / max_mag).max(f32::MIN_POSITIVE)
            }
            ScalePolicy::MseSearch => quantizer.select_scale(t),
        }
    }

    /// Quantizes a tensor with this policy and returns the packed result.
    pub fn quantize(&self, quantizer: &OliveQuantizer, t: &Tensor) -> OvpTensor {
        let scale = self.select_scale(quantizer, t);
        quantizer.quantize_with_scale(t, scale)
    }

    /// Round-trip MSE of this policy on a tensor.
    pub fn round_trip_mse(&self, quantizer: &OliveQuantizer, t: &Tensor) -> f64 {
        let q = self.quantize(quantizer, t);
        t.mse(&q.dequantize())
    }
}

/// One row of the scale-policy ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationReport {
    /// Policy label.
    pub policy: String,
    /// Round-trip MSE.
    pub mse: f64,
    /// Selected scale.
    pub scale: f32,
    /// Fraction of pairs carrying an outlier after encoding.
    pub outlier_pair_fraction: f64,
}

/// Runs the whole ablation set on one tensor.
pub fn ablate_scale_policies(quantizer: &OliveQuantizer, t: &Tensor) -> Vec<CalibrationReport> {
    ScalePolicy::ablation_set()
        .into_iter()
        .map(|p| {
            let scale = p.select_scale(quantizer, t);
            let q = quantizer.quantize_with_scale(t, scale);
            CalibrationReport {
                policy: p.label(),
                mse: t.mse(&q.dequantize()),
                scale,
                outlier_pair_fraction: q.outlier_pair_fraction(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use olive_tensor::rng::Rng;

    fn outlier_tensor(seed: u64) -> Tensor {
        let mut rng = Rng::seed_from(seed);
        let mut d = vec![0.0f32; 4096];
        rng.fill_normal(&mut d, 0.0, 1.0);
        for _ in 0..20 {
            let i = rng.below(4096);
            d[i] = rng.uniform_range(15.0, 70.0) as f32 * if rng.chance(0.5) { 1.0 } else { -1.0 };
        }
        Tensor::from_vec(vec![64, 64], d)
    }

    #[test]
    fn mse_search_is_never_worse_than_the_sigma_seed() {
        let t = outlier_tensor(1);
        let q = OliveQuantizer::int4();
        let search = ScalePolicy::MseSearch.round_trip_mse(&q, &t);
        let seed = ScalePolicy::SigmaRule(3.0).round_trip_mse(&q, &t);
        assert!(
            search <= seed + 1e-9,
            "search {} vs 3-sigma {}",
            search,
            seed
        );
    }

    #[test]
    fn max_abs_policy_never_saturates_outliers() {
        let t = outlier_tensor(2);
        let q = OliveQuantizer::int4();
        let packed = ScalePolicy::MaxAbs.quantize(&q, &t);
        assert!(packed.spec().max_representable() >= t.max_abs() * 0.999);
    }

    #[test]
    fn percentile_policy_is_between_sigma_and_max() {
        let t = outlier_tensor(3);
        let q = OliveQuantizer::int4();
        let s_sigma = ScalePolicy::SigmaRule(3.0).select_scale(&q, &t);
        let s_p = ScalePolicy::Percentile(99.9).select_scale(&q, &t);
        let s_max = ScalePolicy::MaxAbs.select_scale(&q, &t);
        assert!(s_sigma <= s_p * 4.0);
        assert!(s_p <= s_max * 16.0);
    }

    #[test]
    fn ablation_covers_all_policies() {
        let t = outlier_tensor(4);
        let q = OliveQuantizer::int4();
        let rows = ablate_scale_policies(&q, &t);
        assert_eq!(rows.len(), 4);
        let best = rows.iter().map(|r| r.mse).fold(f64::INFINITY, f64::min);
        let search = rows.iter().find(|r| r.policy == "mse-search").unwrap();
        assert!(search.mse <= best + 1e-9);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<String> = ScalePolicy::ablation_set()
            .iter()
            .map(|p| p.label())
            .collect();
        let mut dedup = labels.clone();
        dedup.dedup();
        assert_eq!(labels.len(), dedup.len());
    }
}
