//! # olive-core
//!
//! The paper's primary contribution: **outlier-victim pair (OVP) quantization**.
//!
//! * [`pair`] — pair-wise tensor analysis (normal-normal / outlier-normal /
//!   outlier-outlier statistics of Tbl. 2) and the pruning transformations used
//!   by the motivation study of Fig. 3 (clip outliers, prune victims, prune
//!   random normal values).
//! * [`encode`] — Algorithm 1: the 4-bit/8-bit OVP pair encoder and the packed
//!   byte layout.
//! * [`quantizer`] — [`OliveQuantizer`]: per-tensor post-training quantization
//!   with the MSE-minimizing scale/threshold search seeded at 3σ (Sec. 3.4),
//!   producing packed [`OvpTensor`]s.
//! * [`mac`] — the OliVe MAC unit operating on exponent-integer pairs with an
//!   int32 accumulator (Sec. 4.4–4.5), including the four-PE decomposition of
//!   8-bit values.
//! * [`gemm`] — bit-accurate quantized GEMM built on the MAC model; this is
//!   what the accuracy experiments execute. Operands carry a decode-once
//!   [`PackedPlan`] (width-minimal integer grid + nonzero bitmasks), and the
//!   kernel is branch-free with an i32-overflow magnitude pre-bound; the
//!   pre-refactor kernel stays in-tree as the bit-identity oracle
//!   ([`gemm::reference_quantized_matmul`]).
//! * [`simd`] — runtime SSE2/AVX2 dispatch for the packed kernel (the only
//!   module in the workspace allowed to contain `unsafe`), with the
//!   `OLIVE_SIMD` override mirroring `OLIVE_THREADS`. Every path is
//!   bit-identical to the scalar kernel.
//! * [`framework`] — the model-level PTQ framework: per-tensor type selection,
//!   optional 8-bit escalation, and a [`TensorQuantizer`] trait shared with the
//!   baselines crate.

pub mod calibration;
pub mod encode;
pub mod framework;
pub mod gemm;
pub mod mac;
pub mod pair;
pub mod quantizer;
pub mod simd;

pub use calibration::{ablate_scale_policies, CalibrationReport, ScalePolicy};
pub use encode::{encode_pair, EncodedPair, PairClass};
pub use framework::{
    Fp32Baseline, Granularity, OlivePtq, PerRowQuantizer, PtqConfig, PtqReport, TensorQuantizer,
};
pub use gemm::{quantized_matmul, reference_quantized_matmul, weight_only_matmul, QuantGemmStats};
pub use mac::{MacUnit, OVERFLOW_CLIP};
pub use olive_dtypes::NormalDataType as NormalType;
pub use pair::{PairKind, PairStats};
pub use quantizer::{OliveQuantizer, OvpTensor, PackedGrid, PackedPlan, QuantSpec};
pub use simd::{validate_simd_env, with_simd, SimdPath, SIMD_ENV};
