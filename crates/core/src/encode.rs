//! Algorithm 1: the outlier-victim pair encoder (paper Sec. 3.1).
//!
//! The encoder reads two adjacent values at a time (already divided by the
//! tensor scale, i.e. on the integer grid) and produces two code words:
//!
//! * both normal → quantize both with the normal data type;
//! * left value is the (larger) outlier → left slot holds the abfloat outlier,
//!   right slot holds the identifier (the right value becomes a *victim*);
//! * right value is the outlier → mirrored;
//! * both outliers → the larger survives, the smaller is pruned (becomes the
//!   victim), exactly as Sec. 3.1 prescribes.
//!
//! Decoding (the OVP decoder of Fig. 6b) is the exact inverse and emits the
//! unified exponent-integer pairs consumed by the MAC units.

use olive_dtypes::abfloat::AbfloatCode;
use olive_dtypes::identifier::{is_identifier_4bit, is_identifier_8bit};
use olive_dtypes::{ExpInt, Flint4, Int4, Int8, NormalDataType};
use olive_dtypes::{OUTLIER_IDENTIFIER_4BIT, OUTLIER_IDENTIFIER_8BIT};

/// The role each slot plays inside an encoded pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PairClass {
    /// Two normal values.
    NormalNormal,
    /// The left slot is an outlier, the right slot is its victim.
    OutlierLeft,
    /// The right slot is an outlier, the left slot is its victim.
    OutlierRight,
}

/// An encoded outlier-victim (or normal-normal) pair: two raw code words.
///
/// For 4-bit normal types each code occupies a nibble and
/// [`EncodedPair::pack_byte`] packs the pair into a single memory-aligned byte
/// (first value in the low nibble). For `int8` each code is a full byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodedPair {
    /// Code word for the first (left) value.
    pub code0: u8,
    /// Code word for the second (right) value.
    pub code1: u8,
    /// How the pair was classified by the encoder.
    pub class: PairClass,
}

impl EncodedPair {
    /// Packs a 4-bit pair into one byte: value 0 in the low nibble, value 1 in
    /// the high nibble (matching the `0:3` / `4:7` split of Fig. 6b).
    pub fn pack_byte(&self) -> u8 {
        (self.code0 & 0x0F) | (self.code1 << 4)
    }

    /// Unpacks a 4-bit pair from one byte.
    pub fn unpack_byte(byte: u8) -> (u8, u8) {
        (byte & 0x0F, byte >> 4)
    }
}

/// Encodes one pair of scale-normalised values (Algorithm 1).
///
/// `threshold` is the outlier threshold on the integer grid (typically the
/// largest representable normal magnitude). `bias` is the adaptive abfloat
/// exponent bias.
pub fn encode_pair(
    v1: f32,
    v2: f32,
    threshold: f32,
    normal_type: NormalDataType,
    bias: i32,
) -> EncodedPair {
    let fmt = normal_type.outlier_format();
    let identifier = match normal_type {
        NormalDataType::Int8 => OUTLIER_IDENTIFIER_8BIT,
        _ => OUTLIER_IDENTIFIER_4BIT,
    };
    let a1 = v1.abs();
    let a2 = v2.abs();
    if a1 > threshold && a1 >= a2 {
        EncodedPair {
            code0: AbfloatCode::encode(v1, bias, fmt).bits(),
            code1: identifier,
            class: PairClass::OutlierLeft,
        }
    } else if a2 > threshold {
        EncodedPair {
            code0: identifier,
            code1: AbfloatCode::encode(v2, bias, fmt).bits(),
            class: PairClass::OutlierRight,
        }
    } else {
        EncodedPair {
            code0: quantize_normal(v1, normal_type),
            code1: quantize_normal(v2, normal_type),
            class: PairClass::NormalNormal,
        }
    }
}

/// Quantizes a normal (non-outlier) grid value with the given normal type,
/// returning its raw code word.
pub fn quantize_normal(v: f32, normal_type: NormalDataType) -> u8 {
    match normal_type {
        NormalDataType::Int4 => Int4::quantize(v).code(),
        NormalDataType::Flint4 => Flint4::quantize(v).code(),
        NormalDataType::Int8 => Int8::quantize(v).code(),
    }
}

/// Decodes one code word into an exponent-integer pair, treating the outlier
/// identifier as the victim value 0 and any other code as a normal value.
///
/// This mirrors the normal-value path of the OVP decoder (Fig. 6b): the
/// identifier is replaced by `0000…0` before reaching the MAC array.
pub fn decode_normal_or_victim(code: u8, normal_type: NormalDataType) -> ExpInt {
    match normal_type {
        NormalDataType::Int4 => Int4::decode(code).map(Int4::to_expint).unwrap_or_default(),
        NormalDataType::Flint4 => Flint4::decode(code)
            .map(Flint4::to_expint)
            .unwrap_or_default(),
        NormalDataType::Int8 => Int8::decode(code).map(Int8::to_expint).unwrap_or_default(),
    }
}

/// Decodes an encoded pair back into two exponent-integer pairs (what the
/// hardware decoder hands to the MAC units).
pub fn decode_pair_expint(
    code0: u8,
    code1: u8,
    normal_type: NormalDataType,
    bias: i32,
) -> (ExpInt, ExpInt) {
    let fmt = normal_type.outlier_format();
    let is_id = |c: u8| match normal_type {
        NormalDataType::Int8 => is_identifier_8bit(c),
        _ => is_identifier_4bit(c),
    };
    if is_id(code1) {
        // Left outlier, right victim.
        let outlier = AbfloatCode::from_bits(fmt, code0).to_expint(bias);
        (outlier, ExpInt::zero())
    } else if is_id(code0) {
        // Right outlier, left victim.
        let outlier = AbfloatCode::from_bits(fmt, code1).to_expint(bias);
        (ExpInt::zero(), outlier)
    } else {
        (
            decode_normal_or_victim(code0, normal_type),
            decode_normal_or_victim(code1, normal_type),
        )
    }
}

/// Decodes an encoded pair to grid values (integers before the scale factor is
/// re-applied).
pub fn decode_pair_values(
    code0: u8,
    code1: u8,
    normal_type: NormalDataType,
    bias: i32,
) -> (i64, i64) {
    let (a, b) = decode_pair_expint(code0, code1, normal_type, bias);
    (a.value(), b.value())
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: f32 = 7.0;

    #[test]
    fn normal_pair_round_trips() {
        let p = encode_pair(3.2, -5.7, T, NormalDataType::Int4, 2);
        assert_eq!(p.class, PairClass::NormalNormal);
        let (a, b) = decode_pair_values(p.code0, p.code1, NormalDataType::Int4, 2);
        assert_eq!((a, b), (3, -6));
    }

    #[test]
    fn left_outlier_encodes_victim_on_right() {
        let p = encode_pair(50.0, 0.4, T, NormalDataType::Int4, 2);
        assert_eq!(p.class, PairClass::OutlierLeft);
        assert_eq!(p.code1, OUTLIER_IDENTIFIER_4BIT);
        let (a, b) = decode_pair_values(p.code0, p.code1, NormalDataType::Int4, 2);
        assert_eq!(a, 48); // nearest E2M1(bias=2) value to 50
        assert_eq!(b, 0); // victim pruned to zero
    }

    #[test]
    fn right_outlier_encodes_victim_on_left() {
        let p = encode_pair(0.4, -80.0, T, NormalDataType::Int4, 2);
        assert_eq!(p.class, PairClass::OutlierRight);
        assert_eq!(p.code0, OUTLIER_IDENTIFIER_4BIT);
        let (a, b) = decode_pair_values(p.code0, p.code1, NormalDataType::Int4, 2);
        assert_eq!(a, 0);
        assert_eq!(b, -96); // Algorithm 2 rounds 80 (a tie between 64 and 96) up
    }

    #[test]
    fn outlier_outlier_keeps_larger() {
        let p = encode_pair(20.0, -60.0, T, NormalDataType::Int4, 2);
        assert_eq!(p.class, PairClass::OutlierRight);
        let (a, b) = decode_pair_values(p.code0, p.code1, NormalDataType::Int4, 2);
        assert_eq!(a, 0);
        assert_eq!(b, -64); // nearest representable to -60

        let p = encode_pair(60.0, -20.0, T, NormalDataType::Int4, 2);
        assert_eq!(p.class, PairClass::OutlierLeft);
    }

    #[test]
    fn pack_and_unpack_byte() {
        let p = encode_pair(3.0, -2.0, T, NormalDataType::Int4, 2);
        let byte = p.pack_byte();
        let (c0, c1) = EncodedPair::unpack_byte(byte);
        assert_eq!(c0, p.code0 & 0x0F);
        assert_eq!(c1, p.code1 & 0x0F);
    }

    #[test]
    fn flint4_normal_pair() {
        let p = encode_pair(5.4, 15.0, 16.0, NormalDataType::Flint4, 3);
        assert_eq!(p.class, PairClass::NormalNormal);
        let (a, b) = decode_pair_values(p.code0, p.code1, NormalDataType::Flint4, 3);
        assert_eq!((a, b), (6, 16));
    }

    #[test]
    fn flint4_outlier_uses_bias_three() {
        let p = encode_pair(100.0, 1.0, 16.0, NormalDataType::Flint4, 3);
        assert_eq!(p.class, PairClass::OutlierLeft);
        let (a, _) = decode_pair_values(p.code0, p.code1, NormalDataType::Flint4, 3);
        assert_eq!(a, 96); // nearest {24..192} grid point to 100
    }

    #[test]
    fn int8_pair_round_trips() {
        let p = encode_pair(100.0, -120.0, 127.0, NormalDataType::Int8, 4);
        assert_eq!(p.class, PairClass::NormalNormal);
        let (a, b) = decode_pair_values(p.code0, p.code1, NormalDataType::Int8, 4);
        assert_eq!((a, b), (100, -120));
    }

    #[test]
    fn int8_outlier_pair() {
        let p = encode_pair(1000.0, 1.0, 127.0, NormalDataType::Int8, 4);
        assert_eq!(p.class, PairClass::OutlierLeft);
        assert_eq!(p.code1, OUTLIER_IDENTIFIER_8BIT);
        let (a, b) = decode_pair_values(p.code0, p.code1, NormalDataType::Int8, 4);
        assert!(b == 0);
        assert!((a - 1000).abs() < 100, "decoded {}", a);
    }

    #[test]
    fn outlier_code_is_never_the_identifier() {
        // Sweep many outlier magnitudes; the encoded outlier nibble must never
        // equal the identifier, otherwise the decoder could not tell them apart.
        for i in 8..4000 {
            let x = i as f32 * 0.5;
            let p = encode_pair(x, 0.0, T, NormalDataType::Int4, 2);
            assert_ne!(p.code0 & 0x0F, OUTLIER_IDENTIFIER_4BIT, "x = {}", x);
            let p = encode_pair(-x, 0.0, T, NormalDataType::Int4, 2);
            assert_ne!(p.code0 & 0x0F, OUTLIER_IDENTIFIER_4BIT, "x = {}", -x);
        }
    }

    #[test]
    fn victim_always_decodes_to_zero() {
        let p = encode_pair(0.9, 33.0, T, NormalDataType::Int4, 2);
        let (a, b) = decode_pair_expint(p.code0, p.code1, NormalDataType::Int4, 2);
        assert!(a.is_zero());
        assert!(!b.is_zero());
    }
}
