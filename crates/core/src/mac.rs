//! The OliVe MAC (multiply-accumulate) unit model (paper Sec. 4.4–4.5).
//!
//! After decoding, every operand — normal value, victim (zero) or abfloat
//! outlier — is a unified exponent-integer pair. The MAC unit multiplies two
//! pairs by multiplying the integers and adding the exponents (one extra adder
//! and shifter over a plain fixed-point MAC), and accumulates into a 32-bit
//! integer register.
//!
//! To guarantee the accumulator never overflows, the quantization framework
//! clips outlier magnitudes at 2¹⁵ ([`OVERFLOW_CLIP`]); the paper observes that
//! real transformer outliers never reach that bound (≤ 325σ ≪ 768σ ≈ 2¹⁵).

use olive_dtypes::ExpInt;

/// Maximum outlier magnitude on the integer grid (2¹⁵), chosen so that the
/// product of two clipped outliers still fits the int32 accumulator.
pub const OVERFLOW_CLIP: i64 = 1 << 15;

/// A model of the OliVe MAC unit with an int32 accumulator.
///
/// # Examples
///
/// ```
/// use olive_core::MacUnit;
/// use olive_dtypes::ExpInt;
///
/// let mut mac = MacUnit::new();
/// mac.mac(ExpInt::new(2, 3), ExpInt::new(0, -5)); // 12 * -5
/// mac.mac(ExpInt::new(0, 7), ExpInt::new(0, 7));  // + 49
/// assert_eq!(mac.accumulator(), -11);
/// assert!(!mac.overflowed());
/// ```
#[derive(Debug, Clone, Default)]
pub struct MacUnit {
    acc: i64,
    overflowed: bool,
    mac_count: u64,
}

impl MacUnit {
    /// Creates a MAC unit with a cleared accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Performs one multiply-accumulate of two exponent-integer pairs.
    pub fn mac(&mut self, a: ExpInt, b: ExpInt) {
        let product = a.mul(b).value();
        self.acc += product;
        self.mac_count += 1;
        if self.acc > i32::MAX as i64 || self.acc < i32::MIN as i64 {
            self.overflowed = true;
        }
    }

    /// The current accumulator value.
    pub fn accumulator(&self) -> i64 {
        self.acc
    }

    /// Whether the int32 accumulator would have overflowed at any point.
    ///
    /// The GEMM path widens accumulation to 64 bits (like the tensor-core
    /// int32→int32 convention with partial-sum spilling), so this is a
    /// diagnostic rather than a hard failure.
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    /// Number of MAC operations performed.
    pub fn mac_count(&self) -> u64 {
        self.mac_count
    }

    /// Clears the accumulator and the overflow flag.
    pub fn reset(&mut self) {
        self.acc = 0;
        self.overflowed = false;
    }

    /// Computes an N-element dot product (the paper's 16EDP for 4-bit data,
    /// 8EDP for 8-bit data) and returns the accumulated integer.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn edp(&mut self, a: &[ExpInt], b: &[ExpInt]) -> i64 {
        assert_eq!(a.len(), b.len(), "EDP operand length mismatch");
        for (&x, &y) in a.iter().zip(b) {
            self.mac(x, y);
        }
        self.acc
    }
}

/// Clips an outlier grid magnitude at [`OVERFLOW_CLIP`] (paper Sec. 4.5).
pub fn clip_outlier_magnitude(v: f32) -> f32 {
    v.clamp(-(OVERFLOW_CLIP as f32), OVERFLOW_CLIP as f32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_accumulates_products() {
        let mut m = MacUnit::new();
        m.mac(ExpInt::new(0, 3), ExpInt::new(0, 4));
        m.mac(ExpInt::new(1, 1), ExpInt::new(1, 1));
        assert_eq!(m.accumulator(), 12 + 4);
        assert_eq!(m.mac_count(), 2);
    }

    #[test]
    fn clipped_outlier_product_fits_i32() {
        let mut m = MacUnit::new();
        // Worst case: two maximal clipped outliers.
        m.mac(ExpInt::new(15, 1), ExpInt::new(15, 1));
        assert_eq!(m.accumulator(), 1 << 30);
        assert!(!m.overflowed());
    }

    #[test]
    fn repeated_extreme_products_do_overflow_eventually() {
        let mut m = MacUnit::new();
        for _ in 0..4 {
            m.mac(ExpInt::new(15, 1), ExpInt::new(15, 1));
        }
        assert!(m.overflowed());
    }

    #[test]
    fn reset_clears_state() {
        let mut m = MacUnit::new();
        m.mac(ExpInt::new(0, 100), ExpInt::new(0, 100));
        m.reset();
        assert_eq!(m.accumulator(), 0);
        assert!(!m.overflowed());
    }

    #[test]
    fn edp_matches_scalar_dot_product() {
        let a: Vec<ExpInt> = (0..16).map(|i| ExpInt::new(0, i - 8)).collect();
        let b: Vec<ExpInt> = (0..16).map(|i| ExpInt::new(0, 3 - i)).collect();
        let expected: i64 = (0..16).map(|i| (i - 8) * (3 - i)).sum();
        let mut m = MacUnit::new();
        assert_eq!(m.edp(&a, &b), expected);
    }

    #[test]
    fn clip_outlier_magnitude_bounds() {
        assert_eq!(clip_outlier_magnitude(1e9), OVERFLOW_CLIP as f32);
        assert_eq!(clip_outlier_magnitude(-1e9), -(OVERFLOW_CLIP as f32));
        assert_eq!(clip_outlier_magnitude(123.0), 123.0);
    }
}
