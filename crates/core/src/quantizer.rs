//! Tensor-level OliVe quantization (paper Sec. 3.4).
//!
//! [`OliveQuantizer`] performs post-training quantization of one tensor:
//!
//! 1. compute the tensor statistics and seed the outlier threshold at 3σ,
//! 2. grid-search the scale factor (equivalently the threshold) around that
//!    seed, minimizing the mean squared error of the full OVP round trip,
//! 3. emit a packed [`OvpTensor`]: one byte per value pair for 4-bit types,
//!    two bytes per pair for `int8`, plus the per-tensor [`QuantSpec`].
//!
//! The packed representation is memory aligned — there is no index structure
//! of any kind, which is the paper's core architectural argument.

use crate::encode::{decode_pair_expint, decode_pair_values, encode_pair};
use olive_dtypes::{AbfloatFormat, ExpInt, NormalDataType};
use olive_tensor::stats::TensorStats;
use olive_tensor::Tensor;
use std::sync::OnceLock;

/// Per-tensor quantization parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantSpec {
    /// Data type used for normal values.
    pub normal_type: NormalDataType,
    /// Abfloat format used for outliers (derived from `normal_type`).
    pub outlier_format: AbfloatFormat,
    /// Adaptive abfloat exponent bias.
    pub abfloat_bias: i32,
    /// Scale factor: `real_value ≈ grid_value * scale`.
    pub scale: f32,
}

impl QuantSpec {
    /// The outlier threshold in real units: grid values above the largest
    /// normal magnitude are outliers.
    pub fn outlier_threshold(&self) -> f32 {
        self.normal_type.max_magnitude() as f32 * self.scale
    }

    /// Largest real value representable by the outlier format.
    pub fn max_representable(&self) -> f32 {
        self.outlier_format.max_value(self.abfloat_bias) as f32 * self.scale
    }

    /// Storage bits per element (4 or 8), identical for normal values,
    /// victims and outliers thanks to the aligned encoding.
    pub fn bits_per_element(&self) -> u32 {
        self.normal_type.bits()
    }
}

/// The decoded integer grid of a [`PackedPlan`], width-minimal for the
/// scheme: `i16` covers every int4-family grid value (E2M1 outliers reach
/// ±96 at bias 2, flint4's ±192 at bias 3), `i32` covers int8's E4M3
/// outliers (±7,864,320 at bias 4).
#[derive(Debug, Clone, PartialEq)]
pub enum PackedGrid {
    /// Grid for 4-bit schemes (`int4`, `flint4`).
    I16(Vec<i16>),
    /// Grid for schemes whose values exceed `i16` (`int8`).
    I32(Vec<i32>),
}

impl PackedGrid {
    /// Element `idx` widened to `i64` (the exact-fallback kernel's domain).
    pub fn get_i64(&self, idx: usize) -> i64 {
        match self {
            PackedGrid::I16(g) => i64::from(g[idx]),
            PackedGrid::I32(g) => i64::from(g[idx]),
        }
    }

    /// Number of grid elements.
    pub fn len(&self) -> usize {
        match self {
            PackedGrid::I16(g) => g.len(),
            PackedGrid::I32(g) => g.len(),
        }
    }

    /// `true` if the grid holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A rank-2 [`OvpTensor`]'s decoded GEMM operand, built once and reused
/// across every `quantized_matmul` call (paper Sec. 4: the decoder sits in
/// front of the MAC array, not inside the inner loop).
///
/// Holds the expint values as a width-minimal integer [`PackedGrid`] in
/// row-major order, per-row and per-column nonzero bitmasks (one bit per
/// element, 64 per word) from which `zero_operand_macs` is reconstructed
/// exactly via `popcount(maskA_row & maskB_col)`, and magnitude summaries
/// (`row_abs_sum`, `max_abs`) powering the branch-free kernel's i32 overflow
/// pre-bound.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedPlan {
    rows: usize,
    cols: usize,
    grid: PackedGrid,
    /// `rows * cols.div_ceil(64)` words; bit `j` of row `i`'s words set iff
    /// element `(i, j)` is nonzero.
    row_masks: Vec<u64>,
    /// `cols * rows.div_ceil(64)` words; bit `i` of column `j`'s words set
    /// iff element `(i, j)` is nonzero.
    col_masks: Vec<u64>,
    /// Per-row `Σ|value|` (exact, in `u64`).
    row_abs_sums: Vec<u64>,
    /// Largest `|value|` anywhere in the grid.
    max_abs: u64,
}

impl PackedPlan {
    fn build(t: &OvpTensor) -> PackedPlan {
        assert_eq!(
            t.shape.len(),
            2,
            "PackedPlan requires a rank-2 tensor, got shape {:?}",
            t.shape
        );
        let (rows, cols) = (t.shape[0], t.shape[1]);
        let values: Vec<i64> = t.decode_expints().iter().map(|e| e.value()).collect();
        debug_assert_eq!(values.len(), rows * cols);
        let grid = match t.spec.normal_type {
            NormalDataType::Int8 => PackedGrid::I32(
                values
                    .iter()
                    .map(|&v| i32::try_from(v).expect("int8 grid value exceeds i32"))
                    .collect(),
            ),
            _ => PackedGrid::I16(
                values
                    .iter()
                    .map(|&v| i16::try_from(v).expect("int4-family grid value exceeds i16"))
                    .collect(),
            ),
        };
        let row_words = cols.div_ceil(64);
        let col_words = rows.div_ceil(64);
        let mut row_masks = vec![0u64; rows * row_words];
        let mut col_masks = vec![0u64; cols * col_words];
        let mut row_abs_sums = vec![0u64; rows];
        let mut max_abs = 0u64;
        for i in 0..rows {
            for j in 0..cols {
                let v = values[i * cols + j];
                let mag = v.unsigned_abs();
                if v != 0 {
                    row_masks[i * row_words + j / 64] |= 1u64 << (j % 64);
                    col_masks[j * col_words + i / 64] |= 1u64 << (i % 64);
                }
                row_abs_sums[i] += mag;
                max_abs = max_abs.max(mag);
            }
        }
        PackedPlan {
            rows,
            cols,
            grid,
            row_masks,
            col_masks,
            row_abs_sums,
            max_abs,
        }
    }

    /// Grid rows (`shape[0]`).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Grid columns (`shape[1]`).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The decoded integer grid, row-major.
    pub fn grid(&self) -> &PackedGrid {
        &self.grid
    }

    /// Nonzero bitmask of row `i` (`cols.div_ceil(64)` words).
    pub fn row_mask(&self, i: usize) -> &[u64] {
        let w = self.cols.div_ceil(64);
        &self.row_masks[i * w..(i + 1) * w]
    }

    /// Nonzero bitmask of column `j` (`rows.div_ceil(64)` words).
    pub fn col_mask(&self, j: usize) -> &[u64] {
        let w = self.rows.div_ceil(64);
        &self.col_masks[j * w..(j + 1) * w]
    }

    /// Exact `Σ|value|` of row `i`.
    pub fn row_abs_sum(&self, i: usize) -> u64 {
        self.row_abs_sums[i]
    }

    /// Largest `|value|` in the grid.
    pub fn max_abs(&self) -> u64 {
        self.max_abs
    }
}

/// A tensor quantized with the OVP encoding: packed codes plus the spec.
///
/// Carries two lazily built caches derived purely from the packed bytes —
/// the GEMM [`PackedPlan`] and the dequantized tensor — so repeated kernels
/// decode once. Equality deliberately ignores both caches.
#[derive(Debug, Clone)]
pub struct OvpTensor {
    spec: QuantSpec,
    shape: Vec<usize>,
    n_elems: usize,
    /// Packed code stream. 4-bit: one byte per pair. 8-bit: two bytes per pair.
    bytes: Vec<u8>,
    /// Decode-once GEMM operand, built on first `quantized_matmul` (or
    /// eagerly via [`OvpTensor::prepare_packed`]).
    plan: OnceLock<PackedPlan>,
    /// Decode-once real-valued tensor for `weight_only_matmul`.
    dequant: OnceLock<Tensor>,
}

impl PartialEq for OvpTensor {
    fn eq(&self, other: &Self) -> bool {
        // The caches are derived data; two tensors with identical packed
        // bytes are the same tensor whether or not a plan has been built.
        self.spec == other.spec
            && self.shape == other.shape
            && self.n_elems == other.n_elems
            && self.bytes == other.bytes
    }
}

impl OvpTensor {
    /// The quantization parameters.
    pub fn spec(&self) -> &QuantSpec {
        &self.spec
    }

    /// The original tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of (unpadded) elements.
    pub fn len(&self) -> usize {
        self.n_elems
    }

    /// `true` if the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.n_elems == 0
    }

    /// The packed byte stream (what would live in DRAM / on-chip buffers).
    pub fn packed_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Memory footprint in bytes of the packed representation.
    pub fn storage_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Compression ratio versus FP32 storage.
    pub fn compression_ratio(&self) -> f64 {
        (self.n_elems * 4) as f64 / self.bytes.len().max(1) as f64
    }

    /// Returns the two raw code words of pair `p`.
    fn pair_codes(&self, p: usize) -> (u8, u8) {
        match self.spec.normal_type {
            NormalDataType::Int8 => (self.bytes[2 * p], self.bytes[2 * p + 1]),
            _ => {
                let byte = self.bytes[p];
                (byte & 0x0F, byte >> 4)
            }
        }
    }

    /// Number of stored pairs (including the possible padding pair).
    pub fn n_pairs(&self) -> usize {
        self.n_elems.div_ceil(2)
    }

    /// Decodes the tensor back to real values.
    pub fn dequantize(&self) -> Tensor {
        let spec = &self.spec;
        let mut out = Vec::with_capacity(self.n_elems);
        for p in 0..self.n_pairs() {
            let (c0, c1) = self.pair_codes(p);
            let (a, b) = decode_pair_values(c0, c1, spec.normal_type, spec.abfloat_bias);
            out.push(a as f32 * spec.scale);
            if out.len() < self.n_elems {
                out.push(b as f32 * spec.scale);
            }
        }
        Tensor::from_vec(self.shape.clone(), out)
    }

    /// Decodes the tensor into the exponent-integer pairs that the hardware
    /// MAC array consumes (grid domain, scale not applied).
    pub fn decode_expints(&self) -> Vec<ExpInt> {
        let spec = &self.spec;
        let mut out = Vec::with_capacity(self.n_elems);
        for p in 0..self.n_pairs() {
            let (c0, c1) = self.pair_codes(p);
            let (a, b) = decode_pair_expint(c0, c1, spec.normal_type, spec.abfloat_bias);
            out.push(a);
            if out.len() < self.n_elems {
                out.push(b);
            }
        }
        out
    }

    /// The decode-once GEMM operand for this tensor, built on first use and
    /// cached for every later call (concurrent first calls race benignly —
    /// the build is deterministic, one result wins).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2 (GEMM operands are matrices).
    pub fn packed_plan(&self) -> &PackedPlan {
        self.plan.get_or_init(|| PackedPlan::build(self))
    }

    /// Eagerly builds the packed GEMM plan (rank-2 tensors only; anything
    /// else is a no-op) and the dequantized-tensor cache, so prepared models
    /// pay decode cost at quantize/artifact-load time instead of on the
    /// first forward.
    pub fn prepare_packed(&self) {
        if self.shape.len() == 2 {
            let _ = self.packed_plan();
        }
        let _ = self.dequantize_cached();
    }

    /// Decode-once variant of [`OvpTensor::dequantize`]: the real-valued
    /// tensor is built on first call and cached.
    pub fn dequantize_cached(&self) -> &Tensor {
        self.dequant.get_or_init(|| self.dequantize())
    }

    /// Fraction of pairs holding an outlier (either side).
    pub fn outlier_pair_fraction(&self) -> f64 {
        use olive_dtypes::identifier::{is_identifier_4bit, is_identifier_8bit};
        if self.n_pairs() == 0 {
            return 0.0;
        }
        let mut n = 0usize;
        for p in 0..self.n_pairs() {
            let (c0, c1) = self.pair_codes(p);
            let hit = match self.spec.normal_type {
                NormalDataType::Int8 => is_identifier_8bit(c0) || is_identifier_8bit(c1),
                _ => is_identifier_4bit(c0) || is_identifier_4bit(c1),
            };
            if hit {
                n += 1;
            }
        }
        n as f64 / self.n_pairs() as f64
    }
}

/// Configuration of the per-tensor OliVe quantizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OliveQuantizer {
    normal_type: NormalDataType,
    /// Number of scale candidates evaluated by the MSE search.
    search_steps: usize,
    /// Multiplicative search window around the 3σ seed threshold.
    search_low: f32,
    search_high: f32,
    /// Maximum number of elements sampled for the MSE search (the full tensor
    /// is always used for the final encoding).
    search_sample: usize,
}

impl OliveQuantizer {
    /// 4-bit OliVe with `int4` normal values (the paper's headline setting).
    pub fn int4() -> Self {
        Self::new(NormalDataType::Int4)
    }

    /// 4-bit OliVe with `flint4` normal values.
    pub fn flint4() -> Self {
        Self::new(NormalDataType::Flint4)
    }

    /// 8-bit OliVe with `int8` normal values and E4M3 outliers.
    pub fn int8() -> Self {
        Self::new(NormalDataType::Int8)
    }

    /// Creates a quantizer for an arbitrary normal data type with the default
    /// search parameters (Sec. 3.4: seed at 3σ, search around it).
    pub fn new(normal_type: NormalDataType) -> Self {
        OliveQuantizer {
            normal_type,
            search_steps: 24,
            search_low: 0.4,
            search_high: 3.0,
            search_sample: 16_384,
        }
    }

    /// Overrides the number of scale-search candidates.
    pub fn with_search_steps(mut self, steps: usize) -> Self {
        self.search_steps = steps.max(1);
        self
    }

    /// The normal data type this quantizer uses.
    pub fn normal_type(&self) -> NormalDataType {
        self.normal_type
    }

    /// Quantizes a tensor, searching for the MSE-minimizing scale.
    pub fn quantize(&self, t: &Tensor) -> OvpTensor {
        let scale = self.select_scale(t);
        self.quantize_with_scale(t, scale)
    }

    /// Quantizes with an explicit scale factor (no search).
    pub fn quantize_with_scale(&self, t: &Tensor, scale: f32) -> OvpTensor {
        let spec = self.spec_for_scale(scale);
        let data = t.data();
        let n = data.len();
        let n_pairs = n.div_ceil(2);
        let threshold = self.normal_type.max_magnitude() as f32;
        let mut bytes = Vec::with_capacity(match self.normal_type {
            NormalDataType::Int8 => 2 * n_pairs,
            _ => n_pairs,
        });
        let inv = 1.0 / spec.scale;
        for p in 0..n_pairs {
            let v1 = data[2 * p] * inv;
            let v2 = if 2 * p + 1 < n {
                data[2 * p + 1] * inv
            } else {
                0.0
            };
            let pair = encode_pair(v1, v2, threshold, self.normal_type, spec.abfloat_bias);
            match self.normal_type {
                NormalDataType::Int8 => {
                    bytes.push(pair.code0);
                    bytes.push(pair.code1);
                }
                _ => bytes.push(pair.pack_byte()),
            }
        }
        OvpTensor {
            spec,
            shape: t.shape().to_vec(),
            n_elems: n,
            bytes,
            plan: OnceLock::new(),
            dequant: OnceLock::new(),
        }
    }

    /// Convenience: quantize and immediately dequantize ("fake quantization").
    pub fn quantize_dequantize(&self, t: &Tensor) -> Tensor {
        self.quantize(t).dequantize()
    }

    fn spec_for_scale(&self, scale: f32) -> QuantSpec {
        QuantSpec {
            normal_type: self.normal_type,
            outlier_format: self.normal_type.outlier_format(),
            abfloat_bias: self.normal_type.complementary_abfloat_bias(),
            scale: scale.max(f32::MIN_POSITIVE),
        }
    }

    /// Scale-factor selection (Sec. 3.4): seed the outlier threshold at 3σ and
    /// grid-search a multiplicative window around it for the smallest MSE.
    pub fn select_scale(&self, t: &Tensor) -> f32 {
        let stats = TensorStats::compute(t);
        let max_mag = self.normal_type.max_magnitude() as f32;
        if stats.std == 0.0 {
            // Constant tensor: map the constant onto the grid exactly.
            return if stats.max_abs == 0.0 {
                1.0
            } else {
                stats.max_abs as f32 / max_mag
            };
        }
        let seed_threshold = (3.0 * stats.std) as f32;
        let sample = self.search_slice(t);
        let mut best_scale = seed_threshold / max_mag;
        let mut best_mse = f64::INFINITY;
        for i in 0..self.search_steps {
            let f = if self.search_steps == 1 {
                1.0
            } else {
                self.search_low
                    + (self.search_high - self.search_low) * i as f32
                        / (self.search_steps - 1) as f32
            };
            let threshold = seed_threshold * f;
            let scale = threshold / max_mag;
            let mse = self.round_trip_mse(sample, scale);
            if mse < best_mse {
                best_mse = mse;
                best_scale = scale;
            }
        }
        best_scale
    }

    fn search_slice<'a>(&self, t: &'a Tensor) -> &'a [f32] {
        let data = t.data();
        if data.len() <= self.search_sample {
            data
        } else {
            // A contiguous prefix keeps the search cheap; the adjacency
            // structure (pairing) is preserved, unlike random sampling.
            &data[..self.search_sample]
        }
    }

    /// Mean squared error of the full OVP round trip at a given scale.
    pub fn round_trip_mse(&self, data: &[f32], scale: f32) -> f64 {
        if scale <= 0.0 || !scale.is_finite() {
            return f64::INFINITY;
        }
        let threshold = self.normal_type.max_magnitude() as f32;
        let bias = self.normal_type.complementary_abfloat_bias();
        let inv = 1.0 / scale;
        let mut err = 0.0f64;
        let mut count = 0usize;
        let mut i = 0;
        while i < data.len() {
            let v1 = data[i] * inv;
            let v2 = if i + 1 < data.len() {
                data[i + 1] * inv
            } else {
                0.0
            };
            let pair = encode_pair(v1, v2, threshold, self.normal_type, bias);
            let (a, b) = decode_pair_values(pair.code0, pair.code1, self.normal_type, bias);
            let d0 = (a as f32 * scale - data[i]) as f64;
            err += d0 * d0;
            count += 1;
            if i + 1 < data.len() {
                let d1 = (b as f32 * scale - data[i + 1]) as f64;
                err += d1 * d1;
                count += 1;
            }
            i += 2;
        }
        if count == 0 {
            0.0
        } else {
            err / count as f64
        }
    }
}

impl Default for OliveQuantizer {
    fn default() -> Self {
        Self::int4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olive_tensor::rng::Rng;

    fn outlier_tensor(n: usize, seed: u64) -> Tensor {
        let mut rng = Rng::seed_from(seed);
        let mut data = vec![0.0f32; n];
        rng.fill_normal(&mut data, 0.0, 1.0);
        // ~0.5% outliers with magnitudes 10–80σ.
        for _ in 0..(n / 200).max(1) {
            let i = rng.below(n);
            let sign = if rng.chance(0.5) { 1.0 } else { -1.0 };
            data[i] = sign * rng.uniform_range(10.0, 80.0) as f32;
        }
        Tensor::from_vec(vec![n / 8, 8], data)
    }

    #[test]
    fn int4_round_trip_preserves_outliers() {
        let t = outlier_tensor(4096, 1);
        let q = OliveQuantizer::int4().quantize(&t);
        let back = q.dequantize();
        for i in 0..t.len() {
            let x = t[i];
            if x.abs() > 10.0 {
                let rel = (back[i] - x).abs() / x.abs();
                assert!(rel < 0.35, "outlier {} decoded as {}", x, back[i]);
            }
        }
    }

    #[test]
    fn int4_mse_is_small_relative_to_variance() {
        let t = outlier_tensor(4096, 2);
        let q = OliveQuantizer::int4().quantize(&t);
        let back = q.dequantize();
        let mse = t.mse(&back);
        assert!(mse < 0.5, "mse = {}", mse);
    }

    #[test]
    fn storage_is_half_a_byte_per_element_for_4bit() {
        let t = outlier_tensor(4096, 3);
        let q = OliveQuantizer::int4().quantize(&t);
        assert_eq!(q.storage_bytes(), 2048);
        assert!((q.compression_ratio() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn storage_is_one_byte_per_element_for_8bit() {
        let t = outlier_tensor(4096, 4);
        let q = OliveQuantizer::int8().quantize(&t);
        assert_eq!(q.storage_bytes(), 4096);
    }

    #[test]
    fn int8_is_more_accurate_than_int4() {
        let t = outlier_tensor(8192, 5);
        let q4 = OliveQuantizer::int4().quantize(&t).dequantize();
        let q8 = OliveQuantizer::int8().quantize(&t).dequantize();
        assert!(t.mse(&q8) < t.mse(&q4));
    }

    #[test]
    fn flint4_works_end_to_end() {
        let t = outlier_tensor(4096, 6);
        let q = OliveQuantizer::flint4().quantize(&t);
        let back = q.dequantize();
        assert!(t.mse(&back) < 0.6);
        assert_eq!(q.spec().abfloat_bias, 3);
    }

    #[test]
    fn odd_length_tensor_round_trips() {
        let t = Tensor::from_vec(vec![1, 5], vec![0.5, -0.25, 30.0, 0.125, 1.0]);
        let q = OliveQuantizer::int4().quantize(&t);
        let back = q.dequantize();
        assert_eq!(back.len(), 5);
        assert!((back[2] - 30.0).abs() / 30.0 < 0.35);
    }

    #[test]
    fn constant_tensor_is_exact() {
        let t = Tensor::full(vec![16], 2.0);
        let q = OliveQuantizer::int4().quantize(&t);
        let back = q.dequantize();
        for i in 0..t.len() {
            assert!((back[i] - 2.0).abs() < 1e-6);
        }
    }

    #[test]
    fn all_zero_tensor_is_exact() {
        let t = Tensor::zeros(vec![8, 8]);
        let q = OliveQuantizer::int4().quantize(&t);
        assert_eq!(q.dequantize(), t);
    }

    #[test]
    fn outlier_pair_fraction_matches_planting_rate() {
        let t = outlier_tensor(16_384, 7);
        let q = OliveQuantizer::int4().quantize(&t);
        let frac = q.outlier_pair_fraction();
        // ~0.5% of elements are planted outliers => ~1% of pairs contain one,
        // plus whatever the MSE search promotes. It must stay small.
        assert!(frac > 0.001 && frac < 0.2, "fraction = {}", frac);
    }

    #[test]
    fn expint_decode_matches_dequantize() {
        let t = outlier_tensor(2048, 8);
        let q = OliveQuantizer::int4().quantize(&t);
        let back = q.dequantize();
        let pairs = q.decode_expints();
        assert_eq!(pairs.len(), t.len());
        for (i, p) in pairs.iter().enumerate() {
            let real = p.value() as f32 * q.spec().scale;
            assert!((real - back[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn scale_search_beats_naive_max_scaling() {
        // With heavy outliers, scaling by the max (so nothing clips) is far
        // worse than the OVP search that keeps normal-value resolution.
        let t = outlier_tensor(8192, 9);
        let quant = OliveQuantizer::int4();
        let searched = quant.quantize(&t);
        let naive_scale = t.max_abs() / 7.0;
        let naive = quant.quantize_with_scale(&t, naive_scale);
        assert!(t.mse(&searched.dequantize()) < t.mse(&naive.dequantize()));
    }

    #[test]
    fn packed_plan_matches_decode_expints() {
        for quant in [
            OliveQuantizer::int4(),
            OliveQuantizer::flint4(),
            OliveQuantizer::int8(),
        ] {
            let t = outlier_tensor(4096, 21);
            let q = quant.quantize(&t);
            let plan = q.packed_plan();
            let values: Vec<i64> = q.decode_expints().iter().map(|e| e.value()).collect();
            assert_eq!(plan.rows(), t.shape()[0]);
            assert_eq!(plan.cols(), t.shape()[1]);
            assert_eq!(plan.grid().len(), values.len());
            let mut max_abs = 0u64;
            for (i, &v) in values.iter().enumerate() {
                assert_eq!(
                    plan.grid().get_i64(i),
                    v,
                    "scheme {:?}",
                    quant.normal_type()
                );
                max_abs = max_abs.max(v.unsigned_abs());
            }
            assert_eq!(plan.max_abs(), max_abs);
            for i in 0..plan.rows() {
                let mask = plan.row_mask(i);
                let mut abs_sum = 0u64;
                for j in 0..plan.cols() {
                    let v = values[i * plan.cols() + j];
                    abs_sum += v.unsigned_abs();
                    assert_eq!(mask[j / 64] >> (j % 64) & 1 == 1, v != 0);
                    assert_eq!(plan.col_mask(j)[i / 64] >> (i % 64) & 1 == 1, v != 0);
                }
                assert_eq!(plan.row_abs_sum(i), abs_sum);
            }
        }
    }

    #[test]
    fn packed_grid_width_is_minimal_per_scheme() {
        let t = outlier_tensor(1024, 22);
        assert!(matches!(
            OliveQuantizer::int4().quantize(&t).packed_plan().grid(),
            PackedGrid::I16(_)
        ));
        assert!(matches!(
            OliveQuantizer::flint4().quantize(&t).packed_plan().grid(),
            PackedGrid::I16(_)
        ));
        assert!(matches!(
            OliveQuantizer::int8().quantize(&t).packed_plan().grid(),
            PackedGrid::I32(_)
        ));
    }

    #[test]
    fn packed_plan_is_built_once_and_cached() {
        let q = OliveQuantizer::int4().quantize(&outlier_tensor(512, 23));
        assert!(std::ptr::eq(q.packed_plan(), q.packed_plan()));
        assert!(std::ptr::eq(q.dequantize_cached(), q.dequantize_cached()));
    }

    #[test]
    fn dequantize_cached_matches_dequantize() {
        let q = OliveQuantizer::int8().quantize(&outlier_tensor(512, 24));
        assert_eq!(q.dequantize_cached(), &q.dequantize());
    }

    #[test]
    fn prepare_packed_ignores_non_matrix_shapes() {
        let t = Tensor::from_vec(vec![16], vec![1.0; 16]);
        let q = OliveQuantizer::int4().quantize(&t);
        q.prepare_packed(); // rank-1: plan skipped, dequant cache still warmed
        assert_eq!(q.dequantize_cached(), &q.dequantize());
    }

    #[test]
    fn equality_ignores_the_caches() {
        let t = outlier_tensor(256, 25);
        let a = OliveQuantizer::int4().quantize(&t);
        let b = a.clone();
        a.prepare_packed();
        assert_eq!(a, b);
        assert_eq!(b, a);
    }

    #[test]
    fn zero_sized_matrix_has_an_empty_plan() {
        for shape in [vec![0, 5], vec![5, 0], vec![0, 0]] {
            let t = Tensor::zeros(shape.clone());
            let q = OliveQuantizer::int4().quantize(&t);
            let plan = q.packed_plan();
            assert_eq!(plan.rows(), shape[0]);
            assert_eq!(plan.cols(), shape[1]);
            assert!(plan.grid().is_empty());
            assert_eq!(plan.max_abs(), 0);
        }
    }

    #[test]
    fn shape_is_preserved() {
        let t = outlier_tensor(4096, 10);
        let q = OliveQuantizer::int4().quantize(&t);
        assert_eq!(q.shape(), t.shape());
        assert_eq!(q.dequantize().shape(), t.shape());
    }
}
