//! The model-level post-training quantization (PTQ) framework.
//!
//! The paper applies OliVe tensor-by-tensor: every weight and activation tensor
//! gets its own scale factor (Sec. 3.4) and, when mixed data types are enabled,
//! its own normal data type (`int4` vs `flint4`, Sec. 3.2). For robustness the
//! framework can escalate individual tensors to 8 bits when their 4-bit
//! round-trip error exceeds a configurable bound — the same mixed-precision
//! mechanism the paper describes for ANT, which OliVe rarely needs.
//!
//! The [`TensorQuantizer`] trait is the interface shared by OliVe and every
//! baseline in `olive-baselines`; model evaluation code only ever sees the
//! trait.

use crate::quantizer::OliveQuantizer;
use olive_dtypes::NormalDataType;
use olive_tensor::Tensor;

/// The granularity at which a quantizer computes its parameters (scale,
/// centroids, clip threshold, …).
///
/// Every quantizer in this workspace is written per-tensor; per-row (also
/// called per-channel) granularity is obtained by wrapping any of them in the
/// generic [`PerRowQuantizer`] adapter, which calibrates each row of a rank-2
/// tensor independently. Scheme spec strings select it with an `@per-row`
/// suffix (see `olive::api`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Granularity {
    /// One set of quantization parameters for the whole tensor.
    #[default]
    PerTensor,
    /// Independent parameters per row (output channel) of a rank-2 tensor.
    PerRow,
}

impl Granularity {
    /// The spec-string label (`"per-tensor"` / `"per-row"`).
    pub fn label(self) -> &'static str {
        match self {
            Granularity::PerTensor => "per-tensor",
            Granularity::PerRow => "per-row",
        }
    }
}

impl std::fmt::Display for Granularity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A tensor-granularity fake-quantizer: quantize, then dequantize.
///
/// The accuracy experiments run models with fake-quantized weights and
/// activations, which is numerically equivalent to the real packed execution
/// (see `olive_core::gemm` tests) but lets every baseline plug into the same
/// evaluation harness.
///
/// `Send + Sync` is a supertrait so one quantizer can serve every shard of a
/// batched evaluation (`olive-models` fans inference out over the
/// `olive-runtime` worker pool); all implementations are plain value types.
pub trait TensorQuantizer: Send + Sync {
    /// Human-readable name used in reports ("OliVe-4bit", "GOBO", …).
    fn name(&self) -> &str;

    /// Quantizes and dequantizes a tensor.
    fn quantize_dequantize(&self, t: &Tensor) -> Tensor;

    /// Average storage bits per element (used by the memory-traffic models).
    fn bits_per_element(&self) -> f64;

    /// Bits used for arithmetic (some baselines, e.g. GOBO, compute in FP16
    /// regardless of their storage format). Defaults to the storage width.
    fn compute_bits(&self) -> f64 {
        self.bits_per_element()
    }

    /// Whether activations are quantized too (GOBO quantizes weights only).
    fn quantizes_activations(&self) -> bool {
        true
    }

    /// Granularity at which this quantizer calibrates its parameters.
    /// Everything is per-tensor unless wrapped in [`PerRowQuantizer`].
    fn granularity(&self) -> Granularity {
        Granularity::PerTensor
    }
}

/// Boxed quantizers delegate, so adapters like [`PerRowQuantizer`] can wrap
/// `Box<dyn TensorQuantizer>` values produced by a registry.
impl<Q: TensorQuantizer + ?Sized> TensorQuantizer for Box<Q> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn quantize_dequantize(&self, t: &Tensor) -> Tensor {
        (**self).quantize_dequantize(t)
    }

    fn bits_per_element(&self) -> f64 {
        (**self).bits_per_element()
    }

    fn compute_bits(&self) -> f64 {
        (**self).compute_bits()
    }

    fn quantizes_activations(&self) -> bool {
        (**self).quantizes_activations()
    }

    fn granularity(&self) -> Granularity {
        (**self).granularity()
    }
}

/// Generic per-row granularity adapter: calibrates and quantizes each row
/// (output channel) of a rank-2 tensor independently with the wrapped
/// quantizer.
///
/// Rank-0/1 and single-row tensors are passed through to the inner quantizer
/// unchanged, so per-row and per-tensor granularity agree bit-exactly there
/// (each row is handed to the inner quantizer as a `[1, cols]` tensor and all
/// workspace quantizers are shape-agnostic).
#[derive(Debug, Clone)]
pub struct PerRowQuantizer<Q: TensorQuantizer> {
    inner: Q,
    name: String,
}

impl<Q: TensorQuantizer> PerRowQuantizer<Q> {
    /// Wraps `inner`, reporting `"<inner name>@per-row"` as the name.
    pub fn new(inner: Q) -> Self {
        let name = format!("{}@per-row", inner.name());
        PerRowQuantizer { inner, name }
    }

    /// The wrapped per-tensor quantizer.
    pub fn inner(&self) -> &Q {
        &self.inner
    }
}

impl<Q: TensorQuantizer> TensorQuantizer for PerRowQuantizer<Q> {
    fn name(&self) -> &str {
        &self.name
    }

    fn quantize_dequantize(&self, t: &Tensor) -> Tensor {
        let rows = if t.shape().len() >= 2 {
            t.shape()[0]
        } else {
            1
        };
        if rows <= 1 {
            return self.inner.quantize_dequantize(t);
        }
        let cols = t.len() / rows;
        let data = t.data();
        let mut out = Vec::with_capacity(t.len());
        for r in 0..rows {
            let row = Tensor::from_vec(vec![1, cols], data[r * cols..(r + 1) * cols].to_vec());
            out.extend_from_slice(self.inner.quantize_dequantize(&row).data());
        }
        Tensor::from_vec(t.shape().to_vec(), out)
    }

    fn bits_per_element(&self) -> f64 {
        self.inner.bits_per_element()
    }

    fn compute_bits(&self) -> f64 {
        self.inner.compute_bits()
    }

    fn quantizes_activations(&self) -> bool {
        self.inner.quantizes_activations()
    }

    fn granularity(&self) -> Granularity {
        Granularity::PerRow
    }
}

/// An identity "quantizer" representing the FP32 baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fp32Baseline;

impl TensorQuantizer for Fp32Baseline {
    fn name(&self) -> &str {
        "FP32"
    }

    fn quantize_dequantize(&self, t: &Tensor) -> Tensor {
        t.clone()
    }

    fn bits_per_element(&self) -> f64 {
        32.0
    }
}

impl TensorQuantizer for OliveQuantizer {
    fn name(&self) -> &str {
        match self.normal_type() {
            NormalDataType::Int4 => "OliVe-4bit",
            NormalDataType::Flint4 => "OliVe-4bit-flint",
            NormalDataType::Int8 => "OliVe-8bit",
        }
    }

    fn quantize_dequantize(&self, t: &Tensor) -> Tensor {
        OliveQuantizer::quantize_dequantize(self, t)
    }

    fn bits_per_element(&self) -> f64 {
        self.normal_type().bits() as f64
    }
}

/// Configuration of the OliVe PTQ framework.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PtqConfig {
    /// Try both `int4` and `flint4` per tensor and keep the better one
    /// (paper Sec. 3.2: adaptive data types for normal values).
    pub adaptive_normal_type: bool,
    /// Escalate a tensor to 8-bit OliVe when its 4-bit relative MSE exceeds
    /// this bound (`None` disables escalation; the paper's headline results
    /// are pure 4-bit).
    pub escalate_rel_mse: Option<f64>,
}

impl Default for PtqConfig {
    fn default() -> Self {
        PtqConfig {
            adaptive_normal_type: true,
            escalate_rel_mse: None,
        }
    }
}

impl PtqConfig {
    /// Pure 4-bit `int4` configuration (no adaptivity, no escalation).
    pub fn int4_only() -> Self {
        PtqConfig {
            adaptive_normal_type: false,
            escalate_rel_mse: None,
        }
    }

    /// Mixed-precision configuration: adaptive types plus 8-bit escalation.
    pub fn mixed(escalate_rel_mse: f64) -> Self {
        PtqConfig {
            adaptive_normal_type: true,
            escalate_rel_mse: Some(escalate_rel_mse),
        }
    }
}

/// Per-tensor record of a PTQ run.
#[derive(Debug, Clone, PartialEq)]
pub struct TensorReport {
    /// Name supplied by the caller (layer / tensor name).
    pub name: String,
    /// Chosen data type.
    pub chosen_type: NormalDataType,
    /// Relative MSE (MSE divided by the tensor's mean square value).
    pub rel_mse: f64,
    /// Storage bits per element.
    pub bits: f64,
}

/// Aggregated result of quantizing a collection of tensors.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PtqReport {
    /// One record per tensor.
    pub tensors: Vec<TensorReport>,
}

impl PtqReport {
    /// Average storage bits per element across all tensors (element-weighted
    /// uniformly per tensor).
    pub fn average_bits(&self) -> f64 {
        if self.tensors.is_empty() {
            return 0.0;
        }
        self.tensors.iter().map(|t| t.bits).sum::<f64>() / self.tensors.len() as f64
    }

    /// Fraction of tensors escalated to 8-bit.
    pub fn escalation_fraction(&self) -> f64 {
        if self.tensors.is_empty() {
            return 0.0;
        }
        self.tensors
            .iter()
            .filter(|t| t.chosen_type == NormalDataType::Int8)
            .count() as f64
            / self.tensors.len() as f64
    }

    /// Mean relative MSE across tensors.
    pub fn mean_rel_mse(&self) -> f64 {
        if self.tensors.is_empty() {
            return 0.0;
        }
        self.tensors.iter().map(|t| t.rel_mse).sum::<f64>() / self.tensors.len() as f64
    }
}

/// The OliVe PTQ framework: quantizes named tensors according to a
/// [`PtqConfig`] and reports what it did.
#[derive(Debug, Clone, Copy, Default)]
pub struct OlivePtq {
    config: PtqConfig,
}

impl OlivePtq {
    /// Creates a framework with the given configuration.
    pub fn new(config: PtqConfig) -> Self {
        OlivePtq { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &PtqConfig {
        &self.config
    }

    /// Quantizes and dequantizes one tensor, returning the result and the
    /// per-tensor report entry.
    pub fn quantize_tensor(&self, name: &str, t: &Tensor) -> (Tensor, TensorReport) {
        let mean_sq = if t.is_empty() {
            0.0
        } else {
            t.data()
                .iter()
                .map(|&x| (x as f64) * (x as f64))
                .sum::<f64>()
                / t.len() as f64
        };
        let rel = |deq: &Tensor| -> f64 {
            if mean_sq == 0.0 {
                0.0
            } else {
                t.mse(deq) / mean_sq
            }
        };

        let mut candidates: Vec<(NormalDataType, Tensor)> = Vec::new();
        let q_int4 = OliveQuantizer::int4().quantize_dequantize(t);
        candidates.push((NormalDataType::Int4, q_int4));
        if self.config.adaptive_normal_type {
            let q_flint = OliveQuantizer::flint4().quantize_dequantize(t);
            candidates.push((NormalDataType::Flint4, q_flint));
        }
        let (mut best_type, mut best_deq) = candidates
            .into_iter()
            .min_by(|a, b| rel(&a.1).partial_cmp(&rel(&b.1)).unwrap())
            .expect("at least one candidate");
        let mut best_rel = rel(&best_deq);

        if let Some(bound) = self.config.escalate_rel_mse {
            if best_rel > bound {
                let q8 = OliveQuantizer::int8().quantize_dequantize(t);
                best_rel = rel(&q8);
                best_deq = q8;
                best_type = NormalDataType::Int8;
            }
        }

        let report = TensorReport {
            name: name.to_string(),
            chosen_type: best_type,
            rel_mse: best_rel,
            bits: best_type.bits() as f64,
        };
        (best_deq, report)
    }

    /// Quantizes a list of named tensors and aggregates the report.
    pub fn quantize_all<'a, I>(&self, tensors: I) -> (Vec<Tensor>, PtqReport)
    where
        I: IntoIterator<Item = (&'a str, &'a Tensor)>,
    {
        let mut out = Vec::new();
        let mut report = PtqReport::default();
        for (name, t) in tensors {
            let (deq, rec) = self.quantize_tensor(name, t);
            out.push(deq);
            report.tensors.push(rec);
        }
        (out, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olive_tensor::rng::Rng;

    fn tensor_with_outliers(seed: u64) -> Tensor {
        let mut rng = Rng::seed_from(seed);
        let mut data = vec![0.0f32; 2048];
        rng.fill_normal(&mut data, 0.0, 1.0);
        for _ in 0..10 {
            let i = rng.below(2048);
            data[i] = rng.uniform_range(20.0, 60.0) as f32;
        }
        Tensor::from_vec(vec![32, 64], data)
    }

    #[test]
    fn fp32_baseline_is_identity() {
        let t = tensor_with_outliers(1);
        let q = Fp32Baseline.quantize_dequantize(&t);
        assert_eq!(q, t);
        assert_eq!(Fp32Baseline.bits_per_element(), 32.0);
    }

    #[test]
    fn olive_implements_tensor_quantizer() {
        let t = tensor_with_outliers(2);
        let q: &dyn TensorQuantizer = &OliveQuantizer::int4();
        assert_eq!(q.name(), "OliVe-4bit");
        assert_eq!(q.bits_per_element(), 4.0);
        let deq = q.quantize_dequantize(&t);
        assert!(t.mse(&deq) < 0.5);
    }

    #[test]
    fn adaptive_type_never_hurts() {
        let t = tensor_with_outliers(3);
        let fixed = OlivePtq::new(PtqConfig::int4_only());
        let adaptive = OlivePtq::new(PtqConfig::default());
        let (_, rf) = fixed.quantize_tensor("t", &t);
        let (_, ra) = adaptive.quantize_tensor("t", &t);
        assert!(ra.rel_mse <= rf.rel_mse + 1e-12);
    }

    #[test]
    fn escalation_triggers_on_tight_bound() {
        let t = tensor_with_outliers(4);
        let ptq = OlivePtq::new(PtqConfig::mixed(1e-12));
        let (_, report) = ptq.quantize_tensor("t", &t);
        assert_eq!(report.chosen_type, NormalDataType::Int8);
        assert_eq!(report.bits, 8.0);
    }

    #[test]
    fn no_escalation_with_loose_bound() {
        let t = tensor_with_outliers(5);
        let ptq = OlivePtq::new(PtqConfig::mixed(0.5));
        let (_, report) = ptq.quantize_tensor("t", &t);
        assert_ne!(report.chosen_type, NormalDataType::Int8);
    }

    #[test]
    fn report_aggregation() {
        let t1 = tensor_with_outliers(6);
        let t2 = tensor_with_outliers(7);
        let ptq = OlivePtq::new(PtqConfig::default());
        let (outs, report) = ptq.quantize_all(vec![("a", &t1), ("b", &t2)]);
        assert_eq!(outs.len(), 2);
        assert_eq!(report.tensors.len(), 2);
        assert!(report.average_bits() >= 4.0);
        assert!(report.mean_rel_mse() < 0.05);
        assert_eq!(report.escalation_fraction(), 0.0);
    }

    #[test]
    fn empty_report_statistics_are_zero() {
        let r = PtqReport::default();
        assert_eq!(r.average_bits(), 0.0);
        assert_eq!(r.escalation_fraction(), 0.0);
        assert_eq!(r.mean_rel_mse(), 0.0);
    }

    #[test]
    fn per_row_matches_per_tensor_on_single_row_tensors() {
        let mut rng = Rng::seed_from(8);
        let mut data = vec![0.0f32; 256];
        rng.fill_normal(&mut data, 0.0, 1.0);
        data[7] = 40.0;
        for shape in [vec![256], vec![1, 256]] {
            let t = Tensor::from_vec(shape, data.clone());
            let per_tensor = OliveQuantizer::int4().quantize_dequantize(&t);
            let per_row = PerRowQuantizer::new(OliveQuantizer::int4()).quantize_dequantize(&t);
            assert_eq!(per_tensor, per_row);
        }
    }

    #[test]
    fn per_row_calibrates_rows_independently() {
        // Two rows with wildly different magnitudes: one shared per-tensor
        // scale must lose against independent per-row scales.
        let mut rng = Rng::seed_from(9);
        let mut data = vec![0.0f32; 512];
        rng.fill_normal(&mut data[..256], 0.0, 1.0);
        rng.fill_normal(&mut data[256..], 0.0, 1000.0);
        let t = Tensor::from_vec(vec![2, 256], data);
        let q = OliveQuantizer::int4();
        let per_tensor = q.quantize_dequantize(&t);
        let per_row = PerRowQuantizer::new(q).quantize_dequantize(&t);
        // The shared per-tensor scale is set by the huge second row and
        // crushes the unit-scale first row; per-row calibration must
        // reconstruct that row far better.
        let first_row_mse = |approx: &Tensor| -> f64 {
            (0..256)
                .map(|i| ((approx[i] - t[i]) as f64).powi(2))
                .sum::<f64>()
                / 256.0
        };
        let pt = first_row_mse(&per_tensor);
        let pr = first_row_mse(&per_row);
        assert!(pr < pt * 0.5, "per-row {} vs per-tensor {}", pr, pt);
    }

    #[test]
    fn per_row_adapter_reports_name_and_granularity() {
        let q = PerRowQuantizer::new(OliveQuantizer::int4());
        assert_eq!(q.name(), "OliVe-4bit@per-row");
        assert_eq!(q.granularity(), Granularity::PerRow);
        assert_eq!(q.bits_per_element(), 4.0);
        assert_eq!(OliveQuantizer::int4().granularity(), Granularity::PerTensor);
        assert_eq!(Granularity::PerRow.to_string(), "per-row");
    }

    #[test]
    fn boxed_quantizers_delegate() {
        let boxed: Box<dyn TensorQuantizer> = Box::new(OliveQuantizer::int4());
        assert_eq!(boxed.name(), "OliVe-4bit");
        let wrapped = PerRowQuantizer::new(boxed);
        assert_eq!(wrapped.name(), "OliVe-4bit@per-row");
        let t = tensor_with_outliers(10);
        assert_eq!(wrapped.quantize_dequantize(&t).shape(), t.shape());
    }

    #[test]
    fn per_row_preserves_shape_and_handles_empty() {
        let q = PerRowQuantizer::new(OliveQuantizer::int4());
        let t = Tensor::zeros(vec![4, 8]);
        assert_eq!(q.quantize_dequantize(&t), t);
        let empty = Tensor::zeros(vec![0, 8]);
        assert_eq!(q.quantize_dequantize(&empty).shape(), &[0, 8]);
    }
}
