//! Bit-accurate quantized GEMM on packed OVP tensors.
//!
//! The accuracy experiments execute matrix multiplications the way the OliVe
//! hardware would: both operands are decoded into exponent-integer pairs, all
//! products and partial sums are integers, and only the final accumulator is
//! rescaled by `scale_A · scale_B`. Because
//! `(b << a) · (d << c) = (b·d) << (a+c)`, evaluating each operand's integer
//! value once and multiplying in `i64` is arithmetically identical to the
//! shift-and-add MAC of Sec. 4.4 while being much faster to simulate.
//!
//! # Decode-once, branch-free execution
//!
//! [`quantized_matmul`] runs on each operand's cached [`PackedPlan`] (built
//! lazily on first use, reused across calls) instead of re-decoding the byte
//! stream per invocation. The hot loop is branch-free: per output row it
//! first proves via the magnitude pre-bound `Σ|a_row| · max|b| ≤ i32::MAX`
//! that no partial sum can leave the `i32` range — in which case products are
//! accumulated in `i32` (any association, including SIMD lanes, is exact),
//! `zero_operand_macs` is reconstructed exactly from the plans' nonzero
//! bitmasks via `popcount(maskA_row & maskB_col)`, and `i32_overflows` is
//! zero by construction. Rows that fail the bound fall back to the original
//! per-MAC prefix-checked path. Inner axpy steps dispatch to scalar, SSE2 or
//! AVX2 code via [`crate::simd`] (`OLIVE_SIMD` overrides auto-detection).
//!
//! Every path — packed scalar, SSE2, AVX2, any thread count — is
//! bit-identical to [`reference_quantized_matmul`], the pre-refactor kernel
//! kept in-tree as the oracle, statistics included.

use crate::quantizer::{OvpTensor, PackedGrid, PackedPlan};
use crate::simd::{self, SimdPath};
use olive_tensor::Tensor;
use std::ops::Range;
use std::sync::OnceLock;

/// Statistics gathered while executing a quantized GEMM.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QuantGemmStats {
    /// Total MAC operations.
    pub macs: u64,
    /// Number of MACs in which at least one operand was zero (victims and
    /// quantized-to-zero values) — these could be skipped by a zero-gating PE.
    pub zero_operand_macs: u64,
    /// Number of partial sums that exceeded the int32 range at some point
    /// (diagnostic; should be zero with clipped outliers and realistic K).
    pub i32_overflows: u64,
}

impl QuantGemmStats {
    /// Accumulates another shard's counters into `self`.
    ///
    /// All fields are integer sums, so merging per-row-block partials in any
    /// order yields exactly the counters a sequential pass would produce —
    /// this is what keeps the parallel [`quantized_matmul`] bit-identical to
    /// the sequential one, statistics included.
    pub fn merge(&mut self, other: QuantGemmStats) {
        self.macs += other.macs;
        self.zero_operand_macs += other.zero_operand_macs;
        self.i32_overflows += other.i32_overflows;
    }
}

/// The pre-refactor block kernel, kept in-tree as the bit-identity oracle
/// for the packed/SIMD paths (and as the "legacy decode" bench baseline).
///
/// Computes output rows `rows` of the integer-domain GEMM into `out` (which
/// holds exactly those rows), returning the shard's statistics. The per-cell
/// `k` accumulation order is ascending regardless of how rows are sharded.
pub fn reference_gemm_block(
    av: &[i64],
    bv: &[i64],
    k: usize,
    n: usize,
    rows: Range<usize>,
    rescale: f64,
    out: &mut [f32],
) -> QuantGemmStats {
    let mut stats = QuantGemmStats::default();
    for (ri, i) in rows.enumerate() {
        let arow = &av[i * k..(i + 1) * k];
        let orow = &mut out[ri * n..(ri + 1) * n];
        for (j, o) in orow.iter_mut().enumerate() {
            let mut acc: i64 = 0;
            let mut overflowed = false;
            for kk in 0..k {
                let x = arow[kk];
                let y = bv[kk * n + j];
                if x == 0 || y == 0 {
                    stats.zero_operand_macs += 1;
                }
                acc += x * y;
                if acc > i32::MAX as i64 || acc < i32::MIN as i64 {
                    overflowed = true;
                }
            }
            stats.macs += k as u64;
            if overflowed {
                stats.i32_overflows += 1;
            }
            *o = (acc as f64 * rescale) as f32;
        }
    }
    stats
}

/// The pre-refactor `quantized_matmul`: decodes both operands on every call
/// and runs [`reference_gemm_block`] sequentially. This is the oracle the
/// property suite compares the packed/SIMD kernel against bit-for-bit, and
/// the "legacy decode" row in the quantized_gemm bench table.
///
/// # Panics
///
/// Panics if the operands are not rank-2 or the inner dimensions differ.
pub fn reference_quantized_matmul(a: &OvpTensor, b: &OvpTensor) -> (Tensor, QuantGemmStats) {
    let (m, k) = shape2(a);
    let (kb, n) = shape2(b);
    assert_eq!(k, kb, "quantized_matmul inner dimensions mismatch");
    let av: Vec<i64> = a.decode_expints().iter().map(|p| p.value()).collect();
    let bv: Vec<i64> = b.decode_expints().iter().map(|p| p.value()).collect();
    let mut out = vec![0.0f32; m * n];
    let rescale = a.spec().scale as f64 * b.spec().scale as f64;
    let stats = reference_gemm_block(&av, &bv, k, n, 0..m, rescale, &mut out);
    (Tensor::from_vec(vec![m, n], out), stats)
}

/// Runs one fast-path output row: `acc[j] += a_row[kk] * b[kk][j]` over the
/// packed grids, `a` broadcast per `kk`, rows of `B` contiguous. Zero `a`
/// entries contribute nothing to the integer sum and are skipped (the same
/// zero-gating the paper's PEs perform); `k` still ascends, though under the
/// pre-bound the result is order-independent anyway.
fn fast_row<A: Copy + Into<i32>>(
    arow: &[A],
    bg: &PackedGrid,
    n: usize,
    acc: &mut [i32],
    path: SimdPath,
) {
    for (kk, &a) in arow.iter().enumerate() {
        let a: i32 = a.into();
        if a == 0 {
            continue;
        }
        match bg {
            PackedGrid::I16(g) => simd::axpy_i16(acc, a, &g[kk * n..(kk + 1) * n], path),
            PackedGrid::I32(g) => simd::axpy_i32(acc, a, &g[kk * n..(kk + 1) * n], path),
        }
    }
}

/// The per-GEMM invariants shared by every row kernel: both packed plans,
/// the `[m, k] × [k, n]` geometry, the final rescale factor and the SIMD
/// path resolved once on the calling thread (pool workers inherit it by
/// value, so dispatch never depends on worker-thread environment reads).
struct PackedGemm<'a> {
    pa: &'a PackedPlan,
    pb: &'a PackedPlan,
    k: usize,
    n: usize,
    rescale: f64,
    path: SimdPath,
}

impl PackedGemm<'_> {
    /// Exact-fallback output row for operands whose magnitude pre-bound does
    /// not fit `i32`: byte-for-byte the [`reference_gemm_block`] inner loop
    /// (i64 accumulator, per-MAC zero branch, prefix overflow check), reading
    /// the packed grids widened to `i64`. `stats.macs` is accounted by the
    /// caller.
    fn exact_row(&self, i: usize, orow: &mut [f32], stats: &mut QuantGemmStats) {
        let (k, n) = (self.k, self.n);
        let (ag, bg) = (self.pa.grid(), self.pb.grid());
        for (j, o) in orow.iter_mut().enumerate() {
            let mut acc: i64 = 0;
            let mut overflowed = false;
            for kk in 0..k {
                let x = ag.get_i64(i * k + kk);
                let y = bg.get_i64(kk * n + j);
                if x == 0 || y == 0 {
                    stats.zero_operand_macs += 1;
                }
                acc += x * y;
                if acc > i32::MAX as i64 || acc < i32::MIN as i64 {
                    overflowed = true;
                }
            }
            if overflowed {
                stats.i32_overflows += 1;
            }
            *o = (acc as f64 * self.rescale) as f32;
        }
    }

    /// Computes output rows `rows` into `out` from the packed plans.
    ///
    /// Per row: if `Σ|a_row| · max|b|` fits `i32`, no partial sum of any
    /// output cell in the row can wrap (every ascending-`k` prefix is bounded
    /// by the same sum of magnitudes), so the row runs branch-free in `i32`
    /// with exact mask-derived statistics; otherwise it runs the reference
    /// fallback. The choice depends only on the operands, never on sharding —
    /// bit-identity holds at every thread count.
    fn block(&self, rows: Range<usize>, out: &mut [f32]) -> QuantGemmStats {
        let (k, n) = (self.k, self.n);
        let mut stats = QuantGemmStats::default();
        let words = k.div_ceil(64);
        let mut acc = vec![0i32; n];
        for (ri, i) in rows.enumerate() {
            let orow = &mut out[ri * n..(ri + 1) * n];
            stats.macs += (n * k) as u64;
            let fits_i32 = u128::from(self.pa.row_abs_sum(i)) * u128::from(self.pb.max_abs())
                <= u128::from(i32::MAX as u32);
            if fits_i32 {
                acc.fill(0);
                match self.pa.grid() {
                    PackedGrid::I16(ag) => fast_row(
                        &ag[i * k..(i + 1) * k],
                        self.pb.grid(),
                        n,
                        &mut acc,
                        self.path,
                    ),
                    PackedGrid::I32(ag) => fast_row(
                        &ag[i * k..(i + 1) * k],
                        self.pb.grid(),
                        n,
                        &mut acc,
                        self.path,
                    ),
                }
                for (o, &v) in orow.iter_mut().zip(acc.iter()) {
                    *o = (f64::from(v) * self.rescale) as f32;
                }
                let amask = self.pa.row_mask(i);
                let mut nonzero_macs = 0u64;
                for j in 0..n {
                    let bmask = self.pb.col_mask(j);
                    for w in 0..words {
                        nonzero_macs += u64::from((amask[w] & bmask[w]).count_ones());
                    }
                }
                stats.zero_operand_macs += (n * k) as u64 - nonzero_macs;
            } else {
                self.exact_row(i, orow, &mut stats);
            }
        }
        stats
    }
}

/// Computes `C = A × B` where both operands are OVP-quantized tensors.
///
/// `a` must be `[m, k]` and `b` must be `[k, n]`. The result is a dense `f32`
/// tensor `A·B` evaluated in the quantized domain (integer MACs, final
/// rescale). Zero-sized shapes (`m`, `k` or `n` equal to 0) are valid.
///
/// Operands are decoded at most once per tensor (the cached
/// [`PackedPlan`]s); the kernel itself is the branch-free packed loop
/// described in the module docs, SIMD-dispatched per process. Large products
/// run row blocks in parallel on the [`olive_runtime`] pool with lock-free
/// per-block statistics slots merged in ascending row order, so both the
/// result tensor and the statistics are bit-identical to the sequential
/// path — and to [`reference_quantized_matmul`] — at every thread count and
/// on every SIMD path.
///
/// # Panics
///
/// Panics if the operands are not rank-2 or the inner dimensions differ.
pub fn quantized_matmul(a: &OvpTensor, b: &OvpTensor) -> (Tensor, QuantGemmStats) {
    let (m, k) = shape2(a);
    let (kb, n) = shape2(b);
    assert_eq!(k, kb, "quantized_matmul inner dimensions mismatch");

    let gemm = PackedGemm {
        pa: a.packed_plan(),
        pb: b.packed_plan(),
        k,
        n,
        rescale: a.spec().scale as f64 * b.spec().scale as f64,
        path: simd::resolve_path(),
    };

    let mut stats = QuantGemmStats::default();
    let mut out = vec![0.0f32; m * n];

    let work = m as u64 * k as u64 * n as u64;
    if olive_runtime::should_parallelize(m, work) {
        // One pre-sized slot per possible block start: lock-free (each block
        // writes its own slot exactly once) and merged in ascending row
        // order, so the merge order never depends on scheduling.
        let slots: Vec<OnceLock<QuantGemmStats>> = (0..m).map(|_| OnceLock::new()).collect();
        olive_runtime::par_rows_mut(m, n, &mut out, |rows, block| {
            let start = rows.start;
            let local = gemm.block(rows, block);
            slots[start]
                .set(local)
                .expect("quantized_matmul: row block computed twice");
        });
        for slot in &slots {
            if let Some(local) = slot.get() {
                stats.merge(*local);
            }
        }
    } else {
        stats = gemm.block(0..m, &mut out);
    }
    (Tensor::from_vec(vec![m, n], out), stats)
}

/// Computes `C = A × B` where only `B` (typically the weights) is quantized and
/// `A` stays in floating point — the weight-only setting used by the GOBO
/// comparison (paper Tbl. 7). The dequantized `B` is cached on the operand,
/// so repeated calls against the same prepared weights decode once.
///
/// # Panics
///
/// Panics if the operands are not rank-2 or the inner dimensions differ.
pub fn weight_only_matmul(a: &Tensor, b: &OvpTensor) -> Tensor {
    olive_tensor::matmul::matmul(a, b.dequantize_cached())
}

fn shape2(t: &OvpTensor) -> (usize, usize) {
    let s = t.shape();
    assert_eq!(s.len(), 2, "quantized GEMM requires rank-2 tensors");
    (s[0], s[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantizer::OliveQuantizer;
    use olive_tensor::matmul::matmul;
    use olive_tensor::rng::Rng;

    fn random_tensor(shape: Vec<usize>, seed: u64, outliers: usize) -> Tensor {
        let mut rng = Rng::seed_from(seed);
        let n: usize = shape.iter().product();
        let mut data = vec![0.0f32; n];
        rng.fill_normal(&mut data, 0.0, 1.0);
        for _ in 0..outliers {
            let i = rng.below(n);
            data[i] =
                rng.uniform_range(15.0, 40.0) as f32 * if rng.chance(0.5) { 1.0 } else { -1.0 };
        }
        Tensor::from_vec(shape, data)
    }

    /// Asserts packed == reference bit-for-bit: outputs and statistics.
    fn assert_matches_reference(
        qa: &crate::quantizer::OvpTensor,
        qb: &crate::quantizer::OvpTensor,
    ) {
        let (want, want_stats) = reference_quantized_matmul(qa, qb);
        for path in [SimdPath::Scalar, SimdPath::Sse2, SimdPath::Avx2] {
            if !path.supported() {
                continue;
            }
            let (got, got_stats) = simd::with_simd(Some(path), || quantized_matmul(qa, qb));
            assert_eq!(got_stats, want_stats, "stats diverged on {path}");
            assert_eq!(got.shape(), want.shape());
            for i in 0..want.len() {
                assert_eq!(got[i].to_bits(), want[i].to_bits(), "cell {i} on {path}");
            }
        }
    }

    #[test]
    fn quantized_gemm_tracks_float_gemm() {
        let a = random_tensor(vec![16, 64], 1, 4);
        let b = random_tensor(vec![64, 24], 2, 8);
        let qa = OliveQuantizer::int4().quantize(&a);
        let qb = OliveQuantizer::int4().quantize(&b);
        let (qc, stats) = quantized_matmul(&qa, &qb);
        let c = matmul(&a, &b);
        // Relative Frobenius error should be modest for 4-bit quantization.
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for i in 0..c.len() {
            num += ((qc[i] - c[i]) as f64).powi(2);
            den += (c[i] as f64).powi(2);
        }
        let rel = (num / den.max(1e-12)).sqrt();
        assert!(rel < 0.25, "relative error {}", rel);
        assert_eq!(stats.macs, (16 * 24 * 64) as u64);
        assert_eq!(stats.i32_overflows, 0);
    }

    #[test]
    fn quantized_gemm_matches_dequantized_float_gemm_exactly() {
        // The integer-domain GEMM must equal the float GEMM over the
        // *dequantized* operands (up to f32 rounding of the final rescale):
        // this is the bit-accuracy property of the MAC model.
        let a = random_tensor(vec![8, 32], 3, 2);
        let b = random_tensor(vec![32, 8], 4, 2);
        let qa = OliveQuantizer::int4().quantize(&a);
        let qb = OliveQuantizer::int4().quantize(&b);
        let (qc, _) = quantized_matmul(&qa, &qb);
        let ref_c = matmul(&qa.dequantize(), &qb.dequantize());
        for i in 0..qc.len() {
            let diff = (qc[i] - ref_c[i]).abs();
            let tol = 1e-3 * ref_c[i].abs().max(1.0);
            assert!(diff <= tol, "idx {}: {} vs {}", i, qc[i], ref_c[i]);
        }
    }

    #[test]
    fn int8_gemm_is_more_accurate_than_int4_gemm() {
        let a = random_tensor(vec![12, 48], 5, 4);
        let b = random_tensor(vec![48, 12], 6, 4);
        let c = matmul(&a, &b);
        let err = |q: &Tensor| -> f64 {
            let mut s = 0.0;
            for i in 0..c.len() {
                s += ((q[i] - c[i]) as f64).powi(2);
            }
            s
        };
        let (c4, _) = quantized_matmul(
            &OliveQuantizer::int4().quantize(&a),
            &OliveQuantizer::int4().quantize(&b),
        );
        let (c8, _) = quantized_matmul(
            &OliveQuantizer::int8().quantize(&a),
            &OliveQuantizer::int8().quantize(&b),
        );
        assert!(err(&c8) < err(&c4));
    }

    #[test]
    fn weight_only_matmul_uses_float_activations() {
        let a = random_tensor(vec![4, 16], 7, 0);
        let b = random_tensor(vec![16, 4], 8, 1);
        let qb = OliveQuantizer::int4().quantize(&b);
        let c = weight_only_matmul(&a, &qb);
        let ref_c = matmul(&a, &qb.dequantize());
        assert_eq!(c, ref_c);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn mismatched_inner_dims_panic() {
        let a = random_tensor(vec![4, 8], 9, 0);
        let b = random_tensor(vec![9, 4], 10, 0);
        let qa = OliveQuantizer::int4().quantize(&a);
        let qb = OliveQuantizer::int4().quantize(&b);
        let _ = quantized_matmul(&qa, &qb);
    }

    #[test]
    fn zero_operand_macs_are_counted() {
        let a = Tensor::zeros(vec![2, 4]);
        let b = random_tensor(vec![4, 2], 11, 0);
        let qa = OliveQuantizer::int4().quantize(&a);
        let qb = OliveQuantizer::int4().quantize(&b);
        let (_, stats) = quantized_matmul(&qa, &qb);
        assert_eq!(stats.zero_operand_macs, stats.macs);
    }

    #[test]
    fn packed_kernel_matches_reference_across_schemes() {
        let a = random_tensor(vec![16, 48], 12, 6);
        let b = random_tensor(vec![48, 24], 13, 6);
        for quant in [
            OliveQuantizer::int4(),
            OliveQuantizer::flint4(),
            OliveQuantizer::int8(),
        ] {
            assert_matches_reference(&quant.quantize(&a), &quant.quantize(&b));
        }
    }

    #[test]
    fn mixed_scheme_operands_match_reference() {
        // int8 activations × int4 weights: i32 grid against i16 grid, with
        // broadcast values too wide for the SSE2 16-bit multiply (exercises
        // its scalar degradation).
        let a = random_tensor(vec![8, 40], 14, 8);
        let b = random_tensor(vec![40, 12], 15, 4);
        let qa = OliveQuantizer::int8().quantize(&a);
        let qb = OliveQuantizer::int4().quantize(&b);
        assert_matches_reference(&qa, &qb);
    }

    #[test]
    fn int4_activations_against_int8_weights_match_reference() {
        // The transposed mix: i16 grid for A, i32 grid for B.
        let a = random_tensor(vec![12, 40], 20, 4);
        let b = random_tensor(vec![40, 8], 21, 8);
        let qa = OliveQuantizer::int4().quantize(&a);
        let qb = OliveQuantizer::int8().quantize(&b);
        assert_matches_reference(&qa, &qb);
    }

    #[test]
    fn overflow_fallback_matches_reference_and_counts() {
        // Quantizing huge constants at a tiny explicit scale drives the int8
        // grid to its E4M3 ceiling (~7.86e6), so a single MAC already leaves
        // the i32 range: the magnitude pre-bound must reject the fast path
        // and the exact fallback must reproduce the reference prefix checks.
        let quant = OliveQuantizer::int8();
        let qa = quant.quantize_with_scale(&Tensor::full(vec![4, 8], 1000.0), 1e-4);
        let qb = quant.quantize_with_scale(&Tensor::full(vec![8, 5], 1000.0), 1e-4);
        let (_, stats) = reference_quantized_matmul(&qa, &qb);
        assert!(stats.i32_overflows > 0, "setup failed to overflow");
        assert_matches_reference(&qa, &qb);
    }

    #[test]
    fn zero_sized_dims_match_reference() {
        let quant = OliveQuantizer::int4();
        for (sa, sb) in [
            (vec![0, 8], vec![8, 4]),
            (vec![4, 0], vec![0, 8]),
            (vec![4, 8], vec![8, 0]),
            (vec![0, 0], vec![0, 0]),
        ] {
            let qa = quant.quantize(&random_tensor(sa, 16, 0));
            let qb = quant.quantize(&random_tensor(sb, 17, 0));
            assert_matches_reference(&qa, &qb);
        }
    }

    #[test]
    fn weight_only_matmul_caches_the_dequantized_weights() {
        let a = random_tensor(vec![4, 16], 18, 0);
        let b = random_tensor(vec![16, 4], 19, 1);
        let qb = OliveQuantizer::int4().quantize(&b);
        let first = weight_only_matmul(&a, &qb);
        let second = weight_only_matmul(&a, &qb);
        assert_eq!(first, second);
        assert!(std::ptr::eq(qb.dequantize_cached(), qb.dequantize_cached()));
    }
}
