//! Bit-accurate quantized GEMM on packed OVP tensors.
//!
//! The accuracy experiments execute matrix multiplications the way the OliVe
//! hardware would: both operands are decoded into exponent-integer pairs, all
//! products and partial sums are integers, and only the final accumulator is
//! rescaled by `scale_A · scale_B`. Because
//! `(b << a) · (d << c) = (b·d) << (a+c)`, evaluating each operand's integer
//! value once and multiplying in `i64` is arithmetically identical to the
//! shift-and-add MAC of Sec. 4.4 while being much faster to simulate.

use crate::quantizer::OvpTensor;
use olive_tensor::Tensor;
use std::ops::Range;
use std::sync::Mutex;

/// Statistics gathered while executing a quantized GEMM.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QuantGemmStats {
    /// Total MAC operations.
    pub macs: u64,
    /// Number of MACs in which at least one operand was zero (victims and
    /// quantized-to-zero values) — these could be skipped by a zero-gating PE.
    pub zero_operand_macs: u64,
    /// Number of partial sums that exceeded the int32 range at some point
    /// (diagnostic; should be zero with clipped outliers and realistic K).
    pub i32_overflows: u64,
}

impl QuantGemmStats {
    /// Accumulates another shard's counters into `self`.
    ///
    /// All fields are integer sums, so merging per-row-block partials in any
    /// order yields exactly the counters a sequential pass would produce —
    /// this is what keeps the parallel [`quantized_matmul`] bit-identical to
    /// the sequential one, statistics included.
    pub fn merge(&mut self, other: QuantGemmStats) {
        self.macs += other.macs;
        self.zero_operand_macs += other.zero_operand_macs;
        self.i32_overflows += other.i32_overflows;
    }
}

/// Computes output rows `rows` of the integer-domain GEMM into `out` (which
/// holds exactly those rows), returning the shard's statistics. The per-cell
/// `k` accumulation order is ascending regardless of how rows are sharded.
fn quantized_gemm_block(
    av: &[i64],
    bv: &[i64],
    k: usize,
    n: usize,
    rows: Range<usize>,
    rescale: f64,
    out: &mut [f32],
) -> QuantGemmStats {
    let mut stats = QuantGemmStats::default();
    for (ri, i) in rows.enumerate() {
        let arow = &av[i * k..(i + 1) * k];
        let orow = &mut out[ri * n..(ri + 1) * n];
        for (j, o) in orow.iter_mut().enumerate() {
            let mut acc: i64 = 0;
            let mut overflowed = false;
            for kk in 0..k {
                let x = arow[kk];
                let y = bv[kk * n + j];
                if x == 0 || y == 0 {
                    stats.zero_operand_macs += 1;
                }
                acc += x * y;
                if acc > i32::MAX as i64 || acc < i32::MIN as i64 {
                    overflowed = true;
                }
            }
            stats.macs += k as u64;
            if overflowed {
                stats.i32_overflows += 1;
            }
            *o = (acc as f64 * rescale) as f32;
        }
    }
    stats
}

/// Computes `C = A × B` where both operands are OVP-quantized tensors.
///
/// `a` must be `[m, k]` and `b` must be `[k, n]`. The result is a dense `f32`
/// tensor `A·B` evaluated in the quantized domain (integer MACs, final
/// rescale). Zero-sized shapes (`m`, `k` or `n` equal to 0) are valid.
///
/// Large products run row blocks in parallel on the [`olive_runtime`] pool;
/// per-shard [`QuantGemmStats`] are merged with integer addition, so both the
/// result tensor and the statistics are bit-identical to the sequential path
/// at every thread count.
///
/// # Panics
///
/// Panics if the operands are not rank-2 or the inner dimensions differ.
pub fn quantized_matmul(a: &OvpTensor, b: &OvpTensor) -> (Tensor, QuantGemmStats) {
    let (m, k) = shape2(a);
    let (kb, n) = shape2(b);
    assert_eq!(k, kb, "quantized_matmul inner dimensions mismatch");

    // Decode once into integer grids.
    let av: Vec<i64> = a.decode_expints().iter().map(|p| p.value()).collect();
    let bv: Vec<i64> = b.decode_expints().iter().map(|p| p.value()).collect();

    let mut stats = QuantGemmStats::default();
    let mut out = vec![0.0f32; m * n];
    let rescale = a.spec().scale as f64 * b.spec().scale as f64;

    let work = m as u64 * k as u64 * n as u64;
    if olive_runtime::should_parallelize(m, work) {
        let shards: Mutex<Vec<QuantGemmStats>> = Mutex::new(Vec::new());
        olive_runtime::par_rows_mut(m, n, &mut out, |rows, block| {
            let local = quantized_gemm_block(&av, &bv, k, n, rows, rescale, block);
            olive_runtime::lock_or_recover(&shards).push(local);
        });
        // A panicked range already re-threw inside par_rows_mut.
        for shard in shards
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
        {
            stats.merge(shard);
        }
    } else {
        stats = quantized_gemm_block(&av, &bv, k, n, 0..m, rescale, &mut out);
    }
    (Tensor::from_vec(vec![m, n], out), stats)
}

/// Computes `C = A × B` where only `B` (typically the weights) is quantized and
/// `A` stays in floating point — the weight-only setting used by the GOBO
/// comparison (paper Tbl. 7).
///
/// # Panics
///
/// Panics if the operands are not rank-2 or the inner dimensions differ.
pub fn weight_only_matmul(a: &Tensor, b: &OvpTensor) -> Tensor {
    let b_deq = b.dequantize();
    olive_tensor::matmul::matmul(a, &b_deq)
}

fn shape2(t: &OvpTensor) -> (usize, usize) {
    let s = t.shape();
    assert_eq!(s.len(), 2, "quantized GEMM requires rank-2 tensors");
    (s[0], s[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantizer::OliveQuantizer;
    use olive_tensor::matmul::matmul;
    use olive_tensor::rng::Rng;

    fn random_tensor(shape: Vec<usize>, seed: u64, outliers: usize) -> Tensor {
        let mut rng = Rng::seed_from(seed);
        let n: usize = shape.iter().product();
        let mut data = vec![0.0f32; n];
        rng.fill_normal(&mut data, 0.0, 1.0);
        for _ in 0..outliers {
            let i = rng.below(n);
            data[i] =
                rng.uniform_range(15.0, 40.0) as f32 * if rng.chance(0.5) { 1.0 } else { -1.0 };
        }
        Tensor::from_vec(shape, data)
    }

    #[test]
    fn quantized_gemm_tracks_float_gemm() {
        let a = random_tensor(vec![16, 64], 1, 4);
        let b = random_tensor(vec![64, 24], 2, 8);
        let qa = OliveQuantizer::int4().quantize(&a);
        let qb = OliveQuantizer::int4().quantize(&b);
        let (qc, stats) = quantized_matmul(&qa, &qb);
        let c = matmul(&a, &b);
        // Relative Frobenius error should be modest for 4-bit quantization.
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for i in 0..c.len() {
            num += ((qc[i] - c[i]) as f64).powi(2);
            den += (c[i] as f64).powi(2);
        }
        let rel = (num / den.max(1e-12)).sqrt();
        assert!(rel < 0.25, "relative error {}", rel);
        assert_eq!(stats.macs, (16 * 24 * 64) as u64);
        assert_eq!(stats.i32_overflows, 0);
    }

    #[test]
    fn quantized_gemm_matches_dequantized_float_gemm_exactly() {
        // The integer-domain GEMM must equal the float GEMM over the
        // *dequantized* operands (up to f32 rounding of the final rescale):
        // this is the bit-accuracy property of the MAC model.
        let a = random_tensor(vec![8, 32], 3, 2);
        let b = random_tensor(vec![32, 8], 4, 2);
        let qa = OliveQuantizer::int4().quantize(&a);
        let qb = OliveQuantizer::int4().quantize(&b);
        let (qc, _) = quantized_matmul(&qa, &qb);
        let ref_c = matmul(&qa.dequantize(), &qb.dequantize());
        for i in 0..qc.len() {
            let diff = (qc[i] - ref_c[i]).abs();
            let tol = 1e-3 * ref_c[i].abs().max(1.0);
            assert!(diff <= tol, "idx {}: {} vs {}", i, qc[i], ref_c[i]);
        }
    }

    #[test]
    fn int8_gemm_is_more_accurate_than_int4_gemm() {
        let a = random_tensor(vec![12, 48], 5, 4);
        let b = random_tensor(vec![48, 12], 6, 4);
        let c = matmul(&a, &b);
        let err = |q: &Tensor| -> f64 {
            let mut s = 0.0;
            for i in 0..c.len() {
                s += ((q[i] - c[i]) as f64).powi(2);
            }
            s
        };
        let (c4, _) = quantized_matmul(
            &OliveQuantizer::int4().quantize(&a),
            &OliveQuantizer::int4().quantize(&b),
        );
        let (c8, _) = quantized_matmul(
            &OliveQuantizer::int8().quantize(&a),
            &OliveQuantizer::int8().quantize(&b),
        );
        assert!(err(&c8) < err(&c4));
    }

    #[test]
    fn weight_only_matmul_uses_float_activations() {
        let a = random_tensor(vec![4, 16], 7, 0);
        let b = random_tensor(vec![16, 4], 8, 1);
        let qb = OliveQuantizer::int4().quantize(&b);
        let c = weight_only_matmul(&a, &qb);
        let ref_c = matmul(&a, &qb.dequantize());
        assert_eq!(c, ref_c);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn mismatched_inner_dims_panic() {
        let a = random_tensor(vec![4, 8], 9, 0);
        let b = random_tensor(vec![9, 4], 10, 0);
        let qa = OliveQuantizer::int4().quantize(&a);
        let qb = OliveQuantizer::int4().quantize(&b);
        let _ = quantized_matmul(&qa, &qb);
    }

    #[test]
    fn zero_operand_macs_are_counted() {
        let a = Tensor::zeros(vec![2, 4]);
        let b = random_tensor(vec![4, 2], 11, 0);
        let qa = OliveQuantizer::int4().quantize(&a);
        let qb = OliveQuantizer::int4().quantize(&b);
        let (_, stats) = quantized_matmul(&qa, &qb);
        assert_eq!(stats.zero_operand_macs, stats.macs);
    }
}
