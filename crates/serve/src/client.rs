//! A tiny std-only HTTP/1.1 client — enough to drive the server from load
//! generators, smoke scripts and examples without curl or any crate.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Header name/value pairs.
    pub headers: Vec<(String, String)>,
    /// Body: the `Content-Length` bytes, or every chunk of a
    /// `Transfer-Encoding: chunked` response concatenated.
    pub body: String,
    /// The individual chunks of a chunked response, in arrival order
    /// (`None` for a `Content-Length`-framed response). Lets callers assert
    /// a response really streamed instead of arriving as one blob.
    pub chunks: Option<Vec<String>>,
}

impl HttpResponse {
    /// First header with this name, case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// A kept-alive connection to one server.
pub struct Connection {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Connection {
    /// Connects to `addr` with a 10-second I/O timeout.
    ///
    /// # Errors
    ///
    /// Propagates connect/configuration failures.
    pub fn open(addr: SocketAddr) -> std::io::Result<Connection> {
        let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(10))?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        stream.set_write_timeout(Some(Duration::from_secs(10)))?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Connection {
            reader,
            writer: stream,
        })
    }

    /// Issues one request and reads the full response. `body` implies POST
    /// semantics supplied by the caller via `method`.
    ///
    /// # Errors
    ///
    /// Propagates socket errors and malformed responses as `io::Error`.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<HttpResponse> {
        let body = body.unwrap_or("");
        // Head and body in one write: separate small segments would tickle
        // Nagle + delayed-ACK stalls on loopback.
        let request = format!(
            "{method} {path} HTTP/1.1\r\nHost: olive\r\nContent-Length: {}\r\nContent-Type: application/json\r\n\r\n{body}",
            body.len()
        );
        self.writer.write_all(request.as_bytes())?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    fn read_response(&mut self) -> std::io::Result<HttpResponse> {
        let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
        let status_line = self.read_line()?;
        // "HTTP/1.1 200 OK"
        let status = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| bad(format!("malformed status line '{status_line}'")))?;
        let mut headers = Vec::new();
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| bad(format!("malformed header '{line}'")))?;
            headers.push((name.trim().to_string(), value.trim().to_string()));
        }
        let chunked = headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case("transfer-encoding"))
            .is_some_and(|(_, v)| v.eq_ignore_ascii_case("chunked"));
        if chunked {
            let chunks = self.read_chunks()?;
            return Ok(HttpResponse {
                status,
                headers,
                body: chunks.concat(),
                chunks: Some(chunks),
            });
        }
        let length: usize = headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
            .map(|(_, v)| v.parse())
            .transpose()
            .map_err(|_| bad("invalid Content-Length".into()))?
            .unwrap_or(0);
        let mut body = vec![0u8; length];
        self.reader.read_exact(&mut body)?;
        let body = String::from_utf8(body).map_err(|_| bad("non-UTF-8 response body".into()))?;
        Ok(HttpResponse {
            status,
            headers,
            body,
            chunks: None,
        })
    }

    /// Decodes a chunked body: size-line-framed chunks until the terminating
    /// zero chunk (trailers, which this server never sends, are skipped up
    /// to the final blank line). Keep-alive framing stays intact, so the
    /// connection is reusable afterwards.
    fn read_chunks(&mut self) -> std::io::Result<Vec<String>> {
        let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
        let mut chunks = Vec::new();
        loop {
            let line = self.read_line()?;
            let size_token = line.split(';').next().unwrap_or("").trim();
            let size = usize::from_str_radix(size_token, 16)
                .map_err(|_| bad(format!("malformed chunk size '{line}'")))?;
            if size == 0 {
                loop {
                    if self.read_line()?.is_empty() {
                        return Ok(chunks);
                    }
                }
            }
            let mut data = vec![0u8; size];
            self.reader.read_exact(&mut data)?;
            let mut crlf = [0u8; 2];
            self.reader.read_exact(&mut crlf)?;
            if &crlf != b"\r\n" {
                return Err(bad("chunk data not CRLF-terminated".into()));
            }
            chunks.push(String::from_utf8(data).map_err(|_| bad("non-UTF-8 chunk".into()))?);
        }
    }
}

/// One-shot GET on a fresh connection.
///
/// # Errors
///
/// Propagates connection and protocol failures.
pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<HttpResponse> {
    Connection::open(addr)?.request("GET", path, None)
}

/// One-shot POST of a JSON body on a fresh connection.
///
/// # Errors
///
/// Propagates connection and protocol failures.
pub fn post_json(addr: SocketAddr, path: &str, body: &str) -> std::io::Result<HttpResponse> {
    Connection::open(addr)?.request("POST", path, Some(body))
}
