//! A tiny std-only HTTP/1.1 client — enough to drive the server from load
//! generators, smoke scripts and examples without curl or any crate.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Header name/value pairs.
    pub headers: Vec<(String, String)>,
    /// Body: the `Content-Length` bytes, or every chunk of a
    /// `Transfer-Encoding: chunked` response concatenated.
    pub body: String,
    /// The individual chunks of a chunked response, in arrival order
    /// (`None` for a `Content-Length`-framed response). Lets callers assert
    /// a response really streamed instead of arriving as one blob.
    pub chunks: Option<Vec<String>>,
}

impl HttpResponse {
    /// First header with this name, case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Per-chunk callback for [`Connection::request_with_sink`]: invoked with
/// each decoded chunk before the next one is read from the socket; an `Err`
/// aborts the read (and desynchronizes the connection — drop it afterwards).
pub type ChunkSink<'a> = &'a mut dyn FnMut(&str) -> std::io::Result<()>;

/// Connection timeout knobs: how long to wait for the TCP connect, for each
/// read (a stalled server must surface as an error, not a hang — the router
/// depends on this to fail over from a dead worker), and for each write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timeouts {
    /// TCP connect timeout.
    pub connect: Duration,
    /// Per-read timeout (also bounds each chunk gap of a streamed response).
    pub read: Duration,
    /// Per-write timeout.
    pub write: Duration,
}

impl Timeouts {
    /// The historical defaults of [`Connection::open`]: 10 s connect, 60 s
    /// read (streamed decode steps can be slow on loaded machines), 10 s
    /// write.
    pub const DEFAULT: Timeouts = Timeouts {
        connect: Duration::from_secs(10),
        read: Duration::from_secs(60),
        write: Duration::from_secs(10),
    };

    /// A uniform timeout for all three knobs — probe-style requests.
    pub fn uniform(timeout: Duration) -> Timeouts {
        Timeouts {
            connect: timeout,
            read: timeout,
            write: timeout,
        }
    }
}

impl Default for Timeouts {
    fn default() -> Self {
        Timeouts::DEFAULT
    }
}

/// A kept-alive connection to one server.
pub struct Connection {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Connection {
    /// Connects to `addr` with [`Timeouts::DEFAULT`].
    ///
    /// # Errors
    ///
    /// Propagates connect/configuration failures.
    pub fn open(addr: SocketAddr) -> std::io::Result<Connection> {
        Self::open_with(addr, Timeouts::DEFAULT)
    }

    /// Connects to `addr` with explicit [`Timeouts`].
    ///
    /// # Errors
    ///
    /// Propagates connect/configuration failures; a connect that exceeds
    /// `timeouts.connect` fails with `TimedOut`.
    pub fn open_with(addr: SocketAddr, timeouts: Timeouts) -> std::io::Result<Connection> {
        let stream = TcpStream::connect_timeout(&addr, timeouts.connect)?;
        stream.set_read_timeout(Some(timeouts.read))?;
        stream.set_write_timeout(Some(timeouts.write))?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Connection {
            reader,
            writer: stream,
        })
    }

    /// Issues one request and reads the full response. `body` implies POST
    /// semantics supplied by the caller via `method`.
    ///
    /// # Errors
    ///
    /// Propagates socket errors and malformed responses as `io::Error`.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<HttpResponse> {
        self.request_with_headers(method, path, body, &[])
    }

    /// [`Connection::request`] with extra request headers appended after
    /// the standard set — how the router stamps proxied requests with the
    /// `x-olive-trace` correlation id.
    ///
    /// # Errors
    ///
    /// Propagates socket errors and malformed responses as `io::Error`.
    pub fn request_with_headers(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        extra_headers: &[(&str, &str)],
    ) -> std::io::Result<HttpResponse> {
        self.write_request(method, path, body, extra_headers)?;
        self.read_response(None)
    }

    /// Like [`Connection::request`], but hands each chunk of a chunked
    /// response to `sink` the moment it is decoded — before the next chunk
    /// is read from the socket — so a proxy can relay a stream with no
    /// buffering delay. The returned [`HttpResponse`] still carries the full
    /// body and chunk list; for a non-chunked response `sink` is never
    /// called.
    ///
    /// # Errors
    ///
    /// Propagates socket errors, malformed responses, and any error `sink`
    /// returns (which desynchronizes the connection — drop it afterwards).
    pub fn request_with_sink(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        sink: ChunkSink<'_>,
    ) -> std::io::Result<HttpResponse> {
        self.request_with_sink_and_headers(method, path, body, sink, &[])
    }

    /// [`Connection::request_with_sink`] with extra request headers — the
    /// streaming counterpart of [`Connection::request_with_headers`].
    ///
    /// # Errors
    ///
    /// Propagates socket errors, malformed responses, and any error `sink`
    /// returns (which desynchronizes the connection — drop it afterwards).
    pub fn request_with_sink_and_headers(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        sink: ChunkSink<'_>,
        extra_headers: &[(&str, &str)],
    ) -> std::io::Result<HttpResponse> {
        self.write_request(method, path, body, extra_headers)?;
        self.read_response(Some(sink))
    }

    fn write_request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        extra_headers: &[(&str, &str)],
    ) -> std::io::Result<()> {
        let body = body.unwrap_or("");
        // Head and body in one write: separate small segments would tickle
        // Nagle + delayed-ACK stalls on loopback.
        let mut request = format!(
            "{method} {path} HTTP/1.1\r\nHost: olive\r\nContent-Length: {}\r\nContent-Type: application/json\r\n",
            body.len()
        );
        for (name, value) in extra_headers {
            request.push_str(name);
            request.push_str(": ");
            request.push_str(value);
            request.push_str("\r\n");
        }
        request.push_str("\r\n");
        request.push_str(body);
        self.writer.write_all(request.as_bytes())?;
        self.writer.flush()
    }

    fn read_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    fn read_response(&mut self, sink: Option<ChunkSink<'_>>) -> std::io::Result<HttpResponse> {
        let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
        let status_line = self.read_line()?;
        // "HTTP/1.1 200 OK"
        let status = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| bad(format!("malformed status line '{status_line}'")))?;
        let mut headers = Vec::new();
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| bad(format!("malformed header '{line}'")))?;
            headers.push((name.trim().to_string(), value.trim().to_string()));
        }
        let chunked = headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case("transfer-encoding"))
            .is_some_and(|(_, v)| v.eq_ignore_ascii_case("chunked"));
        if chunked {
            let chunks = self.read_chunks(sink)?;
            return Ok(HttpResponse {
                status,
                headers,
                body: chunks.concat(),
                chunks: Some(chunks),
            });
        }
        let length: usize = headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
            .map(|(_, v)| v.parse())
            .transpose()
            .map_err(|_| bad("invalid Content-Length".into()))?
            .unwrap_or(0);
        let mut body = vec![0u8; length];
        self.reader.read_exact(&mut body)?;
        let body = String::from_utf8(body).map_err(|_| bad("non-UTF-8 response body".into()))?;
        Ok(HttpResponse {
            status,
            headers,
            body,
            chunks: None,
        })
    }

    /// Decodes a chunked body: size-line-framed chunks until the terminating
    /// zero chunk (trailers, which this server never sends, are skipped up
    /// to the final blank line). Keep-alive framing stays intact, so the
    /// connection is reusable afterwards.
    fn read_chunks(&mut self, mut sink: Option<ChunkSink<'_>>) -> std::io::Result<Vec<String>> {
        let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
        let mut chunks = Vec::new();
        loop {
            let line = self.read_line()?;
            let size_token = line.split(';').next().unwrap_or("").trim();
            let size = usize::from_str_radix(size_token, 16)
                .map_err(|_| bad(format!("malformed chunk size '{line}'")))?;
            if size == 0 {
                loop {
                    if self.read_line()?.is_empty() {
                        return Ok(chunks);
                    }
                }
            }
            let mut data = vec![0u8; size];
            self.reader.read_exact(&mut data)?;
            let mut crlf = [0u8; 2];
            self.reader.read_exact(&mut crlf)?;
            if &crlf != b"\r\n" {
                return Err(bad("chunk data not CRLF-terminated".into()));
            }
            let chunk = String::from_utf8(data).map_err(|_| bad("non-UTF-8 chunk".into()))?;
            if let Some(sink) = sink.as_deref_mut() {
                sink(&chunk)?;
            }
            chunks.push(chunk);
        }
    }
}

/// One-shot GET on a fresh connection.
///
/// # Errors
///
/// Propagates connection and protocol failures.
pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<HttpResponse> {
    Connection::open(addr)?.request("GET", path, None)
}

/// One-shot POST of a JSON body on a fresh connection.
///
/// # Errors
///
/// Propagates connection and protocol failures.
pub fn post_json(addr: SocketAddr, path: &str, body: &str) -> std::io::Result<HttpResponse> {
    Connection::open(addr)?.request("POST", path, Some(body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::time::Instant;

    fn is_timeout(e: &std::io::Error) -> bool {
        matches!(
            e.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        )
    }

    #[test]
    fn read_timeout_fires_on_a_stalled_listener() {
        // The listener accepts into its backlog but never responds: the
        // request must fail with a timeout after ~the configured read
        // timeout, not hang for the 60-second default.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let timeouts = Timeouts {
            connect: Duration::from_secs(2),
            read: Duration::from_millis(100),
            write: Duration::from_secs(2),
        };
        let mut conn = Connection::open_with(addr, timeouts).expect("backlog accepts the connect");
        let started = Instant::now();
        let err = conn
            .request("GET", "/healthz", None)
            .expect_err("no response must surface as an error");
        assert!(is_timeout(&err), "expected a timeout error, got {err}");
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "timeout must fire promptly, took {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn read_timeout_fires_mid_stream() {
        // The server sends a chunked head plus one chunk, then stalls: the
        // sink must see the first chunk, and the request must then time out
        // instead of waiting forever for the next chunk.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut sink = [0u8; 1024];
            let _ = std::io::Read::read(&mut stream, &mut sink);
            stream
                .write_all(b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n")
                .unwrap();
            // Hold the socket open, never sending the next chunk.
            std::thread::sleep(Duration::from_millis(500));
        });
        let timeouts = Timeouts::uniform(Duration::from_millis(100));
        let mut conn = Connection::open_with(addr, timeouts).unwrap();
        let mut seen = Vec::new();
        let err = conn
            .request_with_sink("GET", "/v1/generate", None, &mut |chunk| {
                seen.push(chunk.to_string());
                Ok(())
            })
            .expect_err("stalled stream must error");
        assert!(is_timeout(&err), "expected a timeout error, got {err}");
        assert_eq!(
            seen,
            vec!["hello".to_string()],
            "first chunk must reach the sink"
        );
        server.join().unwrap();
    }

    #[test]
    fn sink_sees_chunks_in_order_and_response_still_collects_them() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut buf = [0u8; 1024];
            let _ = std::io::Read::read(&mut stream, &mut buf);
            stream
                .write_all(
                    b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n\
                      3\r\none\r\n3\r\ntwo\r\n0\r\n\r\n",
                )
                .unwrap();
        });
        let mut conn =
            Connection::open_with(addr, Timeouts::uniform(Duration::from_secs(2))).unwrap();
        let mut seen = Vec::new();
        let response = conn
            .request_with_sink("GET", "/x", None, &mut |chunk| {
                seen.push(chunk.to_string());
                Ok(())
            })
            .unwrap();
        assert_eq!(seen, vec!["one".to_string(), "two".to_string()]);
        assert_eq!(response.chunks, Some(seen));
        assert_eq!(response.body, "onetwo");
        server.join().unwrap();
    }
}
