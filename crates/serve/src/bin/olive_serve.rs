//! The `olive-serve` daemon: binds, prints the URL, serves until shut down.
//!
//! ```text
//! olive-serve [--addr HOST] [--port N] [--max-batch N] [--max-wait-ms N]
//!             [--queue-capacity N] [--max-sessions N] [--kv-pool-pages N]
//!             [--artifact-dir DIR] [--allow-shutdown] [--trace-log PATH]
//!             [--no-telemetry]
//! ```
//!
//! `--port 0` (the default) picks an ephemeral port; the chosen URL is
//! printed as `olive-serve listening on http://HOST:PORT` so harnesses can
//! scrape it. With `--allow-shutdown`, `POST /shutdown` stops the server and
//! the process exits 0 after draining queued requests. With
//! `--artifact-dir`, preparation misses cold-start bit-identically from
//! `olive-prepare` snapshots in DIR instead of quantizing in-process (the
//! `cached_artifacts` gauge on `/healthz` counts the snapshots used).
//!
//! `--trace-log PATH` appends every finished request trace as one JSON line
//! to PATH (see `GET /debug/trace` for the in-memory ring). `--no-telemetry`
//! turns off latency timing and tracing; counters, `/healthz` and `/metrics`
//! stay live, and response bodies are byte-identical either way.

use olive_serve::{BatchConfig, SchedConfig, ServeConfig, Server};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: olive-serve [--addr HOST] [--port N] [--max-batch N] [--max-wait-ms N] \
         [--queue-capacity N] [--max-sessions N] [--kv-pool-pages N] [--artifact-dir DIR] \
         [--allow-shutdown] [--trace-log PATH] [--no-telemetry]"
    );
    std::process::exit(2);
}

fn parse_args() -> ServeConfig {
    let mut host = "127.0.0.1".to_string();
    let mut port = 0u16;
    let mut batch = BatchConfig::default();
    let mut sched = SchedConfig::default();
    let mut allow_shutdown = false;
    let mut artifact_dir = None;
    let mut telemetry = olive_serve::TelemetryOptions::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| match args.next() {
            Some(v) => v,
            None => {
                eprintln!("{name} requires a value");
                usage();
            }
        };
        match arg.as_str() {
            "--addr" => host = value("--addr"),
            "--port" => match value("--port").parse() {
                Ok(p) => port = p,
                Err(_) => usage(),
            },
            "--max-batch" => match value("--max-batch").parse() {
                Ok(n) if n >= 1 => batch.max_batch = n,
                _ => usage(),
            },
            "--max-wait-ms" => match value("--max-wait-ms").parse() {
                Ok(ms) => batch.max_wait = Duration::from_millis(ms),
                Err(_) => usage(),
            },
            "--queue-capacity" => match value("--queue-capacity").parse() {
                Ok(n) if n >= 1 => {
                    batch.queue_capacity = n;
                    sched.queue_capacity = n;
                }
                _ => usage(),
            },
            "--max-sessions" => match value("--max-sessions").parse() {
                Ok(n) if n >= 1 => sched.max_sessions = n,
                _ => usage(),
            },
            "--kv-pool-pages" => match value("--kv-pool-pages").parse() {
                Ok(n) if n >= 1 => sched.kv_pool_pages = n,
                _ => usage(),
            },
            "--artifact-dir" => {
                artifact_dir = Some(std::path::PathBuf::from(value("--artifact-dir")));
            }
            "--allow-shutdown" => allow_shutdown = true,
            "--trace-log" => {
                telemetry.trace_log = Some(std::path::PathBuf::from(value("--trace-log")));
            }
            "--no-telemetry" => telemetry.enabled = false,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    ServeConfig {
        addr: format!("{host}:{port}"),
        batch,
        sched,
        allow_shutdown,
        artifact_dir,
        telemetry,
    }
}

fn main() {
    // A typo'd OLIVE_THREADS is a startup error, not a silently different
    // thread count: determinism contracts quote the env setting verbatim.
    if let Err(message) = olive_runtime::validate_thread_env() {
        eprintln!("olive-serve: {message}");
        std::process::exit(2);
    }
    // Same contract for OLIVE_SIMD: results are bit-identical on every
    // path, but a daemon asked for a specific kernel must actually run it.
    if let Err(message) = olive_core::validate_simd_env() {
        eprintln!("olive-serve: {message}");
        std::process::exit(2);
    }
    eprintln!(
        "olive-serve: quantized GEMM dispatch: {}",
        olive_core::simd::resolve_path()
    );
    let config = parse_args();
    let server = match Server::start(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("olive-serve: failed to start: {e}");
            std::process::exit(1);
        }
    };
    // The exact line the smoke harness scrapes; flush so a piped stdout
    // delivers it immediately.
    println!("olive-serve listening on {}", server.url());
    use std::io::Write;
    let _ = std::io::stdout().flush();
    server.wait();
    // Best-effort: the harness may have closed our stdout pipe already, and
    // a farewell message is not worth a broken-pipe panic.
    let _ = writeln!(std::io::stdout(), "olive-serve: shut down cleanly");
}
