//! `serve_client`: a std-only command-line HTTP client for the smoke
//! scripts and CI (no curl dependency).
//!
//! ```text
//! serve_client GET  http://127.0.0.1:8080/healthz
//! serve_client POST http://127.0.0.1:8080/v1/eval --body '{"scheme": "olive-4bit"}'
//! ```
//!
//! Prints the response body to stdout. Exits 0 only when the status matches
//! `--expect-status` (default 200) **and** the body parses as JSON (pass
//! `--no-json` to skip the parse check).

use olive_api::JsonValue;
use olive_serve::client;
use std::net::{SocketAddr, ToSocketAddrs};

struct Args {
    method: String,
    addr: SocketAddr,
    path: String,
    body: Option<String>,
    expect_status: u16,
    check_json: bool,
}

fn fail(message: &str) -> ! {
    eprintln!("serve_client: {message}");
    std::process::exit(2);
}

/// Splits `http://host:port/path` into a socket address and a path.
fn parse_url(url: &str) -> (SocketAddr, String) {
    let rest = url
        .strip_prefix("http://")
        .unwrap_or_else(|| fail("URL must start with http://"));
    let (authority, path) = match rest.find('/') {
        Some(i) => (&rest[..i], rest[i..].to_string()),
        None => (rest, "/".to_string()),
    };
    let addr = authority
        .to_socket_addrs()
        .ok()
        .and_then(|mut addrs| addrs.next())
        .unwrap_or_else(|| fail(&format!("cannot resolve '{authority}'")));
    (addr, path)
}

fn parse_args() -> Args {
    let mut positional = Vec::new();
    let mut body = None;
    let mut expect_status = 200u16;
    let mut check_json = true;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--body" => body = Some(args.next().unwrap_or_else(|| fail("--body needs a value"))),
            "--expect-status" => {
                expect_status = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| fail("--expect-status needs a number"))
            }
            "--no-json" => check_json = false,
            other if !other.starts_with("--") => positional.push(other.to_string()),
            other => fail(&format!("unknown flag '{other}'")),
        }
    }
    if positional.len() != 2 {
        fail("usage: serve_client <METHOD> <URL> [--body JSON] [--expect-status N] [--no-json]");
    }
    let (addr, path) = parse_url(&positional[1]);
    Args {
        method: positional[0].to_ascii_uppercase(),
        addr,
        path,
        body,
        expect_status,
        check_json,
    }
}

fn main() {
    let args = parse_args();
    let mut connection = client::Connection::open(args.addr)
        .unwrap_or_else(|e| fail(&format!("connecting to {}: {e}", args.addr)));
    let response = connection
        .request(&args.method, &args.path, args.body.as_deref())
        .unwrap_or_else(|e| fail(&format!("request failed: {e}")));
    println!("{}", response.body);
    if response.status != args.expect_status {
        eprintln!(
            "serve_client: expected status {}, got {}",
            args.expect_status, response.status
        );
        std::process::exit(1);
    }
    if args.check_json {
        if let Err(e) = JsonValue::parse(&response.body) {
            eprintln!("serve_client: response body is not valid JSON: {e}");
            std::process::exit(1);
        }
    }
}
