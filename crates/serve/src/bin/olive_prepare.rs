//! `olive-prepare`: quantize offline once, cold-start everywhere.
//!
//! ```text
//! olive-prepare --artifact-dir DIR [--verify] \
//!               [--eval REQUEST_JSON]... [--generate REQUEST_JSON]...
//! olive-prepare --describe FILE
//! ```
//!
//! Each `--eval`/`--generate` argument is the same JSON body the
//! `/v1/eval`/`/v1/generate` endpoints accept. For every request the tool
//! runs the expensive preparation (teacher generation + calibration) once,
//! quantizes the requested schemes' students, and writes a versioned,
//! checksummed snapshot into DIR under the request's serving cache key —
//! the file an `olive-serve --artifact-dir DIR` worker then cold-starts
//! from, bit-identically to in-process preparation.
//!
//! `--verify` reloads each snapshot after writing, asserts the round-trip is
//! byte-exact, and reports load time next to preparation time (the
//! cold-start speedup). `--describe` pretty-prints a snapshot's metadata.

use olive_api::{JsonValue, ModelArtifact};
use olive_serve::{EvalRequest, GenerateRequest};
use std::path::{Path, PathBuf};
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: olive-prepare --artifact-dir DIR [--verify] [--eval JSON]... [--generate JSON]...\n\
         \x20      olive-prepare --describe FILE"
    );
    std::process::exit(2);
}

fn fail(message: &str) -> ! {
    eprintln!("olive-prepare: {message}");
    std::process::exit(1);
}

enum Task {
    Eval(String),
    Generate(String),
}

struct Args {
    artifact_dir: Option<PathBuf>,
    verify: bool,
    tasks: Vec<Task>,
    describe: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        artifact_dir: None,
        verify: false,
        tasks: Vec::new(),
        describe: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| match args.next() {
            Some(v) => v,
            None => {
                eprintln!("{name} requires a value");
                usage();
            }
        };
        match arg.as_str() {
            "--artifact-dir" => parsed.artifact_dir = Some(PathBuf::from(value("--artifact-dir"))),
            "--eval" => parsed.tasks.push(Task::Eval(value("--eval"))),
            "--generate" => parsed.tasks.push(Task::Generate(value("--generate"))),
            "--describe" => parsed.describe = Some(PathBuf::from(value("--describe"))),
            "--verify" => parsed.verify = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    parsed
}

fn parse_body(what: &str, text: &str) -> JsonValue {
    match JsonValue::parse(text) {
        Ok(v) => v,
        Err(e) => fail(&format!("{what} request is not valid JSON: {e}")),
    }
}

/// Builds the snapshot for one request, timing the preparation.
fn build(task: &Task) -> (ModelArtifact, f64) {
    match task {
        Task::Eval(text) => {
            let req = match EvalRequest::decode(&parse_body("--eval", text)) {
                Ok(req) => req,
                Err(e) => fail(&format!("--eval request rejected: {}", e.0)),
            };
            let started = Instant::now();
            let prepared = req.pipeline().prepare();
            let artifact = ModelArtifact::eval(req.prepared_key(), req.family.label(), &prepared)
                .with_students(&req.schemes);
            (artifact, started.elapsed().as_secs_f64() * 1e3)
        }
        Task::Generate(text) => {
            let req = match GenerateRequest::decode(&parse_body("--generate", text)) {
                Ok(req) => req,
                Err(e) => fail(&format!("--generate request rejected: {}", e.0)),
            };
            let started = Instant::now();
            let prepared = req.pipeline().prepare_generation(req.prompt_tokens);
            let artifact = ModelArtifact::gen(req.prepared_key(), req.family.label(), &prepared)
                .with_students(std::slice::from_ref(&req.scheme));
            (artifact, started.elapsed().as_secs_f64() * 1e3)
        }
    }
}

/// Reloads the written snapshot and asserts the round-trip is byte-exact.
/// Returns the load time in milliseconds.
fn verify(path: &Path, written: &ModelArtifact) -> f64 {
    let started = Instant::now();
    let loaded = match ModelArtifact::load(path) {
        Ok(a) => a,
        Err(e) => fail(&format!("verify failed for {}: {e}", path.display())),
    };
    let load_ms = started.elapsed().as_secs_f64() * 1e3;
    if loaded.to_bytes() != written.to_bytes() {
        fail(&format!(
            "verify failed for {}: reloaded snapshot is not byte-identical",
            path.display()
        ));
    }
    load_ms
}

fn main() {
    let args = parse_args();
    if let Some(path) = &args.describe {
        match ModelArtifact::load(path) {
            Ok(artifact) => println!("{}", artifact.describe()),
            Err(e) => fail(&format!("cannot describe {}: {e}", path.display())),
        }
        return;
    }
    let Some(dir) = &args.artifact_dir else {
        eprintln!("--artifact-dir is required (or use --describe FILE)");
        usage();
    };
    if args.tasks.is_empty() {
        eprintln!("nothing to prepare: pass at least one --eval or --generate request");
        usage();
    }
    for task in &args.tasks {
        let kind = match task {
            Task::Eval(_) => "eval",
            Task::Generate(_) => "generate",
        };
        let (artifact, prepare_ms) = build(task);
        let path = match artifact.save(dir) {
            Ok(path) => path,
            Err(e) => fail(&format!("cannot write snapshot: {e}")),
        };
        let bytes = artifact.to_bytes().len();
        let mut line = format!(
            "olive-prepare: wrote {} kind={kind} key=\"{}\" bytes={bytes} prepare_ms={prepare_ms:.1}",
            path.display(),
            artifact.key
        );
        if args.verify {
            let load_ms = verify(&path, &artifact);
            line.push_str(&format!(
                " load_ms={load_ms:.3} speedup={:.0}x",
                prepare_ms / load_ms.max(1e-6)
            ));
        }
        println!("{line}");
    }
}
