//! The dynamic batcher: a bounded request queue drained in micro-batches
//! onto the `olive-runtime` worker pool.
//!
//! Connection threads [`submit`](Batcher::submit) jobs and block on a
//! private reply channel; one drain thread pops micro-batches off a
//! [`BoundedQueue`] (up to `max_batch` jobs, waiting at most `max_wait` for
//! stragglers after the first arrival) and executes each batch with
//! [`par_map`], so concurrent requests share the pool instead of fighting
//! over cores. When the queue is full, [`submit`](Batcher::submit) fails
//! *immediately* with a 503 + `Retry-After` response — overload becomes
//! back-pressure the client can see, not latency collapse or OOM.
//!
//! The batcher executes **unary** requests only (`/v1/eval`,
//! `/v1/quantize`): one job, one response. Streamed `/v1/generate`
//! requests used to ride this queue as whole-decode jobs — which made a
//! long generation block every batch queued behind it (head-of-line
//! blocking) — and now decode step-by-step on the continuous-batching
//! scheduler in [`crate::decode_sched`] instead, with the same
//! bounded-queue 503 back-pressure contract at the door.
//!
//! Batch composition can never change answers: each job is computed by a
//! pure, bit-deterministic function of the request (see the crate-level
//! determinism contract), and `par_map` only schedules *which thread*
//! computes a job, never how.

use crate::cache::ModelCache;
use crate::http::Response;
use crate::protocol::{EvalRequest, QuantizeRequest};
use olive_runtime::{lock_or_recover, par_map, BoundedQueue, PushError};
use olive_telemetry::{latency_buckets_us, Counter, Histogram, Registry, Span, Telemetry};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Batching policy.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Most jobs executed per micro-batch.
    pub max_batch: usize,
    /// How long the drain thread lingers for stragglers after the first job
    /// of a batch arrives.
    pub max_wait: Duration,
    /// Queue bound; pushes beyond it are answered 503.
    pub queue_capacity: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 8,
            max_wait: Duration::from_millis(2),
            queue_capacity: 64,
        }
    }
}

/// A batched unit of work.
#[derive(Debug, Clone)]
pub enum Job {
    /// An `/v1/eval` request.
    Eval(EvalRequest),
    /// An `/v1/quantize` request.
    Quantize(QuantizeRequest),
}

/// The batcher's registry-backed instruments. The counters are the single
/// source of truth for both `/healthz` and `/metrics`; the histograms
/// split each job's life into queue wait (arrival → popped into a batch)
/// and execution (compute + reply).
pub struct BatchStats {
    /// Jobs answered (any status): `olive_batch_jobs_served_total`.
    pub served: Counter,
    /// Jobs shed with 503 because the queue was full:
    /// `olive_batch_jobs_rejected_total`.
    pub rejected: Counter,
    /// Micro-batches executed: `olive_batches_executed_total`.
    pub batches: Counter,
    /// Queue wait per job, µs: `olive_batch_queue_wait_us`.
    pub queue_wait_us: Histogram,
    /// Execution time per job, µs: `olive_batch_execute_us`.
    pub execute_us: Histogram,
}

impl BatchStats {
    /// Registers the batcher's instruments on `registry`.
    pub fn new(registry: &Registry) -> BatchStats {
        BatchStats {
            served: registry.counter(
                "olive_batch_jobs_served_total",
                "Unary jobs answered by the batcher (any status).",
            ),
            rejected: registry.counter(
                "olive_batch_jobs_rejected_total",
                "Unary jobs shed with 503 because the batch queue was full.",
            ),
            batches: registry.counter(
                "olive_batches_executed_total",
                "Micro-batches executed by the drain thread.",
            ),
            queue_wait_us: registry.histogram(
                "olive_batch_queue_wait_us",
                "Per-job wait from queue arrival to batch pop, microseconds.",
                &latency_buckets_us(),
            ),
            execute_us: registry.histogram(
                "olive_batch_execute_us",
                "Per-job execution time inside a micro-batch, microseconds.",
                &latency_buckets_us(),
            ),
        }
    }
}

/// A queued unit of work plus its reply path and telemetry context.
struct QueuedJob {
    job: Job,
    reply: mpsc::Sender<Response>,
    /// The request's trace span, when tracing is on (`None` never affects
    /// the reply — spans are observe-only).
    span: Option<Arc<Span>>,
    /// Started at enqueue; inert when telemetry is off.
    queued_at: olive_telemetry::Stopwatch,
}

/// The dynamic batcher. One instance per server; shut down explicitly.
pub struct Batcher {
    queue: Arc<BoundedQueue<QueuedJob>>,
    stats: Arc<BatchStats>,
    telemetry: Telemetry,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl Batcher {
    /// Starts a batcher whose drain thread executes jobs against `cache`,
    /// registering its instruments on `telemetry`'s registry.
    pub fn start(config: BatchConfig, cache: Arc<ModelCache>, telemetry: Telemetry) -> Self {
        let batcher = Self::paused_with(&config, telemetry);
        let queue = Arc::clone(&batcher.queue);
        let stats = Arc::clone(&batcher.stats);
        // olive-lint: allow(no-spawn-outside-runtime): the one long-lived drain thread; batch execution inside it still runs on the Pool
        let handle = std::thread::Builder::new()
            .name("olive-serve-batcher".into())
            .spawn(move || drain_loop(&queue, &config, &cache, &stats))
            .expect("spawning the batch drain thread");
        *lock_or_recover(&batcher.worker) = Some(handle);
        batcher
    }

    /// A batcher with no drain thread — jobs queue but never execute. Lets
    /// tests exercise the back-pressure path deterministically.
    #[cfg(test)]
    fn paused(config: &BatchConfig) -> Self {
        Self::paused_with(config, Telemetry::detached())
    }

    fn paused_with(config: &BatchConfig, telemetry: Telemetry) -> Self {
        Batcher {
            queue: Arc::new(BoundedQueue::new(config.queue_capacity)),
            stats: Arc::new(BatchStats::new(telemetry.registry())),
            telemetry,
            worker: Mutex::new(None),
        }
    }

    /// Submits a job and blocks until its response is ready — or answers
    /// immediately with 503 (+ `Retry-After: 1`) when the queue is full, and
    /// 503 without `Retry-After` when the server is shutting down.
    ///
    /// `span` is the request's trace span (or `None`): purely observational
    /// — the response is a function of `job` alone.
    pub fn submit(&self, job: Job, span: Option<Arc<Span>>) -> Response {
        if let Some(span) = &span {
            span.event("queued");
        }
        let (tx, rx) = mpsc::channel();
        let queued = QueuedJob {
            job,
            reply: tx,
            span,
            queued_at: self.telemetry.stopwatch(),
        };
        match self.queue.try_push(queued) {
            Ok(()) => {}
            Err((PushError::Full, _)) => return self.shed_full(),
            Err((PushError::Closed, _)) => {
                return Response::error(503, "server is shutting down");
            }
        }
        match rx.recv() {
            Ok(response) => response,
            // The drain thread died (it never drops a sender otherwise).
            Err(_) => Response::error(500, "batch worker terminated unexpectedly"),
        }
    }

    fn shed_full(&self) -> Response {
        self.stats.rejected.inc();
        Response::error(
            503,
            "server is at capacity; retry after the Retry-After delay",
        )
        .with_header("Retry-After", "1")
    }

    /// Queue depth right now (for `/healthz`).
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// The shared counters.
    pub fn stats(&self) -> &BatchStats {
        &self.stats
    }

    /// Stops accepting jobs, drains what is queued, and joins the drain
    /// thread. Idempotent.
    pub fn shutdown(&self) {
        self.queue.close();
        if let Some(handle) = lock_or_recover(&self.worker).take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn drain_loop(
    queue: &BoundedQueue<QueuedJob>,
    config: &BatchConfig,
    cache: &ModelCache,
    stats: &BatchStats,
) {
    loop {
        let batch = queue.pop_batch(config.max_batch, config.max_wait);
        if batch.is_empty() {
            return; // closed and drained
        }
        stats.batches.inc();
        for queued in &batch {
            stats.queue_wait_us.observe_elapsed(&queued.queued_at);
            if let Some(span) = &queued.span {
                span.event("batched");
            }
        }
        // One micro-batch = one pool job; each request's own parallelism
        // nests inline, so cores are shared across the batch. Replies are
        // sent from the executing worker.
        par_map(&batch, |queued| {
            let executing = olive_telemetry::Stopwatch::start_if(queued.queued_at.is_running());
            let response = execute(&queued.job, cache);
            stats.execute_us.observe_elapsed(&executing);
            // Counted before the reply: a submitter that saw its response
            // must also see it reflected in the stats.
            stats.served.inc();
            // A client that hung up mid-wait is not an error.
            let _ = queued.reply.send(response);
        });
    }
}

/// Executes one job. Panics are contained here (answered as 500) so a single
/// poisonous request can never take down the drain thread.
fn execute(job: &Job, cache: &ModelCache) -> Response {
    let result = catch_unwind(AssertUnwindSafe(|| match job {
        Job::Eval(req) => Response::json(200, cache.eval_body(req).as_str()),
        Job::Quantize(req) => Response::json(200, req.execute()),
    }));
    result.unwrap_or_else(|_| Response::error(500, "internal error executing the request"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use olive_api::JsonValue;

    fn eval_job(text: &str) -> Job {
        Job::Eval(EvalRequest::decode(&JsonValue::parse(text).unwrap()).unwrap())
    }

    #[test]
    fn live_batcher_answers_eval_and_quantize() {
        let batcher = Batcher::start(
            BatchConfig::default(),
            Arc::new(ModelCache::new()),
            Telemetry::detached(),
        );
        let eval = batcher.submit(
            eval_job(r#"{"scheme": "fp32", "batches": 2, "oversample": 2}"#),
            None,
        );
        assert_eq!(eval.status, 200);
        assert!(eval.body.contains("\"spec\": \"fp32\""), "{}", eval.body);
        let quantize = batcher.submit(
            Job::Quantize(
                QuantizeRequest::decode(
                    &JsonValue::parse(
                        r#"{"scheme": "uniform:8", "rows": 1, "cols": 4, "data": [1, 2, 3, 4]}"#,
                    )
                    .unwrap(),
                )
                .unwrap(),
            ),
            None,
        );
        assert_eq!(quantize.status, 200);
        assert_eq!(batcher.stats().served.get(), 2);
        // The queue-wait/execute split saw both jobs (telemetry was on).
        assert_eq!(batcher.stats().queue_wait_us.count(), 2);
        assert_eq!(batcher.stats().execute_us.count(), 2);
        batcher.shutdown();
    }

    #[test]
    fn disabled_telemetry_still_counts_but_never_observes_latency() {
        let batcher = Batcher::start(
            BatchConfig::default(),
            Arc::new(ModelCache::new()),
            Telemetry::disabled(),
        );
        let response = batcher.submit(eval_job(r#"{"scheme": "fp32"}"#), None);
        assert_eq!(response.status, 200);
        assert_eq!(batcher.stats().served.get(), 1);
        assert_eq!(batcher.stats().queue_wait_us.count(), 0);
        assert_eq!(batcher.stats().execute_us.count(), 0);
        batcher.shutdown();
    }

    #[test]
    fn full_queue_is_answered_503_with_retry_after() {
        // No drain thread: the queue fills deterministically.
        let batcher = Batcher::paused(&BatchConfig {
            queue_capacity: 2,
            ..BatchConfig::default()
        });
        let job = eval_job(r#"{"scheme": "fp32"}"#);
        // Fill the queue directly (submit would block on the reply).
        for _ in 0..2 {
            let (tx, _rx) = mpsc::channel();
            batcher
                .queue
                .try_push(QueuedJob {
                    job: job.clone(),
                    reply: tx,
                    span: None,
                    queued_at: olive_telemetry::Stopwatch::disabled(),
                })
                .map_err(|(error, _)| error)
                .unwrap();
        }
        let shed = batcher.submit(job.clone(), None);
        assert_eq!(shed.status, 503);
        assert!(shed
            .extra_headers
            .iter()
            .any(|(k, v)| k == "Retry-After" && v == "1"));
        assert_eq!(batcher.stats().rejected.get(), 1);
        assert_eq!(batcher.queue_depth(), 2);

        // Shutdown path: closed queue answers 503 without Retry-After.
        batcher.queue.close();
        let closed = batcher.submit(job, None);
        assert_eq!(closed.status, 503);
        assert!(closed.body.contains("shutting down"), "{}", closed.body);
        assert!(closed.extra_headers.is_empty());
    }

    #[test]
    fn shutdown_drains_already_queued_jobs() {
        let cache = Arc::new(ModelCache::new());
        let batcher = Arc::new(Batcher::start(
            BatchConfig::default(),
            cache,
            Telemetry::detached(),
        ));
        let job = eval_job(r#"{"scheme": "fp32", "batches": 1, "oversample": 2}"#);
        let submitter = {
            let batcher = Arc::clone(&batcher);
            let job = job.clone();
            std::thread::spawn(move || batcher.submit(job, None))
        };
        // Let the submit land, then shut down; the queued job must still be
        // answered (close drains, it does not drop).
        std::thread::sleep(Duration::from_millis(10));
        batcher.shutdown();
        let response = submitter.join().unwrap();
        assert!(
            response.status == 200 || response.status == 503,
            "queued job must be answered, got {}",
            response.status
        );
    }
}
