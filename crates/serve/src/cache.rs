//! The scheme-keyed model cache: quantize-once, serve-many.
//!
//! The deployment model the paper's accelerator assumes is a model quantized
//! *once* and then served for millions of requests. This cache realises that
//! for the proxy pipelines: the expensive part of an `/v1/eval` — generating
//! the FP32 teacher and its calibrated task ([`Pipeline::prepare`]) — is
//! computed once per (family, size, seed, batches, calibration, task) and
//! shared across every request and every scheme; the fully rendered response
//! body is additionally cached per (preparation, scheme set, weights-only)
//! so a repeated request is answered without touching the model at all.
//!
//! Correctness leans on determinism, not invalidation: a cache entry is a
//! pure function of its key (the runtime's bit-determinism contract), so a
//! hit can never serve a stale or divergent answer, and eviction (bounded
//! FIFO) is purely a memory-footprint concern.

use crate::protocol::{EvalRequest, GenerateRequest};
use olive_api::{GenOptions, GenReport, ModelArtifact, PreparedEval, PreparedGen};
use olive_models::TinyTransformer;
use olive_runtime::lock_or_recover;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Most prepared (teacher, task) pairs kept alive.
pub const MAX_PREPARED: usize = 32;

/// Most prepared (teacher, prompt) generation preparations kept alive.
pub const MAX_GEN_PREPARED: usize = 32;

/// Most quantized student models kept alive (the decode scheduler's
/// quantize-once half of quantize-once/serve-many).
pub const MAX_STUDENTS: usize = 32;

/// Most rendered response bodies kept alive.
pub const MAX_RESPONSES: usize = 1024;

/// A bounded FIFO map: the simplest eviction policy whose behaviour is easy
/// to reason about under concurrent fill (insertion order, oldest out).
struct FifoMap<V> {
    entries: BTreeMap<String, V>,
    order: Vec<String>,
    capacity: usize,
}

impl<V: Clone> FifoMap<V> {
    fn new(capacity: usize) -> Self {
        FifoMap {
            entries: BTreeMap::new(),
            order: Vec::new(),
            capacity: capacity.max(1),
        }
    }

    fn get(&self, key: &str) -> Option<V> {
        self.entries.get(key).cloned()
    }

    fn insert(&mut self, key: String, value: V) {
        if let std::collections::btree_map::Entry::Occupied(mut slot) =
            self.entries.entry(key.clone())
        {
            slot.insert(value);
            return;
        }
        while self.order.len() >= self.capacity {
            let oldest = self.order.remove(0);
            self.entries.remove(&oldest);
        }
        self.order.push(key.clone());
        self.entries.insert(key, value);
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// Shared cache of prepared models and rendered eval responses, optionally
/// backed by an on-disk artifact store (see [`ModelCache::with_artifact_dir`]).
pub struct ModelCache {
    prepared: Mutex<FifoMap<Arc<PreparedEval>>>,
    gen_prepared: Mutex<FifoMap<Arc<PreparedGen>>>,
    students: Mutex<FifoMap<Arc<TinyTransformer>>>,
    responses: Mutex<FifoMap<Arc<String>>>,
    /// Directory of `olive-prepare` snapshots consulted before computing a
    /// preparation in-process.
    artifact_dir: Option<PathBuf>,
    /// Snapshots successfully cold-started from `artifact_dir`.
    artifacts_loaded: AtomicU64,
}

impl Default for ModelCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ModelCache {
    /// An empty cache with the default bounds and no artifact store.
    pub fn new() -> Self {
        Self::with_artifact_dir(None)
    }

    /// An empty cache that, on a preparation miss, first consults `dir` for
    /// an `olive-prepare` snapshot of the requested cache key before falling
    /// back to in-process preparation.
    ///
    /// Cold-starting from a snapshot is *bit-identical* to preparing
    /// in-process (the artifact format preserves every `f32` bit pattern and
    /// the key pins all preparation inputs), so the artifact store is purely
    /// a latency/CPU optimisation — it can never change a served byte. An
    /// unreadable or corrupted snapshot is logged to stderr and treated as a
    /// miss; serving always proceeds.
    pub fn with_artifact_dir(artifact_dir: Option<PathBuf>) -> Self {
        ModelCache {
            prepared: Mutex::new(FifoMap::new(MAX_PREPARED)),
            gen_prepared: Mutex::new(FifoMap::new(MAX_GEN_PREPARED)),
            students: Mutex::new(FifoMap::new(MAX_STUDENTS)),
            responses: Mutex::new(FifoMap::new(MAX_RESPONSES)),
            artifact_dir,
            artifacts_loaded: AtomicU64::new(0),
        }
    }

    /// Looks `key` up in the artifact store. On a hit, also seeds the
    /// student cache with every quantized student the snapshot carries (the
    /// per-scheme admission work `olive-prepare` already did offline).
    fn load_artifact(&self, key: &str) -> Option<ModelArtifact> {
        let dir = self.artifact_dir.as_deref()?;
        match ModelArtifact::load_from_dir(dir, key) {
            Ok(Some(artifact)) => {
                self.artifacts_loaded.fetch_add(1, Ordering::Relaxed);
                for (spec, student) in &artifact.students {
                    let student_key = format!("{}|scheme={spec}", artifact.key);
                    lock_or_recover(&self.students).insert(student_key, Arc::new(student.clone()));
                }
                Some(artifact)
            }
            Ok(None) => None,
            Err(e) => {
                // A bad snapshot must never take serving down with it: log,
                // fall back to in-process preparation.
                eprintln!("olive-serve: artifact for key \"{key}\" rejected: {e}");
                None
            }
        }
    }

    /// Snapshots cold-started from the artifact store so far — the
    /// `cached_artifacts` gauge on `/healthz`.
    pub fn artifacts_loaded(&self) -> u64 {
        self.artifacts_loaded.load(Ordering::Relaxed)
    }

    /// The rendered `/v1/eval` response body for `req`, computing and caching
    /// on miss.
    ///
    /// Locks are never held across model computation; two racing misses on
    /// the same key both compute and produce byte-identical bodies (the
    /// determinism contract), so the race is a wasted computation, never a
    /// wrong answer.
    pub fn eval_body(&self, req: &EvalRequest) -> Arc<String> {
        let response_key = req.response_key();
        if let Some(hit) = lock_or_recover(&self.responses).get(&response_key) {
            return hit;
        }
        let pipeline = req.pipeline();
        let prepared = {
            let prepared_key = req.prepared_key();
            let hit = lock_or_recover(&self.prepared).get(&prepared_key);
            match hit {
                Some(p) => p,
                None => {
                    let p = self
                        .load_artifact(&prepared_key)
                        .and_then(|a| a.prepared_eval())
                        .map_or_else(|| Arc::new(pipeline.prepare()), Arc::new);
                    lock_or_recover(&self.prepared).insert(prepared_key, Arc::clone(&p));
                    p
                }
            }
        };
        // Wall times are the lone nondeterministic report field; serving
        // strips them so responses are byte-stable (crate determinism
        // contract).
        let body = Arc::new(
            pipeline
                .run_prepared(&prepared)
                .without_wall_times()
                .to_json(),
        );
        lock_or_recover(&self.responses).insert(response_key, Arc::clone(&body));
        body
    }

    /// The prepared teacher + prompt for `req`, computing and caching on
    /// miss — the reusable part of every `/v1/generate`, shared across
    /// schemes and across the decode scheduler's concurrent sessions.
    pub fn gen_prepared(&self, req: &GenerateRequest) -> Arc<PreparedGen> {
        let key = req.prepared_key();
        if let Some(hit) = lock_or_recover(&self.gen_prepared).get(&key) {
            return hit;
        }
        // Lock never held across the computation (see eval_body).
        let p = self
            .load_artifact(&key)
            .and_then(|a| a.prepared_gen())
            .map_or_else(
                || Arc::new(req.pipeline().prepare_generation(req.prompt_tokens)),
                Arc::new,
            );
        lock_or_recover(&self.gen_prepared).insert(key, Arc::clone(&p));
        p
    }

    /// The quantized student for `req`'s scheme over `prepared`'s teacher,
    /// computing and caching on miss. Weight quantization is the expensive
    /// per-scheme admission step of a decode session; caching it means a
    /// repeat request is admitted without touching the model.
    pub fn student(&self, req: &GenerateRequest, prepared: &PreparedGen) -> Arc<TinyTransformer> {
        let key = format!("{}|scheme={}", req.prepared_key(), req.scheme);
        if let Some(hit) = lock_or_recover(&self.students).get(&key) {
            return hit;
        }
        let quantizer = req.scheme.build();
        let student = Arc::new(prepared.teacher.quantize_weights(quantizer.as_ref()));
        lock_or_recover(&self.students).insert(key, Arc::clone(&student));
        student
    }

    /// Streams one `/v1/generate` request end to end: fetches (or computes
    /// and caches) the prepared teacher + prompt, then decodes through
    /// [`Pipeline::generation`](olive_api::Pipeline::generation), handing
    /// `sink` each JSON fragment as its step is decoded. Returns the
    /// (wall-time-stripped) report whose `to_json` equals the concatenated
    /// fragments.
    ///
    /// This is the *single-session* path (used by tests and embedders); the
    /// server's `/v1/generate` endpoint decodes through the continuous-
    /// batching scheduler in [`crate::decode_sched`], which produces the
    /// same bytes per stream while interleaving many streams.
    ///
    /// Generation responses are **not** body-cached: the stream is the
    /// point, and the expensive part (teacher generation) is what the
    /// preparation cache already amortises.
    pub fn generate_stream(&self, req: &GenerateRequest, sink: &mut dyn FnMut(&str)) -> GenReport {
        let prepared = self.gen_prepared(req);
        req.pipeline().generation(
            GenOptions::new()
                .prepared(&prepared)
                .max_new_tokens(req.max_new_tokens)
                .stream(sink),
        )
    }

    /// (prepared eval models, prepared generation models, cached response
    /// bodies) currently held — surfaced by `/healthz`.
    pub fn sizes(&self) -> (usize, usize, usize) {
        (
            lock_or_recover(&self.prepared).len(),
            lock_or_recover(&self.gen_prepared).len(),
            lock_or_recover(&self.responses).len(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olive_api::JsonValue;

    fn request(text: &str) -> EvalRequest {
        EvalRequest::decode(&JsonValue::parse(text).unwrap()).unwrap()
    }

    #[test]
    fn repeated_requests_share_one_body_allocation() {
        let cache = ModelCache::new();
        let req = request(r#"{"scheme": "fp32", "batches": 2, "oversample": 2}"#);
        let a = cache.eval_body(&req);
        let b = cache.eval_body(&req);
        assert!(Arc::ptr_eq(&a, &b), "second request must be a cache hit");
        assert_eq!(cache.sizes(), (1, 0, 1));
    }

    #[test]
    fn schemes_share_the_prepared_teacher() {
        let cache = ModelCache::new();
        let a = request(r#"{"scheme": "fp32", "batches": 2, "oversample": 2}"#);
        let b = request(r#"{"scheme": "uniform:8", "batches": 2, "oversample": 2}"#);
        let _ = cache.eval_body(&a);
        let _ = cache.eval_body(&b);
        // Two response bodies, one prepared teacher.
        assert_eq!(cache.sizes(), (1, 0, 2));
    }

    #[test]
    fn generate_streams_share_the_prepared_teacher_across_schemes() {
        let cache = ModelCache::new();
        let decode = |text: &str| {
            GenerateRequest::decode(&JsonValue::parse(text).unwrap()).expect("request decodes")
        };
        let olive = decode(r#"{"scheme": "olive-4bit", "max_new_tokens": 3, "prompt_tokens": 4}"#);
        let fp32 = decode(r#"{"scheme": "fp32", "max_new_tokens": 3, "prompt_tokens": 4}"#);
        let mut streamed = String::new();
        let report = cache.generate_stream(&olive, &mut |f| streamed.push_str(f));
        assert_eq!(streamed, report.to_json(), "fragments must concatenate");
        let _ = cache.generate_stream(&fp32, &mut |_| {});
        // One shared generation preparation, no body caching.
        assert_eq!(cache.sizes(), (0, 1, 0));
        // Served bytes equal the direct pipeline's rendering.
        let p = olive.pipeline();
        let prepared = p.prepare_generation(olive.prompt_tokens);
        let direct = p
            .generation(
                GenOptions::new()
                    .prepared(&prepared)
                    .max_new_tokens(olive.max_new_tokens),
            )
            .without_wall_times()
            .to_json();
        assert_eq!(streamed, direct);
    }

    #[test]
    fn students_are_quantized_once_per_scheme() {
        let cache = ModelCache::new();
        let req = GenerateRequest::decode(
            &JsonValue::parse(r#"{"scheme": "olive-4bit", "prompt_tokens": 3}"#).unwrap(),
        )
        .unwrap();
        let prepared = cache.gen_prepared(&req);
        let a = cache.student(&req, &prepared);
        let b = cache.student(&req, &prepared);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must be a cache hit");
        // The cached student is the same quantization generate_inner performs.
        let direct = prepared
            .teacher
            .quantize_weights(req.scheme.build().as_ref());
        assert_eq!(a.embedding.data(), direct.embedding.data());
        assert_eq!(a.layers[0].wqkv.data(), direct.layers[0].wqkv.data());
    }

    #[test]
    fn cached_bodies_match_a_direct_pipeline_run() {
        let cache = ModelCache::new();
        let req = request(r#"{"scheme": "olive-4bit", "seed": 3, "batches": 2, "oversample": 2}"#);
        let served = cache.eval_body(&req);
        let direct = req.pipeline().run().without_wall_times().to_json();
        assert_eq!(*served.as_str(), direct);
    }

    #[test]
    fn artifact_dir_cold_start_is_bit_identical() {
        let dir = std::env::temp_dir().join(format!("olive-cache-art-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let req = request(r#"{"scheme": "olive-4bit", "seed": 9, "batches": 2, "oversample": 2}"#);

        // Reference: prepare in-process.
        let warm = ModelCache::new();
        let want = warm.eval_body(&req);

        // Snapshot the preparation offline, then cold-start a fresh cache
        // from the artifact store only.
        let artifact =
            olive_api::ModelArtifact::eval(req.prepared_key(), "BERT", &req.pipeline().prepare());
        artifact.save(&dir).unwrap();
        let cold = ModelCache::with_artifact_dir(Some(dir.clone()));
        let got = cold.eval_body(&req);
        assert_eq!(
            *got, *want,
            "cold-started bytes must match in-process bytes"
        );
        assert_eq!(cold.artifacts_loaded(), 1);
        // The preparation is now cached: a second request is a memory hit.
        let _ = cold.eval_body(&req);
        assert_eq!(cold.artifacts_loaded(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gen_artifact_seeds_prepared_and_students() {
        let dir = std::env::temp_dir().join(format!("olive-cache-gen-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let req = GenerateRequest::decode(
            &JsonValue::parse(
                r#"{"scheme": "olive-4bit", "family": "gpt2", "prompt_tokens": 4, "max_new_tokens": 3}"#,
            )
            .unwrap(),
        )
        .unwrap();

        let warm = ModelCache::new();
        let mut want = String::new();
        let _ = warm.generate_stream(&req, &mut |f| want.push_str(f));

        let artifact = olive_api::ModelArtifact::gen(
            req.prepared_key(),
            "GPT-2",
            &req.pipeline().prepare_generation(req.prompt_tokens),
        )
        .with_students(std::slice::from_ref(&req.scheme));
        artifact.save(&dir).unwrap();

        let cold = ModelCache::with_artifact_dir(Some(dir.clone()));
        let prepared = cold.gen_prepared(&req);
        assert_eq!(cold.artifacts_loaded(), 1);
        // The student was seeded from the snapshot: no quantization happens
        // on lookup, and the weights equal a fresh quantization bit-for-bit.
        let student = cold.student(&req, &prepared);
        let direct = prepared
            .teacher
            .quantize_weights(req.scheme.build().as_ref());
        assert_eq!(student.embedding.data(), direct.embedding.data());
        let mut got = String::new();
        let _ = cold.generate_stream(&req, &mut |f| got.push_str(f));
        assert_eq!(
            got, want,
            "cold-started stream must match in-process stream"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_artifacts_fall_back_to_in_process() {
        let dir = std::env::temp_dir().join(format!("olive-cache-bad-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let req = request(r#"{"scheme": "fp32", "batches": 2, "oversample": 2}"#);
        std::fs::write(
            dir.join(olive_api::ModelArtifact::file_name(&req.prepared_key())),
            b"definitely not an artifact",
        )
        .unwrap();
        let cache = ModelCache::with_artifact_dir(Some(dir.clone()));
        let served = cache.eval_body(&req);
        let direct = req.pipeline().run().without_wall_times().to_json();
        assert_eq!(*served.as_str(), direct);
        assert_eq!(cache.artifacts_loaded(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fifo_map_evicts_oldest_first() {
        let mut map = FifoMap::new(2);
        map.insert("a".into(), 1);
        map.insert("b".into(), 2);
        map.insert("a".into(), 10); // overwrite, no eviction
        assert_eq!(map.len(), 2);
        map.insert("c".into(), 3); // evicts "a" (oldest insertion)
        assert_eq!(map.get("a"), None);
        assert_eq!(map.get("b"), Some(2));
        assert_eq!(map.get("c"), Some(3));
        assert_eq!(map.len(), 2);
    }
}
