//! The TCP accept loop, connection handling and endpoint routing.

use crate::batch::{BatchConfig, Batcher, Job};
use crate::cache::ModelCache;
use crate::decode_sched::{DecodeScheduler, SchedConfig, StreamEvent};
use crate::http::{
    read_request, write_chunk, write_chunked_head, write_last_chunk, ReadOutcome, Request,
    Response, IDLE_TIMEOUT,
};
use crate::protocol::{render_schemes_body, EvalRequest, GenerateRequest, QuantizeRequest};
use olive_api::JsonValue;
use olive_runtime::lock_or_recover;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

/// How long a kept-alive connection may sit idle before the server closes
/// it, in units of [`IDLE_TIMEOUT`] polling ticks (20 × 500 ms = 10 s).
const MAX_IDLE_TICKS: u32 = 20;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Batching policy for unary requests (see [`BatchConfig`]).
    pub batch: BatchConfig,
    /// Continuous-batching policy for `/v1/generate` (see [`SchedConfig`]).
    pub sched: SchedConfig,
    /// Whether `POST /shutdown` is honoured (the smoke harness uses it; off
    /// by default so a stray request cannot stop a real deployment).
    pub allow_shutdown: bool,
    /// Directory of `olive-prepare` model snapshots. When set, preparation
    /// misses cold-start from disk (bit-identically) instead of quantizing
    /// in-process; see [`crate::cache::ModelCache::with_artifact_dir`].
    pub artifact_dir: Option<std::path::PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            batch: BatchConfig::default(),
            sched: SchedConfig::default(),
            allow_shutdown: false,
            artifact_dir: None,
        }
    }
}

struct ServerState {
    config: ServeConfig,
    batcher: Batcher,
    scheduler: DecodeScheduler,
    cache: Arc<ModelCache>,
    /// Pre-rendered `/v1/schemes` body (the registry is static).
    schemes_body: String,
    shutdown: AtomicBool,
    connections: AtomicU64,
    local_addr: SocketAddr,
}

impl ServerState {
    fn healthz_body(&self) -> String {
        let stats = self.batcher.stats();
        let sched = self.scheduler.stats();
        let (prepared, gen_prepared, responses) = self.cache.sizes();
        // Sessions fed per tick, keyed by the batch size as a decimal string
        // (BTreeMap keeps the keys in ascending numeric-by-construction
        // order — sizes only grow by one digit past 9 with max_sessions > 9,
        // where the histogram is still deterministic per run).
        let batch_sizes = JsonValue::object(
            olive_runtime::lock_or_recover(&sched.batch_sizes)
                .iter()
                .map(|(size, count)| (size.to_string(), JsonValue::UInt(*count)))
                .collect::<Vec<_>>(),
        );
        JsonValue::object(vec![
            ("status", JsonValue::Str("ok".into())),
            (
                "requests_served",
                JsonValue::UInt(
                    stats.served.load(Ordering::Relaxed) + sched.served.load(Ordering::Relaxed),
                ),
            ),
            (
                "requests_rejected",
                JsonValue::UInt(
                    stats.rejected.load(Ordering::Relaxed) + sched.rejected.load(Ordering::Relaxed),
                ),
            ),
            (
                "batches_executed",
                JsonValue::UInt(stats.batches.load(Ordering::Relaxed)),
            ),
            (
                "queue_depth",
                JsonValue::Int((self.batcher.queue_depth() + self.scheduler.queue_depth()) as i64),
            ),
            (
                "connections_accepted",
                JsonValue::UInt(self.connections.load(Ordering::Relaxed)),
            ),
            ("cached_models", JsonValue::Int(prepared as i64)),
            ("cached_generators", JsonValue::Int(gen_prepared as i64)),
            ("cached_responses", JsonValue::Int(responses as i64)),
            (
                "cached_artifacts",
                JsonValue::UInt(self.cache.artifacts_loaded()),
            ),
            (
                "decode_sessions",
                JsonValue::UInt(sched.sessions.load(Ordering::Relaxed)),
            ),
            (
                "decode_ticks",
                JsonValue::UInt(sched.ticks.load(Ordering::Relaxed)),
            ),
            (
                "kv_pages_used",
                JsonValue::UInt(sched.kv_pages_used.load(Ordering::Relaxed)),
            ),
            (
                "kv_pages_free",
                JsonValue::UInt(sched.kv_pages_free.load(Ordering::Relaxed)),
            ),
            ("decode_batch_sizes", batch_sizes),
        ])
        .render()
    }
}

/// A running server. Dropping it without calling [`Server::shutdown`] leaves
/// the accept thread running for the life of the process; tests and
/// embedders should shut down explicitly.
pub struct Server {
    state: Arc<ServerState>,
    accept_handle: Mutex<Option<JoinHandle<()>>>,
}

impl Server {
    /// Binds and starts serving in background threads; returns once the
    /// listener is accepting.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (address in use, permission, …).
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let cache = Arc::new(ModelCache::with_artifact_dir(config.artifact_dir.clone()));
        let state = Arc::new(ServerState {
            batcher: Batcher::start(config.batch.clone(), Arc::clone(&cache)),
            scheduler: DecodeScheduler::start(config.sched.clone(), Arc::clone(&cache)),
            cache,
            schemes_body: render_schemes_body(),
            shutdown: AtomicBool::new(false),
            connections: AtomicU64::new(0),
            local_addr,
            config,
        });
        let accept_state = Arc::clone(&state);
        let accept_handle = std::thread::Builder::new()
            .name("olive-serve-accept".into())
            .spawn(move || accept_loop(&listener, &accept_state))?;
        Ok(Server {
            state,
            accept_handle: Mutex::new(Some(accept_handle)),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.local_addr
    }

    /// `http://host:port` of the bound address.
    pub fn url(&self) -> String {
        format!("http://{}", self.state.local_addr)
    }

    /// True once shutdown has been requested (via [`Server::shutdown`] or
    /// `POST /shutdown`).
    pub fn shutdown_requested(&self) -> bool {
        self.state.shutdown.load(Ordering::SeqCst)
    }

    /// Blocks until shutdown is requested, then tears the server down:
    /// stops accepting, drains queued requests, joins the worker threads.
    /// The daemon binary's main loop.
    pub fn wait(&self) {
        if let Some(handle) = lock_or_recover(&self.accept_handle).take() {
            let _ = handle.join();
        }
        self.state.batcher.shutdown();
        self.state.scheduler.shutdown();
    }

    /// Requests shutdown and waits for it to complete. Idempotent.
    pub fn shutdown(&self) {
        request_shutdown(&self.state);
        self.wait();
    }
}

/// Flags shutdown and pokes the listener so the accept loop observes it.
fn request_shutdown(state: &ServerState) {
    if state.shutdown.swap(true, Ordering::SeqCst) {
        return;
    }
    // Wake the blocking accept with a throwaway connection.
    let _ = TcpStream::connect(state.local_addr);
}

fn accept_loop(listener: &TcpListener, state: &Arc<ServerState>) {
    for stream in listener.incoming() {
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        state.connections.fetch_add(1, Ordering::Relaxed);
        let state = Arc::clone(state);
        // Connection threads are detached: they exit on their own via
        // keep-alive idle polling once shutdown is flagged.
        let _ = std::thread::Builder::new()
            .name("olive-serve-conn".into())
            .spawn(move || handle_connection(stream, &state));
    }
}

fn handle_connection(stream: TcpStream, state: &ServerState) {
    // The read timeout doubles as the shutdown-polling tick; NODELAY because
    // request/response exchanges are small and latency-bound.
    if stream.set_read_timeout(Some(IDLE_TIMEOUT)).is_err() || stream.set_nodelay(true).is_err() {
        return;
    }
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    let mut idle_ticks = 0u32;
    loop {
        match read_request(&mut reader) {
            ReadOutcome::Disconnected => return,
            ReadOutcome::Idle => {
                idle_ticks += 1;
                if idle_ticks >= MAX_IDLE_TICKS || state.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            ReadOutcome::Bad(error) => {
                // Protocol violations close the connection: framing is gone.
                let _ = Response::error(error.status, &error.message).write_to(&mut writer, false);
                return;
            }
            ReadOutcome::Request(request) => {
                idle_ticks = 0;
                match route(&request, state) {
                    Routed::Unary { response, shutdown } => {
                        let keep_alive = request.keep_alive()
                            && !shutdown
                            && !state.shutdown.load(Ordering::SeqCst);
                        // The response must be on the wire before shutdown is
                        // triggered: once the accept loop unblocks, the
                        // process may exit while this (detached) thread is
                        // still writing.
                        let write_result = response.write_to(&mut writer, keep_alive);
                        if shutdown {
                            request_shutdown(state);
                        }
                        if write_result.is_err() || !keep_alive {
                            return;
                        }
                    }
                    Routed::Stream(events) => {
                        let keep_alive =
                            request.keep_alive() && !state.shutdown.load(Ordering::SeqCst);
                        match stream_response(&mut writer, &events, keep_alive) {
                            Ok(true) if keep_alive => {}
                            // Framing gone (truncated stream) or client asked
                            // to close: the connection cannot be reused.
                            _ => return,
                        }
                    }
                }
            }
        }
    }
}

/// Streams a `/v1/generate` reply: the first event decides between a plain
/// error response and a chunked 200; afterwards every fragment is written as
/// its own chunk the moment it arrives. Returns `Ok(true)` only when the
/// stream terminated cleanly — the connection's framing is intact and
/// keep-alive reuse is safe.
fn stream_response(
    writer: &mut TcpStream,
    events: &mpsc::Receiver<StreamEvent>,
    keep_alive: bool,
) -> std::io::Result<bool> {
    match events.recv() {
        Ok(StreamEvent::Failed(response)) => {
            response.write_to(writer, keep_alive)?;
            Ok(true)
        }
        Ok(StreamEvent::Chunk(first)) => {
            write_chunked_head(writer, 200, keep_alive)?;
            write_chunk(writer, &first)?;
            loop {
                match events.recv() {
                    Ok(StreamEvent::Chunk(data)) => write_chunk(writer, &data)?,
                    Ok(StreamEvent::Done) => {
                        write_last_chunk(writer)?;
                        return Ok(true);
                    }
                    // A mid-stream failure (worker panic) truncates the body
                    // without the terminating chunk: the client sees a hard
                    // framing error, never a complete-looking answer.
                    Ok(StreamEvent::Failed(_)) | Err(_) => return Ok(false),
                }
            }
        }
        // An empty stream (nothing produced) is still a well-formed chunked
        // body; and a worker that died before any event is a plain 500.
        Ok(StreamEvent::Done) => {
            write_chunked_head(writer, 200, keep_alive)?;
            write_last_chunk(writer)?;
            Ok(true)
        }
        Err(_) => {
            Response::error(500, "decode worker terminated unexpectedly")
                .write_to(writer, false)?;
            Ok(false)
        }
    }
}

/// A routed outcome: either a complete response (plus whether server
/// shutdown must be triggered after it has been written out), or a stream of
/// events to relay as chunked transfer-encoding.
enum Routed {
    Unary { response: Response, shutdown: bool },
    Stream(mpsc::Receiver<StreamEvent>),
}

impl From<Response> for Routed {
    fn from(response: Response) -> Self {
        Routed::Unary {
            response,
            shutdown: false,
        }
    }
}

fn route(request: &Request, state: &ServerState) -> Routed {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Response::json(200, state.healthz_body()).into(),
        ("GET", "/v1/schemes") => Response::json(200, state.schemes_body.clone()).into(),
        ("POST", "/v1/eval") => match decode_body(request)
            .and_then(|v| EvalRequest::decode(&v).map_err(|e| Response::error(400, &e.0)))
        {
            Ok(req) => state.batcher.submit(Job::Eval(req)).into(),
            Err(response) => response.into(),
        },
        ("POST", "/v1/generate") => match decode_body(request)
            .and_then(|v| GenerateRequest::decode(&v).map_err(|e| Response::error(400, &e.0)))
        {
            Ok(req) => match state.scheduler.submit(req) {
                Ok(events) => Routed::Stream(events),
                Err(response) => response.into(),
            },
            Err(response) => response.into(),
        },
        ("POST", "/v1/quantize") => match decode_body(request)
            .and_then(|v| QuantizeRequest::decode(&v).map_err(|e| Response::error(400, &e.0)))
        {
            Ok(req) => state.batcher.submit(Job::Quantize(req)).into(),
            Err(response) => response.into(),
        },
        ("POST", "/shutdown") => {
            if state.config.allow_shutdown {
                Routed::Unary {
                    response: Response::json(
                        200,
                        JsonValue::object(vec![("status", JsonValue::Str("shutting down".into()))])
                            .render(),
                    ),
                    shutdown: true,
                }
            } else {
                Response::error(
                    403,
                    "shutdown over HTTP is disabled (start with --allow-shutdown)",
                )
                .into()
            }
        }
        // Known path, wrong method.
        (_, "/healthz" | "/v1/schemes") => Response::error(405, "use GET")
            .with_header("Allow", "GET")
            .into(),
        (_, "/v1/eval" | "/v1/generate" | "/v1/quantize" | "/shutdown") => {
            Response::error(405, "use POST")
                .with_header("Allow", "POST")
                .into()
        }
        (_, path) => Response::error(
            404,
            &format!(
                "no such endpoint '{path}' (have: GET /healthz, GET /v1/schemes, \
                 POST /v1/eval, POST /v1/generate, POST /v1/quantize)"
            ),
        )
        .into(),
    }
}

/// Parses a request body as JSON, mapping failures to 400 responses.
fn decode_body(request: &Request) -> Result<JsonValue, Response> {
    let text = request
        .body_utf8()
        .map_err(|e| Response::error(e.status, &e.message))?;
    if text.trim().is_empty() {
        return Err(Response::error(400, "expected a JSON request body"));
    }
    JsonValue::parse(text).map_err(|e| Response::error(400, &e.to_string()))
}
