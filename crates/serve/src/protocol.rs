//! The JSON wire protocol: decoding `/v1/eval`, `/v1/generate` and
//! `/v1/quantize` request bodies into validated, serveable jobs, and
//! rendering the non-batched endpoint bodies (`/v1/schemes`).
//!
//! Decoding is strict: unknown fields, wrong types, out-of-range sizes and
//! duplicate schemes are all 400s with messages naming the offending field —
//! requests are untrusted input, so nothing here panics.
//!
//! All three POST endpoints decode through one typed layer
//! ([`RequestDecoder`]): the field whitelist is checked before any field is
//! read (a typo'd field name 400s even when everything else is valid), and
//! every typed accessor produces its error in one place — so "must be an
//! unsigned integer", range violations and missing-field messages are
//! uniform across the whole API, not per-endpoint dialects. The model
//! fields the eval and generate endpoints share (`family`, `size`, `seed`,
//! `weights_only`, `task`) decode through one [`ModelParams`] reader.

use olive_api::{
    Calibration, JsonValue, ModelFamily, ModelSpec, Pipeline, Scheme, DEFAULT_BATCHES,
    DEFAULT_MAX_NEW_TOKENS, DEFAULT_OVERSAMPLE, DEFAULT_PROMPT_TOKENS,
};
use olive_core::TensorQuantizer;
use olive_tensor::Tensor;

/// Most evaluation sequences a single request may ask for — serving bounds
/// per-request work so one client cannot monopolise the batch worker.
pub const MAX_BATCHES: usize = 256;

/// Largest accepted calibration oversampling factor.
pub const MAX_OVERSAMPLE: usize = 64;

/// Most matrix elements `/v1/quantize` accepts (1M f32 ≈ 4 MB dense).
pub const MAX_QUANTIZE_ELEMENTS: usize = 1 << 20;

/// A decode failure; always answered as a 400 with this message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The proxy-model size a request selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelSize {
    /// Unit-test sized (`EngineConfig::tiny()`): sub-millisecond evals.
    Tiny,
    /// The harness default (`EngineConfig::small()`).
    Small,
}

impl ModelSize {
    fn parse(name: &str) -> Result<ModelSize, DecodeError> {
        match name {
            "tiny" => Ok(ModelSize::Tiny),
            "small" => Ok(ModelSize::Small),
            other => Err(DecodeError(format!(
                "unknown model size '{other}' (expected 'tiny' or 'small')"
            ))),
        }
    }

    fn wire_name(self) -> &'static str {
        match self {
            ModelSize::Tiny => "tiny",
            ModelSize::Small => "small",
        }
    }

    fn spec(self, family: ModelFamily) -> ModelSpec {
        match self {
            ModelSize::Tiny => family.tiny(),
            ModelSize::Small => family.small(),
        }
    }
}

/// A fully validated `/v1/eval` request.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalRequest {
    /// Proxy-model family (`"family"`, default `"bert"`).
    pub family: ModelFamily,
    /// Proxy-model size (`"size"`, default `"tiny"`).
    pub size: ModelSize,
    /// Schemes to evaluate (`"scheme"` or `"schemes"`, required, no
    /// duplicates).
    pub schemes: Vec<Scheme>,
    /// Teacher/task RNG seed (`"seed"`, default 0).
    pub seed: u64,
    /// Evaluation sequences (`"batches"`, default [`DEFAULT_BATCHES`], max
    /// [`MAX_BATCHES`]).
    pub batches: usize,
    /// Input selection (`"calibration"`: `"confident"`/`"random"`, plus
    /// `"oversample"`).
    pub calibration: Calibration,
    /// Quantize weights only (`"weights_only"`, default false).
    pub weights_only: bool,
    /// Task display name (`"task"`, default `"eval"` like the pipeline).
    pub task: String,
}

impl EvalRequest {
    /// Decodes and validates a request body.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] naming the offending field.
    pub fn decode(body: &JsonValue) -> Result<EvalRequest, DecodeError> {
        let dec = RequestDecoder::new(
            body,
            &[
                "family",
                "size",
                "scheme",
                "schemes",
                "seed",
                "batches",
                "calibration",
                "oversample",
                "weights_only",
                "task",
            ],
        )?;
        let model = ModelParams::decode(&dec, "eval")?;

        let mut specs: Vec<&str> = Vec::new();
        match (dec.get("scheme"), dec.get("schemes")) {
            (Some(_), Some(_)) => {
                return Err(DecodeError(
                    "pass either 'scheme' or 'schemes', not both".into(),
                ))
            }
            (Some(v), None) => specs.push(str_value(v, "scheme")?),
            (None, Some(v)) => {
                let items = v.as_array().ok_or_else(|| {
                    DecodeError("'schemes' must be an array of spec strings".into())
                })?;
                for item in items {
                    specs.push(str_value(item, "schemes[..]")?);
                }
            }
            (None, None) => {
                return Err(DecodeError(
                    "missing 'scheme' (or 'schemes'): see GET /v1/schemes for the registry".into(),
                ))
            }
        }
        if specs.is_empty() {
            return Err(DecodeError("'schemes' must not be empty".into()));
        }
        let mut schemes = Vec::with_capacity(specs.len());
        for spec in specs {
            let scheme = Scheme::parse(spec).map_err(|e| DecodeError(e.to_string()))?;
            if schemes.contains(&scheme) {
                return Err(DecodeError(format!(
                    "duplicate scheme '{scheme}' in the request"
                )));
            }
            schemes.push(scheme);
        }

        let batches = dec.bounded_usize("batches", DEFAULT_BATCHES, 1, MAX_BATCHES)?;
        let oversample = dec.bounded_usize("oversample", DEFAULT_OVERSAMPLE, 1, MAX_OVERSAMPLE)?;
        let calibration = match dec.str("calibration")? {
            None => Calibration::Confident { oversample },
            Some("confident") => Calibration::Confident { oversample },
            Some("random") => Calibration::Random,
            Some(other) => {
                return Err(DecodeError(format!(
                    "unknown calibration '{other}' (expected 'confident' or 'random')"
                )))
            }
        };
        if matches!(calibration, Calibration::Random) && dec.get("oversample").is_some() {
            return Err(DecodeError(
                "'oversample' only applies to 'confident' calibration".into(),
            ));
        }

        Ok(EvalRequest {
            family: model.family,
            size: model.size,
            schemes,
            seed: model.seed,
            batches,
            calibration,
            weights_only: model.weights_only,
            task: model.task,
        })
    }

    /// The equivalent direct [`Pipeline`] — serving is defined as "exactly
    /// what this pipeline computes" (see the crate-level determinism
    /// contract).
    pub fn pipeline(&self) -> Pipeline {
        let mut p = Pipeline::new(self.size.spec(self.family))
            .task(self.task.clone())
            .scheme_set(self.schemes.iter().copied())
            .seed(self.seed)
            .batches(self.batches)
            .calibrate(self.calibration);
        if self.weights_only {
            p = p.weights_only();
        }
        p
    }

    /// Cache key of the prepared teacher + task this request needs —
    /// everything that feeds [`Pipeline::prepare`], excluding the schemes.
    pub fn prepared_key(&self) -> String {
        let calibration = match self.calibration {
            Calibration::Confident { oversample } => format!("confident:{oversample}"),
            Calibration::Random => "random".to_string(),
        };
        format!(
            "family={};size={};seed={};batches={};cal={};task={}",
            self.family.label(),
            self.size.wire_name(),
            self.seed,
            self.batches,
            calibration,
            self.task,
        )
    }

    /// Cache key of the full rendered response body.
    pub fn response_key(&self) -> String {
        let specs: Vec<String> = self.schemes.iter().map(|s| s.to_string()).collect();
        format!(
            "{}|weights_only={}|schemes={}",
            self.prepared_key(),
            self.weights_only,
            specs.join(","),
        )
    }
}

/// Most decode steps a single `/v1/generate` request may ask for — a
/// generation request occupies its batch slot for its whole duration, so
/// this bounds how long one client can hold a slot.
pub const MAX_NEW_TOKENS: usize = 256;

/// Longest accepted prompt, in tokens.
pub const MAX_PROMPT_TOKENS: usize = 256;

/// A fully validated `/v1/generate` request: one scheme decoded greedily for
/// a bounded number of steps, streamed as chunked transfer-encoding.
///
/// Exactly **one** scheme per request: a stream is one decode trace; compare
/// schemes with one request each (they share the cached teacher + prompt).
#[derive(Debug, Clone, PartialEq)]
pub struct GenerateRequest {
    /// Proxy-model family (`"family"`, default `"bert"`).
    pub family: ModelFamily,
    /// Proxy-model size (`"size"`, default `"tiny"`).
    pub size: ModelSize,
    /// Scheme to generate with (`"scheme"`, required, single).
    pub scheme: Scheme,
    /// Teacher/prompt RNG seed (`"seed"`, default 0).
    pub seed: u64,
    /// Prompt length (`"prompt_tokens"`, default
    /// [`DEFAULT_PROMPT_TOKENS`], max [`MAX_PROMPT_TOKENS`]).
    pub prompt_tokens: usize,
    /// Greedy decode steps (`"max_new_tokens"`, default
    /// [`DEFAULT_MAX_NEW_TOKENS`], max [`MAX_NEW_TOKENS`]).
    pub max_new_tokens: usize,
    /// Quantize weights only (`"weights_only"`, default false).
    pub weights_only: bool,
    /// Task display name (`"task"`, default `"generate"`).
    pub task: String,
}

impl GenerateRequest {
    /// Decodes and validates a request body.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] naming the offending field.
    pub fn decode(body: &JsonValue) -> Result<GenerateRequest, DecodeError> {
        let dec = RequestDecoder::new(
            body,
            &[
                "family",
                "size",
                "scheme",
                "seed",
                "prompt_tokens",
                "max_new_tokens",
                "weights_only",
                "task",
            ],
        )?;
        let model = ModelParams::decode(&dec, "generate")?;
        let spec = dec.str("scheme")?.ok_or_else(|| {
            DecodeError("missing 'scheme' (one per generation stream; see GET /v1/schemes)".into())
        })?;
        let scheme = Scheme::parse(spec).map_err(|e| DecodeError(e.to_string()))?;
        let prompt_tokens =
            dec.bounded_usize("prompt_tokens", DEFAULT_PROMPT_TOKENS, 1, MAX_PROMPT_TOKENS)?;
        let max_new_tokens =
            dec.bounded_usize("max_new_tokens", DEFAULT_MAX_NEW_TOKENS, 1, MAX_NEW_TOKENS)?;
        Ok(GenerateRequest {
            family: model.family,
            size: model.size,
            scheme,
            seed: model.seed,
            prompt_tokens,
            max_new_tokens,
            weights_only: model.weights_only,
            task: model.task,
        })
    }

    /// The equivalent direct [`Pipeline`] — a streamed `/v1/generate`
    /// response, chunks concatenated, is byte-identical to this pipeline's
    /// `generate(..).without_wall_times().to_json()` (the serving
    /// determinism contract).
    pub fn pipeline(&self) -> Pipeline {
        let mut p = Pipeline::new(self.size.spec(self.family))
            .task(self.task.clone())
            .scheme_set([self.scheme])
            .seed(self.seed);
        if self.weights_only {
            p = p.weights_only();
        }
        p
    }

    /// Cache key of the prepared teacher + prompt this request needs —
    /// everything that feeds [`Pipeline::prepare_generation`], excluding the
    /// scheme (so scheme comparisons share one preparation).
    pub fn prepared_key(&self) -> String {
        format!(
            "family={};size={};seed={};prompt={}",
            self.family.label(),
            self.size.wire_name(),
            self.seed,
            self.prompt_tokens,
        )
    }
}

/// A fully validated `/v1/quantize` request: one raw f32 matrix plus the
/// scheme to encode it with.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizeRequest {
    /// Scheme to quantize with (`"scheme"`, required).
    pub scheme: Scheme,
    /// Matrix rows (`"rows"`, required, ≥ 1).
    pub rows: usize,
    /// Matrix columns (`"cols"`, required, ≥ 1).
    pub cols: usize,
    /// Row-major matrix data (`"data"`, required, finite, rows×cols values).
    pub data: Vec<f32>,
}

impl QuantizeRequest {
    /// Decodes and validates a request body.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] naming the offending field.
    pub fn decode(body: &JsonValue) -> Result<QuantizeRequest, DecodeError> {
        let dec = RequestDecoder::new(body, &["scheme", "rows", "cols", "data"])?;
        let spec = dec
            .str("scheme")?
            .ok_or_else(|| DecodeError("missing 'scheme'".into()))?;
        let scheme = Scheme::parse(spec).map_err(|e| DecodeError(e.to_string()))?;
        let rows = dec.required_usize("rows")?;
        let cols = dec.required_usize("cols")?;
        if rows == 0 || cols == 0 {
            return Err(DecodeError("'rows' and 'cols' must be at least 1".into()));
        }
        let elements = rows
            .checked_mul(cols)
            .filter(|&n| n <= MAX_QUANTIZE_ELEMENTS)
            .ok_or_else(|| {
                DecodeError(format!(
                    "matrix of {rows}x{cols} exceeds the {MAX_QUANTIZE_ELEMENTS}-element limit"
                ))
            })?;
        let items = dec
            .get("data")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| DecodeError("'data' must be an array of numbers".into()))?;
        if items.len() != elements {
            return Err(DecodeError(format!(
                "'data' has {} values but rows*cols = {elements}",
                items.len()
            )));
        }
        let mut data = Vec::with_capacity(elements);
        for (i, item) in items.iter().enumerate() {
            let x = item
                .as_f64()
                .ok_or_else(|| DecodeError(format!("'data[{i}]' is not a number")))?;
            let x = x as f32;
            if !x.is_finite() {
                return Err(DecodeError(format!(
                    "'data[{i}]' does not fit in a finite f32"
                )));
            }
            data.push(x);
        }
        Ok(QuantizeRequest {
            scheme,
            rows,
            cols,
            data,
        })
    }

    /// Quantizes the matrix and renders the response body: the dequantized
    /// values plus per-scheme storage/error statistics (and OVP-specific
    /// outlier statistics for OliVe schemes).
    pub fn execute(&self) -> String {
        let tensor = Tensor::from_vec(vec![self.rows, self.cols], self.data.clone());
        let quantizer = self.scheme.build();
        let mut extra: Vec<(String, JsonValue)> = Vec::new();
        let dequantized = match self.scheme.olive_quantizer() {
            Some(olive) => {
                let encoded = olive.quantize(&tensor);
                extra.push((
                    "storage_bytes".into(),
                    JsonValue::Int(encoded.storage_bytes() as i64),
                ));
                extra.push((
                    "compression_ratio".into(),
                    JsonValue::num_or_null(encoded.compression_ratio()),
                ));
                extra.push((
                    "outlier_pair_fraction".into(),
                    JsonValue::num_or_null(encoded.outlier_pair_fraction()),
                ));
                encoded.dequantize()
            }
            None => quantizer.quantize_dequantize(&tensor),
        };
        let mse = tensor.mse(&dequantized);
        let max_abs_err = tensor
            .data()
            .iter()
            .zip(dequantized.data())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        let values: Vec<JsonValue> = dequantized
            .data()
            .iter()
            .map(|&x| JsonValue::num_or_null(x as f64))
            .collect();
        let mut entries: Vec<(String, JsonValue)> = vec![
            ("scheme".into(), JsonValue::Str(self.scheme.to_string())),
            ("name".into(), JsonValue::Str(quantizer.name().to_string())),
            ("rows".into(), JsonValue::Int(self.rows as i64)),
            ("cols".into(), JsonValue::Int(self.cols as i64)),
            (
                "bits_per_element".into(),
                JsonValue::num_or_null(quantizer.bits_per_element()),
            ),
            (
                "compute_bits".into(),
                JsonValue::num_or_null(quantizer.compute_bits()),
            ),
            ("mse".into(), JsonValue::num_or_null(mse)),
            (
                "max_abs_err".into(),
                JsonValue::num_or_null(max_abs_err as f64),
            ),
        ];
        entries.extend(extra);
        entries.push(("values".into(), JsonValue::Array(values)));
        JsonValue::object(entries).render()
    }
}

/// Renders the `/v1/schemes` body: the whole registry with per-scheme
/// storage/compute stats.
pub fn render_schemes_body() -> String {
    let schemes: Vec<JsonValue> = Scheme::all()
        .into_iter()
        .map(|scheme| {
            let q = scheme.build();
            JsonValue::object(vec![
                ("spec", JsonValue::Str(scheme.to_string())),
                ("name", JsonValue::Str(q.name().to_string())),
                (
                    "bits_per_element",
                    JsonValue::num_or_null(q.bits_per_element()),
                ),
                ("compute_bits", JsonValue::num_or_null(q.compute_bits())),
                (
                    "quantizes_activations",
                    JsonValue::Bool(q.quantizes_activations()),
                ),
            ])
        })
        .collect();
    JsonValue::object(vec![
        ("granularity_suffix", JsonValue::Str("@per-row".into())),
        ("schemes", JsonValue::Array(schemes)),
    ])
    .render()
}

/// The one typed request-decode layer every POST endpoint goes through.
///
/// Construction enforces the two invariants shared by the whole API:
/// the body is a JSON object, and every present field is on the endpoint's
/// whitelist — checked *before* any field is read, so a typo'd field name
/// 400s even when everything else is valid (a misspelled "batchs" silently
/// falling back to a default would change results quietly: a debugging
/// nightmare). The accessors then produce every type/range/missing error
/// from one place, so error wording is uniform across endpoints.
struct RequestDecoder<'a> {
    body: &'a JsonValue,
}

impl<'a> RequestDecoder<'a> {
    fn new(body: &'a JsonValue, allowed: &[&str]) -> Result<Self, DecodeError> {
        let JsonValue::Object(entries) = body else {
            return Err(DecodeError("request body must be a JSON object".into()));
        };
        for (key, _) in entries {
            if !allowed.contains(&key.as_str()) {
                return Err(DecodeError(format!(
                    "unknown field '{key}' (expected one of: {})",
                    allowed.join(", ")
                )));
            }
        }
        Ok(RequestDecoder { body })
    }

    fn get(&self, name: &str) -> Option<&'a JsonValue> {
        self.body.get(name)
    }

    fn str(&self, name: &str) -> Result<Option<&'a str>, DecodeError> {
        self.get(name).map(|v| str_value(v, name)).transpose()
    }

    fn string_or(&self, name: &str, default: &str) -> Result<String, DecodeError> {
        Ok(self.str(name)?.unwrap_or(default).to_string())
    }

    fn bool_or(&self, name: &str, default: bool) -> Result<bool, DecodeError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .as_bool()
                .ok_or_else(|| DecodeError(format!("'{name}' must be a boolean"))),
        }
    }

    fn u64_or(&self, name: &str, default: u64) -> Result<u64, DecodeError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .as_u64()
                .ok_or_else(|| DecodeError(format!("'{name}' must be an unsigned integer"))),
        }
    }

    /// An optional bounded count: serving limits (`MAX_BATCHES`,
    /// `MAX_NEW_TOKENS`, …) are enforced here so every endpoint rejects
    /// out-of-range sizes with the same wording.
    fn bounded_usize(
        &self,
        name: &str,
        default: usize,
        min: usize,
        max: usize,
    ) -> Result<usize, DecodeError> {
        let value = match self.get(name) {
            None => default,
            Some(v) => v
                .as_usize()
                .ok_or_else(|| DecodeError(format!("'{name}' must be an unsigned integer")))?,
        };
        if !(min..=max).contains(&value) {
            return Err(DecodeError(format!(
                "'{name}' must be between {min} and {max}, got {value}"
            )));
        }
        Ok(value)
    }

    fn required_usize(&self, name: &str) -> Result<usize, DecodeError> {
        self.get(name)
            .ok_or_else(|| DecodeError(format!("missing '{name}'")))?
            .as_usize()
            .ok_or_else(|| DecodeError(format!("'{name}' must be an unsigned integer")))
    }
}

/// The model-selection fields `/v1/eval` and `/v1/generate` share, decoded
/// identically for both (only the default task label differs).
struct ModelParams {
    family: ModelFamily,
    size: ModelSize,
    seed: u64,
    weights_only: bool,
    task: String,
}

impl ModelParams {
    fn decode(dec: &RequestDecoder<'_>, default_task: &str) -> Result<ModelParams, DecodeError> {
        let family = match dec.str("family")? {
            None => ModelFamily::Bert,
            Some(name) => ModelFamily::parse(name).map_err(DecodeError)?,
        };
        let size = match dec.str("size")? {
            None => ModelSize::Tiny,
            Some(name) => ModelSize::parse(name)?,
        };
        Ok(ModelParams {
            family,
            size,
            seed: dec.u64_or("seed", 0)?,
            weights_only: dec.bool_or("weights_only", false)?,
            task: dec.string_or("task", default_task)?,
        })
    }
}

fn str_value<'a>(v: &'a JsonValue, name: &str) -> Result<&'a str, DecodeError> {
    v.as_str()
        .ok_or_else(|| DecodeError(format!("'{name}' must be a string")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decode_eval(text: &str) -> Result<EvalRequest, DecodeError> {
        EvalRequest::decode(&JsonValue::parse(text).unwrap())
    }

    fn decode_quantize(text: &str) -> Result<QuantizeRequest, DecodeError> {
        QuantizeRequest::decode(&JsonValue::parse(text).unwrap())
    }

    #[test]
    fn eval_defaults_mirror_the_pipeline_defaults() {
        let req = decode_eval(r#"{"scheme": "olive-4bit"}"#).unwrap();
        assert_eq!(req.family, ModelFamily::Bert);
        assert_eq!(req.size, ModelSize::Tiny);
        assert_eq!(req.seed, 0);
        assert_eq!(req.batches, DEFAULT_BATCHES);
        assert_eq!(
            req.calibration,
            Calibration::Confident {
                oversample: DEFAULT_OVERSAMPLE
            }
        );
        assert!(!req.weights_only);
        assert_eq!(req.task, "eval");
    }

    #[test]
    fn eval_accepts_a_full_request() {
        let req = decode_eval(
            r#"{"family": "gpt2", "size": "small", "schemes": ["fp32", "olive-4bit@per-row"],
                "seed": 7, "batches": 3, "calibration": "random", "weights_only": true,
                "task": "wiki"}"#,
        )
        .unwrap();
        assert_eq!(req.family, ModelFamily::Gpt2);
        assert_eq!(req.size, ModelSize::Small);
        assert_eq!(req.schemes.len(), 2);
        assert_eq!(req.calibration, Calibration::Random);
        assert!(req.weights_only);
        // The derived pipeline reports exactly these settings.
        let report = EvalRequest {
            size: ModelSize::Tiny,
            batches: 2,
            ..req
        }
        .pipeline()
        .run();
        assert_eq!(report.task, "wiki");
        assert_eq!(report.seed, 7);
        assert!(!report.quantize_activations);
    }

    #[test]
    fn eval_rejections_name_the_problem() {
        for (body, needle) in [
            (r#"[1]"#, "must be a JSON object"),
            (r#"{}"#, "missing 'scheme'"),
            (r#"{"schemes": []}"#, "must not be empty"),
            (
                r#"{"scheme": "olive-4bit", "schemes": ["fp32"]}"#,
                "not both",
            ),
            (r#"{"scheme": "olive-5bit"}"#, "olive-5bit"),
            (
                r#"{"schemes": ["fp32", "fp32"]}"#,
                "duplicate scheme 'fp32'",
            ),
            (r#"{"scheme": "fp32", "family": "llama"}"#, "llama"),
            (r#"{"scheme": "fp32", "size": "xl"}"#, "unknown model size"),
            (r#"{"scheme": "fp32", "seed": -1}"#, "'seed'"),
            (r#"{"scheme": "fp32", "batches": 0}"#, "'batches'"),
            (r#"{"scheme": "fp32", "batches": 100000}"#, "'batches'"),
            (r#"{"scheme": "fp32", "calibration": "magic"}"#, "magic"),
            (
                r#"{"scheme": "fp32", "calibration": "random", "oversample": 2}"#,
                "oversample",
            ),
            (r#"{"scheme": "fp32", "weights_only": 1}"#, "weights_only"),
            (
                r#"{"scheme": "fp32", "batchs": 4}"#,
                "unknown field 'batchs'",
            ),
        ] {
            let err = decode_eval(body).expect_err(body);
            assert!(err.0.contains(needle), "{body}: {err}");
        }
    }

    #[test]
    fn cache_keys_separate_what_must_be_separated() {
        let a = decode_eval(r#"{"scheme": "fp32", "seed": 1}"#).unwrap();
        let b = decode_eval(r#"{"scheme": "fp32", "seed": 2}"#).unwrap();
        let c = decode_eval(r#"{"scheme": "olive-4bit", "seed": 1}"#).unwrap();
        assert_ne!(a.prepared_key(), b.prepared_key());
        // Same preparation, different schemes: shared teacher, distinct body.
        assert_eq!(a.prepared_key(), c.prepared_key());
        assert_ne!(a.response_key(), c.response_key());
    }

    fn decode_generate(text: &str) -> Result<GenerateRequest, DecodeError> {
        GenerateRequest::decode(&JsonValue::parse(text).unwrap())
    }

    #[test]
    fn generate_defaults_and_full_requests_decode() {
        let req = decode_generate(r#"{"scheme": "olive-4bit"}"#).unwrap();
        assert_eq!(req.family, ModelFamily::Bert);
        assert_eq!(req.size, ModelSize::Tiny);
        assert_eq!(req.seed, 0);
        assert_eq!(req.prompt_tokens, DEFAULT_PROMPT_TOKENS);
        assert_eq!(req.max_new_tokens, DEFAULT_MAX_NEW_TOKENS);
        assert!(!req.weights_only);
        assert_eq!(req.task, "generate");

        let req = decode_generate(
            r#"{"family": "gpt2", "size": "small", "scheme": "olive-4bit@per-row",
                "seed": 3, "prompt_tokens": 5, "max_new_tokens": 7,
                "weights_only": true, "task": "story"}"#,
        )
        .unwrap();
        assert_eq!(req.family, ModelFamily::Gpt2);
        assert_eq!(req.prompt_tokens, 5);
        assert_eq!(req.max_new_tokens, 7);
        assert!(req.weights_only);
        // The derived pipeline reports exactly these settings.
        let report = GenerateRequest {
            size: ModelSize::Tiny,
            max_new_tokens: 2,
            ..req
        }
        .pipeline()
        .generation(
            olive_api::GenOptions::new()
                .prompt_tokens(5)
                .max_new_tokens(2),
        );
        assert_eq!(report.task, "story");
        assert_eq!(report.seed, 3);
        assert_eq!(report.prompt.len(), 5);
        assert!(!report.quantize_activations);
    }

    #[test]
    fn generate_rejections_name_the_problem() {
        for (body, needle) in [
            (r#"{}"#, "missing 'scheme'"),
            (r#"{"schemes": ["fp32"]}"#, "unknown field 'schemes'"),
            (r#"{"scheme": "olive-5bit"}"#, "olive-5bit"),
            (
                r#"{"scheme": "fp32", "max_new_tokens": 0}"#,
                "max_new_tokens",
            ),
            (
                r#"{"scheme": "fp32", "max_new_tokens": 100000}"#,
                "max_new_tokens",
            ),
            (r#"{"scheme": "fp32", "prompt_tokens": 0}"#, "prompt_tokens"),
            (r#"{"scheme": "fp32", "seed": -2}"#, "'seed'"),
            (
                r#"{"scheme": "fp32", "batches": 4}"#,
                "unknown field 'batches'",
            ),
        ] {
            let err = decode_generate(body).expect_err(body);
            assert!(err.0.contains(needle), "{body}: {err}");
        }
    }

    #[test]
    fn generate_cache_keys_share_preparations_across_schemes() {
        let a = decode_generate(r#"{"scheme": "fp32", "seed": 1}"#).unwrap();
        let b = decode_generate(r#"{"scheme": "olive-4bit", "seed": 1}"#).unwrap();
        let c = decode_generate(r#"{"scheme": "fp32", "seed": 2}"#).unwrap();
        let d = decode_generate(r#"{"scheme": "fp32", "seed": 1, "prompt_tokens": 9}"#).unwrap();
        assert_eq!(a.prepared_key(), b.prepared_key());
        assert_ne!(a.prepared_key(), c.prepared_key());
        assert_ne!(a.prepared_key(), d.prepared_key());
    }

    #[test]
    fn quantize_round_trips_fp32_exactly() {
        let req = decode_quantize(
            r#"{"scheme": "fp32", "rows": 2, "cols": 3, "data": [1, -2, 3.5, 0, 4, -0.25]}"#,
        )
        .unwrap();
        let body = req.execute();
        let v = JsonValue::parse(&body).unwrap();
        assert_eq!(v.get("mse").and_then(JsonValue::as_f64), Some(0.0));
        assert_eq!(v.get("max_abs_err").and_then(JsonValue::as_f64), Some(0.0));
        let values = v.get("values").and_then(JsonValue::as_array).unwrap();
        assert_eq!(values.len(), 6);
        assert_eq!(values[2].as_f64(), Some(3.5));
    }

    #[test]
    fn quantize_reports_olive_ovp_statistics() {
        let data: Vec<String> = (0..64)
            .map(|i| {
                if i == 10 {
                    "50.0".into()
                } else {
                    format!("0.{i:02}")
                }
            })
            .collect();
        let req = decode_quantize(&format!(
            r#"{{"scheme": "olive-4bit", "rows": 4, "cols": 16, "data": [{}]}}"#,
            data.join(",")
        ))
        .unwrap();
        let v = JsonValue::parse(&req.execute()).unwrap();
        assert!(v.get("storage_bytes").and_then(JsonValue::as_u64).unwrap() > 0);
        assert!(
            v.get("compression_ratio")
                .and_then(JsonValue::as_f64)
                .unwrap()
                > 1.0
        );
        assert!(v.get("outlier_pair_fraction").is_some());
        // The planted outlier must survive 4-bit quantization.
        let values = v.get("values").and_then(JsonValue::as_array).unwrap();
        let back = values[10].as_f64().unwrap();
        assert!(
            (back - 50.0).abs() / 50.0 < 0.25,
            "outlier decayed to {back}"
        );
    }

    #[test]
    fn quantize_rejections_name_the_problem() {
        for (body, needle) in [
            (r#"{"rows": 1, "cols": 1, "data": [1]}"#, "missing 'scheme'"),
            (
                r#"{"scheme": "fp32", "cols": 1, "data": [1]}"#,
                "missing 'rows'",
            ),
            (
                r#"{"scheme": "fp32", "rows": 0, "cols": 1, "data": []}"#,
                "at least 1",
            ),
            (
                r#"{"scheme": "fp32", "rows": 2, "cols": 2, "data": [1, 2, 3]}"#,
                "rows*cols",
            ),
            (
                r#"{"scheme": "fp32", "rows": 1, "cols": 2, "data": [1, "x"]}"#,
                "not a number",
            ),
            (
                r#"{"scheme": "fp32", "rows": 1, "cols": 1, "data": [1e300]}"#,
                "finite f32",
            ),
            (
                r#"{"scheme": "fp32", "rows": 2000, "cols": 2000, "data": []}"#,
                "element limit",
            ),
        ] {
            let err = decode_quantize(body).expect_err(body);
            assert!(err.0.contains(needle), "{body}: {err}");
        }
    }

    #[test]
    fn schemes_body_lists_the_whole_registry() {
        let v = JsonValue::parse(&render_schemes_body()).unwrap();
        let listed = v.get("schemes").and_then(JsonValue::as_array).unwrap();
        assert_eq!(listed.len(), Scheme::all().len());
        assert!(listed
            .iter()
            .any(|s| { s.get("spec").and_then(JsonValue::as_str) == Some("olive-4bit") }));
    }
}
