//! The continuous-batching decode scheduler behind `/v1/generate`.
//!
//! The PR-5 batcher executed a generation request as one opaque job: a
//! stream occupied its micro-batch slot for its *whole* decode, so a long
//! generation delayed everything queued behind it (head-of-line blocking),
//! and K concurrent streams cost K independent forward passes per step.
//! This module replaces that with vLLM-style **continuous batching**:
//!
//! * every in-flight stream is a [`Flight`] — a step-schedulable decode
//!   session whose KV state lives in pages reserved from a shared
//!   [`KvPool`];
//! * each scheduler **tick** advances the *current step* of every flight:
//!   the feeds are grouped by model (one group per distinct quantized
//!   student, one per distinct teacher) and each group runs as **one**
//!   batched causal forward ([`TinyTransformer::advance_batch`]) — K
//!   streams over the same model cost one GEMM pipeline per tick, not K;
//! * the logits come back per stream, each flight emits its own JSON
//!   fragment as an HTTP chunk, and the next tick feeds the next token —
//!   new requests are admitted *between* steps, so a long stream never
//!   blocks a short one.
//!
//! ## Determinism
//!
//! Interleaving changes **timing only, never bytes**. Each stream's chunks
//! concatenate to exactly `Pipeline::generation(..)` over the same request
//! (wall times stripped), at any thread count, tick order, admission order
//! and batch composition, because:
//!
//! * row *i* of an [`advance_batch`](TinyTransformer::advance_batch) over K
//!   streams is bit-identical to advancing stream *i* alone (the
//!   `olive-models` step-batching contract: every non-GEMM op is per-row,
//!   every GEMM row accumulates in ascending-`k` order);
//! * a flight's attention reads only its own [`PagedKv`] pages, and the
//!   paged layout is byte-equivalent to the session-owned store;
//! * a short pool only ever *defers admission* (a parked request waits for
//!   pages) — it can never truncate or alter a decode, because a flight
//!   reserves its worst-case pages up front, all-or-nothing;
//! * the fragments are the very constructors `GenReport::to_json`
//!   concatenates ([`head_fragment`], [`step_fragment`], …), so framing is
//!   the only thing streaming decides.
//!
//! `crates/serve/tests/continuous.rs` enforces this end to end with
//! staggered concurrent streams, mixed prompt lengths and a mid-stream
//! client disconnect, at `OLIVE_THREADS` ∈ {1, 8}.
//!
//! The split below mirrors the batcher: [`SchedCore`] is the synchronous
//! engine (admission, one [`tick`](SchedCore::tick) = one merged step —
//! directly drivable by tests), [`DecodeScheduler`] wraps it in the
//! bounded-queue/worker-thread lifecycle with the same 503 back-pressure
//! contract as [`Batcher`](crate::batch::Batcher).

use crate::cache::ModelCache;
use crate::http::Response;
use crate::protocol::GenerateRequest;
use olive_api::gen::{
    head_fragment, scheme_head_fragment, scheme_tail_fragment, step_fragment, REPORT_TAIL,
};
use olive_api::{GenSchemeResult, GenStep, PreparedGen, Scheme};
use olive_core::TensorQuantizer;
use olive_models::{argmax, pages_needed, KvPool, PagedKv, StepSlot, TinyTransformer};
use olive_runtime::{lock_or_recover, BoundedQueue, PushError};
use olive_telemetry::{
    latency_buckets_us, Counter, Gauge, Histogram, Registry, Span, Stopwatch, Telemetry,
};
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Decode-scheduling policy.
#[derive(Debug, Clone)]
pub struct SchedConfig {
    /// Most decode sessions in flight at once; further requests park in
    /// admission order.
    pub max_sessions: usize,
    /// Most queued requests pulled into the parked set per tick.
    pub admit_batch: usize,
    /// Floats per KV page.
    pub kv_page_floats: usize,
    /// Total pages in the shared KV pool.
    pub kv_pool_pages: usize,
    /// How long the scheduler thread waits for a first request when no
    /// flight is active (the idle wake-up granularity).
    pub idle_wait: Duration,
    /// Queue bound; pushes beyond it are answered 503.
    pub queue_capacity: usize,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            max_sessions: 8,
            admit_batch: 8,
            kv_page_floats: 2048,
            kv_pool_pages: 8192,
            idle_wait: Duration::from_millis(2),
            queue_capacity: 64,
        }
    }
}

/// One event of a streamed response, sent from the scheduler to the
/// connection thread.
#[derive(Debug)]
pub enum StreamEvent {
    /// A body fragment to write as one HTTP chunk.
    Chunk(String),
    /// The stream completed; write the terminating chunk (keep-alive safe).
    Done,
    /// The request failed; answer with this (non-chunked) response instead.
    /// Sent after a `Chunk` only on internal failure, where the connection
    /// layer truncates the chunked body (a visible framing error) rather
    /// than serving a complete-looking answer.
    Failed(Response),
}

/// The scheduler's registry-backed instruments — the single source of
/// truth for both `/healthz` and `/metrics`.
pub struct SchedStats {
    /// Generation requests answered (completed, failed, or disconnected):
    /// `olive_decode_streams_served_total`.
    pub served: Counter,
    /// Requests shed with 503 because the queue was full:
    /// `olive_decode_streams_rejected_total`.
    pub rejected: Counter,
    /// Scheduler ticks executed (only ticks that fed at least one flight):
    /// `olive_decode_ticks_total`.
    pub ticks: Counter,
    /// Decode sessions in flight right now (parked requests excluded):
    /// `olive_decode_sessions`.
    pub sessions: Gauge,
    /// KV pages reserved by live flights right now: `olive_kv_pages_used`.
    pub kv_pages_used: Gauge,
    /// KV pages free right now: `olive_kv_pages_free`.
    pub kv_pages_free: Gauge,
    /// Feeding-tick duration, µs: `olive_decode_tick_duration_us`.
    pub tick_duration_us: Histogram,
    /// Submit → first emitted chunk, µs:
    /// `olive_decode_time_to_first_chunk_us`.
    pub time_to_first_chunk_us: Histogram,
    /// Sessions fed per tick, as the labelled counter family
    /// `olive_decode_batch_size_total{size="N"}`. Handles are cached here;
    /// the cells live in the registry like every other instrument.
    batch_sizes: Mutex<BTreeMap<usize, Counter>>,
    registry: Arc<Registry>,
}

impl SchedStats {
    /// Registers the scheduler's instruments on `registry`.
    pub fn new(registry: &Arc<Registry>) -> SchedStats {
        SchedStats {
            served: registry.counter(
                "olive_decode_streams_served_total",
                "Generation streams answered (completed, failed, or disconnected).",
            ),
            rejected: registry.counter(
                "olive_decode_streams_rejected_total",
                "Generation requests shed with 503 because the decode queue was full.",
            ),
            ticks: registry.counter(
                "olive_decode_ticks_total",
                "Decode-scheduler ticks that fed at least one flight.",
            ),
            sessions: registry.gauge(
                "olive_decode_sessions",
                "Decode sessions in flight right now (parked requests excluded).",
            ),
            kv_pages_used: registry.gauge(
                "olive_kv_pages_used",
                "KV-cache pages reserved by live flights right now.",
            ),
            kv_pages_free: registry.gauge("olive_kv_pages_free", "KV-cache pages free right now."),
            tick_duration_us: registry.histogram(
                "olive_decode_tick_duration_us",
                "Duration of decode-scheduler ticks that fed flights, microseconds.",
                &latency_buckets_us(),
            ),
            time_to_first_chunk_us: registry.histogram(
                "olive_decode_time_to_first_chunk_us",
                "Generation submit to first emitted chunk, microseconds.",
                &latency_buckets_us(),
            ),
            batch_sizes: Mutex::new(BTreeMap::new()),
            registry: Arc::clone(registry),
        }
    }

    /// Stats on a private registry — for tests driving a [`SchedCore`].
    pub fn detached() -> SchedStats {
        SchedStats::new(&Arc::new(Registry::new()))
    }

    fn record_tick(&self, fed: usize) {
        if fed == 0 {
            return;
        }
        self.ticks.inc();
        let mut sizes = lock_or_recover(&self.batch_sizes);
        let size = fed.to_string();
        let counter = sizes.entry(fed).or_insert_with(|| {
            self.registry.counter_with(
                "olive_decode_batch_size_total",
                "Ticks that fed exactly this many sessions.",
                &[("size", size.as_str())],
            )
        });
        counter.inc();
    }

    /// The `batch size → tick count` map `/healthz` renders, read back from
    /// the registry-backed counter family in ascending batch-size order.
    pub fn batch_size_histogram(&self) -> BTreeMap<usize, u64> {
        lock_or_recover(&self.batch_sizes)
            .iter()
            .map(|(&size, counter)| (size, counter.get()))
            .collect()
    }

    fn mirror_pool(&self, pool: &KvPool, sessions: usize) {
        self.sessions.set(sessions as u64);
        self.kv_pages_used.set(pool.pages_used() as u64);
        self.kv_pages_free.set(pool.pages_free() as u64);
    }
}

/// A queued generation request plus its event channel and telemetry
/// context.
pub struct GenJob {
    request: GenerateRequest,
    sink: mpsc::Sender<StreamEvent>,
    /// The request's trace span, when tracing is on; observe-only.
    span: Option<Arc<Span>>,
    /// Started at submit; inert when telemetry is off. Feeds the
    /// time-to-first-chunk histogram at admission.
    queued_at: Stopwatch,
}

/// Which model a feed goes through: the scheme's quantized student, or the
/// FP32 teacher forced along the student's tokens.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Lane {
    Student,
    Teacher,
}

/// One in-flight decode session: a `/v1/generate` request mid-decode, with
/// its two KV stores (student + teacher) paged out of the shared pool and
/// its per-step emit/feed state.
struct Flight {
    sink: mpsc::Sender<StreamEvent>,
    scheme: Scheme,
    quantize_acts: bool,
    prepared: Arc<PreparedGen>,
    student: Arc<TinyTransformer>,
    result: GenSchemeResult,
    max_new_tokens: usize,
    student_kv: PagedKv,
    teacher_kv: PagedKv,
    /// Tokens fed so far (prompt + forced student tokens); also the next
    /// feed's position.
    fed: usize,
    /// Decode steps emitted so far.
    steps_done: usize,
    /// The student's last token, fed to both lanes once the prompt is done.
    pending_token: usize,
    student_logits: Option<Vec<f32>>,
    teacher_logits: Option<Vec<f32>>,
    /// Group keys: flights with equal keys share one batched forward.
    student_key: String,
    teacher_key: String,
    /// Set when the client hung up or the stream finished; the flight is
    /// swept (pages released) at the end of the tick.
    done: bool,
}

impl Flight {
    fn prompt_len(&self) -> usize {
        self.prepared.prompt.len()
    }

    /// The token to feed this tick: the next prompt token during prefill,
    /// then the student's own greedy pick.
    fn next_token(&self) -> usize {
        if self.fed < self.prompt_len() {
            self.prepared.prompt[self.fed]
        } else {
            self.pending_token
        }
    }

    fn send(&mut self, event: StreamEvent) {
        // A client that hung up mid-stream is not an error; mark the flight
        // for sweeping so its pages free up instead of decoding to the end.
        if self.sink.send(event).is_err() {
            self.done = true;
        }
    }
}

/// What one tick did — returned so tests can assert the merge actually
/// happened (K flights ⇒ one batched forward per model group, never
/// per-session forwards).
#[derive(Debug, Default)]
pub struct TickReport {
    /// Row count of every batched forward executed, in model-group order.
    pub forwards: Vec<usize>,
    /// Flights fed this tick.
    pub fed: usize,
    /// Requests admitted this tick.
    pub admitted: usize,
}

/// The synchronous scheduling engine: admission, parked-request FIFO, and
/// the per-tick emit → merge → feed cycle. Single-threaded by design — the
/// [`DecodeScheduler`] worker owns one; tests drive one directly.
pub struct SchedCore {
    cache: Arc<ModelCache>,
    config: SchedConfig,
    pool: KvPool,
    flights: Vec<Flight>,
    parked: VecDeque<GenJob>,
    stats: Arc<SchedStats>,
}

impl SchedCore {
    /// An idle core over `cache` with a fresh KV pool.
    pub fn new(config: SchedConfig, cache: Arc<ModelCache>, stats: Arc<SchedStats>) -> Self {
        let pool = KvPool::new(config.kv_page_floats, config.kv_pool_pages);
        stats.mirror_pool(&pool, 0);
        SchedCore {
            cache,
            config,
            pool,
            flights: Vec::new(),
            parked: VecDeque::new(),
            stats,
        }
    }

    /// Parks a request for admission on the next tick.
    pub fn enqueue(&mut self, job: GenJob) {
        self.parked.push_back(job);
    }

    /// Whether any flight or parked request still needs ticks.
    pub fn has_work(&self) -> bool {
        !self.flights.is_empty() || !self.parked.is_empty()
    }

    /// KV pages one request needs across both lanes: student and teacher
    /// each decode `prompt + max_new_tokens - 1` positions.
    fn pages_for(&self, req: &GenerateRequest, model: &TinyTransformer) -> usize {
        let positions = req.prompt_tokens.max(1) + req.max_new_tokens - 1;
        let tokens_per_page = (self.config.kv_page_floats / model.config.d_model).max(1);
        2 * pages_needed(model.config.n_layers, positions, tokens_per_page)
    }

    /// Admits parked requests in FIFO order while session slots and KV pages
    /// last. Strict FIFO: the first request that does not fit blocks the
    /// ones behind it (no small-request bypass), so admission order — and
    /// with it the served bytes — cannot depend on pool timing.
    fn admit(&mut self) -> usize {
        let mut admitted = 0;
        while self.flights.len() < self.config.max_sessions {
            let Some(job) = self.parked.front() else {
                break;
            };
            let req = &job.request;
            let pipeline = req.pipeline();
            let prepared = self.cache.gen_prepared(req);
            let need = self.pages_for(req, &prepared.teacher);
            if need > self.pool.capacity() {
                // Can never fit, even alone — parking forever would wedge
                // the FIFO behind an unservable request.
                let job = self.parked.pop_front().expect("front checked above");
                let _ = job.sink.send(StreamEvent::Failed(Response::error(
                    503,
                    "generation needs more KV-cache memory than the server has \
                     (lower prompt_tokens/max_new_tokens)",
                )));
                self.stats.served.inc();
                continue;
            }
            let Some(pages) = self.pool.try_reserve(need) else {
                break; // wait for a flight to finish and release pages
            };
            let half = pages.len() / 2;
            let mut pages = pages;
            let teacher_pages = pages.split_off(half);
            let job = self.parked.pop_front().expect("front checked above");
            if let Some(span) = &job.span {
                span.event("batched");
            }
            let req = job.request;
            let quantizer = req.scheme.build();
            let quantize_acts = pipeline.quantizes_activations_with(&req.scheme);
            let student = self.cache.student(&req, &prepared);
            let cfg = &prepared.teacher.config;
            let mut flight = Flight {
                sink: job.sink,
                quantize_acts,
                result: GenSchemeResult {
                    spec: req.scheme.to_string(),
                    name: quantizer.name().to_string(),
                    activations_quantized: quantize_acts,
                    steps: Vec::with_capacity(req.max_new_tokens),
                    agreement: 1.0,
                    tokens_per_s: 0.0,
                    wall_time_s: 0.0,
                },
                max_new_tokens: req.max_new_tokens,
                student_kv: PagedKv::new(
                    cfg.n_layers,
                    cfg.d_model,
                    self.config.kv_page_floats,
                    pages,
                ),
                teacher_kv: PagedKv::new(
                    cfg.n_layers,
                    cfg.d_model,
                    self.config.kv_page_floats,
                    teacher_pages,
                ),
                fed: 0,
                steps_done: 0,
                pending_token: 0,
                student_logits: None,
                teacher_logits: None,
                student_key: format!(
                    "s|{}|{}|acts={}",
                    req.prepared_key(),
                    req.scheme,
                    quantize_acts
                ),
                teacher_key: format!("t|{}", req.prepared_key()),
                student,
                prepared: Arc::clone(&prepared),
                scheme: req.scheme,
                done: false,
            };
            // The head fragments are emitted at admission — byte-for-byte
            // what Pipeline::generation streams first.
            let skeleton =
                pipeline.gen_report_skeleton(prepared.prompt.clone(), flight.max_new_tokens);
            flight.send(StreamEvent::Chunk(head_fragment(&skeleton)));
            self.stats
                .time_to_first_chunk_us
                .observe_elapsed(&job.queued_at);
            flight.send(StreamEvent::Chunk(scheme_head_fragment(
                &flight.result,
                true,
            )));
            self.flights.push(flight);
            admitted += 1;
        }
        admitted
    }

    /// Emits each flight's pending step (if its last feed completed the
    /// prompt) and finalizes flights that just emitted their last step.
    ///
    /// Returns the sinks owed a [`StreamEvent::Done`]. The caller sends it
    /// only *after* the tick has swept the flight and mirrored the gauges:
    /// `Done` is what lets the connection write the terminating chunk, so a
    /// client that has its complete body can never observe `/healthz` still
    /// counting the finished session or its pages.
    fn emit(&mut self) -> Vec<mpsc::Sender<StreamEvent>> {
        let mut finished = Vec::new();
        for flight in &mut self.flights {
            if flight.done || flight.fed < flight.prompt_len() {
                continue;
            }
            let (Some(s_logits), Some(t_logits)) =
                (flight.student_logits.take(), flight.teacher_logits.take())
            else {
                continue;
            };
            let step = GenStep {
                token: argmax(&s_logits),
                teacher_token: argmax(&t_logits),
            };
            flight.send(StreamEvent::Chunk(step_fragment(
                &step,
                flight.steps_done == 0,
            )));
            flight.result.steps.push(step);
            flight.steps_done += 1;
            if flight.steps_done == flight.max_new_tokens {
                let agreed = flight.result.steps.iter().filter(|s| s.agree()).count();
                flight.result.agreement = agreed as f64 / flight.result.steps.len() as f64;
                flight.send(StreamEvent::Chunk(scheme_tail_fragment(&flight.result)));
                flight.send(StreamEvent::Chunk(REPORT_TAIL.to_string()));
                flight.done = true;
                finished.push(flight.sink.clone());
            } else {
                flight.pending_token = step.token;
            }
        }
        finished
    }

    /// Merges the current step of every live flight into one batched causal
    /// forward per model group and scatters the logits back. Returns the
    /// group sizes, in group-key order.
    fn feed(&mut self) -> Vec<usize> {
        let mut groups: BTreeMap<String, Vec<(usize, Lane)>> = BTreeMap::new();
        for (i, flight) in self.flights.iter().enumerate() {
            if flight.done {
                continue;
            }
            groups
                .entry(flight.student_key.clone())
                .or_default()
                .push((i, Lane::Student));
            groups
                .entry(flight.teacher_key.clone())
                .or_default()
                .push((i, Lane::Teacher));
        }
        let mut forwards = Vec::with_capacity(groups.len());
        for members in groups.values() {
            forwards.push(members.len());
            // The group key pins (preparation, scheme, acts), so every
            // member shares one model and one activation quantizer; both
            // are taken from the first member. The quantizer is rebuilt per
            // tick from the spec — deterministic and cheap (a stateless
            // config struct), and it avoids holding a borrow across the
            // flight table.
            let (i0, lane0) = members[0];
            let group_model = match lane0 {
                Lane::Student => GroupModel::Student(Arc::clone(&self.flights[i0].student)),
                Lane::Teacher => GroupModel::Teacher(Arc::clone(&self.flights[i0].prepared)),
            };
            let act_quant: Option<Box<dyn TensorQuantizer>> = match lane0 {
                Lane::Student if self.flights[i0].quantize_acts => {
                    Some(self.flights[i0].scheme.build())
                }
                _ => None,
            };
            // Move each member's KV store out of the flight table so the
            // slots can borrow them mutably side by side.
            let mut taken: Vec<(usize, Lane, PagedKv, usize, usize)> = members
                .iter()
                .map(|&(i, lane)| {
                    let flight = &mut self.flights[i];
                    let token = flight.next_token();
                    let pos = flight.fed;
                    let kv = std::mem::take(match lane {
                        Lane::Student => &mut flight.student_kv,
                        Lane::Teacher => &mut flight.teacher_kv,
                    });
                    (i, lane, kv, token, pos)
                })
                .collect();
            let mut slots: Vec<StepSlot<'_>> = taken
                .iter_mut()
                .map(|(_, _, kv, token, pos)| StepSlot {
                    kv,
                    token: *token,
                    pos: *pos,
                })
                .collect();
            let logits = group_model
                .model()
                .advance_batch(act_quant.as_deref(), &mut slots);
            drop(slots);
            for ((i, lane, kv, _, _), row) in taken.into_iter().zip(logits) {
                let flight = &mut self.flights[i];
                match lane {
                    Lane::Student => {
                        flight.student_kv = kv;
                        flight.student_logits = Some(row);
                    }
                    Lane::Teacher => {
                        flight.teacher_kv = kv;
                        flight.teacher_logits = Some(row);
                    }
                }
            }
        }
        forwards
    }

    /// Releases finished (or disconnected) flights: their KV pages return
    /// to the pool for the next admission.
    fn sweep(&mut self) {
        let pool = &mut self.pool;
        let stats = &self.stats;
        self.flights.retain_mut(|flight| {
            if !flight.done {
                return true;
            }
            pool.release(std::mem::take(&mut flight.student_kv).into_pages());
            pool.release(std::mem::take(&mut flight.teacher_kv).into_pages());
            stats.served.inc();
            false
        });
    }

    /// One scheduler tick: emit pending steps, release finished flights,
    /// admit parked requests (freed pages are reusable immediately), then
    /// run one merged batched forward per model group and advance every fed
    /// flight's position. Returns what happened, for instrumentation.
    pub fn tick(&mut self) -> TickReport {
        let finished = self.emit();
        self.sweep();
        let admitted = self.admit();
        let forwards = self.feed();
        let mut fed = 0;
        for flight in &mut self.flights {
            if !flight.done {
                flight.fed += 1;
                fed += 1;
            }
        }
        self.stats.record_tick(fed);
        self.stats.mirror_pool(&self.pool, self.flights.len());
        // Only now may finished streams terminate (see [`SchedCore::emit`]).
        for sink in finished {
            let _ = sink.send(StreamEvent::Done);
        }
        TickReport {
            forwards,
            fed,
            admitted,
        }
    }

    /// Fails every flight and parked request with a 500 and rebuilds the KV
    /// pool — the panic-recovery path: a poisoned tick must never wedge the
    /// scheduler or leak pages. Flights already mid-stream get their chunked
    /// body truncated by the connection layer (a visible framing error).
    pub fn fail_all(&mut self, message: &str) {
        for flight in self.flights.drain(..) {
            let _ = flight
                .sink
                .send(StreamEvent::Failed(Response::error(500, message)));
            self.stats.served.inc();
        }
        for job in self.parked.drain(..) {
            let _ = job
                .sink
                .send(StreamEvent::Failed(Response::error(500, message)));
            self.stats.served.inc();
        }
        // A panic may have fired while stores were moved out of the table;
        // dropping the flights dropped their pages, so start a fresh pool
        // rather than trust the old one's accounting.
        self.pool = KvPool::new(self.config.kv_page_floats, self.config.kv_pool_pages);
        self.stats.mirror_pool(&self.pool, 0);
    }
}

/// Keeps the group's model alive across the batched forward (flights are
/// mutably borrowed for their KV stores at the same time).
enum GroupModel {
    Student(Arc<TinyTransformer>),
    Teacher(Arc<PreparedGen>),
}

impl GroupModel {
    fn model(&self) -> &TinyTransformer {
        match self {
            GroupModel::Student(model) => model,
            GroupModel::Teacher(prepared) => &prepared.teacher,
        }
    }
}

/// The continuous-batching scheduler: [`SchedCore`] driven by one worker
/// thread behind a bounded queue, with the same back-pressure contract as
/// the [`Batcher`](crate::batch::Batcher). One instance per server; shut
/// down explicitly.
pub struct DecodeScheduler {
    queue: Arc<BoundedQueue<GenJob>>,
    stats: Arc<SchedStats>,
    telemetry: Telemetry,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl DecodeScheduler {
    /// Starts a scheduler whose worker decodes against `cache`, registering
    /// its instruments on `telemetry`'s registry.
    pub fn start(config: SchedConfig, cache: Arc<ModelCache>, telemetry: Telemetry) -> Self {
        let scheduler = Self::paused_with(&config, telemetry);
        let queue = Arc::clone(&scheduler.queue);
        let stats = Arc::clone(&scheduler.stats);
        let telemetry = scheduler.telemetry.clone();
        // olive-lint: allow(no-spawn-outside-runtime): the one long-lived decode-scheduler thread; each tick's batched forwards still run on the Pool
        let handle = std::thread::Builder::new()
            .name("olive-serve-decode".into())
            .spawn(move || decode_loop(&queue, &config, &cache, &stats, &telemetry))
            .expect("spawning the decode scheduler thread");
        *lock_or_recover(&scheduler.worker) = Some(handle);
        scheduler
    }

    /// A scheduler with no worker thread — requests queue but never decode.
    /// Lets tests exercise the back-pressure path deterministically.
    #[cfg(test)]
    fn paused(config: &SchedConfig) -> Self {
        Self::paused_with(config, Telemetry::detached())
    }

    fn paused_with(config: &SchedConfig, telemetry: Telemetry) -> Self {
        DecodeScheduler {
            queue: Arc::new(BoundedQueue::new(config.queue_capacity)),
            stats: Arc::new(SchedStats::new(telemetry.registry())),
            telemetry,
            worker: Mutex::new(None),
        }
    }

    /// Submits a generation request and returns the event receiver the
    /// connection thread drains into chunked writes — or answers
    /// immediately with 503 (+ `Retry-After: 1`) when the queue is full,
    /// and 503 without `Retry-After` when the server is shutting down.
    ///
    /// `span` is the request's trace span (or `None`): purely
    /// observational — the streamed bytes are a function of `request`
    /// alone.
    ///
    /// # Errors
    ///
    /// The 503 response to answer with instead, when the request could not
    /// be queued.
    pub fn submit(
        &self,
        request: GenerateRequest,
        span: Option<Arc<Span>>,
    ) -> Result<mpsc::Receiver<StreamEvent>, Response> {
        if let Some(span) = &span {
            span.event("queued");
        }
        let (tx, rx) = mpsc::channel();
        let job = GenJob {
            request,
            sink: tx,
            span,
            queued_at: self.telemetry.stopwatch(),
        };
        match self.queue.try_push(job) {
            Ok(()) => Ok(rx),
            Err((PushError::Full, _)) => {
                self.stats.rejected.inc();
                Err(Response::error(
                    503,
                    "server is at capacity; retry after the Retry-After delay",
                )
                .with_header("Retry-After", "1"))
            }
            Err((PushError::Closed, _)) => Err(Response::error(503, "server is shutting down")),
        }
    }

    /// Requests queued and not yet admitted by the worker (for `/healthz`).
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// The shared counters and gauges.
    pub fn stats(&self) -> &SchedStats {
        &self.stats
    }

    /// Stops accepting requests, finishes every queued and in-flight
    /// stream, and joins the worker thread. Idempotent.
    pub fn shutdown(&self) {
        self.queue.close();
        if let Some(handle) = lock_or_recover(&self.worker).take() {
            let _ = handle.join();
        }
    }
}

impl Drop for DecodeScheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The worker loop: non-blocking queue drains while flights are active (a
/// tick must never stall behind an empty queue), blocking waits when idle.
/// Exits when the queue is closed *and* drained *and* every flight has
/// finished — shutdown completes accepted streams, it never drops them.
fn decode_loop(
    queue: &BoundedQueue<GenJob>,
    config: &SchedConfig,
    cache: &Arc<ModelCache>,
    stats: &Arc<SchedStats>,
    telemetry: &Telemetry,
) {
    let mut core = SchedCore::new(config.clone(), Arc::clone(cache), Arc::clone(stats));
    loop {
        let jobs = if core.has_work() {
            queue.try_pop_batch(config.admit_batch)
        } else {
            let batch = queue.pop_batch(config.admit_batch, config.idle_wait);
            if batch.is_empty() {
                return; // closed and drained, nothing in flight
            }
            batch
        };
        for job in jobs {
            core.enqueue(job);
        }
        // A panic (a poisonous request) is contained to the tick: every
        // affected stream is answered or truncated, the pool is rebuilt,
        // and the scheduler keeps serving.
        let ticking = telemetry.stopwatch();
        match catch_unwind(AssertUnwindSafe(|| core.tick())) {
            Ok(report) => {
                // Idle spins (nothing fed) are not observations — they
                // would drown the histogram in sub-µs noise.
                if report.fed > 0 {
                    stats.tick_duration_us.observe_elapsed(&ticking);
                }
            }
            Err(_) => core.fail_all("internal error executing the request"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olive_api::{GenOptions, JsonValue};

    fn gen_request(text: &str) -> GenerateRequest {
        GenerateRequest::decode(&JsonValue::parse(text).unwrap()).unwrap()
    }

    fn core_with_config(config: SchedConfig) -> SchedCore {
        SchedCore::new(
            config,
            Arc::new(ModelCache::new()),
            Arc::new(SchedStats::detached()),
        )
    }

    /// A test job with no span and inert timing.
    fn job(request: GenerateRequest, sink: mpsc::Sender<StreamEvent>) -> GenJob {
        GenJob {
            request,
            sink,
            span: None,
            queued_at: Stopwatch::disabled(),
        }
    }

    /// Drains a stream to completion: (concatenated body, chunk count).
    fn drain(rx: &mpsc::Receiver<StreamEvent>) -> (String, usize) {
        let mut body = String::new();
        let mut chunks = 0;
        loop {
            match rx.recv().expect("stream must terminate") {
                StreamEvent::Chunk(data) => {
                    chunks += 1;
                    body.push_str(&data);
                }
                StreamEvent::Done => return (body, chunks),
                StreamEvent::Failed(response) => panic!("unexpected failure: {}", response.body),
            }
        }
    }

    fn direct_body(req: &GenerateRequest) -> String {
        let pipeline = req.pipeline();
        let prepared = pipeline.prepare_generation(req.prompt_tokens);
        pipeline
            .generation(
                GenOptions::new()
                    .prepared(&prepared)
                    .max_new_tokens(req.max_new_tokens),
            )
            .without_wall_times()
            .to_json()
    }

    /// The tentpole property, instrumented: K concurrent sessions over the
    /// same request produce exactly TWO batched forwards per feeding tick
    /// (one [K]-row student group, one [K]-row teacher group) — never K
    /// per-session forwards — and still stream bytes identical to a direct
    /// pipeline run.
    #[test]
    fn concurrent_sessions_merge_into_one_forward_per_model_group() {
        let req_text = r#"{"scheme": "olive-4bit", "prompt_tokens": 4, "max_new_tokens": 3}"#;
        let mut core = core_with_config(SchedConfig::default());
        let mut receivers = Vec::new();
        for _ in 0..5 {
            let (tx, rx) = mpsc::channel();
            core.enqueue(job(gen_request(req_text), tx));
            receivers.push(rx);
        }
        let mut feeding_ticks = 0;
        while core.has_work() {
            let report = core.tick();
            if report.fed > 0 {
                feeding_ticks += 1;
                assert_eq!(report.fed, 5, "all five sessions advance each tick");
                assert_eq!(
                    report.forwards,
                    vec![5, 5],
                    "one 5-row student forward + one 5-row teacher forward, \
                     never per-session forwards"
                );
            }
        }
        // prompt + max_new_tokens - 1 feeds per stream.
        assert_eq!(feeding_ticks, 4 + 3 - 1);
        let direct = direct_body(&gen_request(req_text));
        for rx in &receivers {
            let (body, chunks) = drain(rx);
            assert_eq!(chunks, 1 + 1 + 3 + 1 + 1);
            assert_eq!(body, direct);
        }
    }

    /// Different schemes split the student group but still share one merged
    /// teacher forward (same preparation), and every stream's bytes match
    /// its own direct run.
    #[test]
    fn mixed_schemes_share_the_teacher_forward() {
        let olive = r#"{"scheme": "olive-4bit", "prompt_tokens": 3, "max_new_tokens": 2}"#;
        let uniform = r#"{"scheme": "uniform:4", "prompt_tokens": 3, "max_new_tokens": 2}"#;
        let mut core = core_with_config(SchedConfig::default());
        let mut receivers = Vec::new();
        for text in [olive, olive, uniform] {
            let (tx, rx) = mpsc::channel();
            core.enqueue(job(gen_request(text), tx));
            receivers.push((text, rx));
        }
        while core.has_work() {
            let report = core.tick();
            if report.fed > 0 {
                assert_eq!(report.fed, 3);
                // Group-key order is deterministic (BTreeMap): two student
                // groups (2 olive rows, 1 uniform row) + one 3-row teacher.
                let mut sizes = report.forwards.clone();
                sizes.sort_unstable();
                assert_eq!(sizes, vec![1, 2, 3], "{:?}", report.forwards);
            }
        }
        for (text, rx) in &receivers {
            let (body, _) = drain(rx);
            assert_eq!(body, direct_body(&gen_request(text)), "{text}");
        }
    }

    /// Admission is strictly FIFO under KV pressure: a pool sized for one
    /// flight serializes the sessions, defers (never drops) the rest, and
    /// the bytes stay identical.
    #[test]
    fn short_kv_pool_defers_admission_without_changing_bytes() {
        let req_text = r#"{"scheme": "fp32", "prompt_tokens": 3, "max_new_tokens": 2}"#;
        // tiny model: d=32, 2 layers, 4 positions -> pages_needed(2,4,2)=8
        // per lane pair at 64-float pages (2 tokens/page), 16 per flight.
        let mut core = core_with_config(SchedConfig {
            kv_page_floats: 64,
            kv_pool_pages: 16,
            ..SchedConfig::default()
        });
        let mut receivers = Vec::new();
        for _ in 0..3 {
            let (tx, rx) = mpsc::channel();
            core.enqueue(job(gen_request(req_text), tx));
            receivers.push(rx);
        }
        let mut max_fed = 0;
        while core.has_work() {
            let report = core.tick();
            max_fed = max_fed.max(report.fed);
        }
        assert_eq!(max_fed, 1, "a one-flight pool must serialize admission");
        let direct = direct_body(&gen_request(req_text));
        for rx in &receivers {
            assert_eq!(drain(rx).0, direct);
        }
        assert_eq!(core.pool.pages_used(), 0, "all pages must be released");
    }

    /// A request whose worst case exceeds the whole pool is answered 503
    /// instead of wedging the FIFO forever.
    #[test]
    fn oversized_requests_fail_instead_of_wedging_the_queue() {
        // 8 pages fit the minimal follow-up request exactly (2 layers × K&V ×
        // 1 page × 2 lanes) while the 15-position request up front needs 64.
        let mut core = core_with_config(SchedConfig {
            kv_page_floats: 64,
            kv_pool_pages: 8,
            ..SchedConfig::default()
        });
        let (tx, rx) = mpsc::channel();
        core.enqueue(job(
            gen_request(r#"{"scheme": "fp32", "prompt_tokens": 8, "max_new_tokens": 8}"#),
            tx,
        ));
        let (tx2, rx2) = mpsc::channel();
        core.enqueue(job(
            gen_request(r#"{"scheme": "fp32", "prompt_tokens": 1, "max_new_tokens": 1}"#),
            tx2,
        ));
        while core.has_work() {
            core.tick();
        }
        match rx.recv().unwrap() {
            StreamEvent::Failed(response) => {
                assert_eq!(response.status, 503);
                assert!(response.body.contains("KV-cache"), "{}", response.body);
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        // The request behind it is served normally.
        let (body, _) = drain(&rx2);
        assert!(body.ends_with(REPORT_TAIL), "{body}");
    }

    /// A client that disconnects mid-stream frees its session and pages;
    /// the surviving streams finish byte-identically.
    #[test]
    fn disconnects_release_the_session_and_pages() {
        let req_text = r#"{"scheme": "olive-4bit", "prompt_tokens": 4, "max_new_tokens": 6}"#;
        let mut core = core_with_config(SchedConfig::default());
        let (tx_gone, rx_gone) = mpsc::channel();
        core.enqueue(job(gen_request(req_text), tx_gone));
        let (tx, rx) = mpsc::channel();
        core.enqueue(job(gen_request(req_text), tx));
        core.tick();
        assert_eq!(core.flights.len(), 2);
        drop(rx_gone); // client hangs up mid-decode
        while core.has_work() {
            core.tick();
        }
        assert_eq!(drain(&rx).0, direct_body(&gen_request(req_text)));
        assert_eq!(core.pool.pages_used(), 0);
        assert_eq!(core.stats.served.get(), 2);
    }

    /// fail_all (the panic-recovery path) answers every stream and resets
    /// the pool.
    #[test]
    fn fail_all_answers_everything_and_resets_the_pool() {
        let mut core = core_with_config(SchedConfig::default());
        let (tx, rx) = mpsc::channel();
        core.enqueue(job(gen_request(r#"{"scheme": "fp32"}"#), tx));
        core.tick();
        let (tx2, rx2) = mpsc::channel();
        core.enqueue(job(gen_request(r#"{"scheme": "fp32"}"#), tx2));
        core.fail_all("internal error executing the request");
        assert!(!core.has_work());
        assert_eq!(core.pool.pages_used(), 0);
        for events in [rx, rx2] {
            let failed = events
                .try_iter()
                .find(|e| matches!(e, StreamEvent::Failed(_)));
            let Some(StreamEvent::Failed(response)) = failed else {
                panic!("every stream must see a Failed event");
            };
            assert_eq!(response.status, 500);
        }
    }

    /// The live scheduler end to end: chunks then Done, bytes equal to the
    /// direct pipeline, and the stats reflect the decode.
    #[test]
    fn live_scheduler_streams_chunks_then_done() {
        let scheduler = DecodeScheduler::start(
            SchedConfig::default(),
            Arc::new(ModelCache::new()),
            Telemetry::detached(),
        );
        let req =
            gen_request(r#"{"scheme": "olive-4bit", "prompt_tokens": 4, "max_new_tokens": 3}"#);
        let events = scheduler.submit(req.clone(), None).expect("queued");
        let (body, chunks) = drain(&events);
        assert_eq!(chunks, 1 + 1 + 3 + 1 + 1);
        assert_eq!(body, direct_body(&req));
        assert_eq!(scheduler.stats().served.get(), 1);
        assert!(scheduler.stats().ticks.get() >= (4 + 3 - 1));
        assert_eq!(scheduler.stats().sessions.get(), 0);
        scheduler.shutdown();
    }

    /// The submit back-pressure contract, bit-for-bit the batcher's: full
    /// queue -> 503 + Retry-After, closed queue -> 503 without.
    #[test]
    fn full_queue_is_answered_503_with_retry_after() {
        let scheduler = DecodeScheduler::paused(&SchedConfig {
            queue_capacity: 2,
            ..SchedConfig::default()
        });
        let req = gen_request(r#"{"scheme": "fp32"}"#);
        let _a = scheduler.submit(req.clone(), None).expect("first fits");
        let _b = scheduler.submit(req.clone(), None).expect("second fits");
        let shed = scheduler.submit(req.clone(), None).unwrap_err();
        assert_eq!(shed.status, 503);
        assert!(shed
            .extra_headers
            .iter()
            .any(|(k, v)| k == "Retry-After" && v == "1"));
        assert_eq!(scheduler.stats().rejected.get(), 1);
        assert_eq!(scheduler.queue_depth(), 2);

        scheduler.queue.close();
        let closed = scheduler.submit(req, None).unwrap_err();
        assert_eq!(closed.status, 503);
        assert!(closed.body.contains("shutting down"), "{}", closed.body);
        assert!(closed.extra_headers.is_empty());
    }

    /// Shutdown completes accepted streams instead of dropping them.
    #[test]
    fn shutdown_drains_accepted_streams() {
        let scheduler = DecodeScheduler::start(
            SchedConfig::default(),
            Arc::new(ModelCache::new()),
            Telemetry::detached(),
        );
        let req = gen_request(r#"{"scheme": "fp32", "prompt_tokens": 2, "max_new_tokens": 2}"#);
        let events = scheduler.submit(req.clone(), None).expect("queued");
        scheduler.shutdown();
        let (body, _) = drain(&events);
        assert_eq!(body, direct_body(&req));
    }
}
