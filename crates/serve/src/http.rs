//! Minimal HTTP/1.1 request parsing and response writing over raw streams.
//!
//! Only what the serving endpoints need, implemented defensively: request
//! line + headers + `Content-Length` bodies (no chunked transfer coding),
//! keep-alive connection reuse, and hard limits on line, header and body
//! sizes so a misbehaving client cannot balloon server memory. Every
//! violation maps to a definite 4xx/5xx status instead of a panic or a hang.

use std::io::{BufRead, Read, Write};
use std::time::Duration;

/// Longest accepted request line or single header line, in bytes.
pub const MAX_LINE_BYTES: usize = 8 * 1024;

/// Most headers accepted per request.
pub const MAX_HEADERS: usize = 64;

/// Largest accepted request body, in bytes (an `/v1/quantize` payload of a
/// million f32 literals fits comfortably).
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// The connection read-timeout tick: the granularity at which connection
/// threads notice server shutdown between requests. The actual idle-close
/// threshold is `MAX_IDLE_TICKS` of these (see `crate::server`), not one.
pub const IDLE_TIMEOUT: Duration = Duration::from_millis(500);

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method ("GET", "POST", …).
    pub method: String,
    /// Path without query string ("/v1/eval").
    pub path: String,
    /// Raw query string without the leading `?` (empty when none was sent).
    pub query: String,
    /// Raw header name/value pairs, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with this name, case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to keep the connection open (HTTP/1.1
    /// default unless `Connection: close`).
    pub fn keep_alive(&self) -> bool {
        !matches!(self.header("connection"), Some(v) if v.eq_ignore_ascii_case("close"))
    }

    /// The body as UTF-8, or an error suitable for a 400.
    pub fn body_utf8(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body)
            .map_err(|_| HttpError::bad_request("request body is not valid UTF-8"))
    }

    /// First `key=value` query parameter with this name. No percent
    /// decoding — the debug endpoints that use this take plain integers.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .split('&')
            .filter_map(|pair| pair.split_once('='))
            .find(|(key, _)| *key == name)
            .map(|(_, value)| value)
    }
}

/// A request-reading failure with the status code it should be answered with
/// (when the connection is still answerable).
#[derive(Debug, Clone)]
pub struct HttpError {
    /// Status code to answer with (400, 405, 413, 431, 501, 505…).
    pub status: u16,
    /// Human-readable explanation, returned in the JSON error body.
    pub message: String,
}

impl HttpError {
    /// A 400 Bad Request.
    pub fn bad_request(message: impl Into<String>) -> Self {
        HttpError {
            status: 400,
            message: message.into(),
        }
    }

    fn new(status: u16, message: impl Into<String>) -> Self {
        HttpError {
            status,
            message: message.into(),
        }
    }
}

/// The outcome of trying to read one request off a kept-alive connection.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request arrived.
    Request(Request),
    /// The peer closed the connection before sending any byte of a next
    /// request — normal keep-alive termination, not an error.
    Disconnected,
    /// The stream's read timeout elapsed before any byte of a next request —
    /// the connection is still healthy; the caller decides whether to keep
    /// waiting (and can check for server shutdown in between).
    Idle,
    /// The request was malformed or over limits; answer with the error's
    /// status and close the connection.
    Bad(HttpError),
}

/// Reads one request. `Disconnected` is only reported when the connection
/// dies *between* requests; a connection dropping mid-request surfaces as
/// `Bad` (and writing the error response will simply fail, which is fine).
pub fn read_request<R: BufRead>(reader: &mut R) -> ReadOutcome {
    let mut line = Vec::new();
    match read_line(reader, &mut line) {
        LineOutcome::Eof if line.is_empty() => return ReadOutcome::Disconnected,
        LineOutcome::Eof => {
            return ReadOutcome::Bad(HttpError::bad_request("truncated request line"))
        }
        LineOutcome::TimedOut if line.is_empty() => return ReadOutcome::Idle,
        LineOutcome::TimedOut => {
            return ReadOutcome::Bad(HttpError::new(408, "timed out mid-request"))
        }
        LineOutcome::TooLong => {
            return ReadOutcome::Bad(HttpError::new(431, "request line too long"))
        }
        LineOutcome::Line => {}
    }
    let request_line = match std::str::from_utf8(&line) {
        Ok(s) => s,
        Err(_) => return ReadOutcome::Bad(HttpError::bad_request("non-UTF-8 request line")),
    };
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return ReadOutcome::Bad(HttpError::bad_request(format!(
                "malformed request line '{request_line}'"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return ReadOutcome::Bad(HttpError::new(
            505,
            format!("unsupported protocol version '{version}'"),
        ));
    }
    // The query string is split off the path; only the debug endpoints
    // read it (the JSON-bodied API endpoints ignore it).
    let (path, query) = match target.split_once('?') {
        Some((path, query)) => (path.to_string(), query.to_string()),
        None => (target.to_string(), String::new()),
    };
    let method = method.to_ascii_uppercase();

    let mut headers = Vec::new();
    loop {
        line.clear();
        match read_line(reader, &mut line) {
            LineOutcome::Line => {}
            LineOutcome::TooLong => {
                return ReadOutcome::Bad(HttpError::new(431, "header line too long"))
            }
            _ => return ReadOutcome::Bad(HttpError::bad_request("truncated headers")),
        }
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return ReadOutcome::Bad(HttpError::new(431, "too many headers"));
        }
        let text = match std::str::from_utf8(&line) {
            Ok(s) => s,
            Err(_) => return ReadOutcome::Bad(HttpError::bad_request("non-UTF-8 header")),
        };
        match text.split_once(':') {
            Some((name, value)) => {
                // RFC 7230 §3.2.4: whitespace between the field name and the
                // colon must be rejected (400) — a lenient parser upstream
                // that strips or honours such a header disagrees with this
                // one about framing (request-smuggling guard). A leading
                // space would be an obs-fold continuation line; reject too.
                if name.is_empty() || name != name.trim() {
                    return ReadOutcome::Bad(HttpError::bad_request(format!(
                        "whitespace around the header name in '{text}'"
                    )));
                }
                headers.push((name.to_string(), value.trim().to_string()))
            }
            None => {
                return ReadOutcome::Bad(HttpError::bad_request(format!(
                    "malformed header '{text}'"
                )))
            }
        }
    }

    let request = Request {
        method,
        path,
        query,
        headers,
        body: Vec::new(),
    };
    // Like Content-Length below, Transfer-Encoding is checked against every
    // occurrence, not the first match: a second (e.g. `chunked`) copy that a
    // front proxy honours while this server reads the first would desync
    // framing (request-smuggling guard).
    let mut te_seen = false;
    for (name, value) in &request.headers {
        if !name.eq_ignore_ascii_case("transfer-encoding") {
            continue;
        }
        if te_seen {
            return ReadOutcome::Bad(HttpError::bad_request(
                "duplicate Transfer-Encoding headers (request-smuggling guard)",
            ));
        }
        te_seen = true;
        if !value.eq_ignore_ascii_case("identity") {
            return ReadOutcome::Bad(HttpError::new(
                501,
                "chunked transfer coding is not supported; send Content-Length",
            ));
        }
    }
    let content_length = match parse_content_length(&request.headers) {
        Ok(n) => n,
        Err(e) => return ReadOutcome::Bad(e),
    };
    if content_length > MAX_BODY_BYTES {
        return ReadOutcome::Bad(HttpError::new(
            413,
            format!(
                "request body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
            ),
        ));
    }
    let mut request = request;
    if content_length > 0 {
        match read_body_retrying(reader, content_length) {
            Ok(body) => request.body = body,
            Err(e) => {
                return ReadOutcome::Bad(HttpError::bad_request(format!(
                    "failed to read the {content_length}-byte body: {e}"
                )))
            }
        }
    }
    ReadOutcome::Request(request)
}

/// Extracts the request body length from the headers — strictly.
///
/// Request-smuggling guard: when two parsers disagree about where a request
/// body ends, one of them can be fed a hidden second request. So this
/// rejects (400) anything a lenient parser might read differently instead of
/// accepting the first plausible parse:
///
/// * **duplicate** `Content-Length` headers, case-insensitively, even when
///   their values agree — a duplicated header means something upstream
///   already disagreed about framing;
/// * values that are not pure ASCII digits: `+42` (which `usize::from_str`
///   would happily accept), `4 2`, `42,42`, an empty value. Surrounding
///   optional whitespace (` 42`) was already stripped as header OWS and
///   never reaches the digit check.
fn parse_content_length(headers: &[(String, String)]) -> Result<usize, HttpError> {
    let mut seen: Option<&str> = None;
    for (name, value) in headers {
        if !name.eq_ignore_ascii_case("content-length") {
            continue;
        }
        if seen.is_some() {
            return Err(HttpError::bad_request(
                "duplicate Content-Length headers (request-smuggling guard)",
            ));
        }
        seen = Some(value);
    }
    let Some(value) = seen else {
        return Ok(0);
    };
    if value.is_empty() || !value.bytes().all(|b| b.is_ascii_digit()) {
        return Err(HttpError::bad_request(format!(
            "invalid Content-Length '{value}' (digits only; no signs or whitespace)"
        )));
    }
    value.parse::<usize>().map_err(|_| {
        HttpError::bad_request(format!("Content-Length '{value}' does not fit in usize"))
    })
}

enum LineOutcome {
    Line,
    Eof,
    TimedOut,
    TooLong,
}

/// Reads a CRLF-(or LF-)terminated line, excluding the terminator, bounded
/// by [`MAX_LINE_BYTES`].
fn read_line<R: BufRead>(reader: &mut R, out: &mut Vec<u8>) -> LineOutcome {
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => return LineOutcome::Eof,
            Ok(_) => {
                // olive-lint: allow(no-panic-in-request-path): one-byte stack buffer, index 0 always in bounds
                if byte[0] == b'\n' {
                    if out.last() == Some(&b'\r') {
                        out.pop();
                    }
                    return LineOutcome::Line;
                }
                if out.len() >= MAX_LINE_BYTES {
                    return LineOutcome::TooLong;
                }
                // olive-lint: allow(no-panic-in-request-path): one-byte stack buffer, index 0 always in bounds
                out.push(byte[0]);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return LineOutcome::TimedOut
            }
            Err(_) => return LineOutcome::Eof,
        }
    }
}

/// Reads a `len`-byte body, growing the buffer only as bytes actually
/// arrive — the advertised `Content-Length` is untrusted, so preallocating
/// it would let header-only connections pin [`MAX_BODY_BYTES`] each. Keeps
/// going across read-timeout ticks as long as bytes are flowing (a large
/// body legitimately spans several [`IDLE_TIMEOUT`]s); gives up when a full
/// tick passes with no progress.
fn read_body_retrying<R: Read>(reader: &mut R, len: usize) -> std::io::Result<Vec<u8>> {
    let mut body = Vec::with_capacity(len.min(64 * 1024));
    let mut chunk = [0u8; 8 * 1024];
    let mut stalled_once = false;
    while body.len() < len {
        let want = chunk.len().min(len - body.len());
        // olive-lint: allow(no-panic-in-request-path): want is clamped to chunk.len() on the line above
        match reader.read(&mut chunk[..want]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-body",
                ))
            }
            Ok(n) => {
                // olive-lint: allow(no-panic-in-request-path): Read guarantees n <= the buffer length passed in
                body.extend_from_slice(&chunk[..n]);
                stalled_once = false;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if (e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut)
                    && !stalled_once =>
            {
                stalled_once = true;
            }
            Err(e) => return Err(e),
        }
    }
    Ok(body)
}

/// An outgoing response.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Body bytes (JSON for every API endpoint; `/metrics` is plain text).
    pub body: String,
    /// Extra headers beyond the always-present set (e.g. `Retry-After`).
    pub extra_headers: Vec<(String, String)>,
    /// `Content-Type` value; the framing writer owns the header itself.
    pub content_type: &'static str,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            body: body.into(),
            extra_headers: Vec::new(),
            content_type: "application/json",
        }
    }

    /// A plain-text response — the Prometheus exposition content type,
    /// which every text-format scraper accepts.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            body: body.into(),
            extra_headers: Vec::new(),
            content_type: "text/plain; version=0.0.4",
        }
    }

    /// A JSON error body with the uniform shape every endpoint answers
    /// failures with:
    ///
    /// ```json
    /// {"error": "service_unavailable", "detail": "server is shutting down"}
    /// ```
    ///
    /// `error` is a stable machine-matchable slug derived from the status
    /// (the [`reason_phrase`] lowercased with underscores), `detail` the
    /// human-readable specifics. Clients branch on `error` (or the status
    /// line) and log `detail`; the slug set can only grow, never change.
    pub fn error(status: u16, message: &str) -> Self {
        let body = olive_api::JsonValue::object(vec![
            (
                "error",
                olive_api::JsonValue::Str(error_slug(status).to_string()),
            ),
            ("detail", olive_api::JsonValue::Str(message.to_string())),
        ])
        .render();
        Response::json(status, body)
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.extra_headers.push((name.to_string(), value.into()));
        self
    }

    /// Serializes the response, honouring `keep_alive` in the `Connection`
    /// header.
    ///
    /// Extra headers whose names collide **case-insensitively** with the
    /// framing set ([`RESERVED_HEADERS`]) are dropped: a handler must never
    /// be able to emit a second `content-length` and desynchronise the
    /// connection.
    pub fn write_to<W: Write>(&self, writer: &mut W, keep_alive: bool) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            reason_phrase(self.status),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        for (name, value) in &self.extra_headers {
            if RESERVED_HEADERS
                .iter()
                .any(|reserved| name.eq_ignore_ascii_case(reserved))
            {
                continue;
            }
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        // One write for head+body: two small segments would tickle Nagle +
        // delayed-ACK stalls (tens of ms per response) on loopback.
        head.push_str(&self.body);
        writer.write_all(head.as_bytes())?;
        writer.flush()
    }
}

/// Header names the response writers own; handler-supplied extra headers can
/// never override them (compared case-insensitively on the write path, just
/// as lookups are on the read path).
pub const RESERVED_HEADERS: [&str; 4] = [
    "content-type",
    "content-length",
    "connection",
    "transfer-encoding",
];

/// Writes the head of a chunked (streaming) response: status line, framing
/// headers with `Transfer-Encoding: chunked`, and the blank line. Follow
/// with [`write_chunk`] calls and one [`write_last_chunk`].
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_chunked_head<W: Write>(
    writer: &mut W,
    status: u16,
    keep_alive: bool,
) -> std::io::Result<()> {
    write_chunked_head_with(writer, status, keep_alive, &[])
}

/// [`write_chunked_head`] with extra non-framing headers (e.g. the
/// `x-olive-trace` correlation id). Names colliding case-insensitively
/// with [`RESERVED_HEADERS`] are dropped, exactly as in
/// [`Response::write_to`].
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_chunked_head_with<W: Write>(
    writer: &mut W,
    status: u16,
    keep_alive: bool,
    extra_headers: &[(String, String)],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nTransfer-Encoding: chunked\r\nConnection: {}\r\n",
        status,
        reason_phrase(status),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in extra_headers {
        if RESERVED_HEADERS
            .iter()
            .any(|reserved| name.eq_ignore_ascii_case(reserved))
        {
            continue;
        }
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    writer.write_all(head.as_bytes())?;
    writer.flush()
}

/// Writes one chunk (size line + data + CRLF) in a single syscall and
/// flushes, so each streamed token fragment hits the wire immediately.
/// Empty data is a no-op: a zero-length chunk would terminate the stream
/// ([`write_last_chunk`] owns that).
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_chunk<W: Write>(writer: &mut W, data: &str) -> std::io::Result<()> {
    if data.is_empty() {
        return Ok(());
    }
    let mut frame = format!("{:x}\r\n", data.len());
    frame.push_str(data);
    frame.push_str("\r\n");
    writer.write_all(frame.as_bytes())?;
    writer.flush()
}

/// Terminates a chunked response (`0\r\n\r\n`), preserving keep-alive
/// framing for the next request on the connection.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_last_chunk<W: Write>(writer: &mut W) -> std::io::Result<()> {
    writer.write_all(b"0\r\n\r\n")?;
    writer.flush()
}

/// The standard reason phrase for the status codes this server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// The machine-matchable `error` slug for a status: the reason phrase,
/// lowercased with underscores (`503` → `"service_unavailable"`). Part of
/// the wire contract — see [`Response::error`].
pub fn error_slug(status: u16) -> &'static str {
    match status {
        400 => "bad_request",
        403 => "forbidden",
        404 => "not_found",
        405 => "method_not_allowed",
        408 => "request_timeout",
        413 => "payload_too_large",
        431 => "request_header_fields_too_large",
        500 => "internal_server_error",
        501 => "not_implemented",
        503 => "service_unavailable",
        505 => "http_version_not_supported",
        _ => "unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn read(raw: &str) -> ReadOutcome {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_a_get_request() {
        let outcome = read("GET /healthz?verbose=1 HTTP/1.1\r\nHost: x\r\n\r\n");
        let ReadOutcome::Request(req) = outcome else {
            panic!("expected a request, got {outcome:?}");
        };
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.query, "verbose=1");
        assert_eq!(req.query_param("verbose"), Some("1"));
        assert_eq!(req.query_param("nope"), None);
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert!(req.keep_alive());
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_post_with_body_and_connection_close() {
        let outcome = read(
            "POST /v1/eval HTTP/1.1\r\nContent-Length: 7\r\nConnection: close\r\n\r\n{\"a\":1}",
        );
        let ReadOutcome::Request(req) = outcome else {
            panic!("expected a request");
        };
        assert_eq!(req.body_utf8().unwrap(), "{\"a\":1}");
        assert!(!req.keep_alive());
    }

    #[test]
    fn eof_before_any_byte_is_a_clean_disconnect() {
        assert!(matches!(read(""), ReadOutcome::Disconnected));
    }

    #[test]
    fn truncated_requests_are_bad() {
        for raw in [
            "GET /x HTTP/1.1",                                     // no terminator at all
            "GET /x HTTP/1.1\r\nHost: x",                          // headers never finish
            "POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort", // body short
        ] {
            let outcome = read(raw);
            assert!(
                matches!(outcome, ReadOutcome::Bad(_)),
                "{raw:?}: {outcome:?}"
            );
        }
    }

    #[test]
    fn rejects_protocol_violations_with_specific_statuses() {
        let cases = [
            ("FLY /x\r\n\r\n", 400),                        // two-token request line
            ("GET /x HTTP/2\r\n\r\n", 505),                 // wrong version
            ("GET /x HTTP/1.1\r\nbad header\r\n\r\n", 400), // colon-free header
            ("POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n", 400),
            (
                "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                501,
            ),
        ];
        for (raw, status) in cases {
            match read(raw) {
                ReadOutcome::Bad(e) => assert_eq!(e.status, status, "{raw:?}: {}", e.message),
                other => panic!("{raw:?}: expected Bad, got {other:?}"),
            }
        }
    }

    #[test]
    fn enforces_size_limits() {
        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(MAX_LINE_BYTES + 10));
        match read(&long_line) {
            ReadOutcome::Bad(e) => assert_eq!(e.status, 431),
            other => panic!("expected 431, got {other:?}"),
        }
        let huge_body = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        match read(&huge_body) {
            ReadOutcome::Bad(e) => assert_eq!(e.status, 413),
            other => panic!("expected 413, got {other:?}"),
        }
        let mut many_headers = String::from("GET /x HTTP/1.1\r\n");
        for i in 0..(MAX_HEADERS + 2) {
            many_headers.push_str(&format!("H{i}: v\r\n"));
        }
        many_headers.push_str("\r\n");
        match read(&many_headers) {
            ReadOutcome::Bad(e) => assert_eq!(e.status, 431),
            other => panic!("expected 431, got {other:?}"),
        }
    }

    #[test]
    fn content_length_smuggling_vectors_are_rejected() {
        // Duplicate Content-Length headers — identical, differing, and
        // differing only in name case — all close with a 400.
        for raw in [
            "POST /x HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nok",
            "POST /x HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 5\r\n\r\nok",
            "POST /x HTTP/1.1\r\ncontent-length: 2\r\nCONTENT-LENGTH: 5\r\n\r\nok",
        ] {
            match read(raw) {
                ReadOutcome::Bad(e) => {
                    assert_eq!(e.status, 400, "{raw:?}");
                    assert!(e.message.contains("duplicate"), "{raw:?}: {}", e.message);
                }
                other => panic!("{raw:?}: expected Bad, got {other:?}"),
            }
        }
        // Values with signs, inner whitespace, separators or nothing at all
        // must not reach a lenient integer parse.
        for value in ["+42", "-1", "4 2", "42,42", "", "0x10", "42."] {
            let raw = format!("POST /x HTTP/1.1\r\nContent-Length: {value}\r\n\r\n");
            match read(&raw) {
                ReadOutcome::Bad(e) => assert_eq!(e.status, 400, "CL {value:?}: {}", e.message),
                other => panic!("CL {value:?}: expected Bad, got {other:?}"),
            }
        }
        // A single well-formed header still works regardless of name case
        // and optional whitespace after the colon (standard header OWS).
        let outcome = read("POST /x HTTP/1.1\r\ncOnTeNt-LeNgTh:   2  \r\n\r\nhi");
        let ReadOutcome::Request(req) = outcome else {
            panic!("mixed-case Content-Length must parse, got {outcome:?}");
        };
        assert_eq!(req.body, b"hi");
    }

    #[test]
    fn transfer_encoding_smuggling_vectors_are_rejected() {
        // A duplicated Transfer-Encoding must never be resolved by taking
        // the first match: a proxy honouring the second copy would frame
        // the body differently.
        for raw in [
            "POST /x HTTP/1.1\r\nTransfer-Encoding: identity\r\nTransfer-Encoding: chunked\r\nContent-Length: 2\r\n\r\nhi",
            "POST /x HTTP/1.1\r\ntransfer-encoding: identity\r\nTRANSFER-ENCODING: identity\r\n\r\n",
        ] {
            match read(raw) {
                ReadOutcome::Bad(e) => {
                    assert_eq!(e.status, 400, "{raw:?}: {}", e.message);
                    assert!(e.message.contains("duplicate"), "{raw:?}: {}", e.message);
                }
                other => panic!("{raw:?}: expected Bad, got {other:?}"),
            }
        }
        // A combined coding list in one header is still unsupported (501).
        match read("POST /x HTTP/1.1\r\nTransfer-Encoding: identity, chunked\r\n\r\n") {
            ReadOutcome::Bad(e) => assert_eq!(e.status, 501, "{}", e.message),
            other => panic!("expected 501, got {other:?}"),
        }
    }

    #[test]
    fn whitespace_around_header_names_is_rejected() {
        // RFC 7230 §3.2.4: whitespace before the colon is a 400 (and a
        // leading space would be an obs-fold continuation) — both are
        // parser-disagreement (smuggling) vectors.
        for raw in [
            "POST /x HTTP/1.1\r\nContent-Length : 2\r\n\r\nhi",
            "GET /x HTTP/1.1\r\n Host: a\r\n\r\n",
            "GET /x HTTP/1.1\r\n: novalue\r\n\r\n",
        ] {
            match read(raw) {
                ReadOutcome::Bad(e) => assert_eq!(e.status, 400, "{raw:?}: {}", e.message),
                other => panic!("{raw:?}: expected Bad, got {other:?}"),
            }
        }
    }

    #[test]
    fn query_strings_split_off_the_path() {
        let ReadOutcome::Request(req) = read("GET /debug/trace?n=5&full=no HTTP/1.1\r\n\r\n")
        else {
            panic!("expected a request");
        };
        assert_eq!(req.path, "/debug/trace");
        assert_eq!(req.query_param("n"), Some("5"));
        assert_eq!(req.query_param("full"), Some("no"));

        let ReadOutcome::Request(req) = read("GET /healthz HTTP/1.1\r\n\r\n") else {
            panic!("expected a request");
        };
        assert_eq!(req.query, "");
        assert_eq!(req.query_param("n"), None);
    }

    #[test]
    fn text_responses_carry_the_exposition_content_type() {
        let mut out = Vec::new();
        Response::text(200, "olive_up 1\n")
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.contains("Content-Type: text/plain; version=0.0.4\r\n"),
            "{text}"
        );
        assert!(text.ends_with("\r\n\r\nolive_up 1\n"), "{text}");
        // JSON stays the default for everything else.
        let mut out = Vec::new();
        Response::json(200, "{}").write_to(&mut out, true).unwrap();
        assert!(String::from_utf8(out)
            .unwrap()
            .contains("Content-Type: application/json\r\n"));
    }

    #[test]
    fn chunked_head_extra_headers_are_emitted_but_framing_is_reserved() {
        let mut out = Vec::new();
        write_chunked_head_with(
            &mut out,
            200,
            true,
            &[
                ("x-olive-trace".to_string(), "00ff".to_string()),
                ("Transfer-Encoding".to_string(), "identity".to_string()),
            ],
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("x-olive-trace: 00ff\r\n"), "{text}");
        assert_eq!(text.matches("Transfer-Encoding").count(), 1, "{text}");
        assert!(text.contains("Transfer-Encoding: chunked\r\n"), "{text}");
    }

    #[test]
    fn reserved_extra_headers_cannot_override_framing() {
        let mut out = Vec::new();
        Response::json(200, "{}")
            .with_header("Content-LENGTH", "9999")
            .with_header("transfer-encoding", "chunked")
            .with_header("X-Custom", "kept")
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Content-Length: 2\r\n"), "{text}");
        assert!(!text.contains("9999"), "{text}");
        assert!(!text.to_ascii_lowercase().contains("chunked"), "{text}");
        assert!(text.contains("X-Custom: kept\r\n"), "{text}");
    }

    #[test]
    fn chunked_writer_frames_and_terminates() {
        let mut out = Vec::new();
        write_chunked_head(&mut out, 200, true).unwrap();
        write_chunk(&mut out, "{\"a\":").unwrap();
        write_chunk(&mut out, "").unwrap(); // no-op, must not terminate
        write_chunk(&mut out, " 1}").unwrap();
        write_last_chunk(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Transfer-Encoding: chunked\r\n"), "{text}");
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
        assert!(
            text.ends_with("5\r\n{\"a\":\r\n3\r\n 1}\r\n0\r\n\r\n"),
            "{text}"
        );
    }

    #[test]
    fn keep_alive_connections_yield_sequential_requests() {
        let raw = "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut reader = BufReader::new(raw.as_bytes());
        let ReadOutcome::Request(a) = read_request(&mut reader) else {
            panic!("first request");
        };
        let ReadOutcome::Request(b) = read_request(&mut reader) else {
            panic!("second request");
        };
        assert_eq!((a.path.as_str(), b.path.as_str()), ("/a", "/b"));
        assert!(a.keep_alive() && !b.keep_alive());
        assert!(matches!(
            read_request(&mut reader),
            ReadOutcome::Disconnected
        ));
    }

    #[test]
    fn responses_serialize_with_required_headers() {
        let mut out = Vec::new();
        Response::json(200, "{}")
            .with_header("Retry-After", "1")
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 2\r\n"), "{text}");
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
        assert!(text.contains("Retry-After: 1\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"), "{text}");

        let mut out = Vec::new();
        Response::error(503, "queue full")
            .write_to(&mut out, false)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("503 Service Unavailable"), "{text}");
        assert!(text.contains("Connection: close"), "{text}");
        assert!(
            text.contains("\"error\": \"service_unavailable\""),
            "{text}"
        );
        assert!(text.contains("\"detail\": \"queue full\""), "{text}");
    }

    #[test]
    fn error_bodies_have_the_uniform_slug_detail_shape() {
        // The exact bytes are the wire contract: a stable status slug in
        // "error", the human-readable message in "detail", in that order.
        let body = Response::error(400, "unknown field 'batchs'").body;
        assert_eq!(
            body,
            "{\n  \"error\": \"bad_request\",\n  \"detail\": \"unknown field 'batchs'\"\n}\n"
        );
        for (status, slug) in [
            (400, "bad_request"),
            (403, "forbidden"),
            (404, "not_found"),
            (405, "method_not_allowed"),
            (408, "request_timeout"),
            (413, "payload_too_large"),
            (431, "request_header_fields_too_large"),
            (500, "internal_server_error"),
            (501, "not_implemented"),
            (503, "service_unavailable"),
            (505, "http_version_not_supported"),
            (599, "unknown"),
        ] {
            assert_eq!(error_slug(status), slug);
            let response = Response::error(status, "x");
            assert_eq!(response.status, status);
            assert!(response.body.contains(slug), "{}", response.body);
        }
    }
}
