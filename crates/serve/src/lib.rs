//! # olive-serve
//!
//! A zero-dependency HTTP/1.1 inference-and-evaluation server over the OliVe
//! scheme registry — the layer that turns the reproduction's batch
//! experiments into a long-lived service. Everything is `std`: the socket
//! loop is `std::net::TcpListener`, the wire format is the workspace's own
//! `olive_api::json`, and request execution rides the `olive-runtime` worker
//! pool from PR 2.
//!
//! ## Endpoints
//!
//! | Endpoint            | Method | Body                                   |
//! |---------------------|--------|----------------------------------------|
//! | `/healthz`          | GET    | — (liveness + serving counters)        |
//! | `/v1/schemes`       | GET    | — (the scheme registry)                |
//! | `/v1/eval`          | POST   | `{"scheme"\|"schemes", "family", "size", "seed", "batches", …}` |
//! | `/v1/generate`      | POST   | `{"scheme", "prompt_tokens", "max_new_tokens", …}` — **streamed** |
//! | `/v1/quantize`      | POST   | `{"scheme", "rows", "cols", "data"}`   |
//! | `/metrics`          | GET    | — (Prometheus text exposition)         |
//! | `/debug/trace`      | GET    | — (`?n=K` recent request traces)       |
//! | `/shutdown`         | POST   | — (403 unless `allow_shutdown` is set) |
//!
//! ## Streaming generation & continuous batching
//!
//! `/v1/generate` decodes one scheme autoregressively (greedy, KV-cached)
//! and streams the report as **chunked transfer-encoding** over the same
//! keep-alive HTTP/1.1 layer: one chunk for the JSON head, one chunk per
//! decode step the moment its token is produced, then the per-scheme
//! summary and the terminating chunk.
//!
//! Generation requests do **not** ride the unary batcher. They are admitted
//! onto the continuous-batching decode scheduler ([`decode_sched`]): each
//! in-flight stream holds externally-owned KV state paged out of a shared
//! [`olive_models::KvPool`], and every scheduler tick merges the *current
//! step* of all live streams into one batched causal forward per model
//! group ([`olive_models::TinyTransformer::advance_batch`]), then fans the
//! produced fragments back out to their connections. New streams join the
//! batch at the next tick instead of waiting for running ones to finish —
//! no head-of-line blocking — and the door keeps the batcher's 503 +
//! `Retry-After` back-pressure contract. The prepared teacher + prompt are
//! cached per `(family, size, seed, prompt_tokens)` and the quantized
//! student per scheme on top of that, so scheme comparisons share one
//! preparation.
//!
//! ## The determinism contract
//!
//! An `/v1/eval` response body is **byte-identical** to rendering the same
//! evaluation directly:
//!
//! ```text
//! Pipeline (same family/size/schemes/seed/batches/calibration)
//!     .run().without_wall_times().to_json()
//! ```
//!
//! and a streamed `/v1/generate` response — chunks concatenated — is
//! byte-identical to the direct
//!
//! ```text
//! Pipeline (same family/size/scheme/seed)
//!     .generation(GenOptions::new()
//!         .prompt_tokens(p).max_new_tokens(m))
//!     .without_wall_times().to_json()
//! ```
//!
//! at *any* micro-batch size, queue state, concurrency level, session
//! interleaving and `OLIVE_THREADS` setting. This holds by construction,
//! not by testing alone:
//!
//! * each request is computed by a pure function of its decoded parameters —
//!   the batcher only chooses *which thread* runs it ([`par_map`] never
//!   changes what a job computes, per the `olive-runtime` contract);
//! * the model cache is keyed by everything that feeds the computation, so a
//!   hit returns bytes a miss would have produced;
//! * the incremental decode path obeys the **decode-cache determinism
//!   contract** (see [`olive_models::decode`]): the logits
//!   [`advance_batch`](olive_models::TinyTransformer::advance_batch)
//!   produces for row *i* are bit-identical to advancing stream *i* alone —
//!   per-row normalisation, softmax and quantization, element-wise
//!   activations and fixed ascending-`k` GEMM accumulation — and the paged
//!   KV layout is byte-equivalent to a contiguous cache, so merging steps
//!   across sessions can never change a streamed token;
//! * the streamed JSON is assembled from the same fragments
//!   `GenReport::to_json` concatenates (`olive_api::gen`), so chunking can
//!   never change the bytes, only their framing;
//! * wall-clock times — the one measurement in an [`EvalReport`] or
//!   `GenReport` — are stripped (`without_wall_times`) before rendering.
//!
//! `crates/serve/tests/determinism.rs` enforces both contracts end to end
//! with concurrent clients at `OLIVE_THREADS` ∈ {1, 8} and micro-batch sizes
//! {1, 4}, with streamed and unary requests interleaved over the same
//! kept-alive connections; `crates/serve/tests/continuous.rs` runs the
//! concurrent-session matrix (staggered starts, mixed prompt lengths, a
//! mid-stream disconnect) against the decode scheduler.
//!
//! ## Dynamic batching & back-pressure
//!
//! Requests enqueue into a bounded [`BoundedQueue`] and a drain thread
//! executes them in micro-batches (up to `max_batch` jobs, lingering at most
//! `max_wait` for stragglers) on the shared worker pool — so ten concurrent
//! tiny requests cost one pool dispatch, not ten thread pile-ups. When the
//! queue is full the server answers **503 + `Retry-After: 1`** immediately:
//! overload is shed at the door, visible to clients, instead of growing an
//! unbounded backlog. Quantize-once-serve-many lives in [`cache`]: teachers
//! are prepared once per configuration and shared across requests and
//! schemes.
//!
//! ## Observability
//!
//! `GET /metrics` serves the full serving state — per-endpoint request
//! counts and latency histograms, batcher queue-wait/execute splits, decode
//! tick durations and time-to-first-chunk, cache occupancy and KV-page
//! gauges — as Prometheus text exposition via `olive_telemetry`; see
//! `crates/telemetry/METRICS.md` for the reference. Every request carries
//! an `x-olive-trace` id (honoured from the router, generated otherwise,
//! echoed on the response) and its span timeline (accepted → queued →
//! batched → first-byte → done) lands in a bounded flight recorder behind
//! `GET /debug/trace?n=K` (and, with `--trace-log`, as JSON lines on disk).
//! Telemetry is strictly **out of band**: response bodies are byte-identical
//! with it on or off (`crates/serve/tests/telemetry.rs` proves both), and
//! telemetry commits before a response's final byte is written, so a client
//! that saw an answer always finds it counted.
//!
//! ## Quickstart (in-process)
//!
//! ```
//! use olive_serve::{client, Server, ServeConfig};
//!
//! let server = Server::start(ServeConfig::default()).unwrap();
//! let health = client::get(server.local_addr(), "/healthz").unwrap();
//! assert_eq!(health.status, 200);
//! let eval = client::post_json(
//!     server.local_addr(),
//!     "/v1/eval",
//!     r#"{"scheme": "olive-4bit", "batches": 2, "oversample": 2}"#,
//! )
//! .unwrap();
//! assert_eq!(eval.status, 200);
//! assert!(eval.body.contains("\"spec\": \"olive-4bit\""));
//! server.shutdown();
//! ```
//!
//! The `olive-serve` binary wraps [`Server`] as a daemon (`--port`,
//! `--max-batch`, `--max-wait-ms`, `--queue-capacity`, `--allow-shutdown`),
//! and `serve_client` is a std-only CLI client for smoke scripts; see the
//! README's "Serving" section for the curl quickstart.
//!
//! [`par_map`]: olive_runtime::par_map
//! [`BoundedQueue`]: olive_runtime::BoundedQueue
//! [`EvalReport`]: olive_api::EvalReport

pub mod batch;
pub mod cache;
pub mod client;
pub mod decode_sched;
pub mod http;
pub mod protocol;
pub mod server;

pub use batch::{BatchConfig, Batcher, Job};
pub use cache::ModelCache;
pub use decode_sched::{DecodeScheduler, SchedConfig, SchedStats, StreamEvent};
pub use http::{Request, Response};
pub use olive_telemetry::TelemetryOptions;
pub use protocol::{EvalRequest, GenerateRequest, ModelSize, QuantizeRequest};
pub use server::{ServeConfig, Server, TRACE_HEADER};
