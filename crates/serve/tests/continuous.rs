//! The continuous-batching determinism matrix (the PR's acceptance
//! criterion for concurrent sessions): N interleaved `/v1/generate` streams
//! — staggered starts, mixed prompt lengths/schemes/families, one client
//! disconnecting mid-stream — must each produce bytes identical to the
//! direct `Pipeline::generation(..).without_wall_times().to_json()` for
//! their request, at `OLIVE_THREADS` ∈ {1, 8} and across decode-scheduler
//! shapes (admission batch sizes, session caps, and a KV pool small enough
//! to force deferred admission).
//!
//! One `#[test]` drives the whole matrix because it mutates the
//! process-global `OLIVE_THREADS` variable; splitting it would race the
//! test harness's thread pool.

use olive_api::{GenOptions, JsonValue};
use olive_serve::client::Connection;
use olive_serve::{SchedConfig, ServeConfig, Server};
use std::io::{Read, Write};
use std::sync::Arc;
use std::time::Duration;

/// The stream mix: mixed prompt lengths, step counts, schemes, families and
/// seeds, so merged ticks combine differently-shaped flights and several
/// model groups.
fn stream_mix() -> Vec<String> {
    vec![
        r#"{"scheme": "olive-4bit", "prompt_tokens": 4, "max_new_tokens": 6, "seed": 3}"#.into(),
        r#"{"scheme": "olive-4bit", "prompt_tokens": 9, "max_new_tokens": 3, "seed": 3}"#.into(),
        r#"{"scheme": "uniform:4", "prompt_tokens": 2, "max_new_tokens": 8}"#.into(),
        r#"{"scheme": "fp32", "prompt_tokens": 6, "max_new_tokens": 5, "seed": 11}"#.into(),
        r#"{"scheme": "olive-8bit", "family": "gpt2", "prompt_tokens": 3, "max_new_tokens": 7}"#
            .into(),
        r#"{"scheme": "ant:4bit", "prompt_tokens": 5, "max_new_tokens": 4, "seed": 7}"#.into(),
    ]
}

/// What a direct (no server, no scheduler) pipeline run renders for `body`.
fn direct_answer(body: &str) -> String {
    let parsed = JsonValue::parse(body).expect("test request must be valid JSON");
    let request = olive_serve::GenerateRequest::decode(&parsed).expect("test request must decode");
    request
        .pipeline()
        .generation(
            GenOptions::new()
                .prompt_tokens(request.prompt_tokens)
                .max_new_tokens(request.max_new_tokens),
        )
        .without_wall_times()
        .to_json()
}

/// Opens a raw socket, starts a long generation, reads a handful of bytes
/// and hangs up — the mid-stream disconnect. The scheduler must release the
/// session and its KV pages without disturbing any surviving stream.
fn disconnect_mid_stream(server: &Server) {
    let body = r#"{"scheme": "olive-4bit", "prompt_tokens": 8, "max_new_tokens": 64, "seed": 5}"#;
    let mut stream = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let request = format!(
        "POST /v1/generate HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("write");
    // Read just past the status line so the stream has really started, then
    // drop the socket while chunks are (or soon will be) in flight.
    let mut first = [0u8; 32];
    let _ = stream.read(&mut first);
    drop(stream);
}

/// Runs the stream mix concurrently against `server` — staggered starts,
/// one disconnecting client in the middle — and asserts every surviving
/// stream's chunks concatenate to its direct answer.
fn assert_streams_bit_identical(server: &Server, expected: &Arc<Vec<(String, String)>>) {
    let mut workers = Vec::new();
    for (i, _) in expected.iter().enumerate() {
        let addr = server.local_addr();
        let expected = Arc::clone(expected);
        workers.push(std::thread::spawn(move || {
            // Staggered starts: later streams join the merged batch while
            // earlier ones are mid-decode (continuous batching's raison
            // d'être), instead of all admitting on one tick.
            std::thread::sleep(Duration::from_millis(3 * i as u64));
            let (body, want) = &expected[i];
            let mut connection = Connection::open(addr).expect("client connect");
            let response = connection
                .request("POST", "/v1/generate", Some(body))
                .expect("request");
            assert_eq!(response.status, 200, "{body}: {}", response.body);
            let chunks = response.chunks.as_ref().expect("must stream chunked");
            assert!(chunks.len() > 2, "only {} chunks", chunks.len());
            assert_eq!(
                &response.body, want,
                "served bytes diverged from the direct pipeline run ({body})"
            );
        }));
    }
    // The disconnecting client lands mid-pack, while staggered survivors
    // are still starting and finishing around it.
    std::thread::sleep(Duration::from_millis(7));
    disconnect_mid_stream(server);
    for worker in workers {
        worker.join().expect("client thread");
    }
}

#[test]
fn concurrent_sessions_stream_bit_identical_bytes() {
    // Expected bodies computed once, directly, before any server exists:
    // the runtime's determinism contract says thread count, scheduler shape
    // and session interleaving never change results.
    let expected: Arc<Vec<(String, String)>> = Arc::new(
        stream_mix()
            .into_iter()
            .map(|body| {
                let want = direct_answer(&body);
                (body, want)
            })
            .collect(),
    );

    // Scheduler shapes: wide-open (everything admits at once), serialized
    // admission (one request pulled per tick, two sessions at most), and a
    // tight KV pool. Each survivor needs 8 pages at the default geometry
    // (2 layers x K&V x 1 page x 2 lanes) and the disconnecting 64-step
    // stream needs 16, so 24 pages admit at most three flights at a time
    // and the rest wait for pages to free up. The bytes must never notice.
    let sched_shapes = [
        SchedConfig::default(),
        SchedConfig {
            max_sessions: 2,
            admit_batch: 1,
            ..SchedConfig::default()
        },
        SchedConfig {
            kv_pool_pages: 24,
            ..SchedConfig::default()
        },
    ];
    for threads in ["1", "8"] {
        std::env::set_var("OLIVE_THREADS", threads);
        for sched in &sched_shapes {
            let server = Server::start(ServeConfig {
                sched: sched.clone(),
                ..ServeConfig::default()
            })
            .expect("server start");
            assert_streams_bit_identical(&server, &expected);

            // The disconnected session fully released its slot and pages.
            let health = olive_serve::client::get(server.local_addr(), "/healthz").unwrap();
            let v = JsonValue::parse(&health.body).unwrap();
            assert_eq!(
                v.get("decode_sessions").and_then(JsonValue::as_u64),
                Some(0),
                "{}",
                health.body
            );
            assert_eq!(
                v.get("kv_pages_used").and_then(JsonValue::as_u64),
                Some(0),
                "{}",
                health.body
            );
            server.shutdown();
        }
    }
    std::env::remove_var("OLIVE_THREADS");
}
