//! The telemetry out-of-band contract, enforced end to end (this PR's
//! acceptance criterion): response **bodies** from `/v1/eval` and
//! `/v1/generate` must be byte-identical with telemetry enabled and
//! disabled, at `OLIVE_THREADS` ∈ {1, 8} — observation must never leak into
//! the served bytes. Plus the observability surface itself: `/metrics`
//! serves Prometheus text with the request counters moving, `/debug/trace`
//! returns recent spans, the `x-olive-trace` header is generated when
//! absent and echoed verbatim when supplied, and `--trace-log` appends one
//! JSON line per finished span.
//!
//! One `#[test]` drives the on/off × thread-count matrix because it mutates
//! the process-global `OLIVE_THREADS` variable; splitting it would race the
//! test harness's thread pool.

use olive_serve::client::{get, post_json, Connection};
use olive_serve::{ServeConfig, Server, TelemetryOptions, TRACE_HEADER};

const EVAL_BODY: &str = r#"{"scheme": "olive-4bit", "batches": 2, "oversample": 2}"#;
const GEN_BODY: &str =
    r#"{"scheme": "olive-4bit", "prompt_tokens": 4, "max_new_tokens": 6, "seed": 3}"#;

fn server_with(enabled: bool) -> Server {
    Server::start(ServeConfig {
        telemetry: TelemetryOptions {
            enabled,
            ..TelemetryOptions::default()
        },
        ..ServeConfig::default()
    })
    .expect("server start")
}

/// (eval body, generate body, generate chunk count) served by `server`.
fn serve_pair(server: &Server) -> (String, String, usize) {
    let eval = post_json(server.local_addr(), "/v1/eval", EVAL_BODY).expect("eval");
    assert_eq!(eval.status, 200, "{}", eval.body);
    let gen = post_json(server.local_addr(), "/v1/generate", GEN_BODY).expect("generate");
    assert_eq!(gen.status, 200, "{}", gen.body);
    let chunks = gen.chunks.as_ref().expect("generate must stream").len();
    (eval.body, gen.body, chunks)
}

#[test]
fn bodies_are_byte_identical_with_telemetry_on_or_off() {
    let mut reference: Option<(String, String, usize)> = None;
    for threads in ["1", "8"] {
        std::env::set_var("OLIVE_THREADS", threads);
        for enabled in [true, false] {
            let server = server_with(enabled);
            let got = serve_pair(&server);
            server.shutdown();
            match &reference {
                None => reference = Some(got),
                Some(want) => assert_eq!(
                    &got, want,
                    "served bytes diverged (telemetry enabled={enabled}, \
                     OLIVE_THREADS={threads})"
                ),
            }
        }
    }
    std::env::remove_var("OLIVE_THREADS");
}

#[test]
fn metrics_exposition_counts_requests_per_endpoint() {
    let server = server_with(true);
    let addr = server.local_addr();
    for _ in 0..3 {
        let response = post_json(addr, "/v1/eval", EVAL_BODY).expect("eval");
        assert_eq!(response.status, 200, "{}", response.body);
    }
    let response = get(addr, "/metrics").expect("metrics");
    server.shutdown();

    assert_eq!(response.status, 200, "{}", response.body);
    let content_type = response.header("Content-Type").expect("content type");
    assert!(
        content_type.starts_with("text/plain"),
        "Prometheus exposition must be text/plain, got {content_type}"
    );
    let body = &response.body;
    assert!(
        body.contains(r#"olive_http_requests_total{endpoint="/v1/eval",status="2xx"} 3"#),
        "per-endpoint counter missing or wrong:\n{body}"
    );
    assert!(
        body.contains("# TYPE olive_http_request_duration_us histogram"),
        "latency histogram family missing:\n{body}"
    );
    assert!(
        body.contains("olive_queue_depth 0"),
        "healthz gauges must be registry-backed:\n{body}"
    );
    // Exposition is deterministic: two scrapes over one kept-alive
    // connection with no traffic in between render the exact same bytes,
    // except the lines counting the scrapes themselves.
    let server = server_with(true);
    let mut scraper = Connection::open(server.local_addr()).expect("connect");
    let a = scraper
        .request("GET", "/metrics", None)
        .expect("scrape a")
        .body;
    let b = scraper
        .request("GET", "/metrics", None)
        .expect("scrape b")
        .body;
    server.shutdown();
    // The scrape itself is counted (lazily registering its own families on
    // the first scrape), so the per-endpoint HTTP families are the one
    // legitimate difference between the two expositions.
    let stable = |s: &str| {
        s.lines()
            .filter(|l| !l.contains("olive_http_request"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(stable(&a), stable(&b), "exposition bytes must be stable");
}

#[test]
fn trace_header_is_generated_and_echoed() {
    let server = server_with(true);
    let addr = server.local_addr();

    // No header supplied: the worker mints a 16-hex-digit id and echoes it.
    let response = post_json(addr, "/v1/eval", EVAL_BODY).expect("eval");
    let minted = response
        .header(TRACE_HEADER)
        .expect("trace echo")
        .to_string();
    assert_eq!(minted.len(), 16, "trace id must be 16 hex digits: {minted}");
    assert!(minted.chars().all(|c| c.is_ascii_hexdigit()), "{minted}");

    // Header supplied: echoed verbatim, on unary and streamed paths alike.
    let mut connection = Connection::open(addr).expect("connect");
    let supplied = "feedc0dedeadbeef";
    let response = connection
        .request_with_headers(
            "POST",
            "/v1/eval",
            Some(EVAL_BODY),
            &[(TRACE_HEADER, supplied)],
        )
        .expect("eval with trace");
    assert_eq!(response.header(TRACE_HEADER), Some(supplied));
    let response = connection
        .request_with_headers(
            "POST",
            "/v1/generate",
            Some(GEN_BODY),
            &[(TRACE_HEADER, supplied)],
        )
        .expect("generate with trace");
    assert_eq!(response.header(TRACE_HEADER), Some(supplied));
    assert!(response.chunks.is_some(), "generate must still stream");

    // Both traces are in the flight recorder with the full span lifecycle.
    let trace = get(addr, "/debug/trace?n=8").expect("debug trace");
    server.shutdown();
    assert_eq!(trace.status, 200, "{}", trace.body);
    assert!(
        trace.body.contains(&minted),
        "minted trace missing: {}",
        trace.body
    );
    assert!(
        trace.body.contains(supplied),
        "supplied trace missing: {}",
        trace.body
    );
    for stage in ["accepted", "queued", "first-byte", "done"] {
        assert!(
            trace.body.contains(&format!(r#""stage":"{stage}""#)),
            "stage {stage} missing: {}",
            trace.body
        );
    }
}

#[test]
fn disabled_telemetry_keeps_counters_but_drops_traces() {
    let server = server_with(false);
    let addr = server.local_addr();
    let response = post_json(addr, "/v1/eval", EVAL_BODY).expect("eval");
    assert_eq!(response.status, 200, "{}", response.body);
    // No tracer → no minted id on the response.
    assert_eq!(response.header(TRACE_HEADER), None);

    // Counters still count (healthz and capacity planning depend on them) …
    let metrics = get(addr, "/metrics").expect("metrics");
    assert!(
        metrics
            .body
            .contains(r#"olive_http_requests_total{endpoint="/v1/eval",status="2xx"} 1"#),
        "counters must survive --no-telemetry:\n{}",
        metrics.body
    );
    // … but no latency samples are observed and no spans are recorded.
    assert!(
        !metrics
            .body
            .contains("olive_http_request_duration_us_count 1"),
        "latency must not be observed when disabled:\n{}",
        metrics.body
    );
    let trace = get(addr, "/debug/trace?n=8").expect("debug trace");
    server.shutdown();
    assert_eq!(trace.status, 200);
    assert_eq!(trace.body, r#"{"traces": []}"#);
}

#[test]
fn trace_log_appends_one_json_line_per_span() {
    let dir = std::env::temp_dir().join(format!("olive-trace-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let log = dir.join("trace.jsonl");
    let server = Server::start(ServeConfig {
        telemetry: TelemetryOptions {
            trace_log: Some(log.clone()),
            ..TelemetryOptions::default()
        },
        ..ServeConfig::default()
    })
    .expect("server start");
    for _ in 0..2 {
        let response = post_json(server.local_addr(), "/v1/eval", EVAL_BODY).expect("eval");
        assert_eq!(response.status, 200, "{}", response.body);
    }
    server.shutdown();

    let contents = std::fs::read_to_string(&log).expect("trace log written");
    let lines: Vec<_> = contents.lines().collect();
    assert_eq!(lines.len(), 2, "one line per span: {contents}");
    for line in lines {
        assert!(line.starts_with(r#"{"trace_id":""#), "{line}");
        assert!(line.contains(r#""endpoint":"/v1/eval""#), "{line}");
        assert!(line.ends_with('}'), "{line}");
    }
    std::fs::remove_dir_all(&dir).ok();
}
