//! The serving determinism contract, enforced end to end (the PR's
//! acceptance criterion): an `/v1/eval` response body must be byte-identical
//! to a direct `Pipeline::run()` + `without_wall_times().to_json()` for the
//! same (family, size, schemes, seed, batches, calibration), and a streamed
//! `/v1/generate` response — chunks concatenated — must be byte-identical to
//! the direct `Pipeline::generation(GenOptions)` rendering via
//! `without_wall_times().to_json()` —
//! under concurrent clients, at micro-batch sizes 1 and 4, at
//! `OLIVE_THREADS` ∈ {1, 8}, with both kinds of request interleaved over the
//! same kept-alive connections (mid-stream keep-alive reuse).
//!
//! One `#[test]` drives the whole matrix because it mutates the
//! process-global `OLIVE_THREADS` variable; splitting it would race the
//! test harness's thread pool.

use olive_serve::client::Connection;
use olive_serve::{BatchConfig, ServeConfig, Server};
use std::sync::Arc;
use std::time::Duration;

/// The request mix: eval and streamed-generate requests over distinct
/// schemes, seeds, batch counts, sizes and calibrations, so concurrent
/// micro-batches interleave unrelated (and differently-shaped) work.
fn request_mix() -> Vec<(&'static str, String)> {
    vec![
        (
            "/v1/eval",
            r#"{"scheme": "olive-4bit", "batches": 2, "oversample": 2}"#.to_string(),
        ),
        (
            "/v1/generate",
            r#"{"scheme": "olive-4bit", "prompt_tokens": 4, "max_new_tokens": 6, "seed": 3}"#
                .to_string(),
        ),
        (
            "/v1/eval",
            r#"{"schemes": ["fp32", "uniform:4"], "seed": 7, "batches": 3, "oversample": 2}"#
                .to_string(),
        ),
        (
            "/v1/generate",
            r#"{"scheme": "uniform:4", "family": "gpt2", "prompt_tokens": 3,
                "max_new_tokens": 5, "seed": 3}"#
                .to_string(),
        ),
        (
            "/v1/eval",
            r#"{"scheme": "olive-4bit@per-row", "family": "gpt2", "seed": 11, "batches": 2,
            "oversample": 2}"#
                .to_string(),
        ),
        (
            "/v1/eval",
            r#"{"scheme": "ant:4bit", "calibration": "random", "batches": 2}"#.to_string(),
        ),
        (
            "/v1/eval",
            r#"{"scheme": "olive-8bit", "weights_only": true, "batches": 2, "oversample": 3}"#
                .to_string(),
        ),
        (
            "/v1/generate",
            r#"{"scheme": "olive-8bit", "weights_only": true, "prompt_tokens": 5,
                "max_new_tokens": 4}"#
                .to_string(),
        ),
        (
            "/v1/eval",
            r#"{"scheme": "gobo", "family": "bloom", "seed": 5, "batches": 1, "oversample": 2}"#
                .to_string(),
        ),
    ]
}

/// What a direct (no server, no batching, no streaming) pipeline run renders
/// for `body` at `path`.
fn direct_answer(path: &str, body: &str) -> String {
    let parsed = olive_api::JsonValue::parse(body).expect("test request must be valid JSON");
    match path {
        "/v1/eval" => {
            let request =
                olive_serve::EvalRequest::decode(&parsed).expect("test request must decode");
            request.pipeline().run().without_wall_times().to_json()
        }
        "/v1/generate" => {
            let request =
                olive_serve::GenerateRequest::decode(&parsed).expect("test request must decode");
            request
                .pipeline()
                .generation(
                    olive_api::GenOptions::new()
                        .prompt_tokens(request.prompt_tokens)
                        .max_new_tokens(request.max_new_tokens),
                )
                .without_wall_times()
                .to_json()
        }
        other => panic!("unexpected path {other}"),
    }
}

/// Hammers `server` with `clients` concurrent connections, each issuing the
/// whole request mix `rounds` times over one kept-alive connection, and
/// asserts every response is byte-identical to its direct answer.
fn assert_bit_identical_under_load(
    server: &Server,
    expected: &Arc<Vec<(&'static str, String, String)>>,
    clients: usize,
    rounds: usize,
) {
    let workers: Vec<_> = (0..clients)
        .map(|client_id| {
            let addr = server.local_addr();
            let expected = Arc::clone(expected);
            std::thread::spawn(move || {
                let mut connection = Connection::open(addr).expect("client connect");
                for round in 0..rounds {
                    // Stagger request order per client so batches mix — and
                    // so streamed and unary responses alternate over the
                    // same kept-alive connection.
                    for k in 0..expected.len() {
                        let (path, body, want) =
                            &expected[(k + client_id + round) % expected.len()];
                        let response = connection
                            .request("POST", path, Some(body))
                            .expect("request");
                        assert_eq!(response.status, 200, "{path}: {}", response.body);
                        if *path == "/v1/generate" {
                            // Streamed for real: more than one chunk, one
                            // per decode step among them.
                            let chunks = response.chunks.as_ref().expect("chunked");
                            assert!(chunks.len() > 2, "only {} chunks", chunks.len());
                        } else {
                            assert!(response.chunks.is_none(), "{path} must not chunk");
                        }
                        assert_eq!(
                            &response.body, want,
                            "served bytes diverged from the direct pipeline run \
                             (client {client_id}, round {round}, {path} {body})"
                        );
                    }
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("client thread");
    }
}

#[test]
fn eval_responses_are_byte_identical_to_direct_runs() {
    // Expected bodies computed once, directly, before any server exists.
    // The runtime's determinism contract says thread count never changes
    // results, so one set of expectations serves every configuration.
    let expected: Arc<Vec<(&'static str, String, String)>> = Arc::new(
        request_mix()
            .into_iter()
            .map(|(path, body)| {
                let want = direct_answer(path, &body);
                (path, body, want)
            })
            .collect(),
    );

    for threads in ["1", "8"] {
        std::env::set_var("OLIVE_THREADS", threads);
        for max_batch in [1usize, 4] {
            let server = Server::start(ServeConfig {
                batch: BatchConfig {
                    max_batch,
                    // Long enough that concurrent clients really coalesce
                    // into multi-request batches.
                    max_wait: Duration::from_millis(5),
                    queue_capacity: 256,
                },
                ..ServeConfig::default()
            })
            .expect("server start");
            assert_bit_identical_under_load(&server, &expected, 4, 2);
            server.shutdown();
        }
    }
    std::env::remove_var("OLIVE_THREADS");
}
