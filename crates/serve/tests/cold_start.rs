//! Artifact cold-start: a worker pointed at an `--artifact-dir` snapshot
//! store must serve `/v1/eval` and `/v1/generate` bodies **byte-identical**
//! to a worker that quantizes in-process — and loading the snapshot must be
//! much cheaper than the preparation it replaces (the whole point of
//! `olive-prepare`).

use olive_api::{JsonValue, ModelArtifact};
use olive_serve::client;
use olive_serve::{EvalRequest, GenerateRequest, ServeConfig, Server};
use std::path::PathBuf;
use std::time::Instant;

const EVAL_BODY: &str = r#"{"schemes": ["fp32", "olive-4bit", "uniform:4"], "batches": 2, "oversample": 2, "seed": 17}"#;
const GEN_BODY: &str =
    r#"{"scheme": "olive-4bit", "prompt_tokens": 5, "max_new_tokens": 4, "seed": 17}"#;

/// A fresh per-test snapshot directory under the target-adjacent temp dir.
fn snapshot_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("olive-cold-start-{tag}-{}", std::process::id()));
    // Stale contents from a previous crashed run would mask a miss.
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("snapshot dir must be creatable");
    dir
}

fn decode_eval(body: &str) -> EvalRequest {
    EvalRequest::decode(&JsonValue::parse(body).unwrap()).expect("eval body must decode")
}

fn decode_gen(body: &str) -> GenerateRequest {
    GenerateRequest::decode(&JsonValue::parse(body).unwrap()).expect("generate body must decode")
}

fn healthz_gauge(server: &Server, key: &str) -> u64 {
    let response = client::get(server.local_addr(), "/healthz").unwrap();
    JsonValue::parse(&response.body)
        .unwrap()
        .get(key)
        .and_then(JsonValue::as_u64)
        .unwrap_or_else(|| panic!("healthz must expose {key}"))
}

#[test]
fn artifact_backed_worker_serves_identical_bytes() {
    let dir = snapshot_dir("eval");

    // Offline phase — what `olive-prepare` does: prepare once, snapshot.
    let eval_req = decode_eval(EVAL_BODY);
    ModelArtifact::eval(
        eval_req.prepared_key(),
        eval_req.family.label(),
        &eval_req.pipeline().prepare(),
    )
    .with_students(&eval_req.schemes)
    .save(&dir)
    .expect("snapshot must save");

    let gen_req = decode_gen(GEN_BODY);
    ModelArtifact::gen(
        gen_req.prepared_key(),
        gen_req.family.label(),
        &gen_req.pipeline().prepare_generation(gen_req.prompt_tokens),
    )
    .with_students(std::slice::from_ref(&gen_req.scheme))
    .save(&dir)
    .expect("gen snapshot must save");

    // Reference worker: quantizes in-process, no artifact store.
    let warm = Server::start(ServeConfig::default()).expect("warm server must start");
    let warm_eval = client::post_json(warm.local_addr(), "/v1/eval", EVAL_BODY).unwrap();
    let warm_gen = client::post_json(warm.local_addr(), "/v1/generate", GEN_BODY).unwrap();
    assert_eq!(warm_eval.status, 200, "{}", warm_eval.body);
    assert_eq!(warm_gen.status, 200, "{}", warm_gen.body);
    assert_eq!(healthz_gauge(&warm, "cached_artifacts"), 0);
    warm.shutdown();

    // Cold-start worker: same requests, but preparation comes off disk.
    let cold = Server::start(ServeConfig {
        artifact_dir: Some(dir.clone()),
        ..ServeConfig::default()
    })
    .expect("cold server must start");
    let cold_eval = client::post_json(cold.local_addr(), "/v1/eval", EVAL_BODY).unwrap();
    let cold_gen = client::post_json(cold.local_addr(), "/v1/generate", GEN_BODY).unwrap();
    assert_eq!(cold_eval.status, 200, "{}", cold_eval.body);

    // The contract: the artifact store can never change a served byte.
    assert_eq!(
        cold_eval.body, warm_eval.body,
        "cold-start /v1/eval bytes must match in-process preparation"
    );
    assert_eq!(
        cold_gen.body, warm_gen.body,
        "cold-start /v1/generate bytes must match in-process preparation"
    );

    // Both snapshots were actually consulted (not silently re-prepared).
    assert_eq!(healthz_gauge(&cold, "cached_artifacts"), 2);
    cold.shutdown();

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_load_is_much_cheaper_than_preparation() {
    let dir = snapshot_dir("timing");
    // A heavier calibration workload than the byte-identity tests use:
    // preparation cost scales with batches × oversample while the snapshot
    // (teacher + calibration summary) barely grows, so the measured ratio
    // reflects the deployment case instead of a floor-sized toy.
    let req = decode_eval(
        r#"{"schemes": ["fp32", "olive-4bit", "uniform:4"], "batches": 6, "oversample": 4, "seed": 17}"#,
    );

    let prepare_started = Instant::now();
    let prepared = req.pipeline().prepare();
    let prepare_time = prepare_started.elapsed();

    let path = ModelArtifact::eval(req.prepared_key(), req.family.label(), &prepared)
        .with_students(&req.schemes)
        .save(&dir)
        .expect("snapshot must save");

    let load_started = Instant::now();
    let loaded = ModelArtifact::load(&path).expect("snapshot must reload");
    let load_time = load_started.elapsed();
    assert_eq!(loaded.key, req.prepared_key());

    // Loading replaces teacher generation + calibration; it must win by a
    // wide margin for `--artifact-dir` to be worth deploying. 4× is a
    // deliberately loose floor (observed >20×) so CI noise can't flake it.
    assert!(
        load_time * 4 < prepare_time,
        "cold-start load ({load_time:?}) must be far cheaper than preparation ({prepare_time:?})"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_snapshot_falls_back_to_in_process_preparation() {
    let dir = snapshot_dir("corrupt");
    let req = decode_eval(EVAL_BODY);

    // Write a valid snapshot, then corrupt one payload byte on disk.
    let path = ModelArtifact::eval(
        req.prepared_key(),
        req.family.label(),
        &req.pipeline().prepare(),
    )
    .with_students(&req.schemes)
    .save(&dir)
    .expect("snapshot must save");
    let mut bytes = std::fs::read(&path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();

    // The worker must reject the snapshot, prepare in-process, and still
    // serve the canonical bytes.
    let reference = Server::start(ServeConfig::default()).expect("reference server must start");
    let expected = client::post_json(reference.local_addr(), "/v1/eval", EVAL_BODY).unwrap();
    reference.shutdown();

    let server = Server::start(ServeConfig {
        artifact_dir: Some(dir.clone()),
        ..ServeConfig::default()
    })
    .expect("server must start");
    let served = client::post_json(server.local_addr(), "/v1/eval", EVAL_BODY).unwrap();
    assert_eq!(served.status, 200, "{}", served.body);
    assert_eq!(served.body, expected.body);
    assert_eq!(
        healthz_gauge(&server, "cached_artifacts"),
        0,
        "a rejected snapshot must not count as a cold-start"
    );
    server.shutdown();

    let _ = std::fs::remove_dir_all(&dir);
}
