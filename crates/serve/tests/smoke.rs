//! Process-level smoke test: spawns the real `olive-serve` binary on an
//! ephemeral port, drives it with the std-only client (`/healthz`, one
//! `/v1/eval`, one streamed `/v1/generate` on a kept-alive connection),
//! asserts 200s with valid JSON, and verifies a clean `POST /shutdown` exit
//! issued on that same still-open connection. This is exactly what
//! `scripts/serve_smoke.sh` (and the CI smoke job) runs.

use olive_api::JsonValue;
use olive_serve::client::{self, Connection};
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

struct ServerProcess {
    child: Child,
    addr: SocketAddr,
}

impl ServerProcess {
    fn spawn() -> ServerProcess {
        let mut child = Command::new(env!("CARGO_BIN_EXE_olive-serve"))
            .args(["--port", "0", "--allow-shutdown", "--max-wait-ms", "1"])
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawning olive-serve");
        // Scrape "olive-serve listening on http://127.0.0.1:PORT".
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = BufReader::new(stdout).lines();
        let line = lines
            .next()
            .expect("olive-serve must print its URL")
            .expect("readable stdout");
        let url = line
            .rsplit(' ')
            .next()
            .and_then(|u| u.strip_prefix("http://"))
            .unwrap_or_else(|| panic!("unexpected startup line: {line}"));
        let addr: SocketAddr = url.parse().expect("parseable server address");
        ServerProcess { child, addr }
    }
}

impl Drop for ServerProcess {
    fn drop(&mut self) {
        // Only reached on test failure (the happy path waits on /shutdown).
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[test]
fn spawned_server_answers_and_shuts_down_cleanly() {
    let mut server = ServerProcess::spawn();

    let health = client::get(server.addr, "/healthz").expect("/healthz request");
    assert_eq!(health.status, 200);
    let v = JsonValue::parse(&health.body).expect("healthz must return valid JSON");
    assert_eq!(v.get("status").and_then(JsonValue::as_str), Some("ok"));

    let eval = client::post_json(
        server.addr,
        "/v1/eval",
        r#"{"scheme": "olive-4bit", "batches": 2, "oversample": 2}"#,
    )
    .expect("/v1/eval request");
    assert_eq!(eval.status, 200, "{}", eval.body);
    let v = JsonValue::parse(&eval.body).expect("eval must return valid JSON");
    let results = v
        .get("results")
        .and_then(JsonValue::as_array)
        .expect("results array");
    assert_eq!(
        results[0].get("spec").and_then(JsonValue::as_str),
        Some("olive-4bit")
    );

    // Streamed generation over a kept-alive connection; the same connection
    // then triggers shutdown, proving clean teardown mid-keep-alive.
    let mut connection = Connection::open(server.addr).expect("keep-alive connect");
    let generate = connection
        .request(
            "POST",
            "/v1/generate",
            Some(r#"{"scheme": "olive-4bit", "prompt_tokens": 4, "max_new_tokens": 4}"#),
        )
        .expect("/v1/generate request");
    assert_eq!(generate.status, 200, "{}", generate.body);
    let chunks = generate.chunks.as_ref().expect("generate must stream");
    assert!(chunks.len() > 2, "expected a multi-chunk stream");
    let v = JsonValue::parse(&generate.body).expect("generate must stream valid JSON");
    assert_eq!(
        v.get("results")
            .and_then(JsonValue::as_array)
            .and_then(|r| r[0].get("steps"))
            .and_then(JsonValue::as_array)
            .map(<[_]>::len),
        Some(4)
    );

    let bye = connection
        .request("POST", "/shutdown", Some(""))
        .expect("/shutdown request");
    assert_eq!(bye.status, 200);

    // The process must exit 0 on its own (drain + join, no kill) promptly.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match server.child.try_wait().expect("child status") {
            Some(status) => {
                assert!(status.success(), "server exited with {status}");
                break;
            }
            None if Instant::now() > deadline => panic!("server did not exit after /shutdown"),
            None => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}
