//! End-to-end endpoint behaviour over real sockets: routing, status codes,
//! JSON error bodies, keep-alive reuse, chunked streaming and the registry
//! listing — plus raw-socket regression tests for the request-smuggling
//! guards (duplicate/non-canonical `Content-Length`).

use olive_api::{JsonValue, Scheme};
use olive_serve::client::{self, Connection};
use olive_serve::{ServeConfig, Server};
use std::io::{Read, Write};

fn start() -> Server {
    Server::start(ServeConfig::default()).expect("server must bind an ephemeral port")
}

/// Writes raw bytes to the server and returns everything it answers until it
/// closes the connection — for requests the well-behaved client library
/// cannot (and should not) produce.
fn raw_exchange(server: &Server, raw: &str) -> String {
    let mut stream = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();
    stream.write_all(raw.as_bytes()).expect("write");
    let mut response = String::new();
    let _ = stream.read_to_string(&mut response);
    response
}

#[test]
fn healthz_reports_ok_and_counters() {
    let server = start();
    let response = client::get(server.local_addr(), "/healthz").unwrap();
    assert_eq!(response.status, 200);
    let v = JsonValue::parse(&response.body).expect("healthz must be valid JSON");
    assert_eq!(v.get("status").and_then(JsonValue::as_str), Some("ok"));
    assert!(v
        .get("requests_served")
        .and_then(JsonValue::as_u64)
        .is_some());
    assert!(v.get("queue_depth").is_some());
    server.shutdown();
}

#[test]
fn schemes_endpoint_lists_the_registry() {
    let server = start();
    let response = client::get(server.local_addr(), "/v1/schemes").unwrap();
    assert_eq!(response.status, 200);
    let v = JsonValue::parse(&response.body).unwrap();
    let listed = v.get("schemes").and_then(JsonValue::as_array).unwrap();
    assert_eq!(listed.len(), Scheme::all().len());
    server.shutdown();
}

#[test]
fn eval_runs_a_scheme_comparison() {
    let server = start();
    let response = client::post_json(
        server.local_addr(),
        "/v1/eval",
        r#"{"schemes": ["fp32", "olive-4bit"], "batches": 2, "oversample": 2, "seed": 9}"#,
    )
    .unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    let v = JsonValue::parse(&response.body).unwrap();
    assert_eq!(v.get("seed").and_then(JsonValue::as_u64), Some(9));
    let results = v.get("results").and_then(JsonValue::as_array).unwrap();
    assert_eq!(results.len(), 2);
    // fp32 is lossless through the whole serving stack.
    assert_eq!(
        results[0].get("fidelity").and_then(JsonValue::as_f64),
        Some(1.0)
    );
    server.shutdown();
}

#[test]
fn quantize_round_trips_a_matrix() {
    let server = start();
    let response = client::post_json(
        server.local_addr(),
        "/v1/quantize",
        r#"{"scheme": "olive-8bit", "rows": 2, "cols": 8,
            "data": [0.1, -0.2, 0.3, 12.5, 0.0, 0.5, -0.1, 0.2,
                     0.4, -0.3, 0.2, 0.1, -12.0, 0.3, 0.1, -0.4]}"#,
    )
    .unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    let v = JsonValue::parse(&response.body).unwrap();
    assert_eq!(v.get("rows").and_then(JsonValue::as_u64), Some(2));
    assert!(v.get("mse").and_then(JsonValue::as_f64).unwrap() < 0.1);
    assert_eq!(
        v.get("values")
            .and_then(JsonValue::as_array)
            .map(<[_]>::len),
        Some(16)
    );
    server.shutdown();
}

#[test]
fn protocol_errors_map_to_specific_statuses() {
    let server = start();
    let addr = server.local_addr();
    // 404 with a helpful listing.
    let response = client::get(addr, "/nope").unwrap();
    assert_eq!(response.status, 404);
    assert!(response.body.contains("/v1/eval"), "{}", response.body);
    // 405 with Allow.
    let response = client::post_json(addr, "/healthz", "{}").unwrap();
    assert_eq!(response.status, 405);
    assert_eq!(response.header("allow"), Some("GET"));
    let response = client::get(addr, "/v1/eval").unwrap();
    assert_eq!(response.status, 405);
    assert_eq!(response.header("allow"), Some("POST"));
    // 400s: no body, non-JSON body, schema violations.
    let response = client::post_json(addr, "/v1/eval", "").unwrap();
    assert_eq!(response.status, 400);
    let response = client::post_json(addr, "/v1/eval", "not json").unwrap();
    assert_eq!(response.status, 400);
    assert!(response.body.contains("invalid JSON"), "{}", response.body);
    let response = client::post_json(addr, "/v1/eval", r#"{"scheme": "olive-5bit"}"#).unwrap();
    assert_eq!(response.status, 400);
    assert!(response.body.contains("olive-5bit"), "{}", response.body);
    let response = client::post_json(addr, "/v1/eval", r#"{"schemes": ["fp32", "fp32"]}"#).unwrap();
    assert_eq!(response.status, 400);
    assert!(response.body.contains("duplicate"), "{}", response.body);
    // 403 when shutdown is not allowed (the default).
    let response = client::post_json(addr, "/shutdown", "").unwrap();
    assert_eq!(response.status, 403);
    // Every error body is valid JSON in the uniform slug + detail shape,
    // across every endpoint (the wire contract of Response::error).
    let v = JsonValue::parse(&response.body).unwrap();
    assert_eq!(
        v.get("error").and_then(JsonValue::as_str),
        Some("forbidden")
    );
    assert!(v
        .get("detail")
        .and_then(JsonValue::as_str)
        .unwrap()
        .contains("--allow-shutdown"));
    // Pin the exact rendered bytes of a decode failure once: the slug and
    // detail keys, their order, and the message are all load-bearing.
    let bad = client::post_json(addr, "/v1/eval", r#"{"scheme": "fp32", "batchs": 1}"#).unwrap();
    assert_eq!(bad.status, 400);
    assert_eq!(
        bad.body,
        "{\n  \"error\": \"bad_request\",\n  \"detail\": \"unknown field 'batchs' \
         (expected one of: family, size, scheme, schemes, seed, batches, calibration, \
         oversample, weights_only, task)\"\n}\n"
    );
    server.shutdown();
}

#[test]
fn generate_streams_a_chunked_decode_trace() {
    let server = start();
    let mut connection = Connection::open(server.local_addr()).unwrap();
    let response = connection
        .request(
            "POST",
            "/v1/generate",
            Some(r#"{"scheme": "olive-4bit", "prompt_tokens": 4, "max_new_tokens": 5, "seed": 2}"#),
        )
        .unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    // The response really streamed: chunked framing, one chunk per fragment.
    let chunks = response.chunks.as_ref().expect("must be chunked");
    assert_eq!(chunks.len(), 1 + 1 + 5 + 1 + 1, "head/steps/tails");
    let v = JsonValue::parse(&response.body).expect("concatenated chunks must be valid JSON");
    assert_eq!(v.get("seed").and_then(JsonValue::as_u64), Some(2));
    let results = v.get("results").and_then(JsonValue::as_array).unwrap();
    let steps = results[0]
        .get("steps")
        .and_then(JsonValue::as_array)
        .unwrap();
    assert_eq!(steps.len(), 5);
    // The connection survives the chunked response (keep-alive reuse).
    let health = connection.request("GET", "/healthz", None).unwrap();
    assert_eq!(health.status, 200);
    let v = JsonValue::parse(&health.body).unwrap();
    assert_eq!(
        v.get("cached_generators").and_then(JsonValue::as_u64),
        Some(1)
    );
    // Scheduler gauges: the finished stream released its session and pages,
    // and each of its prompt+max_new_tokens-1 = 8 feeds was one tick.
    assert_eq!(
        v.get("decode_sessions").and_then(JsonValue::as_u64),
        Some(0)
    );
    assert_eq!(v.get("kv_pages_used").and_then(JsonValue::as_u64), Some(0));
    assert!(v.get("decode_ticks").and_then(JsonValue::as_u64).unwrap() >= 8);
    assert_eq!(
        v.get("decode_batch_sizes")
            .and_then(|h| h.get("1"))
            .and_then(JsonValue::as_u64),
        Some(8)
    );
    // Bad generation requests still answer as plain 400s.
    let bad = connection
        .request("POST", "/v1/generate", Some(r#"{"schemes": ["fp32"]}"#))
        .unwrap();
    assert_eq!(bad.status, 400);
    assert!(bad.chunks.is_none(), "errors are not chunked");
    assert!(bad.body.contains("unknown field"), "{}", bad.body);
    // fp32 generation agrees with the teacher at every step.
    let fp32 = connection
        .request(
            "POST",
            "/v1/generate",
            Some(r#"{"scheme": "fp32", "prompt_tokens": 4, "max_new_tokens": 4}"#),
        )
        .unwrap();
    let v = JsonValue::parse(&fp32.body).unwrap();
    let results = v.get("results").and_then(JsonValue::as_array).unwrap();
    assert_eq!(
        results[0].get("agreement").and_then(JsonValue::as_f64),
        Some(1.0)
    );
    server.shutdown();
}

#[test]
fn duplicate_or_malformed_content_length_is_rejected_on_the_wire() {
    let server = start();
    // Duplicate Content-Length headers (request-smuggling guard) — identical
    // values, differing values, and differing header-name case.
    for raw in [
        "POST /v1/eval HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\n{}",
        "POST /v1/eval HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 5\r\n\r\n{}",
        "POST /v1/eval HTTP/1.1\r\ncontent-length: 2\r\nCONTENT-Length: 5\r\n\r\n{}",
    ] {
        let response = raw_exchange(&server, raw);
        assert!(
            response.starts_with("HTTP/1.1 400 "),
            "{raw:?} => {response}"
        );
        assert!(response.contains("duplicate Content-Length"), "{response}");
        assert!(
            response.contains("Connection: close"),
            "smuggling attempts must not keep the connection alive: {response}"
        );
    }
    // Sign/whitespace-bearing values must not reach a lenient integer parse.
    for value in ["+2", "2 2", "2,2", "0x2"] {
        let raw = format!("POST /v1/eval HTTP/1.1\r\nContent-Length: {value}\r\n\r\n{{}}");
        let response = raw_exchange(&server, &raw);
        assert!(
            response.starts_with("HTTP/1.1 400 "),
            "CL {value:?} => {response}"
        );
    }
    // Mixed-case single Content-Length still routes normally (read-path
    // lookups are case-insensitive).
    let response = raw_exchange(
        &server,
        "GET /healthz HTTP/1.1\r\ncOnTent-LengTh: 0\r\nConnection: close\r\n\r\n",
    );
    assert!(response.starts_with("HTTP/1.1 200 "), "{response}");
    server.shutdown();
}

#[test]
fn keep_alive_serves_many_requests_on_one_connection() {
    let server = start();
    let mut connection = Connection::open(server.local_addr()).unwrap();
    for i in 0..5 {
        let response = connection.request("GET", "/healthz", None).unwrap();
        assert_eq!(response.status, 200, "request {i}");
    }
    let response = connection
        .request(
            "POST",
            "/v1/eval",
            Some(r#"{"scheme": "uniform:8", "batches": 1, "oversample": 2}"#),
        )
        .unwrap();
    assert_eq!(response.status, 200);
    // The healthz counters moved.
    let health = connection.request("GET", "/healthz", None).unwrap();
    let v = JsonValue::parse(&health.body).unwrap();
    assert!(
        v.get("requests_served")
            .and_then(JsonValue::as_u64)
            .unwrap()
            >= 1
    );
    assert_eq!(
        v.get("connections_accepted").and_then(JsonValue::as_u64),
        Some(1)
    );
    server.shutdown();
}

#[test]
fn repeated_evals_hit_the_model_cache() {
    let server = start();
    let body = r#"{"scheme": "olive-4bit", "batches": 2, "oversample": 2}"#;
    let first = client::post_json(server.local_addr(), "/v1/eval", body).unwrap();
    let second = client::post_json(server.local_addr(), "/v1/eval", body).unwrap();
    assert_eq!(first.body, second.body, "cached answer must be identical");
    let health = client::get(server.local_addr(), "/healthz").unwrap();
    let v = JsonValue::parse(&health.body).unwrap();
    assert_eq!(v.get("cached_models").and_then(JsonValue::as_u64), Some(1));
    assert_eq!(
        v.get("cached_responses").and_then(JsonValue::as_u64),
        Some(1)
    );
    server.shutdown();
}

/// The keys of a JSON object, in wire order — [`JsonValue::Object`] keeps
/// insertion order, so parsing preserves exactly what the server rendered.
fn object_keys(v: &JsonValue) -> Vec<String> {
    match v {
        JsonValue::Object(entries) => entries.iter().map(|(k, _)| k.clone()).collect(),
        other => panic!("expected a JSON object, got {other:?}"),
    }
}

#[test]
fn response_json_key_order_is_stable() {
    // Byte-identical responses require deterministic key order; a HashMap
    // sneaking into a rendering path (what olive-lint's
    // no-unordered-map-in-output rule guards against) would scramble these.
    let server = start();

    let health = client::get(server.local_addr(), "/healthz").unwrap();
    let v = JsonValue::parse(&health.body).expect("healthz must be valid JSON");
    assert_eq!(
        object_keys(&v),
        [
            "status",
            "requests_served",
            "requests_rejected",
            "batches_executed",
            "queue_depth",
            "connections_accepted",
            "cached_models",
            "cached_generators",
            "cached_responses",
            "cached_artifacts",
            "decode_sessions",
            "decode_ticks",
            "kv_pages_used",
            "kv_pages_free",
            "decode_batch_sizes",
        ],
        "/healthz key order must never change"
    );
    // The batch-size histogram is itself an object with ascending
    // numeric-string keys (BTreeMap iteration order) — empty on a fresh
    // server, and always a JSON object, never null.
    assert!(
        matches!(v.get("decode_batch_sizes"), Some(JsonValue::Object(_))),
        "{}",
        health.body
    );

    let body = r#"{"scheme": "olive-4bit", "batches": 1, "oversample": 2}"#;
    let eval = client::post_json(server.local_addr(), "/v1/eval", body).unwrap();
    assert_eq!(eval.status, 200);
    let report = JsonValue::parse(&eval.body).expect("eval report must be valid JSON");
    assert_eq!(
        object_keys(&report),
        [
            "model",
            "task",
            "seed",
            "batches",
            "quantize_activations",
            "gemm",
            "results",
        ],
        "eval report key order must never change"
    );
    let results = match report.get("results") {
        Some(JsonValue::Array(items)) => items,
        other => panic!("expected a results array, got {other:?}"),
    };
    assert_eq!(
        object_keys(&results[0]),
        [
            "spec",
            "name",
            "bits_per_element",
            "compute_bits",
            "activations_quantized",
            "fidelity",
            "agreement",
            "position_agreement",
            "perplexity",
            "wall_time_s",
        ],
        "per-scheme result key order must never change"
    );
    server.shutdown();

    // A second server process answering the same request must produce the
    // same bytes — cache state and key order cannot depend on process
    // history.
    let fresh = start();
    let again = client::post_json(fresh.local_addr(), "/v1/eval", body).unwrap();
    assert_eq!(again.body, eval.body, "responses must be byte-stable");
    fresh.shutdown();
}
