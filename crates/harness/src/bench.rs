//! `std::time`-based micro-benchmark runner (offline replacement for
//! criterion).
//!
//! Each benchmark runs a warmup phase followed by N individually-timed
//! iterations; the suite reports median, p95, min and mean wall time plus
//! element throughput (when declared) as a plain-text
//! [`report::Table`](crate::report::Table). Iteration counts can be overridden
//! with the `OLIVE_BENCH_SAMPLES` and `OLIVE_BENCH_WARMUP` environment
//! variables, e.g. for a quick smoke pass in CI.

use crate::report::{fmt_f, Table};
use std::time::Instant;

pub use std::hint::black_box;

/// Iteration counts for one suite.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Untimed iterations executed first (cache/branch-predictor warmup).
    pub warmup_iters: u32,
    /// Timed iterations; each contributes one sample.
    pub sample_iters: u32,
}

impl BenchConfig {
    /// Reads `OLIVE_BENCH_WARMUP` / `OLIVE_BENCH_SAMPLES`, falling back to
    /// the given counts where unset — the env always wins, so a harness can
    /// stabilise or shrink any suite (including `--quick` ones) externally.
    pub fn from_env_or(warmup_fallback: u32, samples_fallback: u32) -> Self {
        let env_u32 = |key: &str, fallback: u32| {
            std::env::var(key)
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n > 0)
                .unwrap_or(fallback)
        };
        BenchConfig {
            warmup_iters: env_u32("OLIVE_BENCH_WARMUP", warmup_fallback),
            sample_iters: env_u32("OLIVE_BENCH_SAMPLES", samples_fallback),
        }
    }
}

impl Default for BenchConfig {
    /// Defaults (3 warmup / 20 samples), overridable via `OLIVE_BENCH_WARMUP`
    /// and `OLIVE_BENCH_SAMPLES`.
    fn default() -> Self {
        BenchConfig::from_env_or(3, 20)
    }
}

/// The timing samples of one benchmark.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name (one table row).
    pub name: String,
    /// Per-iteration wall times in nanoseconds, in execution order.
    pub samples_ns: Vec<u64>,
    /// Elements processed per iteration, for throughput reporting.
    pub elements: Option<u64>,
}

impl Measurement {
    fn sorted(&self) -> Vec<u64> {
        let mut s = self.samples_ns.clone();
        s.sort_unstable();
        s
    }

    /// Median wall time in nanoseconds (0 when no samples were taken).
    pub fn median_ns(&self) -> u64 {
        let s = self.sorted();
        if s.is_empty() {
            return 0;
        }
        let mid = s.len() / 2;
        if s.len() % 2 == 0 {
            (s[mid - 1] + s[mid]) / 2
        } else {
            s[mid]
        }
    }

    /// 95th-percentile wall time in nanoseconds (nearest-rank).
    pub fn p95_ns(&self) -> u64 {
        let s = self.sorted();
        if s.is_empty() {
            return 0;
        }
        let rank = ((s.len() as f64 * 0.95).ceil() as usize).clamp(1, s.len());
        s[rank - 1]
    }

    /// Fastest iteration in nanoseconds.
    pub fn min_ns(&self) -> u64 {
        self.samples_ns.iter().copied().min().unwrap_or(0)
    }

    /// Mean wall time in nanoseconds.
    pub fn mean_ns(&self) -> u64 {
        if self.samples_ns.is_empty() {
            return 0;
        }
        (self.samples_ns.iter().map(|&n| n as u128).sum::<u128>() / self.samples_ns.len() as u128)
            as u64
    }

    /// Median throughput in elements per second, if `elements` was declared.
    pub fn elements_per_sec(&self) -> Option<f64> {
        let median = self.median_ns();
        match (self.elements, median) {
            (Some(elems), m) if m > 0 => Some(elems as f64 * 1e9 / m as f64),
            _ => None,
        }
    }
}

/// Formats nanoseconds with an adaptive unit (ns / µs / ms / s).
pub fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Formats an elements/second rate with an adaptive SI prefix.
pub fn fmt_rate(elems_per_sec: f64) -> String {
    if elems_per_sec >= 1e9 {
        format!("{} Gelem/s", fmt_f(elems_per_sec / 1e9, 2))
    } else if elems_per_sec >= 1e6 {
        format!("{} Melem/s", fmt_f(elems_per_sec / 1e6, 2))
    } else if elems_per_sec >= 1e3 {
        format!("{} Kelem/s", fmt_f(elems_per_sec / 1e3, 2))
    } else {
        format!("{} elem/s", fmt_f(elems_per_sec, 2))
    }
}

/// A named collection of benchmarks sharing one [`BenchConfig`].
///
/// ```
/// use olive_harness::bench::{black_box, BenchSuite};
///
/// let mut suite = BenchSuite::new("example");
/// suite.bench_with_elements("sum_range", 1000, || black_box((0..1000u64).sum::<u64>()));
/// assert!(suite.render().contains("sum_range"));
/// ```
#[derive(Debug)]
pub struct BenchSuite {
    title: String,
    config: BenchConfig,
    measurements: Vec<Measurement>,
}

impl BenchSuite {
    /// Creates a suite with the environment-aware default configuration.
    pub fn new(title: &str) -> Self {
        BenchSuite {
            title: title.to_string(),
            config: BenchConfig::default(),
            measurements: Vec::new(),
        }
    }

    /// Creates a suite with an explicit configuration.
    pub fn with_config(title: &str, config: BenchConfig) -> Self {
        BenchSuite {
            title: title.to_string(),
            config,
            measurements: Vec::new(),
        }
    }

    /// Runs one benchmark: warmup, then one timed sample per iteration.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) -> &Measurement {
        self.run(name, None, &mut f)
    }

    /// Like [`bench`](Self::bench), additionally declaring how many elements
    /// one iteration processes so the report includes throughput.
    pub fn bench_with_elements<R>(
        &mut self,
        name: &str,
        elements: u64,
        mut f: impl FnMut() -> R,
    ) -> &Measurement {
        self.run(name, Some(elements), &mut f)
    }

    fn run<R>(
        &mut self,
        name: &str,
        elements: Option<u64>,
        f: &mut impl FnMut() -> R,
    ) -> &Measurement {
        for _ in 0..self.config.warmup_iters {
            black_box(f());
        }
        let mut samples_ns = Vec::with_capacity(self.config.sample_iters as usize);
        for _ in 0..self.config.sample_iters {
            let start = Instant::now();
            black_box(f());
            samples_ns.push(start.elapsed().as_nanos() as u64);
        }
        self.measurements.push(Measurement {
            name: name.to_string(),
            samples_ns,
            elements,
        });
        self.measurements.last().expect("just pushed")
    }

    /// The suite title (used to namespace kernels in recorded results).
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The measurements taken so far, in execution order.
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }

    /// Renders the suite as an aligned plain-text table.
    pub fn render(&self) -> String {
        let mut table = Table::new(vec![
            "benchmark".into(),
            "iters".into(),
            "median".into(),
            "p95".into(),
            "min".into(),
            "mean".into(),
            "throughput".into(),
        ]);
        for m in &self.measurements {
            table.row(vec![
                m.name.clone(),
                m.samples_ns.len().to_string(),
                fmt_ns(m.median_ns()),
                fmt_ns(m.p95_ns()),
                fmt_ns(m.min_ns()),
                fmt_ns(m.mean_ns()),
                m.elements_per_sec()
                    .map(fmt_rate)
                    .unwrap_or_else(|| "-".into()),
            ]);
        }
        table.render()
    }

    /// Prints the rendered table to stdout with a title banner.
    pub fn report(&self) {
        println!("\n== bench: {} ==", self.title);
        println!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixed(samples: &[u64]) -> Measurement {
        Measurement {
            name: "fixed".into(),
            samples_ns: samples.to_vec(),
            elements: Some(1000),
        }
    }

    #[test]
    fn median_and_p95_from_known_samples() {
        let m = fixed(&[10, 20, 30, 40, 100]);
        assert_eq!(m.median_ns(), 30);
        assert_eq!(m.p95_ns(), 100);
        assert_eq!(m.min_ns(), 10);
        assert_eq!(m.mean_ns(), 40);
    }

    #[test]
    fn even_sample_count_takes_middle_average() {
        let m = fixed(&[10, 20, 30, 40]);
        assert_eq!(m.median_ns(), 25);
    }

    #[test]
    fn throughput_uses_median() {
        let m = fixed(&[1_000, 1_000, 1_000]);
        // 1000 elements in 1 µs = 1e9 elem/s.
        assert!((m.elements_per_sec().unwrap() - 1e9).abs() < 1.0);
    }

    #[test]
    fn suite_runs_and_renders() {
        let cfg = BenchConfig {
            warmup_iters: 1,
            sample_iters: 3,
        };
        let mut suite = BenchSuite::with_config("unit", cfg);
        suite.bench_with_elements("count_up", 64, || black_box((0..64u32).sum::<u32>()));
        assert_eq!(suite.measurements().len(), 1);
        assert_eq!(suite.measurements()[0].samples_ns.len(), 3);
        let rendered = suite.render();
        assert!(rendered.contains("count_up"));
        assert!(rendered.contains("elem/s"));
    }

    #[test]
    fn formatters_pick_adaptive_units() {
        assert_eq!(fmt_ns(500), "500 ns");
        assert_eq!(fmt_ns(1_500), "1.50 µs");
        assert_eq!(fmt_ns(2_500_000), "2.50 ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.000 s");
        assert_eq!(fmt_rate(2.5e6), "2.50 Melem/s");
    }
}
