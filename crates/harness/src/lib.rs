//! # olive-harness
//!
//! The in-repo test/bench harness of the OliVe reproduction. This workspace is
//! built and tested **offline** (no crates.io access), so the usual `proptest`
//! and `criterion` dependencies are replaced by this crate:
//!
//! * [`check`] — a deterministic property-testing runner: properties are
//!   checked over seeded pseudo-random cases drawn with [`gen`] strategies on
//!   top of [`olive_tensor::rng::Rng`]; a failing case is reported with its
//!   property name, case index, seed and `Debug`-rendered input so it can be
//!   replayed exactly.
//! * [`gen`] — composable case generators (numeric ranges, vectors, seeds).
//! * [`bench`] — a `std::time`-based micro-benchmark runner with warmup,
//!   per-iteration samples, median/p95/min/mean statistics and optional
//!   element throughput, reported as a plain-text [`report::Table`].
//! * [`report`] — the fixed-width text/CSV table renderer shared with the
//!   figure/table binaries (re-exported as `olive_bench::report`).
//!
//! ## Property example
//!
//! ```
//! use olive_harness::{check, gen, prop_assert};
//!
//! check::check("abs_is_nonnegative", gen::f32_in(-100.0, 100.0), |&x| {
//!     prop_assert!(x.abs() >= 0.0, "abs({x}) was negative");
//!     Ok(())
//! });
//! ```
//!
//! ## Bench example
//!
//! ```
//! use olive_harness::bench::{black_box, BenchSuite};
//!
//! let mut suite = BenchSuite::new("doc_example");
//! suite.bench("sum_1k", || black_box((0..1000u64).sum::<u64>()));
//! let report = suite.render();
//! assert!(report.contains("sum_1k"));
//! ```

pub mod bench;
pub mod check;
pub mod gen;
pub mod report;

pub use bench::{black_box, BenchConfig, BenchSuite, Measurement};
pub use check::{check, check_with, try_check, CheckConfig, Failure};
pub use olive_tensor::rng::Rng;
