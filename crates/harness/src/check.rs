//! Deterministic property-testing runner.
//!
//! A property is a closure `Fn(&T) -> Result<(), String>` checked over a
//! stream of pseudo-random cases produced by a [`gen`](crate::gen)erator. The
//! case stream is fully determined by the configured seed and the property
//! name, so a red run reproduces bit-identically on every machine — no
//! `proptest` persistence files needed. On failure the runner reports the
//! property name, the failing case index, the seed and the `Debug` rendering
//! of the offending input.

use olive_tensor::rng::Rng;

/// Default number of cases per property (matches proptest's 256).
pub const DEFAULT_CASES: usize = 256;

/// Default base seed; mixed with the property name per run.
pub const DEFAULT_SEED: u64 = 0x5EED_CA5E_0011_7E57;

/// Configuration of a property run.
#[derive(Debug, Clone, Copy)]
pub struct CheckConfig {
    /// Number of generated cases to check.
    pub cases: usize,
    /// Base seed; the per-property stream also mixes in the property name.
    pub seed: u64,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            cases: DEFAULT_CASES,
            seed: DEFAULT_SEED,
        }
    }
}

/// A failed property: everything needed to understand and replay the case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Failure {
    /// Name passed to [`check`]/[`try_check`].
    pub property: String,
    /// Zero-based index of the failing case.
    pub case_index: usize,
    /// Total cases the run would have checked.
    pub cases: usize,
    /// Base seed of the run (replay with the same seed + name + index).
    pub seed: u64,
    /// `Debug` rendering of the offending input.
    pub input: String,
    /// The assertion message.
    pub message: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "property '{}' failed at case {}/{} (seed {:#018x})\n  input: {}\n  error: {}",
            self.property, self.case_index, self.cases, self.seed, self.input, self.message
        )
    }
}

/// FNV-1a, used to give each property its own deterministic stream.
fn hash_name(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The generator stream a run with `seed` uses for the property `name`.
///
/// Replays a reported [`Failure`]: draw `case_index + 1` cases from this
/// generator stream and the last one is the offending input.
pub fn case_rng(seed: u64, name: &str) -> Rng {
    Rng::seed_from(seed ^ hash_name(name))
}

/// Checks `property` over `cfg.cases` generated inputs and returns the first
/// failure, if any, instead of panicking.
pub fn try_check<T: std::fmt::Debug>(
    cfg: CheckConfig,
    name: &str,
    mut generate: impl FnMut(&mut Rng) -> T,
    mut property: impl FnMut(&T) -> Result<(), String>,
) -> Result<(), Box<Failure>> {
    let mut rng = case_rng(cfg.seed, name);
    for case_index in 0..cfg.cases {
        let input = generate(&mut rng);
        if let Err(message) = property(&input) {
            return Err(Box::new(Failure {
                property: name.to_string(),
                case_index,
                cases: cfg.cases,
                seed: cfg.seed,
                input: format!("{input:?}"),
                message,
            }));
        }
    }
    Ok(())
}

/// Checks `property` over generated inputs with an explicit configuration,
/// panicking with a replayable report on the first failure.
///
/// # Panics
///
/// Panics if any generated case violates the property.
pub fn check_with<T: std::fmt::Debug>(
    cfg: CheckConfig,
    name: &str,
    generate: impl FnMut(&mut Rng) -> T,
    property: impl FnMut(&T) -> Result<(), String>,
) {
    if let Err(failure) = try_check(cfg, name, generate, property) {
        panic!("{failure}");
    }
}

/// Checks `property` over [`DEFAULT_CASES`] generated inputs.
///
/// # Panics
///
/// Panics if any generated case violates the property.
pub fn check<T: std::fmt::Debug>(
    name: &str,
    generate: impl FnMut(&mut Rng) -> T,
    property: impl FnMut(&T) -> Result<(), String>,
) {
    check_with(CheckConfig::default(), name, generate, property);
}

/// Asserts a condition inside a property, early-returning `Err` with either
/// the stringified condition or a custom formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        // `if cond {} else` rather than `if !cond` so float comparisons don't
        // trip clippy::neg_cmp_op_on_partial_ord at every call site.
        if $cond {
        } else {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($arg:tt)+) => {
        if $cond {
        } else {
            return Err(format!($($arg)+));
        }
    };
}

/// Asserts two expressions are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($arg:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "{} (left: {:?}, right: {:?})",
                format!($($arg)+),
                l,
                r
            ));
        }
    }};
}

/// Asserts two expressions are not equal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
    ($left:expr, $right:expr, $($arg:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!("{} (both: {:?})", format!($($arg)+), l));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn passing_property_is_ok() {
        try_check(
            CheckConfig::default(),
            "square_nonnegative",
            gen::f32_in(-10.0, 10.0),
            |&x| {
                prop_assert!(x * x >= 0.0);
                Ok(())
            },
        )
        .unwrap();
    }

    #[test]
    fn distinct_properties_get_distinct_streams() {
        let record = |name: &str| {
            let mut seen = Vec::new();
            let _ = try_check(
                CheckConfig {
                    cases: 8,
                    ..CheckConfig::default()
                },
                name,
                gen::u64_below(u64::MAX),
                |&x| {
                    seen.push(x);
                    Ok(())
                },
            );
            seen
        };
        assert_ne!(record("prop_a"), record("prop_b"));
    }

    #[test]
    #[should_panic(expected = "always_fails")]
    fn check_panics_with_property_name() {
        check("always_fails", gen::u64_below(4), |_| {
            Err("nope".to_string())
        });
    }
}
