//! Composable case generators.
//!
//! A generator is any `Fn(&mut Rng) -> T`; the free functions here build the
//! generators the workspace's property suites need (numeric ranges and
//! vectors). Compose tuples or richer structures with an ordinary closure:
//!
//! ```
//! use olive_harness::gen;
//! use olive_tensor::rng::Rng;
//!
//! let pair = |rng: &mut Rng| (gen::f32_in(-1.0, 1.0)(rng), gen::u64_below(8)(rng));
//! let mut rng = Rng::seed_from(1);
//! let (x, e) = pair(&mut rng);
//! assert!((-1.0..1.0).contains(&x) && e < 8);
//! ```

use olive_tensor::rng::Rng;

/// Uniform `f32` in the half-open interval `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi`.
pub fn f32_in(lo: f32, hi: f32) -> impl Fn(&mut Rng) -> f32 {
    assert!(lo < hi, "empty range [{lo}, {hi})");
    move |rng| {
        // The f64 draw is strictly below `hi`, but narrowing to f32 rounds to
        // nearest and can land exactly on `hi`; clamp to keep the interval
        // half-open.
        let x = rng.uniform_range(lo as f64, hi as f64) as f32;
        x.min(hi.next_down())
    }
}

/// Uniform `f64` in the half-open interval `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi`.
pub fn f64_in(lo: f64, hi: f64) -> impl Fn(&mut Rng) -> f64 {
    assert!(lo < hi, "empty range [{lo}, {hi})");
    move |rng| rng.uniform_range(lo, hi)
}

/// Uniform `i64` in the closed interval `[lo, hi]`.
///
/// # Panics
///
/// Panics if `lo > hi`.
pub fn i64_in(lo: i64, hi: i64) -> impl Fn(&mut Rng) -> i64 {
    assert!(lo <= hi, "empty range [{lo}, {hi}]");
    // Two's-complement width is exact even when `hi - lo` overflows i64.
    let span = hi.wrapping_sub(lo) as u64;
    move |rng| {
        let offset = match span.checked_add(1) {
            Some(n) => rng.below_u64(n),
            // Full i64 range: every u64 offset is valid.
            None => rng.next_u64(),
        };
        lo.wrapping_add(offset as i64)
    }
}

/// Uniform `i32` in the closed interval `[lo, hi]`.
///
/// # Panics
///
/// Panics if `lo > hi`.
pub fn i32_in(lo: i32, hi: i32) -> impl Fn(&mut Rng) -> i32 {
    let inner = i64_in(lo as i64, hi as i64);
    move |rng| inner(rng) as i32
}

/// Uniform `u64` in `[0, n)`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn u64_below(n: u64) -> impl Fn(&mut Rng) -> u64 {
    assert!(n > 0, "empty range [0, 0)");
    move |rng| rng.below_u64(n)
}

/// Uniform `u32` in `[0, n)`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn u32_below(n: u32) -> impl Fn(&mut Rng) -> u32 {
    let inner = u64_below(n as u64);
    move |rng| inner(rng) as u32
}

/// A vector whose length is uniform in `[min_len, max_len]` and whose elements
/// are drawn from `elem`.
///
/// # Panics
///
/// Panics if `min_len > max_len`.
pub fn vec_of<T>(
    elem: impl Fn(&mut Rng) -> T,
    min_len: usize,
    max_len: usize,
) -> impl Fn(&mut Rng) -> Vec<T> {
    assert!(min_len <= max_len, "empty range [{min_len}, {max_len}]");
    move |rng| {
        let len = min_len + rng.below(max_len - min_len + 1);
        (0..len).map(|_| elem(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = Rng::seed_from(1);
        for _ in 0..1000 {
            let x = f32_in(-3.0, 5.0)(&mut rng);
            assert!((-3.0..5.0).contains(&x));
            let i = i32_in(-127, 127)(&mut rng);
            assert!((-127..=127).contains(&i));
            let u = u64_below(500)(&mut rng);
            assert!(u < 500);
        }
    }

    #[test]
    fn i64_in_covers_both_endpoints() {
        let mut rng = Rng::seed_from(2);
        let g = i64_in(0, 1);
        let mut seen = [false; 2];
        for _ in 0..200 {
            seen[g(&mut rng) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn vec_of_respects_length_range() {
        let mut rng = Rng::seed_from(3);
        let g = vec_of(f32_in(0.0, 1.0), 16, 200);
        for _ in 0..100 {
            let v = g(&mut rng);
            assert!((16..=200).contains(&v.len()));
        }
    }

    #[test]
    fn i64_in_handles_extreme_ranges() {
        let mut rng = Rng::seed_from(5);
        let full = i64_in(i64::MIN, i64::MAX);
        let (mut neg, mut pos) = (false, false);
        for _ in 0..200 {
            let v = full(&mut rng);
            neg |= v < 0;
            pos |= v > 0;
        }
        assert!(neg && pos, "full-range draws cover both signs");
        let wide = i64_in(-2, i64::MAX);
        for _ in 0..200 {
            assert!(wide(&mut rng) >= -2);
        }
    }

    #[test]
    fn f32_in_never_returns_the_upper_bound() {
        let mut rng = Rng::seed_from(6);
        // A one-ULP-wide interval forces any upward rounding to hit `hi`.
        let hi = 1.0f32;
        let g = f32_in(hi.next_down(), hi);
        for _ in 0..1000 {
            assert!(g(&mut rng) < hi);
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let g = vec_of(f32_in(-1.0, 1.0), 4, 8);
        let a = g(&mut Rng::seed_from(42));
        let b = g(&mut Rng::seed_from(42));
        assert_eq!(a, b);
    }
}
