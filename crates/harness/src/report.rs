//! Small plain-text table reporting helpers shared by the harness binaries.

/// A simple fixed-width text table printer.
///
/// # Examples
///
/// ```
/// use olive_harness::report::Table;
///
/// let mut t = Table::new(vec!["model".into(), "speedup".into()]);
/// t.row(vec!["BERT-base".into(), "4.5".into()]);
/// let s = t.render();
/// assert!(s.contains("BERT-base"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row (cells are not required to match the header count, but
    /// aligned rendering assumes they do).
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Renders the table as an aligned plain-text string.
    pub fn render(&self) -> String {
        let ncols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain(std::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{:<width$}  ", cell, width = w));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV.
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Prints the table (text form) to stdout, preceded by a title banner.
    pub fn print_with_title(&self, title: &str) {
        println!("\n== {} ==", title);
        println!("{}", self.render());
    }
}

/// Formats a float with a fixed number of decimals.
pub fn fmt_f(value: f64, decimals: usize) -> String {
    format!("{:.*}", decimals, value)
}

/// Formats a ratio as `N.NNx`.
pub fn fmt_x(value: f64) -> String {
    format!("{:.2}x", value)
}

/// Formats a percentage with two decimals.
pub fn fmt_pct(value: f64) -> String {
    format!("{:.2}%", value * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_headers_and_rows() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.row(vec!["1".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains('a') && s.contains('1'));
    }

    #[test]
    fn csv_has_one_line_per_row_plus_header() {
        let mut t = Table::new(vec!["a".into()]);
        t.row(vec!["1".into()]);
        t.row(vec!["2".into()]);
        assert_eq!(t.render_csv().lines().count(), 3);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_x(4.5), "4.50x");
        assert_eq!(fmt_pct(0.25), "25.00%");
    }
}
