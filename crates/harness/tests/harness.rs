//! Integration tests of the harness itself: seeded-generation determinism
//! and failure reporting of a deliberately-failing property.

use olive_harness::bench::{BenchConfig, BenchSuite};
use olive_harness::check::{case_rng, try_check, CheckConfig};
use olive_harness::{gen, prop_assert, Rng};
use std::cell::RefCell;

/// Records every input a run feeds to the property.
fn record_run(cfg: CheckConfig) -> Vec<Vec<f32>> {
    let seen = RefCell::new(Vec::new());
    try_check(
        cfg,
        "determinism_probe",
        gen::vec_of(gen::f32_in(-100.0, 100.0), 1, 32),
        |values| {
            seen.borrow_mut().push(values.clone());
            Ok(())
        },
    )
    .expect("recording property never fails");
    seen.into_inner()
}

#[test]
fn same_seed_produces_identical_cases() {
    let cfg = CheckConfig {
        cases: 64,
        seed: 0xD15E_A5ED,
    };
    let a = record_run(cfg);
    let b = record_run(cfg);
    assert_eq!(a.len(), 64);
    assert_eq!(a, b, "two runs with one seed must generate identical cases");
}

#[test]
fn different_seeds_produce_different_cases() {
    let a = record_run(CheckConfig { cases: 16, seed: 1 });
    let b = record_run(CheckConfig { cases: 16, seed: 2 });
    assert_ne!(a, b);
}

#[test]
fn failing_property_reports_the_offending_input() {
    let cfg = CheckConfig {
        cases: 256,
        seed: 7,
    };
    let failure = try_check(cfg, "no_value_above_half", gen::i64_in(0, 999), |&x| {
        prop_assert!(x < 500, "{} is not below 500", x);
        Ok(())
    })
    .expect_err("a value >= 500 appears in 256 draws from [0, 999]");

    // The offending input is the first generated value >= 500; replay the
    // generator stream to find it and confirm the report names it exactly.
    let mut rng = case_rng(cfg.seed, "no_value_above_half");
    let g = gen::i64_in(0, 999);
    let (expect_index, expect_value) = (0..cfg.cases)
        .map(|i| (i, g(&mut rng)))
        .find(|&(_, v)| v >= 500)
        .expect("stream contains a failing value");

    assert_eq!(failure.property, "no_value_above_half");
    assert_eq!(failure.case_index, expect_index);
    assert_eq!(failure.seed, cfg.seed);
    assert_eq!(failure.input, format!("{expect_value:?}"));
    assert_eq!(failure.message, format!("{expect_value} is not below 500"));
    let report = failure.to_string();
    assert!(report.contains("no_value_above_half"));
    assert!(report.contains(&format!("input: {expect_value}")));
}

#[test]
fn failure_stops_at_first_offending_case() {
    let counted = RefCell::new(0usize);
    let failure = try_check(
        CheckConfig {
            cases: 100,
            seed: 3,
        },
        "third_case_fails",
        |_rng: &mut Rng| *counted.borrow(),
        |_| {
            *counted.borrow_mut() += 1;
            if *counted.borrow() == 3 {
                Err("boom".to_string())
            } else {
                Ok(())
            }
        },
    )
    .expect_err("third case fails");
    assert_eq!(failure.case_index, 2);
    assert_eq!(*counted.borrow(), 3, "no cases run past the failure");
}

#[test]
fn bench_runner_takes_the_configured_samples() {
    let mut suite = BenchSuite::with_config(
        "self_test",
        BenchConfig {
            warmup_iters: 2,
            sample_iters: 7,
        },
    );
    let calls = RefCell::new(0u32);
    suite.bench("counted", || *calls.borrow_mut() += 1);
    assert_eq!(*calls.borrow(), 2 + 7, "warmup + samples calls");
    let m = &suite.measurements()[0];
    assert_eq!(m.samples_ns.len(), 7);
    assert!(m.min_ns() <= m.median_ns() && m.median_ns() <= m.p95_ns());
}
