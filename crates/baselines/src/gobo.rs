//! GOBO (MICRO '20): weight-only outlier-aware quantization with a sparse
//! coordinate list.
//!
//! GOBO splits each *weight* tensor into a small set of outliers, kept at full
//! precision and addressed through a coordinate list, and the remaining "G"
//! (Gaussian) group, quantized to a handful of centroids (3 bits in the
//! configuration the paper compares against). Activations are not quantized
//! and all arithmetic stays FP16 — GOBO only compresses weights in DRAM, which
//! is exactly the architectural limitation OliVe's Fig. 9 exploits.

use olive_core::TensorQuantizer;
use olive_tensor::stats::TensorStats;
use olive_tensor::Tensor;

/// The GOBO weight quantizer.
#[derive(Debug, Clone)]
pub struct GoboQuantizer {
    /// Number of centroid bits for the Gaussian group (paper config: 3 or 4).
    centroid_bits: u32,
    /// Values beyond `outlier_sigma`·σ form the outlier group.
    outlier_sigma: f64,
    /// Lloyd iterations for centroid refinement.
    kmeans_iters: usize,
    name: String,
}

/// Outcome of splitting a tensor into outlier and Gaussian groups.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GoboSplit {
    /// Fraction of elements in the outlier group (kept FP32).
    pub outlier_fraction: f64,
    /// Number of centroids used for the Gaussian group.
    pub centroids: usize,
}

impl GoboQuantizer {
    /// The 3-bit configuration used in the paper's comparison (Tbl. 7).
    pub fn paper_3bit() -> Self {
        Self::new(3, 3.0)
    }

    /// A 4-bit-centroid variant.
    pub fn with_4bit_centroids() -> Self {
        Self::new(4, 3.0)
    }

    /// Creates a GOBO quantizer with `centroid_bits` centroid bits and an
    /// outlier threshold of `outlier_sigma` standard deviations.
    ///
    /// # Panics
    ///
    /// Panics if `centroid_bits` is not in `1..=8`.
    pub fn new(centroid_bits: u32, outlier_sigma: f64) -> Self {
        assert!(
            (1..=8).contains(&centroid_bits),
            "unsupported centroid bits {}",
            centroid_bits
        );
        GoboQuantizer {
            centroid_bits,
            outlier_sigma,
            kmeans_iters: 8,
            name: "GOBO".to_string(),
        }
    }

    /// Splits, quantizes the Gaussian group to centroids, keeps outliers
    /// exactly, and reports the split statistics.
    pub fn quantize_with_split(&self, t: &Tensor) -> (Tensor, GoboSplit) {
        let stats = TensorStats::compute(t);
        let threshold = (stats.mean.abs() + self.outlier_sigma * stats.std) as f32;
        let data = t.data();

        let normals: Vec<f32> = data
            .iter()
            .copied()
            .filter(|x| x.abs() <= threshold)
            .collect();
        let n_outliers = data.len() - normals.len();
        let k = 1usize << self.centroid_bits;

        let centroids = self.fit_centroids(&normals, k);
        let out = t.map(|x| {
            if x.abs() > threshold {
                // Outlier group: stored FP32 via the coordinate list.
                x
            } else {
                nearest(&centroids, x)
            }
        });
        let split = GoboSplit {
            outlier_fraction: if data.is_empty() {
                0.0
            } else {
                n_outliers as f64 / data.len() as f64
            },
            centroids: k,
        };
        (out, split)
    }

    /// Deterministic centroid fitting: quantile-seeded Lloyd iterations.
    fn fit_centroids(&self, values: &[f32], k: usize) -> Vec<f32> {
        if values.is_empty() {
            return vec![0.0];
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // Quantile seeding.
        let mut centroids: Vec<f32> = (0..k)
            .map(|i| {
                let q = (i as f64 + 0.5) / k as f64;
                sorted[((q * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1)]
            })
            .collect();
        centroids.dedup();
        // Lloyd refinement.
        for _ in 0..self.kmeans_iters {
            let mut sums = vec![0.0f64; centroids.len()];
            let mut counts = vec![0usize; centroids.len()];
            for &v in values {
                let idx = nearest_index(&centroids, v);
                sums[idx] += v as f64;
                counts[idx] += 1;
            }
            for i in 0..centroids.len() {
                if counts[i] > 0 {
                    centroids[i] = (sums[i] / counts[i] as f64) as f32;
                }
            }
        }
        centroids
    }

    /// Effective storage bits per weight element, counting the outlier
    /// overhead: each outlier costs 32 bits of payload plus a 32-bit
    /// coordinate entry.
    pub fn effective_bits(&self, outlier_fraction: f64) -> f64 {
        self.centroid_bits as f64 * (1.0 - outlier_fraction) + outlier_fraction * 64.0
    }
}

fn nearest(grid: &[f32], x: f32) -> f32 {
    grid[nearest_index(grid, x)]
}

fn nearest_index(grid: &[f32], x: f32) -> usize {
    let mut best = 0;
    let mut best_err = f32::INFINITY;
    for (i, &g) in grid.iter().enumerate() {
        let e = (x - g).abs();
        if e < best_err {
            best_err = e;
            best = i;
        }
    }
    best
}

impl TensorQuantizer for GoboQuantizer {
    fn name(&self) -> &str {
        &self.name
    }

    fn quantize_dequantize(&self, t: &Tensor) -> Tensor {
        self.quantize_with_split(t).0
    }

    fn bits_per_element(&self) -> f64 {
        self.centroid_bits as f64
    }

    fn compute_bits(&self) -> f64 {
        // GOBO decompresses to FP16 before computation (DRAM-only compression).
        16.0
    }

    fn quantizes_activations(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olive_tensor::rng::Rng;

    fn weight_tensor(n: usize, seed: u64) -> Tensor {
        let mut rng = Rng::seed_from(seed);
        let mut d = vec![0.0f32; n];
        rng.fill_normal(&mut d, 0.0, 0.05);
        for _ in 0..(n / 300).max(1) {
            let i = rng.below(n);
            d[i] = rng.uniform_range(0.5, 2.0) as f32 * if rng.chance(0.5) { 1.0 } else { -1.0 };
        }
        Tensor::from_vec(vec![n], d)
    }

    #[test]
    fn outliers_are_kept_exactly() {
        let t = weight_tensor(4096, 1);
        let (q, split) = GoboQuantizer::paper_3bit().quantize_with_split(&t);
        assert!(split.outlier_fraction > 0.0);
        for i in 0..t.len() {
            if t[i].abs() > 0.4 {
                assert_eq!(q[i], t[i], "outlier at {} was modified", i);
            }
        }
    }

    #[test]
    fn gaussian_group_error_is_small() {
        let t = weight_tensor(4096, 2);
        let (q, _) = GoboQuantizer::paper_3bit().quantize_with_split(&t);
        // 3-bit centroids on a 0.05-σ Gaussian: error well below the variance.
        assert!(t.mse(&q) < (0.05f64 * 0.05) * 0.2, "mse = {}", t.mse(&q));
    }

    #[test]
    fn outlier_fraction_is_small() {
        let t = weight_tensor(8192, 3);
        let (_, split) = GoboQuantizer::paper_3bit().quantize_with_split(&t);
        assert!(split.outlier_fraction < 0.05, "{}", split.outlier_fraction);
        assert_eq!(split.centroids, 8);
    }

    #[test]
    fn more_centroid_bits_reduce_error() {
        let t = weight_tensor(4096, 4);
        let e3 = t.mse(&GoboQuantizer::paper_3bit().quantize_dequantize(&t));
        let e4 = t.mse(&GoboQuantizer::with_4bit_centroids().quantize_dequantize(&t));
        assert!(e4 <= e3);
    }

    #[test]
    fn gobo_is_weight_only_and_computes_fp16() {
        let g = GoboQuantizer::paper_3bit();
        assert!(!g.quantizes_activations());
        assert_eq!(g.compute_bits(), 16.0);
        assert_eq!(g.bits_per_element(), 3.0);
    }

    #[test]
    fn effective_bits_accounts_for_coordinate_list() {
        let g = GoboQuantizer::paper_3bit();
        assert!(g.effective_bits(0.0) == 3.0);
        assert!(g.effective_bits(0.01) > 3.0);
    }

    #[test]
    fn constant_tensor_round_trips() {
        let t = Tensor::full(vec![128], 0.25);
        let (q, _) = GoboQuantizer::paper_3bit().quantize_with_split(&t);
        for i in 0..t.len() {
            assert!((q[i] - 0.25).abs() < 1e-6);
        }
    }
}
