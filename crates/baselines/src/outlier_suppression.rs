//! Outlier Suppression (NeurIPS '22), approximated as calibrated clipping PTQ.
//!
//! The original method migrates the LayerNorm scaling factor γ into the next
//! layer and then clips the (now milder) outliers with a token-wise calibrated
//! threshold before uniform quantization. Without real pretrained checkpoints
//! the γ-migration step has nothing to migrate, so this reproduction keeps the
//! part that determines its quantization behaviour: an MSE-calibrated clipping
//! threshold followed by uniform quantization at 4 or 6 bits. The paper
//! compares against its 4-bit QAT and 6-bit PTQ numbers (Tbl. 6, Tbl. 8); here
//! both appear as PTQ variants, which is documented as an approximation in
//! DESIGN.md.

use olive_core::TensorQuantizer;
use olive_tensor::stats::TensorStats;
use olive_tensor::Tensor;

/// Clipping-plus-uniform-quantization in the spirit of Outlier Suppression.
#[derive(Debug, Clone)]
pub struct OutlierSuppressionQuantizer {
    bits: u32,
    /// Candidate clip thresholds as multiples of σ.
    clip_candidates: Vec<f64>,
    name: String,
}

impl OutlierSuppressionQuantizer {
    /// The 6-bit PTQ configuration reported in the paper's tables.
    pub fn ptq_6bit() -> Self {
        Self::new(6)
    }

    /// The 4-bit configuration (the paper reports this as QAT; we evaluate the
    /// same clipping scheme under PTQ, which can only be weaker).
    pub fn bits4() -> Self {
        Self::new(4)
    }

    /// Creates an Outlier-Suppression-style quantizer at the given width.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not in `2..=8`.
    pub fn new(bits: u32) -> Self {
        assert!((2..=8).contains(&bits), "unsupported bit width {}", bits);
        OutlierSuppressionQuantizer {
            bits,
            clip_candidates: vec![2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0, 48.0, 64.0],
            name: format!("OS-{}bit", bits),
        }
    }

    fn qmax(&self) -> f32 {
        ((1i64 << (self.bits - 1)) - 1) as f32
    }

    /// Quantize/dequantize with clipping at `clip` followed by uniform
    /// quantization of the clipped range.
    pub fn fake_quant_with_clip(&self, t: &Tensor, clip: f32) -> Tensor {
        let qmax = self.qmax();
        let scale = (clip / qmax).max(f32::MIN_POSITIVE);
        t.map(|x| {
            let c = x.clamp(-clip, clip);
            (c / scale).round().clamp(-qmax, qmax) * scale
        })
    }

    /// MSE-calibrated clip threshold (in σ units, converted to a value).
    pub fn select_clip(&self, t: &Tensor) -> f32 {
        let stats = TensorStats::compute(t);
        if stats.std == 0.0 {
            return stats.max_abs.max(1e-12) as f32;
        }
        let mut best_clip = stats.max_abs as f32;
        let mut best_mse = f64::INFINITY;
        for &k in &self.clip_candidates {
            let clip = ((k * stats.std) as f32).min(stats.max_abs as f32);
            if clip <= 0.0 {
                continue;
            }
            let deq = self.fake_quant_with_clip(t, clip);
            let mse = t.mse(&deq);
            if mse < best_mse {
                best_mse = mse;
                best_clip = clip;
            }
        }
        best_clip
    }
}

impl TensorQuantizer for OutlierSuppressionQuantizer {
    fn name(&self) -> &str {
        &self.name
    }

    fn quantize_dequantize(&self, t: &Tensor) -> Tensor {
        let clip = self.select_clip(t);
        self.fake_quant_with_clip(t, clip)
    }

    fn bits_per_element(&self) -> f64 {
        self.bits as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olive_core::OliveQuantizer;
    use olive_tensor::rng::Rng;

    fn with_outliers(n: usize, seed: u64) -> Tensor {
        let mut rng = Rng::seed_from(seed);
        let mut d = vec![0.0f32; n];
        rng.fill_normal(&mut d, 0.0, 1.0);
        for _ in 0..(n / 120).max(1) {
            let i = rng.below(n);
            d[i] = rng.uniform_range(25.0, 100.0) as f32 * if rng.chance(0.5) { 1.0 } else { -1.0 };
        }
        Tensor::from_vec(vec![n], d)
    }

    #[test]
    fn six_bit_beats_four_bit() {
        let t = with_outliers(4096, 1);
        let e6 = t.mse(&OutlierSuppressionQuantizer::ptq_6bit().quantize_dequantize(&t));
        let e4 = t.mse(&OutlierSuppressionQuantizer::bits4().quantize_dequantize(&t));
        assert!(e6 < e4);
    }

    #[test]
    fn olive_4bit_beats_os_6bit_on_outlier_tensors() {
        // The paper's headline accuracy claim: OliVe 4-bit PTQ outperforms
        // Outlier Suppression 6-bit PTQ. At the tensor-MSE level the same
        // ordering must hold on outlier-heavy tensors.
        let t = with_outliers(8192, 2);
        let olive = OliveQuantizer::int4().quantize_dequantize(&t);
        let os6 = OutlierSuppressionQuantizer::ptq_6bit().quantize_dequantize(&t);
        assert!(
            t.mse(&olive) < t.mse(&os6),
            "olive {} vs os6 {}",
            t.mse(&olive),
            t.mse(&os6)
        );
    }

    #[test]
    fn clip_selection_prefers_clipping_over_full_range() {
        let t = with_outliers(4096, 3);
        let q = OutlierSuppressionQuantizer::bits4();
        let clip = q.select_clip(&t);
        assert!(clip < t.max_abs(), "clip {} vs max {}", clip, t.max_abs());
    }

    #[test]
    fn clean_gaussian_is_quantized_accurately() {
        let mut rng = Rng::seed_from(4);
        let mut d = vec![0.0f32; 4096];
        rng.fill_normal(&mut d, 0.0, 1.0);
        let t = Tensor::from_vec(vec![4096], d);
        let q = OutlierSuppressionQuantizer::ptq_6bit().quantize_dequantize(&t);
        assert!(t.mse(&q) < 1e-2);
    }

    #[test]
    fn constant_tensor_is_handled() {
        let t = Tensor::full(vec![16], 3.0);
        let q = OutlierSuppressionQuantizer::bits4().quantize_dequantize(&t);
        for i in 0..q.len() {
            assert!((q[i] - 3.0).abs() < 0.2);
        }
    }

    #[test]
    fn names_match_width() {
        assert_eq!(OutlierSuppressionQuantizer::ptq_6bit().name(), "OS-6bit");
        assert_eq!(OutlierSuppressionQuantizer::bits4().bits_per_element(), 4.0);
    }
}
