//! AdaptivFloat (DAC '20): an 8-bit float with a per-tensor exponent bias.
//!
//! AdaptivFloat shifts the exponent range of a small float so that its maximum
//! representable value matches the tensor's maximum — one shared bias per
//! tensor, selected from the data. It adapts to *dynamic range* but not to the
//! bimodal normal/outlier structure: with a handful of 100σ outliers the whole
//! tensor's resolution is stretched to cover them. The paper compares against
//! the 8-bit configuration (Fig. 10); it does not support mixed precision.

use olive_core::TensorQuantizer;
use olive_tensor::Tensor;

/// The AdaptivFloat quantizer (sign + exponent + mantissa with tensor-wise
/// exponent bias).
#[derive(Debug, Clone)]
pub struct AdaptivFloatQuantizer {
    exponent_bits: u32,
    mantissa_bits: u32,
    name: String,
}

impl AdaptivFloatQuantizer {
    /// The 8-bit configuration used in the paper's accelerator comparison
    /// (1 sign + 4 exponent + 3 mantissa bits).
    pub fn paper_8bit() -> Self {
        Self::new(4, 3)
    }

    /// A 4-bit configuration (1 sign + 2 exponent + 1 mantissa bits), useful
    /// for ablations.
    pub fn bits4() -> Self {
        Self::new(2, 1)
    }

    /// Creates an AdaptivFloat quantizer with the given field widths.
    ///
    /// # Panics
    ///
    /// Panics if the total width exceeds 16 bits or the exponent field is zero.
    pub fn new(exponent_bits: u32, mantissa_bits: u32) -> Self {
        assert!(exponent_bits >= 1, "AdaptivFloat needs an exponent field");
        assert!(1 + exponent_bits + mantissa_bits <= 16, "too wide");
        AdaptivFloatQuantizer {
            exponent_bits,
            mantissa_bits,
            name: format!("AdaFloat-{}bit", 1 + exponent_bits + mantissa_bits),
        }
    }

    /// Total bit width.
    pub fn bits(&self) -> u32 {
        1 + self.exponent_bits + self.mantissa_bits
    }

    /// Selects the per-tensor exponent bias so the format's maximum matches the
    /// tensor's maximum absolute value (the AdaptivFloat calibration rule).
    pub fn select_bias(&self, t: &Tensor) -> i32 {
        let max_abs = t.max_abs();
        if max_abs == 0.0 {
            return 0;
        }
        let max_exp_field = (1i32 << self.exponent_bits) - 1;
        // Largest mantissa multiplier is ~2.0; we want
        // 2^ (max_exp_field + bias + 1) ≈ max_abs.
        (max_abs.log2().ceil() as i32) - max_exp_field - 1
    }

    /// Quantize/dequantize a single value given the tensor bias.
    pub fn fake_quant_value(&self, x: f32, bias: i32) -> f32 {
        if x == 0.0 {
            return 0.0;
        }
        let sign = x.signum();
        let mag = x.abs();
        let max_exp_field = (1i32 << self.exponent_bits) - 1;
        let max_val =
            (2.0 - 0.5f32.powi(self.mantissa_bits as i32)) * 2f32.powi(max_exp_field + bias);
        let min_val = 2f32.powi(bias);
        if mag >= max_val {
            return sign * max_val;
        }
        if mag < min_val * 0.5 {
            return 0.0;
        }
        let mag = mag.max(min_val);
        let exp = mag.log2().floor() as i32;
        let exp_field = (exp - bias).clamp(0, max_exp_field);
        let step = 2f32.powi(exp_field + bias - self.mantissa_bits as i32);
        let q = (mag / step).round() * step;
        sign * q.min(max_val)
    }
}

impl TensorQuantizer for AdaptivFloatQuantizer {
    fn name(&self) -> &str {
        &self.name
    }

    fn quantize_dequantize(&self, t: &Tensor) -> Tensor {
        let bias = self.select_bias(t);
        t.map(|x| self.fake_quant_value(x, bias))
    }

    fn bits_per_element(&self) -> f64 {
        self.bits() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olive_tensor::rng::Rng;

    fn with_outliers(n: usize, seed: u64) -> Tensor {
        let mut rng = Rng::seed_from(seed);
        let mut d = vec![0.0f32; n];
        rng.fill_normal(&mut d, 0.0, 1.0);
        for _ in 0..(n / 100).max(1) {
            let i = rng.below(n);
            d[i] = rng.uniform_range(20.0, 90.0) as f32 * if rng.chance(0.5) { 1.0 } else { -1.0 };
        }
        Tensor::from_vec(vec![n], d)
    }

    #[test]
    fn eight_bit_error_is_moderate() {
        let t = with_outliers(4096, 1);
        let q = AdaptivFloatQuantizer::paper_8bit().quantize_dequantize(&t);
        assert!(t.mse(&q) < 0.05, "mse = {}", t.mse(&q));
    }

    #[test]
    fn four_bit_is_much_worse_than_eight_bit() {
        let t = with_outliers(4096, 2);
        let e8 = t.mse(&AdaptivFloatQuantizer::paper_8bit().quantize_dequantize(&t));
        let e4 = t.mse(&AdaptivFloatQuantizer::bits4().quantize_dequantize(&t));
        assert!(e4 > e8);
    }

    #[test]
    fn max_value_is_representable_after_bias_selection() {
        let t = with_outliers(4096, 3);
        let q = AdaptivFloatQuantizer::paper_8bit();
        let bias = q.select_bias(&t);
        let max = t.max_abs();
        let rel = (q.fake_quant_value(max, bias) - max).abs() / max;
        assert!(rel < 0.15, "rel = {}", rel);
    }

    #[test]
    fn zero_maps_to_zero() {
        let q = AdaptivFloatQuantizer::paper_8bit();
        assert_eq!(q.fake_quant_value(0.0, 0), 0.0);
    }

    #[test]
    fn sign_is_preserved() {
        let q = AdaptivFloatQuantizer::paper_8bit();
        assert!(q.fake_quant_value(-3.7, -4) < 0.0);
    }

    #[test]
    fn name_and_bits() {
        let q = AdaptivFloatQuantizer::paper_8bit();
        assert_eq!(q.bits(), 8);
        assert_eq!(q.name(), "AdaFloat-8bit");
    }
}
