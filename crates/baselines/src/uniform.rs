//! Symmetric uniform integer quantization (`int4` / `int8`).
//!
//! The plain quantization every accelerator supports natively: a per-tensor
//! scale maps values onto the integer grid `[-(2^(b-1)-1), 2^(b-1)-1]`. It has
//! no special handling of outliers, which is exactly why the paper's Tbl. 9
//! shows `int4` exploding on large language models: either the scale is set by
//! the outliers (destroying the resolution of the 99.9% normal values) or the
//! outliers are clipped (destroying the model).
//!
//! The scale is chosen by an MSE grid search between "clip at 3σ" and "cover
//! the max", the standard PTQ calibration recipe; `Q8BERT` is represented by
//! the 8-bit instance of this quantizer.

use olive_core::TensorQuantizer;
use olive_tensor::stats::TensorStats;
use olive_tensor::Tensor;

/// Symmetric per-tensor uniform quantizer.
#[derive(Debug, Clone)]
pub struct UniformQuantizer {
    bits: u32,
    name: String,
    search_steps: usize,
}

impl UniformQuantizer {
    /// 4-bit symmetric quantizer (`int4`).
    pub fn int4() -> Self {
        Self::new(4)
    }

    /// 8-bit symmetric quantizer (`int8`, also used for the Q8BERT row).
    pub fn int8() -> Self {
        Self::new(8)
    }

    /// Creates a `bits`-wide symmetric quantizer.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not in `2..=16`.
    pub fn new(bits: u32) -> Self {
        assert!((2..=16).contains(&bits), "unsupported bit width {}", bits);
        UniformQuantizer {
            bits,
            name: format!("int{}", bits),
            search_steps: 24,
        }
    }

    /// Largest representable grid magnitude.
    pub fn qmax(&self) -> i64 {
        (1 << (self.bits - 1)) - 1
    }

    /// Quantize/dequantize with an explicit scale.
    pub fn fake_quant_with_scale(&self, t: &Tensor, scale: f32) -> Tensor {
        let qmax = self.qmax() as f32;
        t.map(|x| {
            let q = (x / scale).round().clamp(-qmax, qmax);
            q * scale
        })
    }

    /// MSE-minimizing per-tensor scale between the 3σ clip and max-value
    /// coverage.
    pub fn select_scale(&self, t: &Tensor) -> f32 {
        let stats = TensorStats::compute(t);
        let qmax = self.qmax() as f32;
        if stats.max_abs == 0.0 {
            return 1.0;
        }
        let lo = ((3.0 * stats.std) as f32 / qmax).max(stats.max_abs as f32 / qmax * 1e-3);
        let hi = stats.max_abs as f32 / qmax;
        let (lo, hi) = if lo < hi { (lo, hi) } else { (hi * 0.25, hi) };
        let mut best = hi;
        let mut best_mse = f64::INFINITY;
        for i in 0..self.search_steps {
            let f = i as f32 / (self.search_steps - 1).max(1) as f32;
            let scale = lo + (hi - lo) * f;
            if scale <= 0.0 {
                continue;
            }
            let deq = self.fake_quant_with_scale(t, scale);
            let mse = t.mse(&deq);
            if mse < best_mse {
                best_mse = mse;
                best = scale;
            }
        }
        best
    }
}

impl TensorQuantizer for UniformQuantizer {
    fn name(&self) -> &str {
        &self.name
    }

    fn quantize_dequantize(&self, t: &Tensor) -> Tensor {
        let scale = self.select_scale(t);
        self.fake_quant_with_scale(t, scale)
    }

    fn bits_per_element(&self) -> f64 {
        self.bits as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olive_core::OliveQuantizer;
    use olive_tensor::rng::Rng;

    fn gaussian(n: usize, seed: u64) -> Tensor {
        let mut rng = Rng::seed_from(seed);
        let mut d = vec![0.0f32; n];
        rng.fill_normal(&mut d, 0.0, 1.0);
        Tensor::from_vec(vec![n], d)
    }

    fn with_outliers(n: usize, seed: u64) -> Tensor {
        let mut t = gaussian(n, seed);
        let mut rng = Rng::seed_from(seed ^ 0xABCD);
        for _ in 0..(n / 100).max(1) {
            let i = rng.below(n);
            t[i] = rng.uniform_range(30.0, 120.0) as f32 * if rng.chance(0.5) { 1.0 } else { -1.0 };
        }
        t
    }

    #[test]
    fn int8_is_nearly_lossless_on_gaussians() {
        let t = gaussian(4096, 1);
        let q = UniformQuantizer::int8().quantize_dequantize(&t);
        assert!(t.mse(&q) < 1e-3);
    }

    #[test]
    fn int4_handles_gaussians_but_not_outliers() {
        let clean = gaussian(4096, 2);
        let dirty = with_outliers(4096, 2);
        let q4 = UniformQuantizer::int4();
        let clean_mse = clean.mse(&q4.quantize_dequantize(&clean));
        let dirty_mse = dirty.mse(&q4.quantize_dequantize(&dirty));
        assert!(clean_mse < 0.05, "clean mse {}", clean_mse);
        assert!(dirty_mse > 10.0 * clean_mse, "dirty mse {}", dirty_mse);
    }

    #[test]
    fn olive_beats_int4_on_outlier_tensors() {
        let t = with_outliers(8192, 3);
        let int4 = UniformQuantizer::int4().quantize_dequantize(&t);
        let olive = OliveQuantizer::int4().quantize_dequantize(&t);
        assert!(t.mse(&olive) < t.mse(&int4));
    }

    #[test]
    fn more_bits_means_less_error() {
        let t = with_outliers(4096, 4);
        let e4 = t.mse(&UniformQuantizer::new(4).quantize_dequantize(&t));
        let e6 = t.mse(&UniformQuantizer::new(6).quantize_dequantize(&t));
        let e8 = t.mse(&UniformQuantizer::new(8).quantize_dequantize(&t));
        assert!(e6 < e4);
        assert!(e8 < e6);
    }

    #[test]
    fn zero_tensor_is_exact() {
        let t = Tensor::zeros(vec![64]);
        let q = UniformQuantizer::int4().quantize_dequantize(&t);
        assert_eq!(q, t);
    }

    #[test]
    fn names_and_bits() {
        assert_eq!(UniformQuantizer::int4().name(), "int4");
        assert_eq!(UniformQuantizer::int8().bits_per_element(), 8.0);
    }

    #[test]
    #[should_panic(expected = "unsupported")]
    fn rejects_silly_widths() {
        let _ = UniformQuantizer::new(1);
    }
}
