//! ANT: adaptive numerical data types (MICRO '22), the fixed-length baseline.
//!
//! ANT picks, per tensor, the 4-bit data type whose value distribution best
//! matches the tensor — `int4`, `flint4` (float-int hybrid) or a small float —
//! but every element of the tensor still shares that single type and a single
//! scale. It therefore has no mechanism for the handful of extreme outliers in
//! transformer tensors: either they are clipped or the scale balloons.
//!
//! In the paper's PTQ setting ANT compensates with *mixed precision*: tensors
//! whose 4-bit error is too large fall back to `int8` (Sec. 5.3 observes that
//! about 80% of layers end up as int8). That is exactly what this
//! implementation reproduces: per-tensor 4-bit type selection with an
//! `int8` escalation bound.

use olive_core::TensorQuantizer;
use olive_dtypes::flint4::FLINT4_MAGNITUDES;
use olive_tensor::stats::TensorStats;
use olive_tensor::Tensor;

use crate::uniform::UniformQuantizer;

/// The 4-bit data types ANT chooses between.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AntType {
    /// Uniform signed integers `[-7, 7]`.
    Int4,
    /// The float-int hybrid `{0, ±1, ±2, ±3, ±4, ±6, ±8, ±16}`.
    Flint4,
    /// A 4-bit float (1-4-... approximated by the E2M1 value set with zero),
    /// `{0, ±1, ±1.5, ±2, ±3, ±4, ±6}` scaled — implemented as a power-of-two
    /// heavy grid.
    Float4,
    /// The int8 fallback used by ANT's mixed-precision PTQ.
    Int8,
}

impl AntType {
    fn grid(self) -> Vec<f32> {
        match self {
            AntType::Int4 => (-7..=7).map(|v| v as f32).collect(),
            AntType::Flint4 => {
                let mut g: Vec<f32> = FLINT4_MAGNITUDES
                    .iter()
                    .flat_map(|&m| [m as f32, -(m as f32)])
                    .collect();
                g.sort_by(|a, b| a.partial_cmp(b).unwrap());
                g.dedup();
                g
            }
            AntType::Float4 => {
                let mags = [0.0f32, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0];
                let mut g: Vec<f32> = mags.iter().flat_map(|&m| [m, -m]).collect();
                g.sort_by(|a, b| a.partial_cmp(b).unwrap());
                g.dedup();
                g
            }
            AntType::Int8 => (-127..=127).map(|v| v as f32).collect(),
        }
    }

    /// Storage bits for this type.
    pub fn bits(self) -> u32 {
        if self == AntType::Int8 {
            8
        } else {
            4
        }
    }
}

impl std::fmt::Display for AntType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AntType::Int4 => "int4",
            AntType::Flint4 => "flint4",
            AntType::Float4 => "float4",
            AntType::Int8 => "int8",
        };
        f.write_str(s)
    }
}

/// Result of quantizing one tensor with ANT.
#[derive(Debug, Clone, PartialEq)]
pub struct AntDecision {
    /// The chosen data type.
    pub chosen: AntType,
    /// Relative MSE achieved.
    pub rel_mse: f64,
}

/// The ANT adaptive-type quantizer with int8-fallback mixed precision.
#[derive(Debug, Clone)]
pub struct AntQuantizer {
    /// Outlier-severity bound (in σ units of the tensor's max deviation) above
    /// which a tensor escalates to int8 (`None` = pure 4-bit ANT). ANT has no
    /// outlier mechanism, so its PTQ mixed precision ends up keeping 4 bits
    /// only for tensors whose distribution a single 4-bit grid can cover.
    escalate_max_sigma: Option<f64>,
    search_steps: usize,
    name: String,
}

impl AntQuantizer {
    /// Pure 4-bit ANT (no mixed precision) — the configuration whose accuracy
    /// collapses on LLMs in Tbl. 9.
    pub fn fixed_4bit() -> Self {
        AntQuantizer {
            escalate_max_sigma: None,
            search_steps: 24,
            name: "ANT-4bit".to_string(),
        }
    }

    /// Mixed-precision ANT as used for the performance comparisons: tensors
    /// whose maximum deviation exceeds `max_sigma` standard deviations fall
    /// back to int8 (4-bit grids cannot cover such a range without destroying
    /// the resolution of the normal values).
    pub fn mixed_precision(max_sigma: f64) -> Self {
        AntQuantizer {
            escalate_max_sigma: Some(max_sigma),
            search_steps: 24,
            name: "ANT".to_string(),
        }
    }

    /// The default mixed-precision configuration used by the harnesses.
    ///
    /// A 4-bit grid with 7–16 levels per sign can stretch to roughly 10–15σ
    /// before either clipping or resolution loss becomes severe, so tensors
    /// whose max deviation is beyond ~12σ escalate to int8 — reproducing the
    /// paper's observation that ~80% of layers end up int8 under ANT PTQ.
    pub fn paper_default() -> Self {
        Self::mixed_precision(12.0)
    }

    /// Quantize/dequantize on a fixed grid with an MSE-searched scale.
    fn fake_quant_grid(&self, t: &Tensor, grid: &[f32]) -> (Tensor, f32) {
        let stats = TensorStats::compute(t);
        let gmax = grid.iter().fold(0.0f32, |m, &g| m.max(g.abs()));
        if stats.max_abs == 0.0 || gmax == 0.0 {
            return (t.clone(), 1.0);
        }
        let hi = stats.max_abs as f32 / gmax;
        let lo = (((3.0 * stats.std) as f32) / gmax)
            .min(hi * 0.999)
            .max(hi * 1e-3);
        let mut best_scale = hi;
        let mut best_mse = f64::INFINITY;
        let mut best = t.clone();
        for i in 0..self.search_steps {
            let f = i as f32 / (self.search_steps - 1).max(1) as f32;
            let scale = lo + (hi - lo) * f;
            let deq = t.map(|x| nearest(grid, x / scale) * scale);
            let mse = t.mse(&deq);
            if mse < best_mse {
                best_mse = mse;
                best_scale = scale;
                best = deq;
            }
        }
        (best, best_scale)
    }

    /// Quantizes a tensor and reports which data type ANT selected.
    pub fn quantize_with_decision(&self, t: &Tensor) -> (Tensor, AntDecision) {
        let mean_sq = if t.is_empty() {
            0.0
        } else {
            t.data()
                .iter()
                .map(|&x| (x as f64) * (x as f64))
                .sum::<f64>()
                / t.len() as f64
        };
        let rel = |deq: &Tensor| -> f64 {
            if mean_sq == 0.0 {
                0.0
            } else {
                t.mse(deq) / mean_sq
            }
        };

        let mut best: Option<(AntType, Tensor, f64)> = None;
        for ty in [AntType::Int4, AntType::Flint4, AntType::Float4] {
            let (deq, _) = self.fake_quant_grid(t, &ty.grid());
            let r = rel(&deq);
            if best.as_ref().is_none_or(|(_, _, br)| r < *br) {
                best = Some((ty, deq, r));
            }
        }
        let (mut ty, mut deq, mut r) = best.expect("at least one ANT type");

        if let Some(bound) = self.escalate_max_sigma {
            let stats = TensorStats::compute(t);
            if stats.std > 0.0 && stats.max_sigma > bound {
                let q8 = UniformQuantizer::int8();
                let d8 = q8.quantize_dequantize(t);
                r = rel(&d8);
                deq = d8;
                ty = AntType::Int8;
            }
        }
        (
            deq,
            AntDecision {
                chosen: ty,
                rel_mse: r,
            },
        )
    }

    /// Fraction of the given tensors that would escalate to int8.
    pub fn int8_fraction<'a, I>(&self, tensors: I) -> f64
    where
        I: IntoIterator<Item = &'a Tensor>,
    {
        let mut total = 0usize;
        let mut int8 = 0usize;
        for t in tensors {
            let (_, d) = self.quantize_with_decision(t);
            total += 1;
            if d.chosen == AntType::Int8 {
                int8 += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            int8 as f64 / total as f64
        }
    }
}

fn nearest(grid: &[f32], x: f32) -> f32 {
    let mut best = grid[0];
    let mut best_err = f32::INFINITY;
    for &g in grid {
        let e = (x - g).abs();
        if e < best_err {
            best_err = e;
            best = g;
        }
    }
    best
}

impl TensorQuantizer for AntQuantizer {
    fn name(&self) -> &str {
        &self.name
    }

    fn quantize_dequantize(&self, t: &Tensor) -> Tensor {
        self.quantize_with_decision(t).0
    }

    fn bits_per_element(&self) -> f64 {
        // Reported storage width is decided per tensor; harnesses that need
        // the exact mixture call `quantize_with_decision` per tensor. The
        // nominal width is 4.
        4.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olive_core::OliveQuantizer;
    use olive_tensor::rng::Rng;

    fn gaussian(n: usize, seed: u64) -> Tensor {
        let mut rng = Rng::seed_from(seed);
        let mut d = vec![0.0f32; n];
        rng.fill_normal(&mut d, 0.0, 1.0);
        Tensor::from_vec(vec![n], d)
    }

    fn with_outliers(n: usize, seed: u64) -> Tensor {
        let mut t = gaussian(n, seed);
        let mut rng = Rng::seed_from(seed ^ 0x5151);
        for _ in 0..(n / 150).max(1) {
            let i = rng.below(n);
            t[i] = rng.uniform_range(40.0, 150.0) as f32 * if rng.chance(0.5) { 1.0 } else { -1.0 };
        }
        t
    }

    #[test]
    fn ant_4bit_is_fine_without_outliers() {
        let t = gaussian(4096, 1);
        let (_, d) = AntQuantizer::fixed_4bit().quantize_with_decision(&t);
        assert!(d.rel_mse < 0.05, "rel mse {}", d.rel_mse);
        assert_ne!(d.chosen, AntType::Int8);
    }

    #[test]
    fn ant_4bit_struggles_with_outliers_and_olive_does_not() {
        let t = with_outliers(8192, 2);
        let ant = AntQuantizer::fixed_4bit().quantize_dequantize(&t);
        let olive = OliveQuantizer::int4().quantize_dequantize(&t);
        assert!(
            t.mse(&olive) < t.mse(&ant),
            "olive {} vs ant {}",
            t.mse(&olive),
            t.mse(&ant)
        );
    }

    #[test]
    fn mixed_precision_escalates_outlier_tensors_to_int8() {
        let t = with_outliers(8192, 3);
        let (_, d) = AntQuantizer::paper_default().quantize_with_decision(&t);
        assert_eq!(d.chosen, AntType::Int8);
    }

    #[test]
    fn mixed_precision_keeps_clean_tensors_at_4bit() {
        let t = gaussian(4096, 4);
        let (_, d) = AntQuantizer::paper_default().quantize_with_decision(&t);
        assert_ne!(d.chosen, AntType::Int8);
    }

    #[test]
    fn int8_fraction_reflects_outlier_prevalence() {
        let clean: Vec<Tensor> = (0..4).map(|i| gaussian(2048, 10 + i)).collect();
        let dirty: Vec<Tensor> = (0..4).map(|i| with_outliers(2048, 20 + i)).collect();
        let ant = AntQuantizer::paper_default();
        assert!(ant.int8_fraction(clean.iter()) < 0.5);
        assert!(ant.int8_fraction(dirty.iter()) > 0.5);
    }

    #[test]
    fn type_grids_are_symmetric_and_contain_zero() {
        for ty in [
            AntType::Int4,
            AntType::Flint4,
            AntType::Float4,
            AntType::Int8,
        ] {
            let g = ty.grid();
            assert!(g.contains(&0.0));
            for &v in &g {
                assert!(g.contains(&(-v)));
            }
        }
    }

    #[test]
    fn display_and_bits() {
        assert_eq!(AntType::Flint4.to_string(), "flint4");
        assert_eq!(AntType::Int8.bits(), 8);
        assert_eq!(AntType::Float4.bits(), 4);
    }
}
