//! # olive-baselines
//!
//! Re-implementations of the quantization schemes the OliVe paper compares
//! against, all exposed through the common
//! [`TensorQuantizer`](olive_core::TensorQuantizer) trait so the accuracy and
//! performance harnesses can treat every method uniformly.
//!
//! | Module | Scheme | Paper role |
//! |---|---|---|
//! | [`uniform`] | symmetric per-tensor `int4`/`int8` (also stands in for Q8BERT) | Tbl. 6, Tbl. 9, Fig. 9 |
//! | [`ant`] | ANT adaptive data types + int8-fallback mixed precision | Tbl. 6, Tbl. 9, Fig. 9, Fig. 10 |
//! | [`gobo`] | GOBO: weight-only 3-bit centroids + FP32 outlier coordinate list, FP16 compute | Tbl. 7, Fig. 9 |
//! | [`olaccel`] | OLAccel: 4-bit dense + 16-bit sparse outliers (coordinate list) | Fig. 10 |
//! | [`adafloat`] | AdaptivFloat: 8-bit float with per-tensor exponent bias | Fig. 10 |
//! | [`outlier_suppression`] | Outlier-Suppression-style clipping PTQ at 4/6 bits | Tbl. 6, Tbl. 8 |

pub mod adafloat;
pub mod ant;
pub mod gobo;
pub mod olaccel;
pub mod outlier_suppression;
pub mod uniform;

pub use adafloat::AdaptivFloatQuantizer;
pub use ant::AntQuantizer;
pub use gobo::GoboQuantizer;
pub use olaccel::OlAccelQuantizer;
pub use outlier_suppression::OutlierSuppressionQuantizer;
pub use uniform::UniformQuantizer;
