//! OLAccel (ISCA '18): outlier-aware low-precision computation.
//!
//! OLAccel keeps a dense 4-bit tensor for the bulk of the values and a sparse,
//! high-precision (16-bit) side structure for the few largest-magnitude
//! outliers, addressed by a coordinate list. Numerically it is strong — the
//! outliers are nearly exact — but architecturally it pays for the unaligned
//! sparse accesses and the outlier PE/controller (55–71% PE-array area
//! overhead per the paper's Sec. 2.2), which is what the Fig. 10 performance
//! model charges it for.

use olive_core::TensorQuantizer;
use olive_tensor::Tensor;

/// The OLAccel quantizer: dense 4-bit + sparse 16-bit outliers.
#[derive(Debug, Clone)]
pub struct OlAccelQuantizer {
    /// Fraction of elements treated as outliers (the original paper uses a
    /// small percentage, typically 1–3%).
    outlier_fraction: f64,
    /// Bit width of the dense normal group.
    normal_bits: u32,
    /// Bit width of the sparse outlier group.
    outlier_bits: u32,
    name: String,
}

impl OlAccelQuantizer {
    /// The configuration used for the Fig. 10 comparison: 4-bit dense values,
    /// 16-bit outliers, 3% outlier budget.
    pub fn paper_default() -> Self {
        Self::new(0.03, 4, 16)
    }

    /// Creates an OLAccel quantizer.
    ///
    /// # Panics
    ///
    /// Panics if `outlier_fraction` is not in `[0, 0.5]`.
    pub fn new(outlier_fraction: f64, normal_bits: u32, outlier_bits: u32) -> Self {
        assert!(
            (0.0..=0.5).contains(&outlier_fraction),
            "outlier fraction {} out of range",
            outlier_fraction
        );
        OlAccelQuantizer {
            outlier_fraction,
            normal_bits,
            outlier_bits,
            name: "OLAccel".to_string(),
        }
    }

    /// The outlier fraction used by this configuration.
    pub fn outlier_fraction(&self) -> f64 {
        self.outlier_fraction
    }

    /// Magnitude threshold separating the top `outlier_fraction` of elements.
    pub fn threshold(&self, t: &Tensor) -> f32 {
        if t.is_empty() || self.outlier_fraction == 0.0 {
            return f32::INFINITY;
        }
        let mut mags: Vec<f32> = t.data().iter().map(|x| x.abs()).collect();
        mags.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let k = ((t.len() as f64 * self.outlier_fraction).ceil() as usize).clamp(1, t.len());
        mags[k - 1]
    }
}

fn symmetric_fake_quant(x: f32, scale: f32, qmax: f32) -> f32 {
    if scale <= 0.0 {
        return 0.0;
    }
    (x / scale).round().clamp(-qmax, qmax) * scale
}

impl TensorQuantizer for OlAccelQuantizer {
    fn name(&self) -> &str {
        &self.name
    }

    fn quantize_dequantize(&self, t: &Tensor) -> Tensor {
        let threshold = self.threshold(t);
        let qmax_n = ((1i64 << (self.normal_bits - 1)) - 1) as f32;
        let qmax_o = ((1i64 << (self.outlier_bits - 1)) - 1) as f32;
        // Normal group scale: cover [−threshold, threshold].
        let scale_n = if threshold.is_finite() && threshold > 0.0 {
            threshold / qmax_n
        } else {
            t.max_abs().max(f32::MIN_POSITIVE) / qmax_n
        };
        // Outlier group scale: cover the full range at 16 bits.
        let scale_o = t.max_abs().max(f32::MIN_POSITIVE) / qmax_o;
        t.map(|x| {
            if x.abs() > threshold {
                symmetric_fake_quant(x, scale_o, qmax_o)
            } else {
                symmetric_fake_quant(x, scale_n, qmax_n)
            }
        })
    }

    fn bits_per_element(&self) -> f64 {
        // Dense bits plus the outlier payload and coordinate overhead.
        self.normal_bits as f64 + self.outlier_fraction * (self.outlier_bits as f64 + 32.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olive_tensor::rng::Rng;

    fn with_outliers(n: usize, seed: u64) -> Tensor {
        let mut rng = Rng::seed_from(seed);
        let mut d = vec![0.0f32; n];
        rng.fill_normal(&mut d, 0.0, 1.0);
        for _ in 0..(n / 100).max(1) {
            let i = rng.below(n);
            d[i] = rng.uniform_range(20.0, 90.0) as f32 * if rng.chance(0.5) { 1.0 } else { -1.0 };
        }
        Tensor::from_vec(vec![n], d)
    }

    #[test]
    fn outliers_are_nearly_exact() {
        let t = with_outliers(4096, 1);
        let q = OlAccelQuantizer::paper_default().quantize_dequantize(&t);
        for i in 0..t.len() {
            if t[i].abs() > 20.0 {
                let rel = (q[i] - t[i]).abs() / t[i].abs();
                assert!(rel < 0.01, "outlier {} -> {}", t[i], q[i]);
            }
        }
    }

    #[test]
    fn overall_error_is_low() {
        let t = with_outliers(8192, 2);
        let q = OlAccelQuantizer::paper_default().quantize_dequantize(&t);
        assert!(t.mse(&q) < 0.05, "mse = {}", t.mse(&q));
    }

    #[test]
    fn threshold_selects_requested_fraction() {
        let t = with_outliers(8192, 3);
        let ol = OlAccelQuantizer::paper_default();
        let thr = ol.threshold(&t);
        let frac = t.data().iter().filter(|x| x.abs() >= thr).count() as f64 / t.len() as f64;
        assert!((frac - 0.03).abs() < 0.01, "fraction {}", frac);
    }

    #[test]
    fn storage_overhead_includes_coordinates() {
        let ol = OlAccelQuantizer::paper_default();
        assert!(ol.bits_per_element() > 4.0);
        let dense_only = OlAccelQuantizer::new(0.0, 4, 16);
        assert_eq!(dense_only.bits_per_element(), 4.0);
    }

    #[test]
    fn zero_tensor_is_preserved() {
        let t = Tensor::zeros(vec![32]);
        let q = OlAccelQuantizer::paper_default().quantize_dequantize(&t);
        assert_eq!(q, t);
    }
}
