//! Minimal zero-dependency JSON rendering *and parsing* for machine-readable
//! reports and the `olive-serve` wire protocol.
//!
//! The workspace deliberately has no crates.io dependencies, so this module
//! provides the subset of JSON the evaluation reports and the serving layer
//! need: objects with insertion-ordered keys, arrays, strings, numbers,
//! booleans and null. Non-finite numbers render as `null` (JSON has no
//! NaN/inf). [`JsonValue::parse`] is a recursive-descent parser accepting any
//! standard JSON text (UTF-8, `\uXXXX` escapes including surrogate pairs);
//! integers that fit are parsed into [`JsonValue::Int`]/[`JsonValue::UInt`]
//! so that values rendered by [`JsonValue::render`] round-trip exactly.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values render as `null`).
    Num(f64),
    /// A signed integer, rendered without a decimal point.
    Int(i64),
    /// An unsigned integer (e.g. 64-bit seeds, which do not fit in `Int`).
    UInt(u64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; keys keep insertion order so reports diff cleanly.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience object constructor.
    pub fn object<K: Into<String>>(entries: Vec<(K, JsonValue)>) -> JsonValue {
        JsonValue::Object(entries.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// `Num` for a finite value, `Null` otherwise (also used for "metric not
    /// computed").
    pub fn num_or_null(x: f64) -> JsonValue {
        if x.is_finite() {
            JsonValue::Num(x)
        } else {
            JsonValue::Null
        }
    }

    /// Parses a JSON text into a [`JsonValue`].
    ///
    /// Accepts any standard JSON document (RFC 8259): nested containers (to a
    /// depth of [`MAX_PARSE_DEPTH`]), all escapes including `\uXXXX` with
    /// surrogate pairs, and arbitrary finite numbers. Integer literals that
    /// fit are parsed as [`JsonValue::Int`] (or [`JsonValue::UInt`] beyond
    /// `i64::MAX`), so everything [`JsonValue::render`] emits parses back to
    /// an equal value.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonParseError`] naming the byte offset and what went
    /// wrong: trailing garbage, unterminated containers/strings, bad escapes,
    /// numbers too large for `f64`, or non-JSON tokens.
    pub fn parse(text: &str) -> Result<JsonValue, JsonParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the JSON value"));
        }
        Ok(value)
    }

    /// Looks up `key` in an object; `None` on missing keys and non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a [`JsonValue::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The boolean payload, if this is a [`JsonValue::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Any numeric variant widened to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(x) => Some(*x),
            JsonValue::Int(i) => Some(*i as f64),
            JsonValue::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// Any numeric variant holding an exact non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::UInt(u) => Some(*u),
            JsonValue::Int(i) => u64::try_from(*i).ok(),
            // Strict '<': `u64::MAX as f64` rounds *up* to 2^64, which is out
            // of range (the cast there would silently saturate to u64::MAX).
            JsonValue::Num(x) if x.fract() == 0.0 && *x >= 0.0 && *x < u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// [`JsonValue::as_u64`] narrowed to `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|u| usize::try_from(u).ok())
    }

    /// The items, if this is a [`JsonValue::Array`].
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items.as_slice()),
            _ => None,
        }
    }

    /// Renders the value without the trailing newline [`render`](Self::render)
    /// appends — the scalar building block for incremental renderers (e.g.
    /// the streamed generation report) that assemble a document from
    /// fragments.
    pub fn render_inline(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    /// Renders the value as pretty-printed JSON (two-space indent).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(x) => {
                if x.is_finite() {
                    // `{}` on f64 is Rust's shortest round-trip rendering,
                    // which is valid JSON for finite values.
                    out.push_str(&format!("{x}"));
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Int(i) => out.push_str(&format!("{i}")),
            JsonValue::UInt(u) => out.push_str(&format!("{u}")),
            JsonValue::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            JsonValue::Object(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in entries.iter().enumerate() {
                    out.push_str(&"  ".repeat(indent + 1));
                    out.push('"');
                    out.push_str(&escape(key));
                    out.push_str("\": ");
                    value.write(out, indent + 1);
                    if i + 1 < entries.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }
}

/// Escapes a string for inclusion in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Maximum container nesting depth [`JsonValue::parse`] accepts — a
/// server-facing parser must fail fast on adversarial `[[[[…` input instead
/// of overflowing the stack.
pub const MAX_PARSE_DEPTH: usize = 128;

/// A parse failure: the byte offset it happened at and what went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset into the input where the error was detected.
    pub pos: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for JsonParseError {}

/// Recursive-descent state over the raw input bytes. Multi-byte UTF-8 only
/// occurs inside strings, where whole spans are re-validated via the input's
/// `str` origin (the input is `&str`, so spans between structural bytes are
/// valid UTF-8 by construction).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonParseError {
        JsonParseError {
            pos: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", byte as char)))
        }
    }

    /// Consumes a keyword (`null`/`true`/`false`) or errors.
    fn keyword(&mut self, word: &str) -> Result<(), JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonParseError> {
        if depth > MAX_PARSE_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_PARSE_DEPTH}")));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.keyword("null").map(|()| JsonValue::Null),
            Some(b't') => self.keyword("true").map(|()| JsonValue::Bool(true)),
            Some(b'f') => self.keyword("false").map(|()| JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected character '{}'", char::from(other)))),
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonParseError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(entries));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')
            .map_err(|_| self.err("expected a string"))?;
        let mut out = String::new();
        let mut span_start = self.pos;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    out.push_str(self.span_str(span_start));
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    out.push_str(self.span_str(span_start));
                    self.pos += 1;
                    out.push(self.escape_char()?);
                    span_start = self.pos;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    /// The raw (escape-free) string span from `start` to the current
    /// position. Valid UTF-8: the input is a `str` and the span is delimited
    /// by ASCII structural bytes, which never split a multi-byte sequence.
    fn span_str(&self, start: usize) -> &'a str {
        std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("span delimited by ASCII bytes within a str input")
    }

    fn escape_char(&mut self) -> Result<char, JsonParseError> {
        let escaped = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        Ok(match escaped {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let unit = self.hex4()?;
                if (0xD800..0xDC00).contains(&unit) {
                    // High surrogate: a low surrogate escape must follow.
                    if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                        self.pos += 2;
                        let low = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&low) {
                            return Err(self.err("invalid low surrogate"));
                        }
                        let c = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                        char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"))?
                    } else {
                        return Err(self.err("lone high surrogate"));
                    }
                } else if (0xDC00..0xE000).contains(&unit) {
                    return Err(self.err("lone low surrogate"));
                } else {
                    char::from_u32(unit).ok_or_else(|| self.err("invalid \\u escape"))?
                }
            }
            other => {
                return Err(self.err(format!("invalid escape '\\{}'", char::from(other))));
            }
        })
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let digit = self
                .peek()
                .and_then(|b| char::from(b).to_digit(16))
                .ok_or_else(|| self.err("\\u requires four hex digits"))?;
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<JsonValue, JsonParseError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        // Integer part: one zero, or a nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected a digit")),
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit after '.'"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let literal = self.span_str(start);
        if integral {
            if let Ok(i) = literal.parse::<i64>() {
                return Ok(JsonValue::Int(i));
            }
            if !negative {
                if let Ok(u) = literal.parse::<u64>() {
                    return Ok(JsonValue::UInt(u));
                }
            }
            // Falls through to f64 for integers beyond 64-bit range.
        }
        let x: f64 = literal
            .parse()
            .map_err(|_| self.err(format!("malformed number '{literal}'")))?;
        if !x.is_finite() {
            return Err(self.err(format!("number '{literal}' does not fit in an f64")));
        }
        Ok(JsonValue::Num(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let v = JsonValue::object(vec![
            ("name", JsonValue::Str("olive-4bit".into())),
            ("bits", JsonValue::Num(4.0)),
            ("n", JsonValue::Int(24)),
            ("acts", JsonValue::Bool(true)),
            (
                "metrics",
                JsonValue::Array(vec![JsonValue::Num(0.5), JsonValue::Null]),
            ),
        ]);
        let s = v.render();
        assert!(s.contains("\"name\": \"olive-4bit\""), "{s}");
        assert!(s.contains("\"bits\": 4"), "{s}");
        assert!(s.contains("null"), "{s}");
        assert!(s.ends_with("}\n"), "{s}");
    }

    #[test]
    fn escapes_strings() {
        let v = JsonValue::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(v.render(), "\"a\\\"b\\\\c\\nd\\u0001\"\n");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(JsonValue::Num(f64::NAN).render(), "null\n");
        assert_eq!(JsonValue::num_or_null(f64::INFINITY), JsonValue::Null);
        assert_eq!(JsonValue::num_or_null(1.5), JsonValue::Num(1.5));
    }

    #[test]
    fn empty_containers_render_compactly() {
        assert_eq!(JsonValue::Array(vec![]).render(), "[]\n");
        assert_eq!(JsonValue::Object(vec![]).render(), "{}\n");
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(JsonValue::parse("42").unwrap(), JsonValue::Int(42));
        assert_eq!(JsonValue::parse("-7").unwrap(), JsonValue::Int(-7));
        assert_eq!(JsonValue::parse("0.5").unwrap(), JsonValue::Num(0.5));
        assert_eq!(JsonValue::parse("1e3").unwrap(), JsonValue::Num(1000.0));
        assert_eq!(JsonValue::parse("-2.5E-1").unwrap(), JsonValue::Num(-0.25));
        assert_eq!(
            JsonValue::parse("18446744073709551615").unwrap(),
            JsonValue::UInt(u64::MAX)
        );
        assert_eq!(
            JsonValue::parse("\"hi\"").unwrap(),
            JsonValue::Str("hi".into())
        );
    }

    #[test]
    fn parses_nested_containers_with_whitespace() {
        let v = JsonValue::parse("\t{ \"a\" : [ 1 , {\"b\": [] } , null ] ,\r\n \"c\": {} }  ")
            .unwrap();
        assert_eq!(
            v,
            JsonValue::object(vec![
                (
                    "a",
                    JsonValue::Array(vec![
                        JsonValue::Int(1),
                        JsonValue::object(vec![("b", JsonValue::Array(vec![]))]),
                        JsonValue::Null,
                    ]),
                ),
                ("c", JsonValue::Object(vec![])),
            ])
        );
    }

    #[test]
    fn parses_string_escapes() {
        assert_eq!(
            JsonValue::parse(r#""a\"b\\c\nd\u0001\t\/\b\f\r""#).unwrap(),
            JsonValue::Str("a\"b\\c\nd\u{1}\t/\u{8}\u{c}\r".into())
        );
        // Surrogate pair: U+1F600.
        assert_eq!(
            JsonValue::parse(r#""\ud83d\ude00""#).unwrap(),
            JsonValue::Str("😀".into())
        );
        // Raw (unescaped) non-ASCII passes through.
        assert_eq!(
            JsonValue::parse("\"héllo 日本\"").unwrap(),
            JsonValue::Str("héllo 日本".into())
        );
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "nul",
            "truefalse",
            "{",
            "[1,",
            "[1 2]",
            "{\"a\" 1}",
            "{\"a\": 1,}",
            "{a: 1}",
            "\"unterminated",
            "\"bad\\q\"",
            "\"\\u12\"",
            "\"\\ud800\"",
            "\"\\udc00x\"",
            "01",
            "1.",
            "1e",
            "+1",
            "--1",
            "1 2",
            "[1] garbage",
            "\"tab\tinside\"",
            "1e999",
        ] {
            let err = JsonValue::parse(bad).expect_err(&format!("input {bad:?} must be rejected"));
            assert!(!err.message.is_empty());
            let _ = err.to_string();
        }
    }

    #[test]
    fn parse_rejects_pathological_nesting() {
        let deep = "[".repeat(MAX_PARSE_DEPTH + 2) + &"]".repeat(MAX_PARSE_DEPTH + 2);
        let err = JsonValue::parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        // One level under the limit is fine.
        let ok = "[".repeat(MAX_PARSE_DEPTH - 1) + &"]".repeat(MAX_PARSE_DEPTH - 1);
        assert!(JsonValue::parse(&ok).is_ok());
    }

    #[test]
    fn rendered_reports_parse_back_exactly() {
        let v = JsonValue::object(vec![
            ("name", JsonValue::Str("olive-4bit@per-row".into())),
            ("fidelity", JsonValue::Num(0.987_654_321)),
            ("seed", JsonValue::UInt(u64::MAX)),
            ("batches", JsonValue::Int(-3)),
            ("acts", JsonValue::Bool(true)),
            ("missing", JsonValue::Null),
            (
                "metrics",
                JsonValue::Array(vec![JsonValue::Num(0.5), JsonValue::Null]),
            ),
        ]);
        assert_eq!(JsonValue::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn accessors_narrow_types() {
        let v = JsonValue::parse(
            r#"{"s": "x", "b": false, "u": 7, "i": -2, "f": 1.5, "a": [1], "big": 2.0}"#,
        )
        .unwrap();
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(JsonValue::as_bool), Some(false));
        assert_eq!(v.get("u").and_then(JsonValue::as_u64), Some(7));
        assert_eq!(v.get("u").and_then(JsonValue::as_usize), Some(7));
        assert_eq!(v.get("i").and_then(JsonValue::as_u64), None);
        assert_eq!(v.get("i").and_then(JsonValue::as_f64), Some(-2.0));
        assert_eq!(v.get("f").and_then(JsonValue::as_f64), Some(1.5));
        assert_eq!(v.get("big").and_then(JsonValue::as_u64), Some(2));
        // 2^64 (the float u64::MAX rounds up to) is out of range, not
        // saturated; the largest in-range f64 still converts.
        assert_eq!(JsonValue::Num(18_446_744_073_709_551_616.0).as_u64(), None);
        assert_eq!(
            JsonValue::Num(18_446_744_073_709_549_568.0).as_u64(),
            Some(18_446_744_073_709_549_568)
        );
        assert_eq!(
            v.get("a").and_then(JsonValue::as_array).map(<[_]>::len),
            Some(1)
        );
        assert_eq!(v.get("nope"), None);
        assert_eq!(JsonValue::Null.get("s"), None);
        assert_eq!(JsonValue::Null.as_str(), None);
    }

    #[test]
    fn numbers_round_trip_textually() {
        // Shortest round-trip rendering: full precision without noise.
        assert_eq!(JsonValue::Num(0.1).render(), "0.1\n");
        assert_eq!(JsonValue::Num(1.0).render(), "1\n");
        // Unsigned values beyond i64::MAX must not wrap negative.
        assert_eq!(JsonValue::UInt(u64::MAX).render(), "18446744073709551615\n");
    }
}
