//! Minimal zero-dependency JSON rendering for machine-readable reports.
//!
//! The workspace deliberately has no crates.io dependencies, so this module
//! provides the tiny subset of JSON the evaluation reports need: objects with
//! insertion-ordered keys, arrays, strings, numbers, booleans and null.
//! Non-finite numbers render as `null` (JSON has no NaN/inf).

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values render as `null`).
    Num(f64),
    /// A signed integer, rendered without a decimal point.
    Int(i64),
    /// An unsigned integer (e.g. 64-bit seeds, which do not fit in `Int`).
    UInt(u64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; keys keep insertion order so reports diff cleanly.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience object constructor.
    pub fn object<K: Into<String>>(entries: Vec<(K, JsonValue)>) -> JsonValue {
        JsonValue::Object(entries.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// `Num` for a finite value, `Null` otherwise (also used for "metric not
    /// computed").
    pub fn num_or_null(x: f64) -> JsonValue {
        if x.is_finite() {
            JsonValue::Num(x)
        } else {
            JsonValue::Null
        }
    }

    /// Renders the value as pretty-printed JSON (two-space indent).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(x) => {
                if x.is_finite() {
                    // `{}` on f64 is Rust's shortest round-trip rendering,
                    // which is valid JSON for finite values.
                    out.push_str(&format!("{x}"));
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Int(i) => out.push_str(&format!("{i}")),
            JsonValue::UInt(u) => out.push_str(&format!("{u}")),
            JsonValue::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            JsonValue::Object(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in entries.iter().enumerate() {
                    out.push_str(&"  ".repeat(indent + 1));
                    out.push('"');
                    out.push_str(&escape(key));
                    out.push_str("\": ");
                    value.write(out, indent + 1);
                    if i + 1 < entries.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }
}

/// Escapes a string for inclusion in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let v = JsonValue::object(vec![
            ("name", JsonValue::Str("olive-4bit".into())),
            ("bits", JsonValue::Num(4.0)),
            ("n", JsonValue::Int(24)),
            ("acts", JsonValue::Bool(true)),
            (
                "metrics",
                JsonValue::Array(vec![JsonValue::Num(0.5), JsonValue::Null]),
            ),
        ]);
        let s = v.render();
        assert!(s.contains("\"name\": \"olive-4bit\""), "{s}");
        assert!(s.contains("\"bits\": 4"), "{s}");
        assert!(s.contains("null"), "{s}");
        assert!(s.ends_with("}\n"), "{s}");
    }

    #[test]
    fn escapes_strings() {
        let v = JsonValue::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(v.render(), "\"a\\\"b\\\\c\\nd\\u0001\"\n");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(JsonValue::Num(f64::NAN).render(), "null\n");
        assert_eq!(JsonValue::num_or_null(f64::INFINITY), JsonValue::Null);
        assert_eq!(JsonValue::num_or_null(1.5), JsonValue::Num(1.5));
    }

    #[test]
    fn empty_containers_render_compactly() {
        assert_eq!(JsonValue::Array(vec![]).render(), "[]\n");
        assert_eq!(JsonValue::Object(vec![]).render(), "{}\n");
    }

    #[test]
    fn numbers_round_trip_textually() {
        // Shortest round-trip rendering: full precision without noise.
        assert_eq!(JsonValue::Num(0.1).render(), "0.1\n");
        assert_eq!(JsonValue::Num(1.0).render(), "1\n");
        // Unsigned values beyond i64::MAX must not wrap negative.
        assert_eq!(JsonValue::UInt(u64::MAX).render(), "18446744073709551615\n");
    }
}
