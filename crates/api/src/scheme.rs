//! The unified quantization-scheme registry.
//!
//! Every quantizer in `olive-core` and `olive-baselines` is addressable by a
//! short **spec string** — `"olive-4bit"`, `"ant:int8-fallback"`, `"gobo"`,
//! `"uniform:8"`, `"fp32"`, … — optionally suffixed with a granularity,
//! `"olive-4bit@per-row"`. [`Scheme::parse`] turns a spec into a typed
//! [`Scheme`], [`Scheme::build`] constructs the corresponding
//! [`TensorQuantizer`], and [`Scheme::all`] enumerates the registry. Spec
//! strings round-trip: `Scheme::parse(s)?.to_string() == s` for every
//! canonical spec.
//!
//! ## Spec grammar
//!
//! | Spec | Quantizer |
//! |---|---|
//! | `fp32` | identity FP32 baseline |
//! | `olive-4bit` | OliVe, `int4` normal values |
//! | `olive-4bit-flint` | OliVe, `flint4` normal values |
//! | `olive-8bit` | OliVe, `int8` normal values, E4M3 outliers |
//! | `ant:4bit` | pure 4-bit ANT (no mixed precision) |
//! | `ant:int8-fallback` | ANT with the paper's int8 mixed-precision PTQ |
//! | `gobo` | GOBO, 3-bit centroids (weights only) |
//! | `gobo:4bit` | GOBO, 4-bit centroids |
//! | `olaccel` | OLAccel 4-bit dense + 16-bit sparse outliers |
//! | `adafloat` | AdaptivFloat 8-bit (1-4-3) |
//! | `adafloat:4bit` | AdaptivFloat 4-bit (1-2-1) |
//! | `os:<N>bit` | Outlier-Suppression-style clipping PTQ, `N` ∈ 2..=8 |
//! | `uniform:<N>` | symmetric uniform int, `N` ∈ 2..=16 |
//!
//! Append `@per-row` (or the explicit default `@per-tensor`) to any spec to
//! select the calibration granularity; per-row wraps the base quantizer in
//! [`PerRowQuantizer`](olive_core::PerRowQuantizer).

use olive_accel::QuantScheme;
use olive_baselines::{
    AdaptivFloatQuantizer, AntQuantizer, GoboQuantizer, OlAccelQuantizer,
    OutlierSuppressionQuantizer, UniformQuantizer,
};
use olive_core::{Fp32Baseline, Granularity, OliveQuantizer, PerRowQuantizer, TensorQuantizer};
use olive_dtypes::NormalDataType;

/// Error returned by [`Scheme::parse`] for malformed spec strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemeError {
    spec: String,
    reason: String,
}

impl SchemeError {
    fn new(spec: &str, reason: impl Into<String>) -> Self {
        SchemeError {
            spec: spec.to_string(),
            reason: reason.into(),
        }
    }

    /// The offending spec string.
    pub fn spec(&self) -> &str {
        &self.spec
    }

    /// Why it was rejected.
    pub fn reason(&self) -> &str {
        &self.reason
    }
}

impl std::fmt::Display for SchemeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid scheme spec '{}': {}", self.spec, self.reason)
    }
}

impl std::error::Error for SchemeError {}

/// The base quantization method a spec string names (without granularity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// The identity FP32 baseline.
    Fp32,
    /// OliVe OVP quantization with the given normal data type.
    Olive(NormalDataType),
    /// ANT adaptive 4-bit types; `int8_fallback` enables the mixed-precision
    /// escalation the paper's PTQ setting uses.
    Ant {
        /// Escalate outlier-heavy tensors to int8 (paper Sec. 5.3).
        int8_fallback: bool,
    },
    /// GOBO weight-only centroids (3- or 4-bit).
    Gobo {
        /// Centroid bits for the Gaussian group.
        centroid_bits: u32,
    },
    /// OLAccel 4-bit dense + sparse 16-bit outlier coordinate list.
    OlAccel,
    /// AdaptivFloat at the given total width (8 or 4).
    AdaFloat {
        /// Total bits (sign + exponent + mantissa).
        bits: u32,
    },
    /// Outlier-Suppression-style clipping PTQ at the given width.
    OutlierSuppression {
        /// Integer grid width after clipping.
        bits: u32,
    },
    /// Symmetric per-tensor uniform integer quantization.
    Uniform {
        /// Grid width in bits.
        bits: u32,
    },
}

/// A parsed quantization-scheme spec: a [`SchemeKind`] plus a calibration
/// [`Granularity`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Scheme {
    kind: SchemeKind,
    granularity: Granularity,
}

impl Scheme {
    /// Wraps a kind at per-tensor granularity, validating its parameters
    /// (the same bounds [`Scheme::parse`] enforces, so every constructible
    /// `Scheme` round-trips through its spec string and builds the quantizer
    /// it reports).
    ///
    /// # Errors
    ///
    /// Returns a [`SchemeError`] for out-of-range widths (e.g. an AdaptivFloat
    /// width other than 4/8, GOBO centroid bits other than 3/4, uniform
    /// widths outside 2..=16).
    pub fn new(kind: SchemeKind) -> Result<Self, SchemeError> {
        let candidate = Scheme {
            kind,
            granularity: Granularity::PerTensor,
        };
        // Render + reparse: the grammar is the single source of validity.
        Scheme::parse(&candidate.to_string())
    }

    /// The base method.
    pub fn kind(&self) -> SchemeKind {
        self.kind
    }

    /// The calibration granularity.
    pub fn granularity(&self) -> Granularity {
        self.granularity
    }

    /// Returns the same scheme at a different granularity.
    pub fn with_granularity(mut self, granularity: Granularity) -> Self {
        self.granularity = granularity;
        self
    }

    /// Parses a spec string (see the module docs for the grammar).
    ///
    /// Specs arrive from CLIs, environment files and HTTP bodies, so the
    /// parser normalizes instead of nitpicking: surrounding whitespace is
    /// trimmed (including around the `@` granularity separator) and the spec
    /// is ASCII-case-folded — `" OLIVE-4bit @per-row "` parses to the same
    /// scheme as `"olive-4bit@per-row"`. Whitespace *inside* a token and
    /// genuinely unknown names still error.
    ///
    /// # Errors
    ///
    /// Returns a [`SchemeError`] (echoing the original, un-normalized spec)
    /// describing the first problem: unknown scheme name, out-of-range bit
    /// width, or unknown granularity suffix.
    pub fn parse(spec: &str) -> Result<Scheme, SchemeError> {
        let normalized = spec.trim().to_ascii_lowercase();
        if normalized.is_empty() {
            return Err(SchemeError::new(
                spec,
                format!("empty spec; known specs are {}", known_specs()),
            ));
        }
        let (base, granularity) = match normalized.split_once('@') {
            None => (normalized.as_str(), Granularity::PerTensor),
            Some((base, suffix)) => match suffix.trim() {
                "per-row" => (base.trim_end(), Granularity::PerRow),
                "per-tensor" => (base.trim_end(), Granularity::PerTensor),
                other => {
                    return Err(SchemeError::new(
                        spec,
                        format!(
                            "unknown granularity '@{other}' (expected '@per-row' or '@per-tensor')"
                        ),
                    ));
                }
            },
        };
        let kind = Self::parse_kind(spec, base)?;
        Ok(Scheme { kind, granularity })
    }

    fn parse_kind(spec: &str, base: &str) -> Result<SchemeKind, SchemeError> {
        if let Some(bits) = base.strip_prefix("uniform:") {
            let bits: u32 = bits.parse().map_err(|_| {
                SchemeError::new(
                    spec,
                    format!("'{bits}' is not a bit width (uniform:<bits>)"),
                )
            })?;
            if !(2..=16).contains(&bits) {
                return Err(SchemeError::new(
                    spec,
                    format!("uniform width {bits} out of range 2..=16"),
                ));
            }
            return Ok(SchemeKind::Uniform { bits });
        }
        if let Some(rest) = base.strip_prefix("os:") {
            let bits = rest.strip_suffix("bit").ok_or_else(|| {
                SchemeError::new(spec, format!("'{rest}' should look like os:<bits>bit"))
            })?;
            let bits: u32 = bits.parse().map_err(|_| {
                SchemeError::new(spec, format!("'{bits}' is not a bit width (os:<bits>bit)"))
            })?;
            if !(2..=8).contains(&bits) {
                return Err(SchemeError::new(
                    spec,
                    format!("outlier-suppression width {bits} out of range 2..=8"),
                ));
            }
            return Ok(SchemeKind::OutlierSuppression { bits });
        }
        match base {
            "fp32" => Ok(SchemeKind::Fp32),
            "olive-4bit" => Ok(SchemeKind::Olive(NormalDataType::Int4)),
            "olive-4bit-flint" => Ok(SchemeKind::Olive(NormalDataType::Flint4)),
            "olive-8bit" => Ok(SchemeKind::Olive(NormalDataType::Int8)),
            "ant" | "ant:int8-fallback" => Ok(SchemeKind::Ant {
                int8_fallback: true,
            }),
            "ant:4bit" => Ok(SchemeKind::Ant {
                int8_fallback: false,
            }),
            "gobo" => Ok(SchemeKind::Gobo { centroid_bits: 3 }),
            "gobo:4bit" => Ok(SchemeKind::Gobo { centroid_bits: 4 }),
            "olaccel" => Ok(SchemeKind::OlAccel),
            "adafloat" => Ok(SchemeKind::AdaFloat { bits: 8 }),
            "adafloat:4bit" => Ok(SchemeKind::AdaFloat { bits: 4 }),
            other => Err(SchemeError::new(
                spec,
                format!(
                    "unknown scheme '{other}'; known specs are {}",
                    known_specs()
                ),
            )),
        }
    }

    /// Every canonical spec in the registry, at per-tensor granularity, in
    /// presentation order (OliVe first, then the baselines).
    pub fn all() -> Vec<Scheme> {
        [
            "olive-4bit",
            "olive-4bit-flint",
            "olive-8bit",
            "ant:4bit",
            "ant:int8-fallback",
            "gobo",
            "gobo:4bit",
            "olaccel",
            "adafloat",
            "adafloat:4bit",
            "os:4bit",
            "os:6bit",
            "uniform:4",
            "uniform:8",
            "fp32",
        ]
        .iter()
        .map(|s| Scheme::parse(s).expect("registry specs parse"))
        .collect()
    }

    /// Constructs the quantizer this scheme names.
    pub fn build(&self) -> Box<dyn TensorQuantizer> {
        let base: Box<dyn TensorQuantizer> = match self.kind {
            SchemeKind::Fp32 => Box::new(Fp32Baseline),
            SchemeKind::Olive(ty) => Box::new(OliveQuantizer::new(ty)),
            SchemeKind::Ant { int8_fallback } => Box::new(if int8_fallback {
                AntQuantizer::paper_default()
            } else {
                AntQuantizer::fixed_4bit()
            }),
            SchemeKind::Gobo { centroid_bits } => Box::new(GoboQuantizer::new(centroid_bits, 3.0)),
            SchemeKind::OlAccel => Box::new(OlAccelQuantizer::paper_default()),
            SchemeKind::AdaFloat { bits: 4 } => Box::new(AdaptivFloatQuantizer::bits4()),
            SchemeKind::AdaFloat { .. } => Box::new(AdaptivFloatQuantizer::paper_8bit()),
            SchemeKind::OutlierSuppression { bits } => {
                Box::new(OutlierSuppressionQuantizer::new(bits))
            }
            SchemeKind::Uniform { bits } => Box::new(UniformQuantizer::new(bits)),
        };
        match self.granularity {
            Granularity::PerTensor => base,
            Granularity::PerRow => Box::new(PerRowQuantizer::new(base)),
        }
    }

    /// The underlying packed-encoding [`OliveQuantizer`], when this scheme is
    /// an OliVe scheme at per-tensor granularity (the only configuration the
    /// packed OVP GEMM consumes).
    pub fn olive_quantizer(&self) -> Option<OliveQuantizer> {
        match (self.kind, self.granularity) {
            (SchemeKind::Olive(ty), Granularity::PerTensor) => Some(OliveQuantizer::new(ty)),
            _ => None,
        }
    }

    /// Average storage bits per element of the built quantizer.
    pub fn bits_per_element(&self) -> f64 {
        self.build().bits_per_element()
    }

    /// Whether the scheme quantizes activations (GOBO does not).
    pub fn quantizes_activations(&self) -> bool {
        self.build().quantizes_activations()
    }

    /// Display name of the built quantizer ("OliVe-4bit", "GOBO", …).
    pub fn display_name(&self) -> String {
        self.build().name().to_string()
    }

    /// The architecture-level design the performance models (`olive-accel`)
    /// use for this scheme, when one exists. Granularity does not change the
    /// hardware design.
    pub fn to_accel(&self) -> Option<QuantScheme> {
        match self.kind {
            SchemeKind::Olive(NormalDataType::Int8) => Some(QuantScheme::olive8()),
            SchemeKind::Olive(_) => Some(QuantScheme::olive4()),
            SchemeKind::Ant {
                int8_fallback: true,
            } => Some(QuantScheme::ant_mixed()),
            SchemeKind::Gobo { centroid_bits: 3 } => Some(QuantScheme::gobo()),
            SchemeKind::OlAccel => Some(QuantScheme::olaccel()),
            SchemeKind::AdaFloat { bits: 8 } => Some(QuantScheme::adafloat()),
            SchemeKind::Uniform { bits: 8 } => Some(QuantScheme::int8_tensor_core()),
            _ => None,
        }
    }

    /// The GPU comparison set of Fig. 9 as registry schemes, in plotting
    /// order (every entry has a [`Scheme::to_accel`] design).
    pub fn gpu_comparison() -> Vec<Scheme> {
        ["olive-4bit", "ant:int8-fallback", "uniform:8", "gobo"]
            .iter()
            .map(|s| Scheme::parse(s).expect("comparison specs parse"))
            .collect()
    }

    /// The accelerator comparison set of Fig. 10 as registry schemes, in
    /// plotting order (every entry has a [`Scheme::to_accel`] design).
    pub fn accelerator_comparison() -> Vec<Scheme> {
        ["olive-4bit", "ant:int8-fallback", "olaccel", "adafloat"]
            .iter()
            .map(|s| Scheme::parse(s).expect("comparison specs parse"))
            .collect()
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let base = match self.kind {
            SchemeKind::Fp32 => "fp32".to_string(),
            SchemeKind::Olive(NormalDataType::Int4) => "olive-4bit".to_string(),
            SchemeKind::Olive(NormalDataType::Flint4) => "olive-4bit-flint".to_string(),
            SchemeKind::Olive(NormalDataType::Int8) => "olive-8bit".to_string(),
            SchemeKind::Ant {
                int8_fallback: true,
            } => "ant:int8-fallback".to_string(),
            SchemeKind::Ant {
                int8_fallback: false,
            } => "ant:4bit".to_string(),
            SchemeKind::Gobo { centroid_bits: 3 } => "gobo".to_string(),
            SchemeKind::Gobo { centroid_bits } => format!("gobo:{centroid_bits}bit"),
            SchemeKind::OlAccel => "olaccel".to_string(),
            SchemeKind::AdaFloat { bits: 8 } => "adafloat".to_string(),
            SchemeKind::AdaFloat { bits } => format!("adafloat:{bits}bit"),
            SchemeKind::OutlierSuppression { bits } => format!("os:{bits}bit"),
            SchemeKind::Uniform { bits } => format!("uniform:{bits}"),
        };
        match self.granularity {
            Granularity::PerTensor => f.write_str(&base),
            Granularity::PerRow => write!(f, "{base}@per-row"),
        }
    }
}

impl std::str::FromStr for Scheme {
    type Err = SchemeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Scheme::parse(s)
    }
}

/// Maps registry schemes onto their `olive-accel` hardware designs.
///
/// # Panics
///
/// Panics if a scheme has no hardware design — use [`Scheme::to_accel`]
/// directly to handle that case. The [`Scheme::gpu_comparison`] and
/// [`Scheme::accelerator_comparison`] sets always map.
pub fn accel_designs(schemes: &[Scheme]) -> Vec<QuantScheme> {
    schemes
        .iter()
        .map(|s| {
            s.to_accel()
                .unwrap_or_else(|| panic!("scheme '{s}' has no hardware design"))
        })
        .collect()
}

fn known_specs() -> String {
    "fp32, olive-4bit, olive-4bit-flint, olive-8bit, ant:4bit, ant:int8-fallback, gobo, \
     gobo:4bit, olaccel, adafloat, adafloat:4bit, os:<bits>bit, uniform:<bits> \
     (append '@per-row' for per-row granularity)"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_specs_round_trip() {
        for scheme in Scheme::all() {
            let spec = scheme.to_string();
            assert_eq!(Scheme::parse(&spec).unwrap(), scheme, "spec {spec}");
        }
    }

    #[test]
    fn per_row_specs_round_trip() {
        let s = Scheme::parse("olive-4bit@per-row").unwrap();
        assert_eq!(s.granularity(), Granularity::PerRow);
        assert_eq!(s.to_string(), "olive-4bit@per-row");
        assert_eq!(s.build().name(), "OliVe-4bit@per-row");
    }

    #[test]
    fn parse_normalizes_case_and_whitespace() {
        let canonical = Scheme::parse("olive-4bit@per-row").unwrap();
        for messy in [
            " OLIVE-4bit @per-row ",
            "Olive-4Bit@Per-Row",
            "\tolive-4bit @ per-row\t",
            "  olive-4bit@per-row",
        ] {
            assert_eq!(Scheme::parse(messy).unwrap(), canonical, "{messy:?}");
            assert_eq!(
                Scheme::parse(messy).unwrap().to_string(),
                "olive-4bit@per-row"
            );
        }
        assert_eq!(
            Scheme::parse(" FP32 ").unwrap(),
            Scheme::parse("fp32").unwrap()
        );
        // Normalization never resurrects unknown specs.
        assert!(Scheme::parse(" OLIVE-5bit ").is_err());
        assert!(Scheme::parse("oli ve-4bit").is_err());
    }

    #[test]
    fn per_tensor_suffix_is_accepted_but_not_canonical() {
        let s = Scheme::parse("uniform:8@per-tensor").unwrap();
        assert_eq!(s.to_string(), "uniform:8");
    }

    #[test]
    fn ant_alias_parses_to_fallback() {
        assert_eq!(
            Scheme::parse("ant").unwrap(),
            Scheme::parse("ant:int8-fallback").unwrap()
        );
    }

    #[test]
    fn errors_are_descriptive() {
        let e = Scheme::parse("olive-5bit").unwrap_err();
        assert!(e.to_string().contains("unknown scheme"), "{e}");
        assert!(e.to_string().contains("olive-4bit"), "{e}");
        let e = Scheme::parse("uniform:99").unwrap_err();
        assert!(e.to_string().contains("2..=16"), "{e}");
        let e = Scheme::parse("uniform:x").unwrap_err();
        assert!(e.to_string().contains("bit width"), "{e}");
        let e = Scheme::parse("olive-4bit@per-column").unwrap_err();
        assert!(e.to_string().contains("granularity"), "{e}");
        let e = Scheme::parse("").unwrap_err();
        assert!(e.to_string().contains("empty"), "{e}");
        let e = Scheme::parse("os:9bit").unwrap_err();
        assert!(e.to_string().contains("2..=8"), "{e}");
    }

    #[test]
    fn every_registry_entry_builds() {
        for scheme in Scheme::all() {
            let q = scheme.build();
            assert!(!q.name().is_empty());
            assert!(q.bits_per_element() > 0.0);
        }
    }

    #[test]
    fn display_names_and_flags_match_the_quantizers() {
        assert_eq!(Scheme::parse("gobo").unwrap().display_name(), "GOBO");
        assert!(!Scheme::parse("gobo").unwrap().quantizes_activations());
        assert!(Scheme::parse("olive-4bit").unwrap().quantizes_activations());
        assert_eq!(Scheme::parse("uniform:8").unwrap().bits_per_element(), 8.0);
        assert_eq!(Scheme::parse("fp32").unwrap().bits_per_element(), 32.0);
    }

    #[test]
    fn olive_quantizer_only_for_per_tensor_olive_schemes() {
        assert!(Scheme::parse("olive-4bit")
            .unwrap()
            .olive_quantizer()
            .is_some());
        assert!(Scheme::parse("olive-4bit@per-row")
            .unwrap()
            .olive_quantizer()
            .is_none());
        assert!(Scheme::parse("uniform:4")
            .unwrap()
            .olive_quantizer()
            .is_none());
    }

    #[test]
    fn comparison_sets_match_the_accel_designs() {
        let gpu: Vec<String> = accel_designs(&Scheme::gpu_comparison())
            .into_iter()
            .map(|d| d.name)
            .collect();
        assert_eq!(gpu, ["OliVe", "ANT", "INT8", "GOBO"]);
        let sa: Vec<String> = accel_designs(&Scheme::accelerator_comparison())
            .into_iter()
            .map(|d| d.name)
            .collect();
        assert_eq!(sa, ["OliVe", "ANT", "OLAccel", "AdaFloat"]);
    }

    #[test]
    fn programmatic_kinds_are_validated() {
        assert!(Scheme::new(SchemeKind::AdaFloat { bits: 6 }).is_err());
        assert!(Scheme::new(SchemeKind::Gobo { centroid_bits: 5 }).is_err());
        assert!(Scheme::new(SchemeKind::Uniform { bits: 40 }).is_err());
        assert!(Scheme::new(SchemeKind::OutlierSuppression { bits: 9 }).is_err());
        let ok = Scheme::new(SchemeKind::Uniform { bits: 8 }).unwrap();
        assert_eq!(ok.to_string(), "uniform:8");
        assert_eq!(
            Scheme::new(SchemeKind::Gobo { centroid_bits: 3 }).unwrap(),
            Scheme::parse("gobo").unwrap()
        );
    }

    #[test]
    #[should_panic(expected = "no hardware design")]
    fn accel_designs_panics_on_unmapped_schemes() {
        let _ = accel_designs(&[Scheme::parse("os:6bit").unwrap()]);
    }

    #[test]
    fn accel_mapping_covers_the_expected_subset() {
        assert!(Scheme::parse("fp32").unwrap().to_accel().is_none());
        assert!(Scheme::parse("os:6bit").unwrap().to_accel().is_none());
        assert_eq!(
            Scheme::parse("olive-8bit")
                .unwrap()
                .to_accel()
                .unwrap()
                .name,
            "OliVe-8bit"
        );
        // Granularity does not change the hardware design.
        assert_eq!(
            Scheme::parse("olive-4bit@per-row")
                .unwrap()
                .to_accel()
                .unwrap()
                .name,
            "OliVe"
        );
    }
}
