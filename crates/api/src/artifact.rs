//! Prepared-model snapshots: the typed layer over the binary container in
//! [`olive_models::artifact`].
//!
//! A [`ModelArtifact`] captures everything `olive-serve` computes when it
//! prepares a model for a request — the FP32 teacher, the calibration state
//! (an eval task or a generation prompt), the serving cache key it was
//! prepared under, and optionally the quantized student per scheme — so the
//! expensive preparation can run *offline once* (the `olive-prepare` binary)
//! and every worker process can cold-start from disk in milliseconds.
//!
//! The contract is bit-identity: a worker that loads an artifact serves the
//! same response bytes as a worker that prepared in-process, because every
//! `f32` survives as its exact bit pattern and the cache key pins the
//! preparation inputs. Loading is total — corrupted, truncated or
//! future-versioned files come back as typed [`ArtifactError`]s, never
//! panics (see the property/fuzz suite in `crates/api/tests/artifact.rs`).

use crate::gen::PreparedGen;
use crate::json::JsonValue;
use crate::pipeline::PreparedEval;
use crate::scheme::Scheme;
use olive_models::artifact::{
    fnv1a64, read_model, read_task, validate_tokens, write_model, write_task, ArtifactError,
    ArtifactReader, ArtifactWriter,
};
use olive_models::TinyTransformer;
use std::path::{Path, PathBuf};

/// File extension for artifacts on disk.
pub const ARTIFACT_EXTENSION: &str = "olv";

/// What the snapshot prepares the model *for*.
#[derive(Debug, Clone)]
pub enum ArtifactPayload {
    /// An `/v1/eval` preparation: teacher plus calibrated evaluation task.
    Eval {
        /// The calibration task all schemes are scored on.
        task: olive_models::EvalTask,
    },
    /// A `/v1/generate` preparation: teacher plus the prompt all schemes
    /// continue from.
    Gen {
        /// The prompt token ids.
        prompt: Vec<usize>,
    },
}

impl ArtifactPayload {
    fn kind_code(&self) -> u64 {
        match self {
            ArtifactPayload::Eval { .. } => 0,
            ArtifactPayload::Gen { .. } => 1,
        }
    }

    fn kind_name(&self) -> &'static str {
        match self {
            ArtifactPayload::Eval { .. } => "eval",
            ArtifactPayload::Gen { .. } => "generate",
        }
    }
}

/// A complete prepared-model snapshot.
#[derive(Debug, Clone)]
pub struct ModelArtifact {
    /// The serving cache key this model was prepared under (the
    /// `prepared_key()` of the originating request). Loaders must treat a
    /// key mismatch as a miss: the key *is* the preparation's identity.
    pub key: String,
    /// Human-readable model label (`"BERT"`, `"GPT-2"`, …) — advisory
    /// metadata for `describe`, not part of the identity.
    pub model_name: String,
    /// The FP32 teacher.
    pub teacher: TinyTransformer,
    /// Calibration state: eval task or generation prompt.
    pub payload: ArtifactPayload,
    /// Quantized students, one `(scheme spec, student)` pair per scheme the
    /// artifact was prepared with. Specs are the canonical
    /// [`Scheme`] renderings, so they match serving cache keys verbatim.
    pub students: Vec<(String, TinyTransformer)>,
}

impl ModelArtifact {
    /// Snapshots an eval preparation.
    pub fn eval(key: impl Into<String>, model_name: impl Into<String>, p: &PreparedEval) -> Self {
        ModelArtifact {
            key: key.into(),
            model_name: model_name.into(),
            teacher: p.teacher.clone(),
            payload: ArtifactPayload::Eval {
                task: p.task.clone(),
            },
            students: Vec::new(),
        }
    }

    /// Snapshots a generation preparation.
    pub fn gen(key: impl Into<String>, model_name: impl Into<String>, p: &PreparedGen) -> Self {
        ModelArtifact {
            key: key.into(),
            model_name: model_name.into(),
            teacher: p.teacher.clone(),
            payload: ArtifactPayload::Gen {
                prompt: p.prompt.clone(),
            },
            students: Vec::new(),
        }
    }

    /// Quantizes and attaches one student per scheme (skipping specs already
    /// present), so loaders get the per-scheme admission work for free.
    pub fn with_students(mut self, schemes: &[Scheme]) -> Self {
        for scheme in schemes {
            let spec = scheme.to_string();
            if self.students.iter().any(|(s, _)| *s == spec) {
                continue;
            }
            let student = self.teacher.quantize_weights(scheme.build().as_ref());
            self.students.push((spec, student));
        }
        self
    }

    /// The student quantized under `spec`, if the artifact carries one.
    pub fn student(&self, spec: &str) -> Option<&TinyTransformer> {
        self.students
            .iter()
            .find(|(s, _)| s == spec)
            .map(|(_, m)| m)
    }

    /// Rebuilds the eval preparation, or `None` for a generation artifact.
    /// The artifact's quantized students seed the preparation's
    /// quantize-once cache, so a loader's first eval per scheme skips
    /// re-quantization (the snapshot already paid for it).
    pub fn prepared_eval(&self) -> Option<PreparedEval> {
        match &self.payload {
            ArtifactPayload::Eval { task } => {
                let prepared = PreparedEval::new(self.teacher.clone(), task.clone());
                for (spec, student) in &self.students {
                    prepared.seed_student(spec.clone(), student.clone());
                }
                Some(prepared)
            }
            ArtifactPayload::Gen { .. } => None,
        }
    }

    /// Rebuilds the generation preparation, or `None` for an eval artifact.
    pub fn prepared_gen(&self) -> Option<PreparedGen> {
        match &self.payload {
            ArtifactPayload::Gen { prompt } => Some(PreparedGen {
                teacher: self.teacher.clone(),
                prompt: prompt.clone(),
            }),
            ArtifactPayload::Eval { .. } => None,
        }
    }

    /// The canonical on-disk file name for a cache key: a hash, because keys
    /// contain characters that are hostile to file systems, plus the
    /// [`ARTIFACT_EXTENSION`]. Collisions are harmless — loaders verify the
    /// stored key.
    pub fn file_name(key: &str) -> String {
        format!("m-{:016x}.{ARTIFACT_EXTENSION}", fnv1a64(key.as_bytes()))
    }

    /// Serializes to the framed binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ArtifactWriter::new();
        w.u64(self.payload.kind_code());
        w.str(&self.key);
        w.str(&self.model_name);
        write_model(&mut w, &self.teacher);
        match &self.payload {
            ArtifactPayload::Eval { task } => write_task(&mut w, task),
            ArtifactPayload::Gen { prompt } => w.usizes(prompt),
        }
        w.u64(self.students.len() as u64);
        for (spec, student) in &self.students {
            w.str(spec);
            write_model(&mut w, student);
        }
        w.finish()
    }

    /// Deserializes and validates a snapshot.
    ///
    /// # Errors
    ///
    /// Any [`ArtifactError`]: framing failures from the container layer,
    /// plus [`ArtifactError::Malformed`] for semantic violations (unknown
    /// payload kind, out-of-vocabulary prompt tokens, a student whose
    /// architecture differs from the teacher's).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ArtifactError> {
        let mut r = ArtifactReader::new(bytes)?;
        let kind = r.u64()?;
        let key = r.str()?;
        let model_name = r.str()?;
        let teacher = read_model(&mut r)?;
        let payload = match kind {
            0 => ArtifactPayload::Eval {
                task: read_task(&mut r, &teacher.config)?,
            },
            1 => {
                let prompt = r.usizes()?;
                validate_tokens("prompt", &prompt, &teacher.config)?;
                ArtifactPayload::Gen { prompt }
            }
            other => {
                return Err(ArtifactError::Malformed(format!(
                    "unknown payload kind {other} (expected 0=eval or 1=generate)"
                )))
            }
        };
        let n_students = r.usize()?;
        let mut students = Vec::new();
        for _ in 0..n_students {
            let spec = r.str()?;
            let student = read_model(&mut r)?;
            if student.config != teacher.config {
                return Err(ArtifactError::Malformed(format!(
                    "student '{spec}' architecture differs from the teacher's"
                )));
            }
            students.push((spec, student));
        }
        r.finish()?;
        Ok(ModelArtifact {
            key,
            model_name,
            teacher,
            payload,
            students,
        })
    }

    /// Writes the snapshot into `dir` under its canonical
    /// [`file_name`](ModelArtifact::file_name), atomically (temp file +
    /// rename), creating `dir` if needed. Returns the final path.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Io`] on any filesystem failure.
    pub fn save(&self, dir: &Path) -> Result<PathBuf, ArtifactError> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(Self::file_name(&self.key));
        // Atomic publish: concurrent readers either see the complete file or
        // no file, never a prefix.
        let tmp = dir.join(format!(
            "{}.tmp-{}",
            Self::file_name(&self.key),
            std::process::id()
        ));
        std::fs::write(&tmp, self.to_bytes())?;
        std::fs::rename(&tmp, &path)?;
        Ok(path)
    }

    /// Reads and validates a snapshot from `path`.
    ///
    /// # Errors
    ///
    /// Any [`ArtifactError`].
    pub fn load(path: &Path) -> Result<Self, ArtifactError> {
        let bytes = std::fs::read(path)?;
        Self::from_bytes(&bytes)
    }

    /// Looks `key` up in an artifact directory: `Ok(None)` when no file
    /// exists for it, an error only when a file exists and fails to decode
    /// or was written for a different key (a hash collision).
    ///
    /// # Errors
    ///
    /// Any [`ArtifactError`] from decoding an existing file, plus
    /// [`ArtifactError::Malformed`] on a key mismatch.
    pub fn load_from_dir(dir: &Path, key: &str) -> Result<Option<Self>, ArtifactError> {
        let path = dir.join(Self::file_name(key));
        if !path.exists() {
            return Ok(None);
        }
        let artifact = Self::load(&path)?;
        if artifact.key != key {
            return Err(ArtifactError::Malformed(format!(
                "artifact {} was written for key \"{}\", requested \"{key}\"",
                path.display(),
                artifact.key
            )));
        }
        Ok(Some(artifact))
    }

    /// A JSON description of the snapshot (the `olive-prepare --describe`
    /// output): key, kind, model, architecture, calibration size, students.
    pub fn describe(&self) -> String {
        let c = &self.teacher.config;
        let calibration = match &self.payload {
            ArtifactPayload::Eval { task } => JsonValue::object(vec![
                ("task", JsonValue::Str(task.name.clone())),
                ("inputs", JsonValue::UInt(task.inputs.len() as u64)),
            ]),
            ArtifactPayload::Gen { prompt } => JsonValue::object(vec![(
                "prompt_tokens",
                JsonValue::UInt(prompt.len() as u64),
            )]),
        };
        JsonValue::object(vec![
            ("key", JsonValue::Str(self.key.clone())),
            ("kind", JsonValue::Str(self.payload.kind_name().into())),
            ("model", JsonValue::Str(self.model_name.clone())),
            (
                "config",
                JsonValue::object(vec![
                    ("d_model", JsonValue::UInt(c.d_model as u64)),
                    ("n_heads", JsonValue::UInt(c.n_heads as u64)),
                    ("n_layers", JsonValue::UInt(c.n_layers as u64)),
                    ("d_ff", JsonValue::UInt(c.d_ff as u64)),
                    ("vocab", JsonValue::UInt(c.vocab as u64)),
                    ("seq_len", JsonValue::UInt(c.seq_len as u64)),
                ]),
            ),
            ("calibration", calibration),
            (
                "students",
                JsonValue::Array(
                    self.students
                        .iter()
                        .map(|(spec, _)| JsonValue::Str(spec.clone()))
                        .collect(),
                ),
            ),
        ])
        .render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{ModelFamily, Pipeline};

    #[test]
    fn eval_artifact_round_trips_and_reports() {
        let pipeline = Pipeline::new(ModelFamily::Bert.tiny())
            .task("artifact-test")
            .schemes(["olive-4bit"])
            .seed(5)
            .batches(2);
        let prepared = pipeline.prepare();
        let artifact = ModelArtifact::eval("key-a", "BERT", &prepared)
            .with_students(&[Scheme::parse("olive-4bit").unwrap()]);
        let back = ModelArtifact::from_bytes(&artifact.to_bytes()).unwrap();
        assert_eq!(back.key, "key-a");
        let restored = back.prepared_eval().expect("eval payload");
        assert_eq!(restored.task.inputs, prepared.task.inputs);
        // The loaded preparation serves byte-identical report JSON.
        let a = pipeline
            .run_prepared(&prepared)
            .without_wall_times()
            .to_json();
        let b = pipeline
            .run_prepared(&restored)
            .without_wall_times()
            .to_json();
        assert_eq!(a, b);
        assert!(back.student("olive-4bit").is_some());
        assert!(back.describe().contains("\"kind\": \"eval\""));
    }

    #[test]
    fn gen_artifact_round_trips() {
        let pipeline = Pipeline::new(ModelFamily::Gpt2.tiny()).seed(3);
        let prepared = pipeline.prepare_generation(4);
        let artifact = ModelArtifact::gen("key-g", "GPT-2", &prepared);
        let back = ModelArtifact::from_bytes(&artifact.to_bytes()).unwrap();
        let restored = back.prepared_gen().expect("gen payload");
        assert_eq!(restored.prompt, prepared.prompt);
        assert_eq!(
            restored.teacher.embedding.data(),
            prepared.teacher.embedding.data()
        );
        assert!(back.prepared_eval().is_none());
    }

    #[test]
    fn dir_lookup_misses_cleanly_and_rejects_key_mismatch() {
        let dir = std::env::temp_dir().join(format!("olive-art-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        assert!(matches!(
            ModelArtifact::load_from_dir(&dir, "absent"),
            Ok(None)
        ));
        let pipeline = Pipeline::new(ModelFamily::Bert.tiny()).batches(2).seed(1);
        let artifact = ModelArtifact::eval("key-x", "BERT", &pipeline.prepare());
        artifact.save(&dir).unwrap();
        assert!(ModelArtifact::load_from_dir(&dir, "key-x")
            .unwrap()
            .is_some());
        // Simulate a hash collision: file present under the name of a key it
        // was not written for.
        let evil = dir.join(ModelArtifact::file_name("other-key"));
        std::fs::copy(dir.join(ModelArtifact::file_name("key-x")), &evil).unwrap();
        assert!(matches!(
            ModelArtifact::load_from_dir(&dir, "other-key"),
            Err(ArtifactError::Malformed(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
