//! # olive-api
//!
//! The unified public surface of the OliVe reproduction, re-exported by the
//! facade crate as `olive::api`. Three layers:
//!
//! * [`scheme`] — the **scheme registry**: every quantizer in `olive-core`
//!   and `olive-baselines` addressable by spec string ([`Scheme::parse`],
//!   [`Scheme::all`], [`Scheme::build`]), including a per-row granularity
//!   dimension (`"olive-4bit@per-row"`) and the mapping to the `olive-accel`
//!   hardware designs ([`Scheme::to_accel`]).
//! * [`pipeline`] — the **evaluation pipeline**: a builder
//!   ([`Pipeline::new`]`(`[`ModelFamily::Bert`]`.small()).schemes([...])
//!   .seed(7).run()`) producing a unified [`EvalReport`] with
//!   accuracy/agreement proxies, pseudo-perplexity, bits per element, GEMM
//!   statistics and wall-times, renderable as a text table or JSON.
//! * [`gen`] — the **generation arm** of the same builder:
//!   [`Pipeline::generation`] takes a [`GenOptions`] run description,
//!   decodes each scheme autoregressively (KV-cached) and scores every
//!   greedy step against the FP32 teacher, producing a [`GenReport`]
//!   (tokens, per-step agreement, tokens/sec) whose JSON can also be
//!   emitted fragment-by-fragment for streaming ([`GenOptions::stream`]).
//! * [`json`] — the zero-dependency JSON values the reports render through.
//! * [`artifact`] — prepared-model snapshots ([`ModelArtifact`]): the
//!   versioned, checksummed on-disk form of a prepared teacher + calibration
//!   (+ quantized students) that lets serving workers cold-start
//!   bit-identically from a file written offline by `olive-prepare`.
//!
//! The paper-table binaries in `olive-bench`, the runnable examples and the
//! integration tests are all thin drivers over this API.
//!
//! ```
//! use olive_api::{ModelFamily, Pipeline, Scheme};
//!
//! // Schemes are addressable by name…
//! let scheme = Scheme::parse("olive-4bit").unwrap();
//! assert_eq!(scheme.build().name(), "OliVe-4bit");
//!
//! // …and a whole comparison is one builder chain.
//! let report = Pipeline::new(ModelFamily::Bert.tiny())
//!     .schemes(["olive-4bit", "uniform:4"])
//!     .seed(7)
//!     .batches(3)
//!     .run();
//! let olive = report.result("olive-4bit").unwrap().fidelity;
//! let int4 = report.result("uniform:4").unwrap().fidelity;
//! assert!(olive > int4, "OliVe must beat plain int4: {olive} vs {int4}");
//! ```

pub mod artifact;
pub mod gen;
pub mod json;
pub mod pipeline;
pub mod scheme;

pub use artifact::{ArtifactPayload, ModelArtifact};
pub use gen::{
    GenOptions, GenReport, GenSchemeResult, GenStep, PreparedGen, DEFAULT_MAX_NEW_TOKENS,
    DEFAULT_PROMPT_TOKENS,
};
pub use json::{JsonParseError, JsonValue};
pub use olive_core::Granularity;
pub use olive_models::artifact::ArtifactError;
pub use pipeline::{
    Calibration, EvalReport, GemmProfile, ModelFamily, ModelSpec, Pipeline, PreparedEval,
    SchemeResult, DEFAULT_BATCHES, DEFAULT_OVERSAMPLE,
};
pub use scheme::{accel_designs, Scheme, SchemeError, SchemeKind};
