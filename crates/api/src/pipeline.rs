//! The builder-style evaluation pipeline.
//!
//! One [`Pipeline`] describes a complete accuracy experiment — a proxy model,
//! an evaluation task, a set of schemes addressed by spec string — and
//! [`Pipeline::run`] produces a unified [`EvalReport`] with every metric the
//! paper's tables report (fidelity/agreement accuracy proxies, the SQuAD-style
//! per-position agreement, pseudo-perplexity), per-scheme storage widths, the
//! workload's GEMM profile and wall-times, renderable as a plain-text
//! [`Table`] or as zero-dependency JSON.
//!
//! ```
//! use olive_api::{ModelFamily, Pipeline};
//!
//! let report = Pipeline::new(ModelFamily::Bert.tiny())
//!     .schemes(["fp32", "olive-4bit"])
//!     .seed(42)
//!     .batches(2)
//!     .run();
//! assert_eq!(report.results.len(), 2);
//! assert_eq!(report.result("fp32").unwrap().fidelity, 1.0);
//! ```

use crate::json::JsonValue;
use crate::scheme::Scheme;
use olive_harness::report::Table;
use olive_models::{eval_scores, EngineConfig, EvalTask, OutlierSeverity, TinyTransformer};
use olive_tensor::rng::Rng;
use olive_tensor::Tensor;
use std::sync::Arc;

/// Default number of evaluation sequences per task (what the paper-table
/// harnesses use).
pub const DEFAULT_BATCHES: usize = 24;

/// Default oversampling factor of the confidence-filtered calibration.
pub const DEFAULT_OVERSAMPLE: usize = 6;

/// The proxy-model families the pipeline can instantiate.
///
/// Encoder-style families (BERT/BART) get transformer-severity planted
/// outliers; decoder-style LLM families (GPT-2/BLOOM/OPT) get the stronger
/// LLM-severity outliers (paper Fig. 2 / Tbl. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelFamily {
    /// Encoder-only (BERT-class).
    Bert,
    /// Encoder-decoder (BART-class).
    Bart,
    /// Decoder-only LLM (GPT-2 class).
    Gpt2,
    /// Decoder-only LLM (BLOOM class).
    Bloom,
    /// Decoder-only LLM (OPT class).
    Opt,
}

impl ModelFamily {
    /// Every family, in registry order.
    pub fn all() -> [ModelFamily; 5] {
        [
            ModelFamily::Bert,
            ModelFamily::Bart,
            ModelFamily::Gpt2,
            ModelFamily::Bloom,
            ModelFamily::Opt,
        ]
    }

    /// Parses a family from its wire name (`"bert"`, `"bart"`, `"gpt2"`,
    /// `"bloom"`, `"opt"`; case-insensitive, `"gpt-2"` accepted) — the
    /// untrusted-input counterpart of matching on the enum directly, used by
    /// the `olive-serve` request decoder.
    ///
    /// # Errors
    ///
    /// Returns a message naming the unknown family and the valid names.
    pub fn parse(name: &str) -> Result<ModelFamily, String> {
        match name.to_ascii_lowercase().as_str() {
            "bert" => Ok(ModelFamily::Bert),
            "bart" => Ok(ModelFamily::Bart),
            "gpt2" | "gpt-2" => Ok(ModelFamily::Gpt2),
            "bloom" => Ok(ModelFamily::Bloom),
            "opt" => Ok(ModelFamily::Opt),
            _ => Err(format!(
                "unknown model family '{name}' (expected one of: bert, bart, gpt2, bloom, opt)"
            )),
        }
    }

    /// The family's display label.
    pub fn label(self) -> &'static str {
        match self {
            ModelFamily::Bert => "BERT",
            ModelFamily::Bart => "BART",
            ModelFamily::Gpt2 => "GPT-2",
            ModelFamily::Bloom => "BLOOM",
            ModelFamily::Opt => "OPT",
        }
    }

    /// The outlier severity planted into this family's teachers.
    pub fn severity(self) -> OutlierSeverity {
        match self {
            ModelFamily::Bert | ModelFamily::Bart => OutlierSeverity::transformer(),
            _ => OutlierSeverity::llm(),
        }
    }

    /// A tiny proxy model of this family (unit-test sized).
    pub fn tiny(self) -> ModelSpec {
        self.sized(EngineConfig::tiny())
    }

    /// A small proxy model of this family (the harness default).
    pub fn small(self) -> ModelSpec {
        self.sized(EngineConfig::small())
    }

    /// A proxy model of this family with an explicit architecture.
    pub fn sized(self, config: EngineConfig) -> ModelSpec {
        ModelSpec {
            name: self.label().to_string(),
            severity: self.severity(),
            config,
        }
    }
}

/// A fully-specified proxy model: name, planted-outlier severity and
/// architecture. Usually produced by a [`ModelFamily`] constructor.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSpec {
    /// Display name used in reports.
    pub name: String,
    /// Outlier severity of the generated teacher.
    pub severity: OutlierSeverity,
    /// Proxy-transformer architecture.
    pub config: EngineConfig,
}

impl ModelSpec {
    /// A model spec from scratch.
    pub fn custom(
        name: impl Into<String>,
        severity: OutlierSeverity,
        config: EngineConfig,
    ) -> Self {
        ModelSpec {
            name: name.into(),
            severity,
            config,
        }
    }

    /// Renames the spec (e.g. `ModelFamily::Gpt2.small().named("GPT2-XL")`).
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

/// How the evaluation inputs are selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Calibration {
    /// Oversample random sequences and keep the ones the teacher decides with
    /// the highest margin — mirrors the confident decisions of fine-tuned
    /// task models and is what the paper-table harnesses use.
    Confident {
        /// Candidate-to-kept oversampling factor.
        oversample: usize,
    },
    /// Plain random sequences, no filtering.
    Random,
}

impl Calibration {
    /// The default confidence-filtered calibration.
    pub fn confident(oversample: usize) -> Self {
        Calibration::Confident { oversample }
    }

    /// Unfiltered random inputs.
    pub fn random() -> Self {
        Calibration::Random
    }
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration::Confident {
            oversample: DEFAULT_OVERSAMPLE,
        }
    }
}

/// The GEMM workload of one forward pass of the proxy model (what the paper's
/// performance models consume per inference).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmProfile {
    /// Matrix multiplications per forward pass (projections, per-head
    /// attention GEMMs, LM head).
    pub gemms_per_forward: u64,
    /// Multiply-accumulate operations per forward pass.
    pub macs_per_forward: u64,
}

impl GemmProfile {
    /// Computes the profile of an architecture.
    pub fn of(config: &EngineConfig) -> Self {
        let seq = config.seq_len as u64;
        let d = config.d_model as u64;
        let ff = config.d_ff as u64;
        let heads = config.n_heads as u64;
        let dh = config.head_dim() as u64;
        let layers = config.n_layers as u64;
        let vocab = config.vocab as u64;
        // Per layer: QKV + output projections, both FFN GEMMs, and two
        // seq×seq×head_dim attention GEMMs per head; plus the tied LM head.
        let per_layer = seq * d * 3 * d
            + seq * d * d
            + seq * d * ff
            + seq * ff * d
            + heads * 2 * seq * seq * dh;
        GemmProfile {
            gemms_per_forward: layers * (4 + 2 * heads) + 1,
            macs_per_forward: layers * per_layer + seq * d * vocab,
        }
    }
}

/// Per-scheme outcome of a pipeline run.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeResult {
    /// The registry spec string ("olive-4bit", "uniform:8@per-row", …).
    pub spec: String,
    /// The quantizer's display name ("OliVe-4bit", "int8", …).
    pub name: String,
    /// Average storage bits per element.
    pub bits_per_element: f64,
    /// Arithmetic precision in bits (GOBO computes FP16).
    pub compute_bits: f64,
    /// Whether activations were quantized in this run (pipeline setting AND
    /// scheme capability).
    pub activations_quantized: bool,
    /// Mean logit cosine fidelity against the FP32 teacher (1.0 = lossless).
    pub fidelity: f64,
    /// Last-position argmax agreement with the teacher.
    pub agreement: f64,
    /// All-position argmax agreement (SQuAD-style EM proxy).
    pub position_agreement: f64,
    /// Pseudo-perplexity against the teacher's argmax labels.
    pub perplexity: f64,
    /// Wall time of quantizing + evaluating this scheme, in seconds.
    pub wall_time_s: f64,
}

/// The unified result of a pipeline run.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalReport {
    /// Model display name.
    pub model: String,
    /// Task name.
    pub task: String,
    /// RNG seed the teacher and task were generated from.
    pub seed: u64,
    /// Number of evaluation sequences.
    pub batches: usize,
    /// Whether the run requested activation quantization.
    pub quantize_activations: bool,
    /// GEMM workload of one forward pass.
    pub gemm: GemmProfile,
    /// One entry per scheme, in the order they were configured.
    pub results: Vec<SchemeResult>,
}

impl EvalReport {
    /// Looks up a scheme's result by its spec string.
    pub fn result(&self, spec: &str) -> Option<&SchemeResult> {
        self.results.iter().find(|r| r.spec == spec)
    }

    /// The report with every `wall_time_s` zeroed — everything else in a
    /// report is bit-deterministic in (model, task, seed, batches,
    /// calibration, schemes), wall time is the lone measurement. Serving
    /// responses are rendered from this form so an `/v1/eval` answer is
    /// byte-identical to a direct [`Pipeline::run`] at any batch size and
    /// thread count (the `olive-serve` determinism contract).
    pub fn without_wall_times(mut self) -> Self {
        for r in &mut self.results {
            r.wall_time_s = 0.0;
        }
        self
    }

    /// Renders the report as a plain-text [`Table`].
    pub fn table(&self) -> Table {
        let mut table = Table::new(vec![
            "Scheme".into(),
            "Name".into(),
            "Bits".into(),
            "Acts".into(),
            "Fidelity%".into(),
            "Agree%".into(),
            "PosAgree%".into(),
            "PseudoPPL".into(),
            "Time(s)".into(),
        ]);
        for r in &self.results {
            table.row(vec![
                r.spec.clone(),
                r.name.clone(),
                format!("{:.1}", r.bits_per_element),
                if r.activations_quantized { "yes" } else { "no" }.into(),
                format!("{:.2}", 100.0 * r.fidelity),
                format!("{:.2}", 100.0 * r.agreement),
                format!("{:.2}", 100.0 * r.position_agreement),
                format!("{:.2}", r.perplexity),
                format!("{:.2}", r.wall_time_s),
            ]);
        }
        table
    }

    /// Renders the report as machine-readable JSON (zero-dependency; see
    /// [`crate::json`]).
    pub fn to_json(&self) -> String {
        let results: Vec<JsonValue> = self
            .results
            .iter()
            .map(|r| {
                JsonValue::object(vec![
                    ("spec", JsonValue::Str(r.spec.clone())),
                    ("name", JsonValue::Str(r.name.clone())),
                    (
                        "bits_per_element",
                        JsonValue::num_or_null(r.bits_per_element),
                    ),
                    ("compute_bits", JsonValue::num_or_null(r.compute_bits)),
                    (
                        "activations_quantized",
                        JsonValue::Bool(r.activations_quantized),
                    ),
                    ("fidelity", JsonValue::num_or_null(r.fidelity)),
                    ("agreement", JsonValue::num_or_null(r.agreement)),
                    (
                        "position_agreement",
                        JsonValue::num_or_null(r.position_agreement),
                    ),
                    ("perplexity", JsonValue::num_or_null(r.perplexity)),
                    ("wall_time_s", JsonValue::num_or_null(r.wall_time_s)),
                ])
            })
            .collect();
        JsonValue::object(vec![
            ("model", JsonValue::Str(self.model.clone())),
            ("task", JsonValue::Str(self.task.clone())),
            ("seed", JsonValue::UInt(self.seed)),
            ("batches", JsonValue::Int(self.batches as i64)),
            (
                "quantize_activations",
                JsonValue::Bool(self.quantize_activations),
            ),
            (
                "gemm",
                JsonValue::object(vec![
                    (
                        "gemms_per_forward",
                        JsonValue::Int(self.gemm.gemms_per_forward as i64),
                    ),
                    (
                        "macs_per_forward",
                        JsonValue::Int(self.gemm.macs_per_forward as i64),
                    ),
                ]),
            ),
            ("results", JsonValue::Array(results)),
        ])
        .render()
    }
}

/// Deterministic per-scheme student cache carried by a [`PreparedEval`]:
/// quantizing a teacher is pure in (teacher, scheme spec), so each student
/// is built at most once per preparation and reused by every later
/// `run_prepared` — the serving layers' repeated evals against one cached
/// preparation skip re-quantization entirely. Shared across clones (the
/// cache is derived data, like `OvpTensor`'s packed plan); it is a lookup
/// table only, never iterated into output, so bytes are unaffected.
#[derive(Debug, Default, Clone)]
struct StudentCache {
    inner: Arc<std::sync::Mutex<StudentEntries>>,
}

/// The cache's storage: `(scheme spec, student)` pairs, linear-scanned (a
/// preparation sees a handful of schemes, not thousands).
type StudentEntries = Vec<(String, Arc<TinyTransformer>)>;

impl StudentCache {
    fn lookup(&self, spec: &str) -> Option<Arc<TinyTransformer>> {
        let inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        inner
            .iter()
            .find(|(s, _)| s == spec)
            .map(|(_, m)| Arc::clone(m))
    }

    /// Inserts `student` for `spec` unless a concurrent builder won the
    /// race; returns the cached winner either way (builds are deterministic,
    /// so both candidates hold identical weights).
    fn insert(&self, spec: &str, student: Arc<TinyTransformer>) -> Arc<TinyTransformer> {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some((_, m)) = inner.iter().find(|(s, _)| s == spec) {
            return Arc::clone(m);
        }
        inner.push((spec.to_string(), Arc::clone(&student)));
        student
    }

    fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }
}

/// A generated teacher model plus its evaluation task — the reusable part of
/// a pipeline run, exposed for studies that transform weights directly
/// instead of going through a registry scheme (the Fig. 3 clipping/pruning
/// motivation study).
#[derive(Debug, Clone)]
pub struct PreparedEval {
    /// The FP32 teacher.
    pub teacher: TinyTransformer,
    /// The evaluation inputs.
    pub task: EvalTask,
    /// Quantize-once students, filled lazily by `run_prepared` and seeded
    /// from artifact snapshots at load time.
    students: StudentCache,
}

impl PreparedEval {
    /// Wraps a teacher and task with an empty student cache.
    pub fn new(teacher: TinyTransformer, task: EvalTask) -> Self {
        PreparedEval {
            teacher,
            task,
            students: StudentCache::default(),
        }
    }

    /// The quantized student for `spec`, building it with `build` on the
    /// first request and reusing the cached copy afterwards. The build runs
    /// outside the cache lock; if two threads race, the first insert wins
    /// (both candidates are bit-identical — quantization is deterministic).
    pub fn student_for(
        &self,
        spec: &str,
        build: impl FnOnce() -> TinyTransformer,
    ) -> Arc<TinyTransformer> {
        if let Some(cached) = self.students.lookup(spec) {
            return cached;
        }
        self.students.insert(spec, Arc::new(build()))
    }

    /// Pre-populates the cache with an already-quantized student (artifact
    /// loading: the snapshot carries the admission work).
    pub fn seed_student(&self, spec: impl Into<String>, student: TinyTransformer) {
        let _ = self.students.insert(&spec.into(), Arc::new(student));
    }

    /// Number of cached students (diagnostic; used by tests).
    pub fn cached_students(&self) -> usize {
        self.students.len()
    }

    /// Fidelity of a student whose weights are `f(name, weight)` (activations
    /// stay FP32), against the teacher.
    pub fn fidelity_of_weight_transform<F>(&self, f: F) -> f64
    where
        F: Fn(&str, &Tensor) -> Tensor,
    {
        let student = self.teacher.map_weights(f);
        eval_scores(&self.teacher, &student, &self.task, None).fidelity
    }
}

/// Builder-style evaluation pipeline over the scheme registry.
///
/// Defaults: task `"eval"`, seed 0, [`DEFAULT_BATCHES`] inputs,
/// confidence-filtered calibration at [`DEFAULT_OVERSAMPLE`]×, activations
/// quantized (for schemes that support it) — the configuration of the paper's
/// accuracy tables.
#[derive(Debug, Clone)]
pub struct Pipeline {
    pub(crate) model: ModelSpec,
    pub(crate) task: String,
    pub(crate) schemes: Vec<Scheme>,
    pub(crate) seed: u64,
    pub(crate) batches: usize,
    pub(crate) calibration: Calibration,
    pub(crate) quantize_activations: bool,
}

impl Pipeline {
    /// Starts a pipeline over a proxy model.
    pub fn new(model: ModelSpec) -> Self {
        Pipeline {
            model,
            task: "eval".to_string(),
            schemes: Vec::new(),
            seed: 0,
            batches: DEFAULT_BATCHES,
            calibration: Calibration::default(),
            quantize_activations: true,
        }
    }

    /// Names the evaluation task (shows up in reports; also part of no RNG
    /// stream, so renaming never changes results).
    pub fn task(mut self, name: impl Into<String>) -> Self {
        self.task = name.into();
        self
    }

    /// Adds schemes by spec string, in order.
    ///
    /// # Panics
    ///
    /// Panics with the parse error if a spec is malformed, and on duplicate
    /// schemes (a scheme silently evaluated twice doubles a run's cost and
    /// almost always indicates a typo in the comparison set) — spec strings
    /// in driver code are programmer input. Use [`Scheme::parse`] +
    /// [`Pipeline::scheme_set`] to handle untrusted input, validating for
    /// duplicates first.
    pub fn schemes<I, S>(mut self, specs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        for spec in specs {
            match Scheme::parse(spec.as_ref()) {
                Ok(s) => self.push_scheme(s),
                Err(e) => panic!("{e}"),
            }
        }
        self
    }

    /// Adds pre-parsed schemes, in order.
    ///
    /// # Panics
    ///
    /// Panics on duplicate schemes, like [`Pipeline::schemes`].
    pub fn scheme_set<I: IntoIterator<Item = Scheme>>(mut self, schemes: I) -> Self {
        for scheme in schemes {
            self.push_scheme(scheme);
        }
        self
    }

    fn push_scheme(&mut self, scheme: Scheme) {
        assert!(
            !self.schemes.contains(&scheme),
            "duplicate scheme '{scheme}' in the pipeline's comparison set"
        );
        self.schemes.push(scheme);
    }

    /// Sets the RNG seed of the teacher + task generation.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of evaluation sequences.
    pub fn batches(mut self, n: usize) -> Self {
        self.batches = n;
        self
    }

    /// Sets how evaluation inputs are selected.
    pub fn calibrate(mut self, calibration: Calibration) -> Self {
        self.calibration = calibration;
        self
    }

    /// Quantizes weights only; activations stay FP32 (the Tbl. 7/8 setting).
    pub fn weights_only(mut self) -> Self {
        self.quantize_activations = false;
        self
    }

    /// Explicitly sets activation quantization (on by default; schemes that
    /// cannot quantize activations, like GOBO, stay weight-only regardless).
    pub fn quantize_activations(mut self, on: bool) -> Self {
        self.quantize_activations = on;
        self
    }

    /// Generates the teacher and evaluation task without running any scheme.
    pub fn prepare(&self) -> PreparedEval {
        let mut rng = Rng::seed_from(self.seed);
        let teacher = TinyTransformer::generate(self.model.config, self.model.severity, &mut rng);
        let task = match self.calibration {
            Calibration::Confident { oversample } => EvalTask::generate_confident(
                &self.task,
                &teacher,
                self.batches,
                oversample,
                &mut rng,
            ),
            Calibration::Random => {
                EvalTask::generate(&self.task, &self.model.config, self.batches, &mut rng)
            }
        };
        PreparedEval::new(teacher, task)
    }

    /// Runs every configured scheme and collects the unified report.
    pub fn run(&self) -> EvalReport {
        self.run_prepared(&self.prepare())
    }

    /// Runs every configured scheme against an already-[`prepare`](Self::prepare)d
    /// teacher + task, producing the same report [`run`](Self::run) would —
    /// bit-identically, since preparation is deterministic in the pipeline's
    /// (model, seed, batches, calibration). This is the quantize-once,
    /// serve-many entry point: `olive-serve`'s model cache prepares each
    /// (model, seed, batches) once and reuses it across requests.
    pub fn run_prepared(&self, prepared: &PreparedEval) -> EvalReport {
        let results = self
            .schemes
            .iter()
            .map(|scheme| self.run_scheme(prepared, scheme))
            .collect();
        EvalReport {
            model: self.model.name.clone(),
            task: self.task.clone(),
            seed: self.seed,
            batches: self.batches,
            quantize_activations: self.quantize_activations,
            gemm: GemmProfile::of(&self.model.config),
            results,
        }
    }

    fn run_scheme(&self, prepared: &PreparedEval, scheme: &Scheme) -> SchemeResult {
        let quantizer = scheme.build();
        // olive-lint: allow(no-wallclock-in-deterministic-paths): feeds only wall_time_s, which without_wall_times strips before any byte comparison
        let start = std::time::Instant::now();
        // Quantize-once: the student for this spec is cached on the
        // preparation, so repeated runs (the serving cache's steady state)
        // pay only the eval.
        let student = prepared.student_for(&scheme.to_string(), || {
            prepared.teacher.quantize_weights(quantizer.as_ref())
        });
        let quantize_acts = self.quantize_activations && quantizer.quantizes_activations();
        let act_q = quantize_acts.then_some(quantizer.as_ref());
        let scores = eval_scores(&prepared.teacher, &student, &prepared.task, act_q);
        SchemeResult {
            spec: scheme.to_string(),
            name: quantizer.name().to_string(),
            bits_per_element: quantizer.bits_per_element(),
            compute_bits: quantizer.compute_bits(),
            activations_quantized: quantize_acts,
            fidelity: scores.fidelity,
            agreement: scores.agreement,
            position_agreement: scores.position_agreement,
            perplexity: scores.perplexity,
            wall_time_s: start.elapsed().as_secs_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_pipeline() -> Pipeline {
        Pipeline::new(ModelFamily::Bert.tiny())
            .task("unit")
            .seed(11)
            .batches(4)
            .calibrate(Calibration::confident(2))
    }

    #[test]
    fn fp32_scheme_is_lossless() {
        let report = tiny_pipeline().schemes(["fp32"]).run();
        let r = report.result("fp32").unwrap();
        assert_eq!(r.fidelity, 1.0);
        assert_eq!(r.agreement, 1.0);
        assert_eq!(r.position_agreement, 1.0);
        assert!(r.perplexity < 10.0);
    }

    #[test]
    fn olive_beats_uniform_int4_through_the_pipeline() {
        let report = tiny_pipeline().schemes(["olive-4bit", "uniform:4"]).run();
        let olive = report.result("olive-4bit").unwrap();
        let int4 = report.result("uniform:4").unwrap();
        assert!(olive.fidelity > int4.fidelity);
        assert!(olive.perplexity < int4.perplexity);
    }

    #[test]
    fn weights_only_disables_activation_quantization() {
        let report = tiny_pipeline()
            .schemes(["olive-4bit", "gobo"])
            .weights_only()
            .run();
        assert!(report.results.iter().all(|r| !r.activations_quantized));
        // GOBO never quantizes activations even when asked to.
        let with_acts = tiny_pipeline().schemes(["gobo"]).run();
        assert!(!with_acts.result("gobo").unwrap().activations_quantized);
    }

    #[test]
    fn run_prepared_reuses_cached_students() {
        let pipeline = tiny_pipeline().schemes(["olive-4bit", "uniform:4"]);
        let prepared = pipeline.prepare();
        assert_eq!(prepared.cached_students(), 0);
        let first = pipeline.run_prepared(&prepared);
        assert_eq!(prepared.cached_students(), 2);
        let second = pipeline.run_prepared(&prepared);
        // A second run must hit the cache (no new students) and reproduce
        // the report byte-for-byte once wall times are stripped.
        assert_eq!(prepared.cached_students(), 2);
        assert_eq!(
            first.without_wall_times().to_json(),
            second.without_wall_times().to_json()
        );
    }

    #[test]
    fn cached_students_match_fresh_quantization() {
        let pipeline = tiny_pipeline().schemes(["olive-4bit"]);
        let cached_run = {
            let prepared = pipeline.prepare();
            pipeline.run_prepared(&prepared);
            pipeline.run_prepared(&prepared) // second run: cache hit
        };
        let fresh_run = pipeline.run();
        assert_eq!(
            cached_run.without_wall_times().to_json(),
            fresh_run.without_wall_times().to_json()
        );
    }

    #[test]
    fn identical_pipelines_are_deterministic() {
        let a = tiny_pipeline().schemes(["olive-4bit"]).run();
        let b = tiny_pipeline().schemes(["olive-4bit"]).run();
        let (ra, rb) = (
            a.result("olive-4bit").unwrap(),
            b.result("olive-4bit").unwrap(),
        );
        assert_eq!(ra.fidelity, rb.fidelity);
        assert_eq!(ra.perplexity, rb.perplexity);
    }

    #[test]
    fn random_calibration_changes_the_task_but_stays_deterministic() {
        let conf = tiny_pipeline().schemes(["olive-4bit"]).run();
        let rand = tiny_pipeline()
            .calibrate(Calibration::random())
            .schemes(["olive-4bit"])
            .run();
        let rand2 = tiny_pipeline()
            .calibrate(Calibration::random())
            .schemes(["olive-4bit"])
            .run();
        assert_eq!(
            rand.result("olive-4bit").unwrap().fidelity,
            rand2.result("olive-4bit").unwrap().fidelity
        );
        // Different input selection ⇒ (almost surely) different scores.
        assert_ne!(
            conf.result("olive-4bit").unwrap().fidelity,
            rand.result("olive-4bit").unwrap().fidelity
        );
    }

    #[test]
    fn report_metadata_and_lookup() {
        let report = tiny_pipeline().schemes(["fp32"]).run();
        assert_eq!(report.model, "BERT");
        assert_eq!(report.task, "unit");
        assert_eq!(report.seed, 11);
        assert_eq!(report.batches, 4);
        assert!(report.result("nope").is_none());
        assert!(report.gemm.macs_per_forward > 0);
        assert!(report.gemm.gemms_per_forward > 0);
    }

    #[test]
    fn json_rendering_contains_every_scheme() {
        let report = tiny_pipeline().schemes(["fp32", "uniform:8"]).run();
        let json = report.to_json();
        assert!(json.contains("\"spec\": \"fp32\""), "{json}");
        assert!(json.contains("\"spec\": \"uniform:8\""), "{json}");
        assert!(json.contains("\"macs_per_forward\""), "{json}");
        let table = report.table().render();
        assert!(table.contains("uniform:8"), "{table}");
    }

    #[test]
    fn json_preserves_large_seeds() {
        let report = Pipeline::new(ModelFamily::Bert.tiny())
            .seed(u64::MAX)
            .batches(0)
            .run();
        assert!(
            report.to_json().contains("\"seed\": 18446744073709551615"),
            "{}",
            report.to_json()
        );
    }

    #[test]
    #[should_panic(expected = "invalid scheme spec")]
    fn malformed_spec_panics_in_the_builder() {
        let _ = tiny_pipeline().schemes(["olive-5bit"]);
    }

    #[test]
    #[should_panic(expected = "duplicate scheme 'olive-4bit'")]
    fn duplicate_specs_panic_in_the_builder() {
        let _ = tiny_pipeline().schemes(["olive-4bit", "uniform:4", "olive-4bit"]);
    }

    #[test]
    #[should_panic(expected = "duplicate scheme")]
    fn duplicates_across_builder_calls_panic_too() {
        let _ = tiny_pipeline()
            .schemes(["fp32"])
            .scheme_set([crate::Scheme::parse("fp32").unwrap()]);
    }

    #[test]
    fn per_row_variant_is_not_a_duplicate() {
        // Same scheme at a different granularity is a legitimate comparison.
        let report = tiny_pipeline()
            .schemes(["uniform:4", "uniform:4@per-row"])
            .run();
        assert_eq!(report.results.len(), 2);
    }

    #[test]
    fn run_prepared_matches_run_bit_for_bit() {
        let pipeline = tiny_pipeline().schemes(["olive-4bit", "uniform:8"]);
        let direct = pipeline.run();
        let prepared = pipeline.prepare();
        // Serve-many: the same preparation feeds several runs.
        for _ in 0..2 {
            let served = pipeline.run_prepared(&prepared);
            assert_eq!(
                served.without_wall_times().to_json(),
                direct.clone().without_wall_times().to_json()
            );
        }
    }

    #[test]
    fn without_wall_times_zeroes_only_wall_times() {
        let report = tiny_pipeline().schemes(["fp32"]).run();
        let normalized = report.clone().without_wall_times();
        assert_eq!(normalized.results[0].wall_time_s, 0.0);
        assert_eq!(normalized.results[0].fidelity, report.results[0].fidelity);
        assert!(normalized.to_json().contains("\"wall_time_s\": 0"));
    }

    #[test]
    fn model_family_parses_wire_names() {
        for family in ModelFamily::all() {
            let name = family.label().to_ascii_lowercase().replace('-', "");
            assert_eq!(ModelFamily::parse(&name).unwrap(), family);
        }
        assert_eq!(ModelFamily::parse("GPT-2").unwrap(), ModelFamily::Gpt2);
        assert_eq!(ModelFamily::parse("Bert").unwrap(), ModelFamily::Bert);
        let err = ModelFamily::parse("llama").unwrap_err();
        assert!(err.contains("llama") && err.contains("bert"), "{err}");
    }

    #[test]
    fn prepared_eval_supports_weight_transforms() {
        let prepared = tiny_pipeline().prepare();
        let identity = prepared.fidelity_of_weight_transform(|_, w| w.clone());
        assert_eq!(identity, 1.0);
        let zeroed = prepared.fidelity_of_weight_transform(|_, w| w.map(|_| 0.0));
        assert!(zeroed < 1.0);
    }

    #[test]
    fn gemm_profile_counts_match_a_hand_count() {
        let cfg = EngineConfig::tiny(); // d=32, heads=4, layers=2, ff=64, vocab=64, seq=16
        let p = GemmProfile::of(&cfg);
        // Per layer: 4 projection GEMMs + 2 per head; plus the LM head.
        assert_eq!(p.gemms_per_forward, 2 * (4 + 2 * 4) + 1);
        let seq = 16u64;
        let per_layer =
            seq * 32 * 96 + seq * 32 * 32 + seq * 32 * 64 + seq * 64 * 32 + 4 * 2 * seq * seq * 8;
        assert_eq!(p.macs_per_forward, 2 * per_layer + seq * 32 * 64);
    }
}
