//! The autoregressive generation arm of the pipeline.
//!
//! Where [`Pipeline::run`](crate::Pipeline::run) answers "how much does a
//! scheme perturb one forward pass", [`Pipeline::generate`] answers the
//! *generative* question the paper's serving scenario poses: run a quantized
//! student autoregressively for `max_new_tokens` greedy decode steps and
//! score, at every step, whether the FP32 teacher (forced along the
//! student's token sequence) would have picked the same token. The result is
//! a [`GenReport`]: the generated tokens, the per-step agreement trace, the
//! aggregate agreement and the decode throughput (tokens/sec).
//!
//! ## Streaming, byte-identically
//!
//! The report's JSON is assembled from **fragments** — a head, one fragment
//! per decode step, a per-scheme tail carrying the summary, a report tail —
//! and [`GenReport::to_json`] is defined as the concatenation of exactly
//! those fragments. [`Pipeline::generate_streamed`] hands each fragment to a
//! sink *as the step is decoded*, which is what `olive-serve` writes as
//! HTTP chunks: a streamed `/v1/generate` body, chunks concatenated, is
//! byte-identical to `Pipeline::generate(..).without_wall_times().to_json()`
//! by construction, not by careful bookkeeping.

use crate::json::JsonValue;
use crate::pipeline::Pipeline;
use olive_models::{argmax, DecodeSession, TinyTransformer};
use olive_tensor::rng::Rng;

/// Default prompt length of a generation run, in tokens.
pub const DEFAULT_PROMPT_TOKENS: usize = 8;

/// Default number of greedy decode steps.
pub const DEFAULT_MAX_NEW_TOKENS: usize = 16;

/// One greedy decode step of one scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenStep {
    /// The token the quantized student picked (and was fed back).
    pub token: usize,
    /// The token the FP32 teacher would have picked on the same prefix.
    pub teacher_token: usize,
}

impl GenStep {
    /// Whether student and teacher picked the same token at this step.
    pub fn agree(&self) -> bool {
        self.token == self.teacher_token
    }
}

/// Per-scheme outcome of a generation run.
#[derive(Debug, Clone, PartialEq)]
pub struct GenSchemeResult {
    /// The registry spec string.
    pub spec: String,
    /// The quantizer's display name.
    pub name: String,
    /// Whether activations were quantized (pipeline setting AND scheme
    /// capability), per-row as the decode path requires.
    pub activations_quantized: bool,
    /// The greedy decode trace, one entry per new token.
    pub steps: Vec<GenStep>,
    /// Fraction of steps on which the teacher agreed with the student's
    /// token (1.0 for an empty trace).
    pub agreement: f64,
    /// Decode throughput over the generation loop (0.0 when wall times are
    /// stripped).
    pub tokens_per_s: f64,
    /// Wall time of quantizing + generating, in seconds.
    pub wall_time_s: f64,
}

impl GenSchemeResult {
    /// The student's generated tokens, in order.
    pub fn tokens(&self) -> Vec<usize> {
        self.steps.iter().map(|s| s.token).collect()
    }
}

/// The unified result of a generation run — the generative counterpart of
/// [`EvalReport`](crate::EvalReport).
#[derive(Debug, Clone, PartialEq)]
pub struct GenReport {
    /// Model display name.
    pub model: String,
    /// Task name (display only, never part of an RNG stream).
    pub task: String,
    /// RNG seed the teacher and prompt were generated from.
    pub seed: u64,
    /// The shared prompt all schemes continue from.
    pub prompt: Vec<usize>,
    /// Requested number of decode steps.
    pub max_new_tokens: usize,
    /// Whether the run requested activation quantization.
    pub quantize_activations: bool,
    /// One entry per scheme, in the order they were configured.
    pub results: Vec<GenSchemeResult>,
}

impl GenReport {
    /// Looks up a scheme's result by its spec string.
    pub fn result(&self, spec: &str) -> Option<&GenSchemeResult> {
        self.results.iter().find(|r| r.spec == spec)
    }

    /// The report with `tokens_per_s` and `wall_time_s` zeroed — everything
    /// else is bit-deterministic in (model, seed, prompt, schemes); the
    /// throughput numbers are the lone measurements. Streamed serving
    /// renders this form (the `olive-serve` determinism contract).
    pub fn without_wall_times(mut self) -> Self {
        for r in &mut self.results {
            r.tokens_per_s = 0.0;
            r.wall_time_s = 0.0;
        }
        self
    }

    /// Renders the report as machine-readable JSON: the concatenation of the
    /// same fragments [`Pipeline::generate_streamed`] emits.
    pub fn to_json(&self) -> String {
        let mut out = head_fragment(self);
        for (i, r) in self.results.iter().enumerate() {
            out.push_str(&scheme_head_fragment(r, i == 0));
            for (j, step) in r.steps.iter().enumerate() {
                out.push_str(&step_fragment(step, j == 0));
            }
            out.push_str(&scheme_tail_fragment(r));
        }
        out.push_str(REPORT_TAIL);
        out
    }
}

/// Everything up to and including `"results": [`.
fn head_fragment(report: &GenReport) -> String {
    let prompt: Vec<String> = report.prompt.iter().map(|t| t.to_string()).collect();
    format!(
        "{{\n  \"model\": {},\n  \"task\": {},\n  \"seed\": {},\n  \"prompt_tokens\": {},\n  \
         \"max_new_tokens\": {},\n  \"quantize_activations\": {},\n  \"prompt\": [{}],\n  \
         \"results\": [",
        JsonValue::Str(report.model.clone()).render_inline(),
        JsonValue::Str(report.task.clone()).render_inline(),
        report.seed,
        report.prompt.len(),
        report.max_new_tokens,
        report.quantize_activations,
        prompt.join(", "),
    )
}

/// One scheme's metadata up to and including `"steps": [`.
fn scheme_head_fragment(result: &GenSchemeResult, first: bool) -> String {
    format!(
        "{}\n    {{\n      \"spec\": {},\n      \"name\": {},\n      \
         \"activations_quantized\": {},\n      \"steps\": [",
        if first { "" } else { "," },
        JsonValue::Str(result.spec.clone()).render_inline(),
        JsonValue::Str(result.name.clone()).render_inline(),
        result.activations_quantized,
    )
}

/// One decode step — the fragment streamed as the token is produced.
fn step_fragment(step: &GenStep, first: bool) -> String {
    format!(
        "{}\n        {{\"token\": {}, \"teacher_token\": {}, \"agree\": {}}}",
        if first { "" } else { "," },
        step.token,
        step.teacher_token,
        step.agree(),
    )
}

/// Closes the step array and carries the per-scheme summary (which is only
/// known once every step has been decoded — hence it trails the steps).
fn scheme_tail_fragment(result: &GenSchemeResult) -> String {
    format!(
        "\n      ],\n      \"agreement\": {},\n      \"tokens_per_s\": {},\n      \
         \"wall_time_s\": {}\n    }}",
        JsonValue::num_or_null(result.agreement).render_inline(),
        JsonValue::num_or_null(result.tokens_per_s).render_inline(),
        JsonValue::num_or_null(result.wall_time_s).render_inline(),
    )
}

const REPORT_TAIL: &str = "\n  ]\n}\n";

/// A generated teacher model plus the prompt all schemes continue from — the
/// reusable (cacheable) part of a generation run, mirroring
/// [`PreparedEval`](crate::PreparedEval) for the evaluation arm.
#[derive(Debug, Clone)]
pub struct PreparedGen {
    /// The FP32 teacher.
    pub teacher: TinyTransformer,
    /// The prompt (at least one token).
    pub prompt: Vec<usize>,
}

impl Pipeline {
    /// Generates the teacher and a `prompt_tokens`-long prompt (clamped to at
    /// least 1) without running any scheme. The teacher is bit-identical to
    /// the one [`prepare`](Pipeline::prepare) generates for the same seed;
    /// the prompt continues the same RNG stream, so a `(model, seed,
    /// prompt_tokens)` triple fully determines the preparation — the
    /// quantize-once/serve-many cache key `olive-serve` uses.
    pub fn prepare_generation(&self, prompt_tokens: usize) -> PreparedGen {
        let mut rng = Rng::seed_from(self.seed);
        let teacher = TinyTransformer::generate(self.model.config, self.model.severity, &mut rng);
        let prompt = (0..prompt_tokens.max(1))
            .map(|_| rng.below(self.model.config.vocab))
            .collect();
        PreparedGen { teacher, prompt }
    }

    /// Runs every configured scheme for `max_new_tokens` greedy decode steps
    /// and collects the unified [`GenReport`] (wall times included).
    pub fn generate(&self, prompt_tokens: usize, max_new_tokens: usize) -> GenReport {
        self.generate_prepared(&self.prepare_generation(prompt_tokens), max_new_tokens)
    }

    /// Like [`generate`](Pipeline::generate) against an already-prepared
    /// teacher + prompt — bit-identical to `generate` for the same
    /// preparation inputs.
    pub fn generate_prepared(&self, prepared: &PreparedGen, max_new_tokens: usize) -> GenReport {
        self.generate_inner(prepared, max_new_tokens, None)
    }

    /// Streaming generation: decodes like
    /// [`generate_prepared`](Pipeline::generate_prepared) but hands `sink`
    /// the report's JSON fragments as they become available — one head, one
    /// fragment per decode step (emitted the moment the step is decoded),
    /// one tail per scheme, one report tail. The fragments concatenate to
    /// exactly the returned report's [`GenReport::to_json`].
    ///
    /// Wall times are stripped from both the stream and the returned report:
    /// a fragment, once emitted, could not honestly carry a measurement that
    /// finishes later, and serving requires byte-stable output anyway.
    pub fn generate_streamed(
        &self,
        prepared: &PreparedGen,
        max_new_tokens: usize,
        sink: &mut dyn FnMut(&str),
    ) -> GenReport {
        self.generate_inner(prepared, max_new_tokens, Some(sink))
    }

    fn generate_inner(
        &self,
        prepared: &PreparedGen,
        max_new_tokens: usize,
        mut sink: Option<&mut dyn FnMut(&str)>,
    ) -> GenReport {
        let streaming = sink.is_some();
        let mut report = GenReport {
            model: self.model.name.clone(),
            task: self.task.clone(),
            seed: self.seed,
            prompt: prepared.prompt.clone(),
            max_new_tokens,
            quantize_activations: self.quantize_activations,
            results: Vec::with_capacity(self.schemes.len()),
        };
        if let Some(sink) = sink.as_deref_mut() {
            sink(&head_fragment(&report));
        }
        for (i, scheme) in self.schemes.iter().enumerate() {
            let quantizer = scheme.build();
            // olive-lint: allow(no-wallclock-in-deterministic-paths): feeds only wall_time_s, which without_wall_times strips before any byte comparison
            let start = std::time::Instant::now();
            let student = prepared.teacher.quantize_weights(quantizer.as_ref());
            let quantize_acts = self.quantize_activations && quantizer.quantizes_activations();
            let act_q = quantize_acts.then_some(quantizer.as_ref());
            let mut result = GenSchemeResult {
                spec: scheme.to_string(),
                name: quantizer.name().to_string(),
                activations_quantized: quantize_acts,
                steps: Vec::with_capacity(max_new_tokens),
                agreement: 1.0,
                tokens_per_s: 0.0,
                wall_time_s: 0.0,
            };
            if let Some(sink) = sink.as_deref_mut() {
                sink(&scheme_head_fragment(&result, i == 0));
            }

            // The student decodes greedily; the teacher is forced along the
            // student's tokens so every step compares like with like.
            let mut student_session = DecodeSession::new(&student, act_q);
            let mut teacher_session = DecodeSession::new(&prepared.teacher, None);
            let mut s_logits = student_session
                .prefill(&prepared.prompt)
                .expect("prepared prompts are non-empty");
            let mut t_logits = teacher_session
                .prefill(&prepared.prompt)
                .expect("prepared prompts are non-empty");
            for step_index in 0..max_new_tokens {
                let step = GenStep {
                    token: argmax(&s_logits),
                    teacher_token: argmax(&t_logits),
                };
                if let Some(sink) = sink.as_deref_mut() {
                    sink(&step_fragment(&step, step_index == 0));
                }
                result.steps.push(step);
                if step_index + 1 < max_new_tokens {
                    s_logits = student_session.push(step.token);
                    t_logits = teacher_session.push(step.token);
                }
            }

            let elapsed = start.elapsed().as_secs_f64();
            if !result.steps.is_empty() {
                let agreed = result.steps.iter().filter(|s| s.agree()).count();
                result.agreement = agreed as f64 / result.steps.len() as f64;
            }
            if !streaming {
                result.wall_time_s = elapsed;
                if elapsed > 0.0 {
                    result.tokens_per_s = max_new_tokens as f64 / elapsed;
                }
            }
            if let Some(sink) = sink.as_deref_mut() {
                sink(&scheme_tail_fragment(&result));
            }
            report.results.push(result);
        }
        if let Some(sink) = sink {
            sink(REPORT_TAIL);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::ModelFamily;

    fn tiny_pipeline() -> Pipeline {
        Pipeline::new(ModelFamily::Gpt2.tiny())
            .task("gen-unit")
            .seed(21)
    }

    #[test]
    fn fp32_student_agrees_with_the_teacher_everywhere() {
        let report = tiny_pipeline().schemes(["fp32"]).generate(4, 6);
        let r = report.result("fp32").unwrap();
        assert_eq!(r.agreement, 1.0);
        assert_eq!(r.steps.len(), 6);
        assert!(r.steps.iter().all(GenStep::agree));
        assert!(r.wall_time_s > 0.0);
        assert!(r.tokens_per_s > 0.0);
        assert_eq!(report.prompt.len(), 4);
    }

    #[test]
    fn generation_is_deterministic_and_prepared_matches_direct() {
        let pipeline = tiny_pipeline().schemes(["olive-4bit", "uniform:4"]);
        let a = pipeline.generate(5, 8).without_wall_times();
        let b = pipeline.generate(5, 8).without_wall_times();
        assert_eq!(a.to_json(), b.to_json());
        let prepared = pipeline.prepare_generation(5);
        let c = pipeline
            .generate_prepared(&prepared, 8)
            .without_wall_times();
        assert_eq!(a.to_json(), c.to_json());
    }

    #[test]
    fn prepared_teacher_matches_the_eval_preparation() {
        // The generation arm shares the eval arm's teacher stream: the same
        // seed must produce the same teacher weights.
        let pipeline = tiny_pipeline();
        let gen = pipeline.prepare_generation(4);
        let eval = pipeline.prepare();
        assert_eq!(gen.teacher.embedding, eval.teacher.embedding);
        assert_eq!(
            gen.teacher.layers[0].wqkv.data(),
            eval.teacher.layers[0].wqkv.data()
        );
    }

    #[test]
    fn streamed_fragments_concatenate_to_the_report_json() {
        let pipeline = tiny_pipeline().schemes(["olive-4bit", "uniform:4", "fp32"]);
        let prepared = pipeline.prepare_generation(4);
        let mut streamed = String::new();
        let mut fragments = 0usize;
        let report = pipeline.generate_streamed(&prepared, 7, &mut |fragment| {
            streamed.push_str(fragment);
            fragments += 1;
        });
        assert_eq!(streamed, report.to_json());
        assert_eq!(
            streamed,
            pipeline
                .generate_prepared(&prepared, 7)
                .without_wall_times()
                .to_json()
        );
        // head + per scheme (head + 7 steps + tail) + report tail.
        assert_eq!(fragments, 1 + 3 * (1 + 7 + 1) + 1);
        // Streamed reports carry no wall-clock measurements.
        assert!(report.results.iter().all(|r| r.wall_time_s == 0.0));
    }

    #[test]
    fn report_json_is_valid_and_complete() {
        let report = tiny_pipeline()
            .schemes(["olive-4bit", "gobo"])
            .generate(3, 5);
        let parsed = JsonValue::parse(&report.to_json()).expect("report must be valid JSON");
        assert_eq!(
            parsed.get("model").and_then(JsonValue::as_str),
            Some("GPT-2")
        );
        assert_eq!(parsed.get("seed").and_then(JsonValue::as_u64), Some(21));
        assert_eq!(
            parsed
                .get("prompt")
                .and_then(JsonValue::as_array)
                .map(<[_]>::len),
            Some(3)
        );
        let results = parsed.get("results").and_then(JsonValue::as_array).unwrap();
        assert_eq!(results.len(), 2);
        let steps = results[0]
            .get("steps")
            .and_then(JsonValue::as_array)
            .unwrap();
        assert_eq!(steps.len(), 5);
        assert!(steps[0].get("token").and_then(JsonValue::as_u64).is_some());
        assert!(steps[0].get("agree").and_then(JsonValue::as_bool).is_some());
        // GOBO is weight-only even when activations are requested.
        assert_eq!(
            results[1]
                .get("activations_quantized")
                .and_then(JsonValue::as_bool),
            Some(false)
        );
    }

    #[test]
    fn empty_traces_render_and_score_neutrally() {
        let report = tiny_pipeline().schemes(["fp32"]).generate(2, 0);
        let r = report.result("fp32").unwrap();
        assert!(r.steps.is_empty());
        assert_eq!(r.agreement, 1.0);
        assert!(JsonValue::parse(&report.to_json()).is_ok());
        // No schemes at all still renders valid JSON.
        let bare = tiny_pipeline().generate(2, 3);
        assert!(bare.results.is_empty());
        assert!(JsonValue::parse(&bare.to_json()).is_ok());
    }

    #[test]
    fn quantized_students_degrade_gracefully_in_order() {
        let report = tiny_pipeline()
            .schemes(["olive-4bit", "uniform:4"])
            .generate(6, 12);
        let olive = report.result("olive-4bit").unwrap().agreement;
        let uniform = report.result("uniform:4").unwrap().agreement;
        assert!(
            olive >= uniform,
            "OliVe must track the teacher at least as well: {olive} vs {uniform}"
        );
    }

    #[test]
    fn generation_is_thread_count_invariant() {
        let pipeline = tiny_pipeline().schemes(["olive-4bit"]);
        let run = || pipeline.generate(4, 6).without_wall_times().to_json();
        let seq = olive_runtime::with_threads(1, run);
        let par = olive_runtime::with_threads(8, run);
        assert_eq!(seq, par);
    }
}
