//! The autoregressive generation arm of the pipeline.
//!
//! Where [`Pipeline::run`](crate::Pipeline::run) answers "how much does a
//! scheme perturb one forward pass", [`Pipeline::generation`] answers the
//! *generative* question the paper's serving scenario poses: run a quantized
//! student autoregressively for `max_new_tokens` greedy decode steps and
//! score, at every step, whether the FP32 teacher (forced along the
//! student's token sequence) would have picked the same token. The result is
//! a [`GenReport`]: the generated tokens, the per-step agreement trace, the
//! aggregate agreement and the decode throughput (tokens/sec).
//!
//! The run is described by a [`GenOptions`] builder — prompt length, step
//! budget, an optional scheme override, an optional pre-prepared
//! teacher/prompt, an optional streaming sink — and
//! [`Pipeline::generation`] is the one entry point; the older positional
//! `generate`/`generate_prepared`/`generate_streamed` trio survives as thin
//! deprecated wrappers over it.
//!
//! ## Streaming, byte-identically
//!
//! The report's JSON is assembled from **fragments** — a head, one fragment
//! per decode step, a per-scheme tail carrying the summary, a report tail —
//! and [`GenReport::to_json`] is defined as the concatenation of exactly
//! those fragments. A [`GenOptions::stream`] sink receives each fragment
//! *as the step is decoded*, which is what `olive-serve` writes as HTTP
//! chunks: a streamed `/v1/generate` body, chunks concatenated, is
//! byte-identical to the unstreamed `without_wall_times().to_json()` by
//! construction, not by careful bookkeeping. The fragment constructors
//! ([`head_fragment`], [`scheme_head_fragment`], [`step_fragment`],
//! [`scheme_tail_fragment`], [`REPORT_TAIL`]) are public precisely so the
//! continuous-batching scheduler in `olive-serve` can emit the very same
//! bytes per stream while interleaving many streams' decode steps.

use crate::json::JsonValue;
use crate::pipeline::Pipeline;
use crate::scheme::Scheme;
use olive_models::{argmax, DecodeSession, TinyTransformer};
use olive_tensor::rng::Rng;

/// Default prompt length of a generation run, in tokens.
pub const DEFAULT_PROMPT_TOKENS: usize = 8;

/// Default number of greedy decode steps.
pub const DEFAULT_MAX_NEW_TOKENS: usize = 16;

/// One greedy decode step of one scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenStep {
    /// The token the quantized student picked (and was fed back).
    pub token: usize,
    /// The token the FP32 teacher would have picked on the same prefix.
    pub teacher_token: usize,
}

impl GenStep {
    /// Whether student and teacher picked the same token at this step.
    pub fn agree(&self) -> bool {
        self.token == self.teacher_token
    }
}

/// Per-scheme outcome of a generation run.
#[derive(Debug, Clone, PartialEq)]
pub struct GenSchemeResult {
    /// The registry spec string.
    pub spec: String,
    /// The quantizer's display name.
    pub name: String,
    /// Whether activations were quantized (pipeline setting AND scheme
    /// capability), per-row as the decode path requires.
    pub activations_quantized: bool,
    /// The greedy decode trace, one entry per new token.
    pub steps: Vec<GenStep>,
    /// Fraction of steps on which the teacher agreed with the student's
    /// token (1.0 for an empty trace).
    pub agreement: f64,
    /// Decode throughput over the generation loop (0.0 when wall times are
    /// stripped).
    pub tokens_per_s: f64,
    /// Wall time of quantizing + generating, in seconds.
    pub wall_time_s: f64,
}

impl GenSchemeResult {
    /// The student's generated tokens, in order.
    pub fn tokens(&self) -> Vec<usize> {
        self.steps.iter().map(|s| s.token).collect()
    }
}

/// The unified result of a generation run — the generative counterpart of
/// [`EvalReport`](crate::EvalReport).
#[derive(Debug, Clone, PartialEq)]
pub struct GenReport {
    /// Model display name.
    pub model: String,
    /// Task name (display only, never part of an RNG stream).
    pub task: String,
    /// RNG seed the teacher and prompt were generated from.
    pub seed: u64,
    /// The shared prompt all schemes continue from.
    pub prompt: Vec<usize>,
    /// Requested number of decode steps.
    pub max_new_tokens: usize,
    /// Whether the run requested activation quantization.
    pub quantize_activations: bool,
    /// One entry per scheme, in the order they were configured.
    pub results: Vec<GenSchemeResult>,
}

impl GenReport {
    /// Looks up a scheme's result by its spec string.
    pub fn result(&self, spec: &str) -> Option<&GenSchemeResult> {
        self.results.iter().find(|r| r.spec == spec)
    }

    /// The report with `tokens_per_s` and `wall_time_s` zeroed — everything
    /// else is bit-deterministic in (model, seed, prompt, schemes); the
    /// throughput numbers are the lone measurements. Streamed serving
    /// renders this form (the `olive-serve` determinism contract).
    pub fn without_wall_times(mut self) -> Self {
        for r in &mut self.results {
            r.tokens_per_s = 0.0;
            r.wall_time_s = 0.0;
        }
        self
    }

    /// Renders the report as machine-readable JSON: the concatenation of the
    /// same fragments a [`GenOptions::stream`] sink receives.
    pub fn to_json(&self) -> String {
        let mut out = head_fragment(self);
        for (i, r) in self.results.iter().enumerate() {
            out.push_str(&scheme_head_fragment(r, i == 0));
            for (j, step) in r.steps.iter().enumerate() {
                out.push_str(&step_fragment(step, j == 0));
            }
            out.push_str(&scheme_tail_fragment(r));
        }
        out.push_str(REPORT_TAIL);
        out
    }
}

/// Everything up to and including `"results": [`.
pub fn head_fragment(report: &GenReport) -> String {
    let prompt: Vec<String> = report.prompt.iter().map(|t| t.to_string()).collect();
    format!(
        "{{\n  \"model\": {},\n  \"task\": {},\n  \"seed\": {},\n  \"prompt_tokens\": {},\n  \
         \"max_new_tokens\": {},\n  \"quantize_activations\": {},\n  \"prompt\": [{}],\n  \
         \"results\": [",
        JsonValue::Str(report.model.clone()).render_inline(),
        JsonValue::Str(report.task.clone()).render_inline(),
        report.seed,
        report.prompt.len(),
        report.max_new_tokens,
        report.quantize_activations,
        prompt.join(", "),
    )
}

/// One scheme's metadata up to and including `"steps": [`; `first` drops
/// the leading comma for the first scheme in the report.
pub fn scheme_head_fragment(result: &GenSchemeResult, first: bool) -> String {
    format!(
        "{}\n    {{\n      \"spec\": {},\n      \"name\": {},\n      \
         \"activations_quantized\": {},\n      \"steps\": [",
        if first { "" } else { "," },
        JsonValue::Str(result.spec.clone()).render_inline(),
        JsonValue::Str(result.name.clone()).render_inline(),
        result.activations_quantized,
    )
}

/// One decode step — the fragment streamed as the token is produced.
pub fn step_fragment(step: &GenStep, first: bool) -> String {
    format!(
        "{}\n        {{\"token\": {}, \"teacher_token\": {}, \"agree\": {}}}",
        if first { "" } else { "," },
        step.token,
        step.teacher_token,
        step.agree(),
    )
}

/// Closes the step array and carries the per-scheme summary (which is only
/// known once every step has been decoded — hence it trails the steps).
pub fn scheme_tail_fragment(result: &GenSchemeResult) -> String {
    format!(
        "\n      ],\n      \"agreement\": {},\n      \"tokens_per_s\": {},\n      \
         \"wall_time_s\": {}\n    }}",
        JsonValue::num_or_null(result.agreement).render_inline(),
        JsonValue::num_or_null(result.tokens_per_s).render_inline(),
        JsonValue::num_or_null(result.wall_time_s).render_inline(),
    )
}

/// Closes the results array and the report object.
pub const REPORT_TAIL: &str = "\n  ]\n}\n";

/// A generated teacher model plus the prompt all schemes continue from — the
/// reusable (cacheable) part of a generation run, mirroring
/// [`PreparedEval`](crate::PreparedEval) for the evaluation arm.
#[derive(Debug, Clone)]
pub struct PreparedGen {
    /// The FP32 teacher.
    pub teacher: TinyTransformer,
    /// The prompt (at least one token).
    pub prompt: Vec<usize>,
}

/// The description of one generation run — the single argument of
/// [`Pipeline::generation`], replacing the old positional
/// `generate`/`generate_prepared`/`generate_streamed` trio.
///
/// Defaults: [`DEFAULT_PROMPT_TOKENS`]-token prompt,
/// [`DEFAULT_MAX_NEW_TOKENS`] decode steps, the pipeline's configured
/// schemes, a fresh preparation from the pipeline seed, no streaming.
///
/// ```
/// use olive_api::{GenOptions, Pipeline};
/// use olive_api::pipeline::ModelFamily;
///
/// let pipeline = Pipeline::new(ModelFamily::Gpt2.tiny()).schemes(["fp32"]);
/// let report = pipeline.generation(GenOptions::new().prompt_tokens(4).max_new_tokens(2));
/// assert_eq!(report.results.len(), 1);
/// ```
#[derive(Default)]
pub struct GenOptions<'a> {
    prompt_tokens: Option<usize>,
    max_new_tokens: Option<usize>,
    schemes: Option<Vec<Scheme>>,
    prepared: Option<&'a PreparedGen>,
    sink: Option<&'a mut dyn FnMut(&str)>,
}

impl<'a> GenOptions<'a> {
    /// All defaults (see the type docs).
    pub fn new() -> Self {
        GenOptions::default()
    }

    /// Prompt length in tokens (clamped to at least 1 at preparation time).
    /// Ignored when [`prepared`](Self::prepared) supplies the prompt.
    pub fn prompt_tokens(mut self, n: usize) -> Self {
        self.prompt_tokens = Some(n);
        self
    }

    /// Number of greedy decode steps per scheme.
    pub fn max_new_tokens(mut self, n: usize) -> Self {
        self.max_new_tokens = Some(n);
        self
    }

    /// Overrides the pipeline's configured schemes with a single spec string
    /// for this run (parsed like [`Pipeline::schemes`]).
    ///
    /// # Panics
    ///
    /// Panics on an unparseable spec, like [`Pipeline::schemes`].
    pub fn scheme(self, spec: &str) -> Self {
        match Scheme::parse(spec) {
            Ok(s) => self.scheme_set([s]),
            Err(e) => panic!("{e}"),
        }
    }

    /// Overrides the pipeline's configured schemes with pre-parsed schemes,
    /// in order.
    pub fn scheme_set<I: IntoIterator<Item = Scheme>>(mut self, schemes: I) -> Self {
        self.schemes = Some(schemes.into_iter().collect());
        self
    }

    /// Reuses an already-prepared teacher + prompt (the quantize-once/
    /// serve-many path) instead of preparing from the pipeline seed.
    pub fn prepared(mut self, prepared: &'a PreparedGen) -> Self {
        self.prepared = Some(prepared);
        self
    }

    /// Streams the report's JSON fragments into `sink` as they become
    /// available — one head, one fragment per decode step (emitted the
    /// moment the step is decoded), one tail per scheme, one report tail.
    /// The fragments concatenate to exactly the returned report's
    /// [`GenReport::to_json`].
    ///
    /// Wall times are stripped from both the stream and the returned report:
    /// a fragment, once emitted, could not honestly carry a measurement that
    /// finishes later, and serving requires byte-stable output anyway.
    pub fn stream(mut self, sink: &'a mut dyn FnMut(&str)) -> Self {
        self.sink = Some(sink);
        self
    }
}

impl Pipeline {
    /// Generates the teacher and a `prompt_tokens`-long prompt (clamped to at
    /// least 1) without running any scheme. The teacher is bit-identical to
    /// the one [`prepare`](Pipeline::prepare) generates for the same seed;
    /// the prompt continues the same RNG stream, so a `(model, seed,
    /// prompt_tokens)` triple fully determines the preparation — the
    /// quantize-once/serve-many cache key `olive-serve` uses.
    pub fn prepare_generation(&self, prompt_tokens: usize) -> PreparedGen {
        let mut rng = Rng::seed_from(self.seed);
        let teacher = TinyTransformer::generate(self.model.config, self.model.severity, &mut rng);
        let prompt = (0..prompt_tokens.max(1))
            .map(|_| rng.below(self.model.config.vocab))
            .collect();
        PreparedGen { teacher, prompt }
    }

    /// A [`GenReport`] carrying this pipeline's identity (model, task, seed,
    /// activation setting) and the given prompt/step budget, with no results
    /// yet. [`Pipeline::generation`] starts from this skeleton; the
    /// continuous-batching scheduler in `olive-serve` uses it to emit
    /// [`head_fragment`]s whose bytes match a direct pipeline run exactly.
    pub fn gen_report_skeleton(&self, prompt: Vec<usize>, max_new_tokens: usize) -> GenReport {
        GenReport {
            model: self.model.name.clone(),
            task: self.task.clone(),
            seed: self.seed,
            prompt,
            max_new_tokens,
            quantize_activations: self.quantize_activations,
            results: Vec::new(),
        }
    }

    /// Whether `scheme` would quantize activations under this pipeline's
    /// settings (the request asked for it AND the scheme supports it) — the
    /// `activations_quantized` flag a [`GenSchemeResult`] reports.
    pub fn quantizes_activations_with(&self, scheme: &Scheme) -> bool {
        self.quantize_activations && scheme.quantizes_activations()
    }

    /// Runs one generation described by `options` — the single public entry
    /// point for generation (see [`GenOptions`] for the knobs; the old
    /// positional `generate*` family is deprecated sugar over this).
    pub fn generation(&self, options: GenOptions<'_>) -> GenReport {
        let max_new_tokens = options.max_new_tokens.unwrap_or(DEFAULT_MAX_NEW_TOKENS);
        let schemes = options.schemes.as_deref().unwrap_or(&self.schemes);
        match options.prepared {
            Some(prepared) => self.generate_inner(prepared, max_new_tokens, schemes, options.sink),
            None => {
                let prompt_tokens = options.prompt_tokens.unwrap_or(DEFAULT_PROMPT_TOKENS);
                let prepared = self.prepare_generation(prompt_tokens);
                self.generate_inner(&prepared, max_new_tokens, schemes, options.sink)
            }
        }
    }

    /// Runs every configured scheme for `max_new_tokens` greedy decode steps
    /// and collects the unified [`GenReport`] (wall times included).
    #[deprecated(note = "use Pipeline::generation(GenOptions::new() \
                         .prompt_tokens(..).max_new_tokens(..))")]
    pub fn generate(&self, prompt_tokens: usize, max_new_tokens: usize) -> GenReport {
        self.generation(
            GenOptions::new()
                .prompt_tokens(prompt_tokens)
                .max_new_tokens(max_new_tokens),
        )
    }

    /// Like `generate` against an already-prepared teacher + prompt —
    /// bit-identical to `generate` for the same preparation inputs.
    #[deprecated(note = "use Pipeline::generation(GenOptions::new() \
                         .prepared(..).max_new_tokens(..))")]
    pub fn generate_prepared(&self, prepared: &PreparedGen, max_new_tokens: usize) -> GenReport {
        self.generation(
            GenOptions::new()
                .prepared(prepared)
                .max_new_tokens(max_new_tokens),
        )
    }

    /// Streaming generation into `sink`; see [`GenOptions::stream`].
    #[deprecated(note = "use Pipeline::generation(GenOptions::new() \
                         .prepared(..).max_new_tokens(..).stream(..))")]
    pub fn generate_streamed(
        &self,
        prepared: &PreparedGen,
        max_new_tokens: usize,
        sink: &mut dyn FnMut(&str),
    ) -> GenReport {
        self.generation(
            GenOptions::new()
                .prepared(prepared)
                .max_new_tokens(max_new_tokens)
                .stream(sink),
        )
    }

    fn generate_inner(
        &self,
        prepared: &PreparedGen,
        max_new_tokens: usize,
        schemes: &[Scheme],
        mut sink: Option<&mut dyn FnMut(&str)>,
    ) -> GenReport {
        let streaming = sink.is_some();
        let mut report = self.gen_report_skeleton(prepared.prompt.clone(), max_new_tokens);
        report.results.reserve(schemes.len());
        if let Some(sink) = sink.as_deref_mut() {
            sink(&head_fragment(&report));
        }
        for (i, scheme) in schemes.iter().enumerate() {
            let quantizer = scheme.build();
            // olive-lint: allow(no-wallclock-in-deterministic-paths): feeds only wall_time_s, which without_wall_times strips before any byte comparison
            let start = std::time::Instant::now();
            let student = prepared.teacher.quantize_weights(quantizer.as_ref());
            let quantize_acts = self.quantize_activations && quantizer.quantizes_activations();
            let act_q = quantize_acts.then_some(quantizer.as_ref());
            let mut result = GenSchemeResult {
                spec: scheme.to_string(),
                name: quantizer.name().to_string(),
                activations_quantized: quantize_acts,
                steps: Vec::with_capacity(max_new_tokens),
                agreement: 1.0,
                tokens_per_s: 0.0,
                wall_time_s: 0.0,
            };
            if let Some(sink) = sink.as_deref_mut() {
                sink(&scheme_head_fragment(&result, i == 0));
            }

            // The student decodes greedily; the teacher is forced along the
            // student's tokens so every step compares like with like.
            let mut student_session = DecodeSession::new(&student, act_q);
            let mut teacher_session = DecodeSession::new(&prepared.teacher, None);
            let mut s_logits = student_session
                .prefill(&prepared.prompt)
                .expect("prepared prompts are non-empty");
            let mut t_logits = teacher_session
                .prefill(&prepared.prompt)
                .expect("prepared prompts are non-empty");
            for step_index in 0..max_new_tokens {
                let step = GenStep {
                    token: argmax(&s_logits),
                    teacher_token: argmax(&t_logits),
                };
                if let Some(sink) = sink.as_deref_mut() {
                    sink(&step_fragment(&step, step_index == 0));
                }
                result.steps.push(step);
                if step_index + 1 < max_new_tokens {
                    s_logits = student_session.push(step.token);
                    t_logits = teacher_session.push(step.token);
                }
            }

            let elapsed = start.elapsed().as_secs_f64();
            if !result.steps.is_empty() {
                let agreed = result.steps.iter().filter(|s| s.agree()).count();
                result.agreement = agreed as f64 / result.steps.len() as f64;
            }
            if !streaming {
                result.wall_time_s = elapsed;
                if elapsed > 0.0 {
                    result.tokens_per_s = max_new_tokens as f64 / elapsed;
                }
            }
            if let Some(sink) = sink.as_deref_mut() {
                sink(&scheme_tail_fragment(&result));
            }
            report.results.push(result);
        }
        if let Some(sink) = sink {
            sink(REPORT_TAIL);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::ModelFamily;

    fn tiny_pipeline() -> Pipeline {
        Pipeline::new(ModelFamily::Gpt2.tiny())
            .task("gen-unit")
            .seed(21)
    }

    /// `generation` with positional sugar, for concise tests.
    fn gen(pipeline: &Pipeline, prompt_tokens: usize, max_new_tokens: usize) -> GenReport {
        pipeline.generation(
            GenOptions::new()
                .prompt_tokens(prompt_tokens)
                .max_new_tokens(max_new_tokens),
        )
    }

    #[test]
    fn fp32_student_agrees_with_the_teacher_everywhere() {
        let report = gen(&tiny_pipeline().schemes(["fp32"]), 4, 6);
        let r = report.result("fp32").unwrap();
        assert_eq!(r.agreement, 1.0);
        assert_eq!(r.steps.len(), 6);
        assert!(r.steps.iter().all(GenStep::agree));
        assert!(r.wall_time_s > 0.0);
        assert!(r.tokens_per_s > 0.0);
        assert_eq!(report.prompt.len(), 4);
    }

    #[test]
    fn generation_is_deterministic_and_prepared_matches_direct() {
        let pipeline = tiny_pipeline().schemes(["olive-4bit", "uniform:4"]);
        let a = gen(&pipeline, 5, 8).without_wall_times();
        let b = gen(&pipeline, 5, 8).without_wall_times();
        assert_eq!(a.to_json(), b.to_json());
        let prepared = pipeline.prepare_generation(5);
        let c = pipeline
            .generation(GenOptions::new().prepared(&prepared).max_new_tokens(8))
            .without_wall_times();
        assert_eq!(a.to_json(), c.to_json());
    }

    #[test]
    fn prepared_teacher_matches_the_eval_preparation() {
        // The generation arm shares the eval arm's teacher stream: the same
        // seed must produce the same teacher weights.
        let pipeline = tiny_pipeline();
        let gen = pipeline.prepare_generation(4);
        let eval = pipeline.prepare();
        assert_eq!(gen.teacher.embedding, eval.teacher.embedding);
        assert_eq!(
            gen.teacher.layers[0].wqkv.data(),
            eval.teacher.layers[0].wqkv.data()
        );
    }

    #[test]
    fn streamed_fragments_concatenate_to_the_report_json() {
        let pipeline = tiny_pipeline().schemes(["olive-4bit", "uniform:4", "fp32"]);
        let prepared = pipeline.prepare_generation(4);
        let mut streamed = String::new();
        let mut fragments = 0usize;
        let mut sink = |fragment: &str| {
            streamed.push_str(fragment);
            fragments += 1;
        };
        let report = pipeline.generation(
            GenOptions::new()
                .prepared(&prepared)
                .max_new_tokens(7)
                .stream(&mut sink),
        );
        assert_eq!(streamed, report.to_json());
        assert_eq!(
            streamed,
            pipeline
                .generation(GenOptions::new().prepared(&prepared).max_new_tokens(7))
                .without_wall_times()
                .to_json()
        );
        // head + per scheme (head + 7 steps + tail) + report tail.
        assert_eq!(fragments, 1 + 3 * (1 + 7 + 1) + 1);
        // Streamed reports carry no wall-clock measurements.
        assert!(report.results.iter().all(|r| r.wall_time_s == 0.0));
    }

    #[test]
    fn report_json_is_valid_and_complete() {
        let report = gen(&tiny_pipeline().schemes(["olive-4bit", "gobo"]), 3, 5);
        let parsed = JsonValue::parse(&report.to_json()).expect("report must be valid JSON");
        assert_eq!(
            parsed.get("model").and_then(JsonValue::as_str),
            Some("GPT-2")
        );
        assert_eq!(parsed.get("seed").and_then(JsonValue::as_u64), Some(21));
        assert_eq!(
            parsed
                .get("prompt")
                .and_then(JsonValue::as_array)
                .map(<[_]>::len),
            Some(3)
        );
        let results = parsed.get("results").and_then(JsonValue::as_array).unwrap();
        assert_eq!(results.len(), 2);
        let steps = results[0]
            .get("steps")
            .and_then(JsonValue::as_array)
            .unwrap();
        assert_eq!(steps.len(), 5);
        assert!(steps[0].get("token").and_then(JsonValue::as_u64).is_some());
        assert!(steps[0].get("agree").and_then(JsonValue::as_bool).is_some());
        // GOBO is weight-only even when activations are requested.
        assert_eq!(
            results[1]
                .get("activations_quantized")
                .and_then(JsonValue::as_bool),
            Some(false)
        );
    }

    #[test]
    fn empty_traces_render_and_score_neutrally() {
        let report = gen(&tiny_pipeline().schemes(["fp32"]), 2, 0);
        let r = report.result("fp32").unwrap();
        assert!(r.steps.is_empty());
        assert_eq!(r.agreement, 1.0);
        assert!(JsonValue::parse(&report.to_json()).is_ok());
        // No schemes at all still renders valid JSON.
        let bare = gen(&tiny_pipeline(), 2, 3);
        assert!(bare.results.is_empty());
        assert!(JsonValue::parse(&bare.to_json()).is_ok());
    }

    #[test]
    fn quantized_students_degrade_gracefully_in_order() {
        let report = gen(&tiny_pipeline().schemes(["olive-4bit", "uniform:4"]), 6, 12);
        let olive = report.result("olive-4bit").unwrap().agreement;
        let uniform = report.result("uniform:4").unwrap().agreement;
        assert!(
            olive >= uniform,
            "OliVe must track the teacher at least as well: {olive} vs {uniform}"
        );
    }

    #[test]
    fn generation_is_thread_count_invariant() {
        let pipeline = tiny_pipeline().schemes(["olive-4bit"]);
        let run = || gen(&pipeline, 4, 6).without_wall_times().to_json();
        let seq = olive_runtime::with_threads(1, run);
        let par = olive_runtime::with_threads(8, run);
        assert_eq!(seq, par);
    }

    #[test]
    fn gen_options_scheme_overrides_the_pipeline_schemes() {
        let pipeline = tiny_pipeline().schemes(["uniform:4"]);
        let report = pipeline.generation(
            GenOptions::new()
                .prompt_tokens(3)
                .max_new_tokens(2)
                .scheme("fp32"),
        );
        assert_eq!(report.results.len(), 1);
        assert_eq!(report.results[0].spec, "fp32");
        // The override is per-run: the pipeline itself is untouched.
        assert_eq!(gen(&pipeline, 3, 2).results[0].spec, "uniform:4");
    }

    #[test]
    fn gen_options_defaults_match_the_documented_constants() {
        let report = tiny_pipeline()
            .schemes(["fp32"])
            .generation(GenOptions::new());
        assert_eq!(report.prompt.len(), DEFAULT_PROMPT_TOKENS);
        assert_eq!(report.max_new_tokens, DEFAULT_MAX_NEW_TOKENS);
    }

    /// The deprecated positional wrappers must stay bit-identical to the
    /// `GenOptions` path until they are removed.
    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_delegate_to_generation() {
        let pipeline = tiny_pipeline().schemes(["olive-4bit"]);
        let via_options = gen(&pipeline, 4, 5).without_wall_times().to_json();
        assert_eq!(
            pipeline.generate(4, 5).without_wall_times().to_json(),
            via_options
        );
        let prepared = pipeline.prepare_generation(4);
        assert_eq!(
            pipeline
                .generate_prepared(&prepared, 5)
                .without_wall_times()
                .to_json(),
            via_options
        );
        let mut streamed = String::new();
        pipeline.generate_streamed(&prepared, 5, &mut |f| streamed.push_str(f));
        assert_eq!(streamed, via_options);
    }
}
