//! Acceptance test: the pipeline reproduces the pre-refactor tbl06/tbl09
//! numbers **bit-identically**.
//!
//! The golden constants below were captured from the pre-refactor harness
//! code path (`olive_bench::accuracy::Experiment` + the standalone metric
//! functions) at the exact seeds the `tbl06_glue_accuracy` and
//! `tbl09_llm_perplexity` binaries use. The pipeline must reproduce them to
//! the last bit — any drift in teacher generation, task selection, quantizer
//! behaviour or metric folding fails this test.

use olive_api::{Calibration, ModelFamily, Pipeline};
use olive_core::TensorQuantizer;
use olive_models::{
    logit_fidelity, pseudo_perplexity, EngineConfig, EvalTask, OutlierSeverity, TinyTransformer,
};
use olive_tensor::rng::Rng;

/// The pre-refactor harness defaults: `EngineConfig::small()`, 24 inputs,
/// confidence filtering at 6× oversampling.
const BATCHES: usize = 24;
const OVERSAMPLE: usize = 6;

/// tbl06, BERT-base × CoLA cell (seed `0x7B06_0000 + mi*101 + ti` with
/// `mi = ti = 0`): fidelity with weights + activations quantized.
const TBL06_SEED: u64 = 0x7B06_0000;
const TBL06_GOLDEN: [(&str, f64); 6] = [
    ("olive-4bit", 0.6777846228802514),
    ("ant:4bit", 0.4555762409735949),
    ("os:4bit", 0.15884167707614696),
    ("os:6bit", 0.6760894234470428),
    ("uniform:8", 0.9518976334994638),
    ("uniform:4", 0.23863463783075098),
];

/// tbl09, GPT2-XL × Wiki cell (seed `0x7B0901 * 131 + 11`): pseudo-perplexity
/// with weights + activations quantized; "fp32" is the FP32 floor row.
const TBL09_SEED: u64 = 0x7B0901 * 131 + 11;
const TBL09_GOLDEN: [(&str, f64); 6] = [
    ("fp32", 1.207966904595803),
    ("uniform:8", 37.197947480917215),
    ("olive-8bit", 2.972031600450773),
    ("uniform:4", 1308.6076316039375),
    ("ant:4bit", 1444207.9371676007),
    ("olive-4bit", 2432.002882350858),
];

#[test]
fn tbl06_cell_is_bit_identical_through_the_pipeline() {
    let report = Pipeline::new(ModelFamily::Bert.small().named("BERT-base"))
        .task("CoLA")
        .schemes(TBL06_GOLDEN.iter().map(|(spec, _)| *spec))
        .seed(TBL06_SEED)
        .batches(BATCHES)
        .calibrate(Calibration::confident(OVERSAMPLE))
        .run();
    for (spec, golden) in TBL06_GOLDEN {
        let got = report.result(spec).expect(spec).fidelity;
        assert_eq!(got, golden, "{spec}: {got:?} != golden {golden:?}");
    }
}

#[test]
fn tbl09_cell_is_bit_identical_through_the_pipeline() {
    let report = Pipeline::new(ModelFamily::Gpt2.small().named("GPT2-XL"))
        .task("Wiki")
        .schemes(TBL09_GOLDEN.iter().map(|(spec, _)| *spec))
        .seed(TBL09_SEED)
        .batches(BATCHES)
        .calibrate(Calibration::confident(OVERSAMPLE))
        .run();
    for (spec, golden) in TBL09_GOLDEN {
        let got = report.result(spec).expect(spec).perplexity;
        assert_eq!(got, golden, "{spec}: {got:?} != golden {golden:?}");
    }
}

/// Belt and braces: independently of the hard-coded constants, the pipeline
/// must agree bit-for-bit with a hand-constructed legacy evaluation (the
/// exact construction sequence the pre-refactor `Experiment` used).
#[test]
fn pipeline_matches_a_hand_constructed_legacy_evaluation() {
    let seed = 0x7B06_0000 + 101 + 2; // tbl06 BERT-large × MNLI cell
    let mut rng = Rng::seed_from(seed);
    let teacher = TinyTransformer::generate(
        EngineConfig::small(),
        OutlierSeverity::transformer(),
        &mut rng,
    );
    let task = EvalTask::generate_confident("MNLI", &teacher, BATCHES, OVERSAMPLE, &mut rng);

    let q = olive_core::OliveQuantizer::int4();
    let student = teacher.quantize_weights(&q);
    let legacy_fidelity =
        logit_fidelity(&teacher, &student, &task, Some(&q as &dyn TensorQuantizer));
    let legacy_ppl = pseudo_perplexity(&teacher, &student, &task, Some(&q as &dyn TensorQuantizer));

    let report = Pipeline::new(ModelFamily::Bert.small().named("BERT-large"))
        .task("MNLI")
        .schemes(["olive-4bit"])
        .seed(seed)
        .batches(BATCHES)
        .calibrate(Calibration::confident(OVERSAMPLE))
        .run();
    let r = report.result("olive-4bit").unwrap();
    assert_eq!(r.fidelity, legacy_fidelity);
    assert_eq!(r.perplexity, legacy_ppl);
}
